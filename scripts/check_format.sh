#!/usr/bin/env bash
# Verify that the given directories are clang-format clean, without
# touching the working tree (--dry-run -Werror is the non-mutating
# equivalent of "format, then git diff --exit-code"). Formatting rolls
# out directory by directory — src/util is the pilot — so the whole
# tree never needs a 160-file churn commit.
#
# Exit codes: 0 clean, 1 formatting differences, 127 clang-format not
# installed (ctest maps 127 to SKIPPED via SKIP_RETURN_CODE).
set -uo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping"
  exit 127
fi

dirs=("$@")
if [[ ${#dirs[@]} -eq 0 ]]; then
  dirs=(src/util)
fi

status=0
for dir in "${dirs[@]}"; do
  while IFS= read -r -d '' file; do
    if ! clang-format --dry-run -Werror "$file"; then
      status=1
    fi
  done < <(find "$dir" -name '*.cpp' -print0 -o -name '*.hpp' -print0)
done

if [[ $status -ne 0 ]]; then
  echo "check_format: run 'clang-format -i' on the files above"
fi
exit $status
