#!/usr/bin/env bash
# Tier-1 verification plus sanitizer and Release-config perf stages.
#
# 1. Configure + build + ctest in the default (RelWithDebInfo) tree —
#    exactly the ROADMAP tier-1 command, with PINSIM_WERROR=ON so the
#    hardened warning set (-Wall -Wextra -Wshadow -Wnon-virtual-dtor
#    -Wold-style-cast) is zero-tolerance, and with the pinsim_lint
#    tree scan and fixture suite running as ctests (determinism /
#    ordering / index-safety / engine-api / hygiene invariants).
# 2. Build + run the tier-1 tests under ASan+UBSan (the indexed-heap
#    runqueue and the flat cgroup slice arrays index by raw task/cpu
#    ids; the sanitizers catch any stale-index use the unit tests
#    would miss). The quantum-boundary fuzz oracle (randomized
#    wakeup/preemption traces, fast-forward vs skip-free path) runs
#    here too, so the quiet-core replay arithmetic is exercised with
#    poisoned redzones. Skip with PINSIM_SKIP_SANITIZERS=1 for a
#    quick pass.
# 3. Build + run the parallel-harness tests under ThreadSanitizer
#    (util::ThreadPool, ExperimentRunner::measure_all, and the
#    barrier-synchronized sim::ShardedEngine round loop are the only
#    concurrent code in the tree; TSan is the only tool that proves
#    the sweep protocol and the shard workers race-free). Skipped
#    together with the other sanitizers via PINSIM_SKIP_SANITIZERS=1.
# 4. Build micro_engine + micro_sched + micro_shard + micro_cluster in a
#    Release tree so perf-relevant flags (-O2 -DNDEBUG) compile on every
#    PR, and run the micro suites once, writing machine-readable timings
#    to BENCH_engine_latest.json, BENCH_sched_latest.json,
#    BENCH_shard_latest.json, BENCH_timer_latest.json (the timer-path
#    subset tracked by BENCH_timer.json), BENCH_cluster_latest.json,
#    and BENCH_hotloop_latest.json (quiet-core fast-forward +
#    boundary batching, tracked by BENCH_hotloop.json) — all
#    gitignored; diff against the committed BENCH_*.json snapshots
#    when touching hot paths. The tier-1 stage also archives the lint
#    report (findings + per-rule counts + scan wall time) to the
#    gitignored LINT_latest.json.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest (warnings are errors) =="
cmake -B build -S . -DPINSIM_WERROR=ON
cmake --build build -j
(cd build && ctest --output-on-failure -j --timeout 300)

echo "== lint report (LINT_latest.json) =="
# Archive the machine-readable lint report (findings, per-rule counts,
# scan wall time) next to the BENCH_*_latest.json artifacts. The tree
# is expected clean — findings fail this stage like a test failure.
./build/tools/lint/pinsim_lint --root . --json > LINT_latest.json

if [[ "${PINSIM_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "== tier-1 under ASan+UBSan =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan --target pinsim_tests pinsim_examples \
    pinsim_lint pinsim_lint_tests -j
  (cd build-asan && ctest --output-on-failure -j --timeout 300)
  echo "== quantum-boundary fuzz oracle under ASan+UBSan =="
  ./build-asan/tests/pinsim_tests --gtest_filter='*BoundaryFuzz*'

  echo "== parallel harness under TSan =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan --target pinsim_tests -j
  ./build-tsan/tests/pinsim_tests \
    --gtest_filter='ThreadPoolTest.*:ExperimentParallelTest.*:ShardedEngine*.*:ShardedFleetTest.*:ClusterFleetTest.*'
fi

echo "== Release build of the micro-benchmarks =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target micro_engine micro_sched micro_shard \
  micro_cluster micro_hotloop -j

echo "== engine micro smoke (BENCH_engine_latest.json) =="
./build-release/bench/micro_engine \
  --benchmark_filter='BM_Engine|BM_Boundary|BM_ThreadPool' \
  --benchmark_out=BENCH_engine_latest.json \
  --benchmark_out_format=json

echo "== scheduler micro smoke (BENCH_sched_latest.json) =="
./build-release/bench/micro_sched \
  --benchmark_out=BENCH_sched_latest.json \
  --benchmark_out_format=json

echo "== sharded-engine micro smoke (BENCH_shard_latest.json) =="
./build-release/bench/micro_shard \
  --benchmark_out=BENCH_shard_latest.json \
  --benchmark_out_format=json

echo "== timer-path micro smoke (BENCH_timer_latest.json) =="
./build-release/bench/micro_engine \
  --benchmark_filter='BM_BoundaryChurn|BM_EngineReschedule' \
  --benchmark_out=BENCH_timer_latest.json \
  --benchmark_out_format=json

echo "== scheduler hot-loop micro smoke (BENCH_hotloop_latest.json) =="
./build-release/bench/micro_hotloop \
  --benchmark_out=BENCH_hotloop_latest.json \
  --benchmark_out_format=json

echo "== cluster micro smoke (BENCH_cluster_latest.json) =="
./build-release/bench/micro_cluster \
  --benchmark_out=BENCH_cluster_latest.json \
  --benchmark_out_format=json

echo "verify: OK"
