#!/usr/bin/env bash
# Tier-1 verification plus a Release-config perf smoke.
#
# 1. Configure + build + ctest in the default (RelWithDebInfo) tree —
#    exactly the ROADMAP tier-1 command.
# 2. Build micro_engine in a Release tree so perf-relevant flags
#    (-O2 -DNDEBUG) compile on every PR, and run the engine micros once,
#    writing machine-readable timings to BENCH_engine_latest.json.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== Release build of the engine micro-benchmarks =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release --target micro_engine -j

echo "== engine micro smoke (BENCH_engine_latest.json) =="
./build-release/bench/micro_engine \
  --benchmark_filter='BM_Engine|BM_ThreadPool' \
  --benchmark_out=BENCH_engine_latest.json \
  --benchmark_out_format=json

echo "verify: OK"
