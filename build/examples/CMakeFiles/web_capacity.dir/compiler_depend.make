# Empty compiler generated dependencies file for web_capacity.
# This may be replaced when dependencies are built.
