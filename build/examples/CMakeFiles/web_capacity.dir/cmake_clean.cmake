file(REMOVE_RECURSE
  "CMakeFiles/web_capacity.dir/web_capacity.cpp.o"
  "CMakeFiles/web_capacity.dir/web_capacity.cpp.o.d"
  "web_capacity"
  "web_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
