# Empty dependencies file for pinsim_tests.
# This may be replaced when dependencies are built.
