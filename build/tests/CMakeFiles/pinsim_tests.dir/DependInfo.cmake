
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/best_practices_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/best_practices_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/best_practices_test.cpp.o.d"
  "/root/repo/tests/core/chr_advisor_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/chr_advisor_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/chr_advisor_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/overhead_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/overhead_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/shapes_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/core/shapes_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/core/shapes_test.cpp.o.d"
  "/root/repo/tests/hw/cache_model_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/hw/cache_model_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/hw/cache_model_test.cpp.o.d"
  "/root/repo/tests/hw/cost_model_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/hw/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/hw/cost_model_test.cpp.o.d"
  "/root/repo/tests/hw/cpuset_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/hw/cpuset_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/hw/cpuset_test.cpp.o.d"
  "/root/repo/tests/hw/disk_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/hw/disk_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/hw/disk_test.cpp.o.d"
  "/root/repo/tests/hw/topology_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/hw/topology_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/hw/topology_test.cpp.o.d"
  "/root/repo/tests/os/cgroup_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/cgroup_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/cgroup_test.cpp.o.d"
  "/root/repo/tests/os/kernel_affinity_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_affinity_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_affinity_test.cpp.o.d"
  "/root/repo/tests/os/kernel_cgroup_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_cgroup_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_cgroup_test.cpp.o.d"
  "/root/repo/tests/os/kernel_io_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_io_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_io_test.cpp.o.d"
  "/root/repo/tests/os/kernel_property_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_property_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_property_test.cpp.o.d"
  "/root/repo/tests/os/kernel_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/kernel_test.cpp.o.d"
  "/root/repo/tests/os/runqueue_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/runqueue_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/runqueue_test.cpp.o.d"
  "/root/repo/tests/os/spin_recv_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/os/spin_recv_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/os/spin_recv_test.cpp.o.d"
  "/root/repo/tests/sim/engine_fuzz_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/sim/engine_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/sim/engine_fuzz_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/stats/accumulator_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/stats/accumulator_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/stats/accumulator_test.cpp.o.d"
  "/root/repo/tests/stats/confidence_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/stats/confidence_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/stats/confidence_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/series_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/stats/series_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/stats/series_test.cpp.o.d"
  "/root/repo/tests/stats/text_table_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/stats/text_table_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/stats/text_table_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/trace/trace_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/util/units_test.cpp.o.d"
  "/root/repo/tests/virt/container_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/container_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/container_test.cpp.o.d"
  "/root/repo/tests/virt/guest_property_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/guest_property_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/guest_property_test.cpp.o.d"
  "/root/repo/tests/virt/instance_type_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/instance_type_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/instance_type_test.cpp.o.d"
  "/root/repo/tests/virt/platform_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/platform_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/platform_test.cpp.o.d"
  "/root/repo/tests/virt/vm_container_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/vm_container_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/vm_container_test.cpp.o.d"
  "/root/repo/tests/virt/vm_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/virt/vm_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/virt/vm_test.cpp.o.d"
  "/root/repo/tests/workload/cassandra_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/cassandra_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/cassandra_test.cpp.o.d"
  "/root/repo/tests/workload/config_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/config_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/config_test.cpp.o.d"
  "/root/repo/tests/workload/ffmpeg_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/ffmpeg_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/ffmpeg_test.cpp.o.d"
  "/root/repo/tests/workload/mpi_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/mpi_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/mpi_test.cpp.o.d"
  "/root/repo/tests/workload/platform_grid_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/platform_grid_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/platform_grid_test.cpp.o.d"
  "/root/repo/tests/workload/profiles_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/profiles_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/profiles_test.cpp.o.d"
  "/root/repo/tests/workload/wordpress_test.cpp" "tests/CMakeFiles/pinsim_tests.dir/workload/wordpress_test.cpp.o" "gcc" "tests/CMakeFiles/pinsim_tests.dir/workload/wordpress_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pinsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
