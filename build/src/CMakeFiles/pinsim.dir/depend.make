# Empty dependencies file for pinsim.
# This may be replaced when dependencies are built.
