
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/best_practices.cpp" "src/CMakeFiles/pinsim.dir/core/best_practices.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/best_practices.cpp.o.d"
  "/root/repo/src/core/chr_advisor.cpp" "src/CMakeFiles/pinsim.dir/core/chr_advisor.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/chr_advisor.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/pinsim.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/figure.cpp" "src/CMakeFiles/pinsim.dir/core/figure.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/figure.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/CMakeFiles/pinsim.dir/core/overhead.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/overhead.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/pinsim.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/core/report.cpp.o.d"
  "/root/repo/src/hw/cache_model.cpp" "src/CMakeFiles/pinsim.dir/hw/cache_model.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/hw/cache_model.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "src/CMakeFiles/pinsim.dir/hw/cost_model.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/hw/cost_model.cpp.o.d"
  "/root/repo/src/hw/cpuset.cpp" "src/CMakeFiles/pinsim.dir/hw/cpuset.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/hw/cpuset.cpp.o.d"
  "/root/repo/src/hw/disk.cpp" "src/CMakeFiles/pinsim.dir/hw/disk.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/hw/disk.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/CMakeFiles/pinsim.dir/hw/topology.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/hw/topology.cpp.o.d"
  "/root/repo/src/os/cgroup.cpp" "src/CMakeFiles/pinsim.dir/os/cgroup.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/cgroup.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/CMakeFiles/pinsim.dir/os/kernel.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/kernel.cpp.o.d"
  "/root/repo/src/os/kernel_balance.cpp" "src/CMakeFiles/pinsim.dir/os/kernel_balance.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/kernel_balance.cpp.o.d"
  "/root/repo/src/os/kernel_wakeup.cpp" "src/CMakeFiles/pinsim.dir/os/kernel_wakeup.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/kernel_wakeup.cpp.o.d"
  "/root/repo/src/os/runqueue.cpp" "src/CMakeFiles/pinsim.dir/os/runqueue.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/runqueue.cpp.o.d"
  "/root/repo/src/os/task.cpp" "src/CMakeFiles/pinsim.dir/os/task.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/os/task.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/pinsim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/stats/accumulator.cpp" "src/CMakeFiles/pinsim.dir/stats/accumulator.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/stats/accumulator.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/CMakeFiles/pinsim.dir/stats/confidence.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/stats/confidence.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/pinsim.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/series.cpp" "src/CMakeFiles/pinsim.dir/stats/series.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/stats/series.cpp.o.d"
  "/root/repo/src/stats/text_table.cpp" "src/CMakeFiles/pinsim.dir/stats/text_table.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/stats/text_table.cpp.o.d"
  "/root/repo/src/trace/cpudist.cpp" "src/CMakeFiles/pinsim.dir/trace/cpudist.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/trace/cpudist.cpp.o.d"
  "/root/repo/src/trace/offcputime.cpp" "src/CMakeFiles/pinsim.dir/trace/offcputime.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/trace/offcputime.cpp.o.d"
  "/root/repo/src/trace/sched_stats.cpp" "src/CMakeFiles/pinsim.dir/trace/sched_stats.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/trace/sched_stats.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/CMakeFiles/pinsim.dir/trace/tracer.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/trace/tracer.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/pinsim.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pinsim.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/util/rng.cpp.o.d"
  "/root/repo/src/virt/bare_metal.cpp" "src/CMakeFiles/pinsim.dir/virt/bare_metal.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/bare_metal.cpp.o.d"
  "/root/repo/src/virt/container.cpp" "src/CMakeFiles/pinsim.dir/virt/container.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/container.cpp.o.d"
  "/root/repo/src/virt/factory.cpp" "src/CMakeFiles/pinsim.dir/virt/factory.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/factory.cpp.o.d"
  "/root/repo/src/virt/guest.cpp" "src/CMakeFiles/pinsim.dir/virt/guest.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/guest.cpp.o.d"
  "/root/repo/src/virt/instance_type.cpp" "src/CMakeFiles/pinsim.dir/virt/instance_type.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/instance_type.cpp.o.d"
  "/root/repo/src/virt/pinning.cpp" "src/CMakeFiles/pinsim.dir/virt/pinning.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/pinning.cpp.o.d"
  "/root/repo/src/virt/platform.cpp" "src/CMakeFiles/pinsim.dir/virt/platform.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/platform.cpp.o.d"
  "/root/repo/src/virt/vm.cpp" "src/CMakeFiles/pinsim.dir/virt/vm.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/vm.cpp.o.d"
  "/root/repo/src/virt/vm_container.cpp" "src/CMakeFiles/pinsim.dir/virt/vm_container.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/virt/vm_container.cpp.o.d"
  "/root/repo/src/workload/cassandra.cpp" "src/CMakeFiles/pinsim.dir/workload/cassandra.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/cassandra.cpp.o.d"
  "/root/repo/src/workload/ffmpeg.cpp" "src/CMakeFiles/pinsim.dir/workload/ffmpeg.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/ffmpeg.cpp.o.d"
  "/root/repo/src/workload/mpi.cpp" "src/CMakeFiles/pinsim.dir/workload/mpi.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/mpi.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/pinsim.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/wordpress.cpp" "src/CMakeFiles/pinsim.dir/workload/wordpress.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/wordpress.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/pinsim.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/pinsim.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
