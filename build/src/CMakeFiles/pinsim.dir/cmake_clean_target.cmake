file(REMOVE_RECURSE
  "libpinsim.a"
)
