file(REMOVE_RECURSE
  "CMakeFiles/fig5_wordpress.dir/fig5_wordpress.cpp.o"
  "CMakeFiles/fig5_wordpress.dir/fig5_wordpress.cpp.o.d"
  "fig5_wordpress"
  "fig5_wordpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wordpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
