# Empty compiler generated dependencies file for fig5_wordpress.
# This may be replaced when dependencies are built.
