# Empty dependencies file for fig6_cassandra.
# This may be replaced when dependencies are built.
