file(REMOVE_RECURSE
  "CMakeFiles/fig6_cassandra.dir/fig6_cassandra.cpp.o"
  "CMakeFiles/fig6_cassandra.dir/fig6_cassandra.cpp.o.d"
  "fig6_cassandra"
  "fig6_cassandra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cassandra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
