# Empty dependencies file for best_practices.
# This may be replaced when dependencies are built.
