file(REMOVE_RECURSE
  "CMakeFiles/best_practices.dir/best_practices.cpp.o"
  "CMakeFiles/best_practices.dir/best_practices.cpp.o.d"
  "best_practices"
  "best_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
