# Empty dependencies file for chr_ranges.
# This may be replaced when dependencies are built.
