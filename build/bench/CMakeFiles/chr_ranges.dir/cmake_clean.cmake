file(REMOVE_RECURSE
  "CMakeFiles/chr_ranges.dir/chr_ranges.cpp.o"
  "CMakeFiles/chr_ranges.dir/chr_ranges.cpp.o.d"
  "chr_ranges"
  "chr_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chr_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
