file(REMOVE_RECURSE
  "CMakeFiles/fig8_multitasking.dir/fig8_multitasking.cpp.o"
  "CMakeFiles/fig8_multitasking.dir/fig8_multitasking.cpp.o.d"
  "fig8_multitasking"
  "fig8_multitasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_multitasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
