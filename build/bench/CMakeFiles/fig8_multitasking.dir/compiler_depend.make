# Empty compiler generated dependencies file for fig8_multitasking.
# This may be replaced when dependencies are built.
