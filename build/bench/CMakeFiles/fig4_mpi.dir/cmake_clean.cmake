file(REMOVE_RECURSE
  "CMakeFiles/fig4_mpi.dir/fig4_mpi.cpp.o"
  "CMakeFiles/fig4_mpi.dir/fig4_mpi.cpp.o.d"
  "fig4_mpi"
  "fig4_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
