# Empty dependencies file for fig4_mpi.
# This may be replaced when dependencies are built.
