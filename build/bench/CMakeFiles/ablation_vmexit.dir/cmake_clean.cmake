file(REMOVE_RECURSE
  "CMakeFiles/ablation_vmexit.dir/ablation_vmexit.cpp.o"
  "CMakeFiles/ablation_vmexit.dir/ablation_vmexit.cpp.o.d"
  "ablation_vmexit"
  "ablation_vmexit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vmexit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
