# Empty dependencies file for ablation_vmexit.
# This may be replaced when dependencies are built.
