# Empty dependencies file for fig3_ffmpeg.
# This may be replaced when dependencies are built.
