file(REMOVE_RECURSE
  "CMakeFiles/fig3_ffmpeg.dir/fig3_ffmpeg.cpp.o"
  "CMakeFiles/fig3_ffmpeg.dir/fig3_ffmpeg.cpp.o.d"
  "fig3_ffmpeg"
  "fig3_ffmpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ffmpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
