file(REMOVE_RECURSE
  "CMakeFiles/table2_instances.dir/table2_instances.cpp.o"
  "CMakeFiles/table2_instances.dir/table2_instances.cpp.o.d"
  "table2_instances"
  "table2_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
