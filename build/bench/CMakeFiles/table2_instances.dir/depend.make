# Empty dependencies file for table2_instances.
# This may be replaced when dependencies are built.
