file(REMOVE_RECURSE
  "CMakeFiles/table3_platforms.dir/table3_platforms.cpp.o"
  "CMakeFiles/table3_platforms.dir/table3_platforms.cpp.o.d"
  "table3_platforms"
  "table3_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
