file(REMOVE_RECURSE
  "CMakeFiles/fig7_chr.dir/fig7_chr.cpp.o"
  "CMakeFiles/fig7_chr.dir/fig7_chr.cpp.o.d"
  "fig7_chr"
  "fig7_chr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_chr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
