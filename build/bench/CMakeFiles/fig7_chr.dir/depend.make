# Empty dependencies file for fig7_chr.
# This may be replaced when dependencies are built.
