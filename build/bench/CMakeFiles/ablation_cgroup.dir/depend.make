# Empty dependencies file for ablation_cgroup.
# This may be replaced when dependencies are built.
