file(REMOVE_RECURSE
  "CMakeFiles/ablation_cgroup.dir/ablation_cgroup.cpp.o"
  "CMakeFiles/ablation_cgroup.dir/ablation_cgroup.cpp.o.d"
  "ablation_cgroup"
  "ablation_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
