// Confidence intervals for experiment repetitions.
//
// The paper reports means with 95% confidence intervals over 6–20
// repetitions; with so few samples the Student-t critical value (not the
// normal 1.96) is required. A small table covers the degrees of freedom
// that matter; beyond the table we converge to the normal quantile.
#pragma once

#include "stats/accumulator.hpp"

namespace pinsim::stats {

/// Two-sided Student-t critical value at 95% confidence for `dof`
/// degrees of freedom.
double t_critical_95(int dof);

struct Interval {
  double mean = 0.0;
  /// Half-width of the 95% confidence interval (0 with <2 samples).
  double half_width = 0.0;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }

  /// True when `value` falls inside the interval.
  bool contains(double value) const {
    return value >= lo() && value <= hi();
  }

  /// True when two intervals do not overlap — the paper's criterion for
  /// calling a difference "statistically significant".
  bool separated_from(const Interval& other) const {
    return hi() < other.lo() || other.hi() < lo();
  }
};

/// Mean and 95% CI of the samples in `acc`.
Interval confidence_95(const Accumulator& acc);

}  // namespace pinsim::stats
