#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pinsim::stats {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const {
  PINSIM_CHECK(count_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  PINSIM_CHECK(count_ > 0);
  return min_;
}

double Accumulator::max() const {
  PINSIM_CHECK(count_ > 0);
  return max_;
}

}  // namespace pinsim::stats
