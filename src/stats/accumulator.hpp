// Streaming sample statistics.
//
// Welford's online algorithm keeps mean and variance numerically stable
// regardless of sample magnitude (simulated times span nanoseconds to
// minutes). Used for per-repetition experiment results as well as
// fine-grained per-event latencies.
#pragma once

#include <cstdint>

namespace pinsim::stats {

class Accumulator {
 public:
  void add(double x);

  /// Merge another accumulator (Chan et al. parallel-variance update).
  void merge(const Accumulator& other);

  std::int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pinsim::stats
