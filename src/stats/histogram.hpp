// Histograms in the style of the BCC tracing tools.
//
// `Log2Histogram` mirrors the power-of-two bucket layout of `cpudist` /
// `offcputime` from the BPF Compiler Collection the paper used for kernel
// tracing: the tests and the trace module use it to inspect on-CPU slice
// and off-CPU wait distributions. `LinearHistogram` backs response-time
// percentiles in the web/NoSQL benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pinsim::stats {

class Log2Histogram {
 public:
  void add(std::uint64_t value);

  std::int64_t count() const { return total_; }
  /// Number of samples in the bucket [2^i, 2^(i+1)); bucket 0 holds 0..1.
  std::int64_t bucket(std::size_t index) const;
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Render the familiar BCC-style ASCII distribution.
  std::string render(const std::string& unit) const;

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
};

class LinearHistogram {
 public:
  /// `width` is the bucket width; values >= width * max_buckets clamp to
  /// the final bucket.
  LinearHistogram(double width, std::size_t max_buckets);

  void add(double value);

  std::int64_t count() const { return total_; }
  double width() const { return width_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Approximate p-quantile (0 < q < 1) by linear interpolation within
  /// the containing bucket.
  double quantile(double q) const;

  /// Samples with value >= threshold. Exact when the threshold sits on
  /// a bucket boundary (SLO targets are chosen that way); otherwise
  /// rounds the boundary up to the next bucket edge.
  std::int64_t count_ge(double threshold) const;

  /// Pool another histogram's samples into this one. Both must share
  /// the same width and bucket count (checked) — used to aggregate
  /// per-repetition latency distributions into fleet-level percentiles.
  void merge(const LinearHistogram& other);

 private:
  double width_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_ = 0;
};

}  // namespace pinsim::stats
