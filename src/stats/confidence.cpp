#include "stats/confidence.hpp"

#include <array>
#include <cmath>

#include "util/check.hpp"

namespace pinsim::stats {

double t_critical_95(int dof) {
  PINSIM_CHECK(dof >= 1);
  // Two-sided 95% (alpha = 0.05) critical values, dof 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof <= 30) return kTable[static_cast<std::size_t>(dof - 1)];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

Interval confidence_95(const Accumulator& acc) {
  PINSIM_CHECK(acc.count() > 0);
  Interval iv;
  iv.mean = acc.mean();
  if (acc.count() < 2) {
    iv.half_width = 0.0;
    return iv;
  }
  const int dof = static_cast<int>(acc.count()) - 1;
  const double sem = acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
  iv.half_width = t_critical_95(dof) * sem;
  return iv;
}

}  // namespace pinsim::stats
