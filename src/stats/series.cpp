#include "stats/series.hpp"

#include "util/check.hpp"

namespace pinsim::stats {

void Series::set(std::size_t x_index, Interval value) {
  if (x_index >= points_.size()) {
    points_.resize(x_index + 1);
  }
  points_[x_index].value = value;
  points_[x_index].present = true;
}

std::optional<Interval> Series::at(std::size_t x_index) const {
  if (x_index >= points_.size() || !points_[x_index].present) {
    return std::nullopt;
  }
  return points_[x_index].value;
}

Series& Figure::add_series(const std::string& name) {
  PINSIM_CHECK_MSG(find_series(name) == nullptr,
                   "duplicate series '" << name << "'");
  series_.emplace_back(name);
  return series_.back();
}

const Series* Figure::find_series(const std::string& name) const {
  for (const auto& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

Series* Figure::mutable_series(const std::string& name) {
  for (auto& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

}  // namespace pinsim::stats
