// Figure data model.
//
// A `Figure` is a set of named series sampled at shared x-axis labels —
// exactly the structure of the paper's Figures 3–8 (execution time per
// platform configuration across instance types). The bench binaries fill
// one of these and hand it to the renderer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/confidence.hpp"

namespace pinsim::stats {

struct Point {
  Interval value;
  bool present = false;  // Paper omits some cells (e.g. Cassandra/Large).
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void set(std::size_t x_index, Interval value);
  std::optional<Interval> at(std::size_t x_index) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

class Figure {
 public:
  Figure(std::string title, std::vector<std::string> x_labels)
      : title_(std::move(title)), x_labels_(std::move(x_labels)) {
    // Keep add_series() return references stable for typical figures.
    series_.reserve(16);
  }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& x_labels() const { return x_labels_; }

  Series& add_series(const std::string& name);
  const std::vector<Series>& series() const { return series_; }
  const Series* find_series(const std::string& name) const;
  /// Mutable lookup for incremental figure assembly.
  Series* mutable_series(const std::string& name);

 private:
  std::string title_;
  std::vector<std::string> x_labels_;
  std::vector<Series> series_;
};

}  // namespace pinsim::stats
