// Plain-text table rendering for bench output.
//
// Benches print the paper's figures as aligned tables plus CSV blocks so
// results are both human-readable and machine-extractable from the
// captured bench logs.
#pragma once

#include <string>
#include <vector>

#include "stats/series.hpp"

namespace pinsim::stats {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  /// Render as CSV (no alignment padding).
  std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format `value ± half_width` with sensible precision.
std::string format_interval(const Interval& iv, int precision = 2);

/// Render a Figure as a table: one row per x label, one column per series.
TextTable figure_table(const Figure& figure, int precision = 2);

/// Horizontal ASCII bar chart of a figure (one block per x-label), giving
/// a quick visual check that the *shape* matches the paper's plot.
std::string figure_bars(const Figure& figure, int width = 48);

}  // namespace pinsim::stats
