#include "stats/text_table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace pinsim::stats {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PINSIM_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PINSIM_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_interval(const Interval& iv, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << iv.mean;
  if (iv.half_width > 0.0) {
    os << " ±" << std::setprecision(precision) << iv.half_width;
  }
  return os.str();
}

TextTable figure_table(const Figure& figure, int precision) {
  std::vector<std::string> header;
  header.push_back("instance");
  for (const auto& s : figure.series()) header.push_back(s.name());
  TextTable table(std::move(header));
  for (std::size_t x = 0; x < figure.x_labels().size(); ++x) {
    std::vector<std::string> row;
    row.push_back(figure.x_labels()[x]);
    for (const auto& s : figure.series()) {
      const auto point = s.at(x);
      row.push_back(point.has_value() ? format_interval(*point, precision)
                                      : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string figure_bars(const Figure& figure, int width) {
  PINSIM_CHECK(width > 0);
  double peak = 0.0;
  for (const auto& s : figure.series()) {
    for (std::size_t x = 0; x < figure.x_labels().size(); ++x) {
      if (auto p = s.at(x)) peak = std::max(peak, p->mean);
    }
  }
  if (peak <= 0.0) peak = 1.0;

  std::size_t name_width = 0;
  for (const auto& s : figure.series()) {
    name_width = std::max(name_width, s.name().size());
  }

  std::ostringstream os;
  os << figure.title() << '\n';
  for (std::size_t x = 0; x < figure.x_labels().size(); ++x) {
    os << figure.x_labels()[x] << ":\n";
    for (const auto& s : figure.series()) {
      const auto point = s.at(x);
      os << "  " << std::left
         << std::setw(static_cast<int>(name_width) + 1) << s.name() << ' ';
      if (!point.has_value()) {
        os << "(n/a)\n";
        continue;
      }
      const int bar = static_cast<int>(static_cast<double>(width) *
                                       point->mean / peak);
      os << '|' << std::string(static_cast<std::size_t>(std::max(bar, 0)), '#')
         << "| " << std::fixed << std::setprecision(2) << point->mean << '\n';
    }
  }
  return os.str();
}

}  // namespace pinsim::stats
