#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace pinsim::stats {

void Log2Histogram::add(std::uint64_t value) {
  const std::size_t index =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  ++buckets_[index];
  ++total_;
}

std::int64_t Log2Histogram::bucket(std::size_t index) const {
  if (index >= buckets_.size()) return 0;
  return buckets_[index];
}

std::string Log2Histogram::render(const std::string& unit) const {
  std::ostringstream os;
  const std::int64_t peak =
      buckets_.empty() ? 1
                       : std::max<std::int64_t>(
                             1, *std::max_element(buckets_.begin(),
                                                  buckets_.end()));
  os << "      " << unit << "          : count   distribution\n";
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t lo = i == 0 ? 0 : (1ull << i);
    const std::uint64_t hi = (1ull << (i + 1)) - 1;
    const int bar = static_cast<int>(40.0 * static_cast<double>(buckets_[i]) /
                                     static_cast<double>(peak));
    os << std::string(6, ' ') << lo << " -> " << hi << " : " << buckets_[i]
       << " |" << std::string(static_cast<std::size_t>(bar), '*') << "|\n";
  }
  return os.str();
}

LinearHistogram::LinearHistogram(double width, std::size_t max_buckets)
    : width_(width), buckets_(max_buckets, 0) {
  PINSIM_CHECK(width > 0.0);
  PINSIM_CHECK(max_buckets > 0);
}

void LinearHistogram::add(double value) {
  PINSIM_CHECK(value >= 0.0);
  std::size_t index = static_cast<std::size_t>(value / width_);
  index = std::min(index, buckets_.size() - 1);
  ++buckets_[index];
  ++total_;
}

std::int64_t LinearHistogram::count_ge(double threshold) const {
  if (threshold <= 0.0) return total_;
  const std::size_t first = static_cast<std::size_t>(
      std::min(std::ceil(threshold / width_),
               static_cast<double>(buckets_.size())));
  std::int64_t count = 0;
  for (std::size_t i = first; i < buckets_.size(); ++i) {
    count += buckets_[i];
  }
  return count;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  PINSIM_CHECK_MSG(width_ == other.width_ &&
                       buckets_.size() == other.buckets_.size(),
                   "merging LinearHistograms with different layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

double LinearHistogram::quantile(double q) const {
  PINSIM_CHECK(q > 0.0 && q < 1.0);
  PINSIM_CHECK(total_ > 0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double inside = buckets_[i] == 0
                                ? 0.0
                                : (target - cumulative) /
                                      static_cast<double>(buckets_[i]);
      return (static_cast<double>(i) + inside) * width_;
    }
    cumulative = next;
  }
  return static_cast<double>(buckets_.size()) * width_;
}

}  // namespace pinsim::stats
