#include "hw/disk.hpp"

#include <utility>

#include "util/check.hpp"

namespace pinsim::hw {

const char* to_string(IoKind kind) {
  switch (kind) {
    case IoKind::Read:
      return "read";
    case IoKind::Write:
      return "write";
    case IoKind::NetRecv:
      return "net-recv";
    case IoKind::NetSend:
      return "net-send";
  }
  return "unknown";
}

IoDevice::IoDevice(sim::Engine& engine, std::string name, Config config,
                   Rng rng)
    : engine_(&engine),
      name_(std::move(name)),
      config_(config),
      rng_(rng) {
  PINSIM_CHECK(config.channels >= 1);
  PINSIM_CHECK(config.read_mean > 0 && config.write_mean > 0);
}

IoDevice IoDevice::raid1_hdd(sim::Engine& engine, Rng rng) {
  Config config;
  config.channels = 2;
  config.read_mean = msec(6);
  config.read_stddev = msec(3);
  config.write_mean = msec(8);
  config.write_stddev = msec(4);
  config.per_kb = usec(8);
  return IoDevice(engine, "raid1-hdd", config, rng);
}

IoDevice IoDevice::gigabit_nic(sim::Engine& engine, Rng rng) {
  Config config;
  config.channels = 64;
  config.read_mean = usec(250);
  config.read_stddev = usec(120);
  config.write_mean = usec(250);
  config.write_stddev = usec(120);
  config.per_kb = usec(8);
  return IoDevice(engine, "gigabit-nic", config, rng);
}

SimDuration IoDevice::sample_service(const IoRequest& request) {
  const bool write_like =
      request.kind == IoKind::Write || request.kind == IoKind::NetSend;
  const double mean = static_cast<double>(write_like ? config_.write_mean
                                                     : config_.read_mean);
  const double stddev = static_cast<double>(
      write_like ? config_.write_stddev : config_.read_stddev);
  const double base = rng_.lognormal_from_moments(mean, stddev);
  const double transfer =
      request.size_kb * static_cast<double>(config_.per_kb);
  return static_cast<SimDuration>(base + transfer);
}

void IoDevice::submit(const IoRequest& request,
                      std::function<void()> on_complete,
                      SimDuration extra_latency) {
  PINSIM_CHECK(extra_latency >= 0);
  Pending pending{request, std::move(on_complete), extra_latency,
                  engine_->now()};
  if (busy_ < config_.channels) {
    start(std::move(pending));
  } else {
    backlog_.push_back(std::move(pending));
  }
}

void IoDevice::start(Pending pending) {
  ++busy_;
  const SimDuration service =
      sample_service(pending.request) + pending.extra_latency;
  // Move `pending` into the completion event.
  engine_->schedule_detached(service, [this, p = std::move(pending)]() mutable {
    finish(p);
    --busy_;
    if (!backlog_.empty()) {
      Pending next = std::move(backlog_.front());
      backlog_.pop_front();
      start(std::move(next));
    }
  });
}

void IoDevice::finish(const Pending& pending) {
  ++completed_;
  latency_.add(to_seconds(engine_->now() - pending.submitted));
  if (pending.on_complete) pending.on_complete();
}

}  // namespace pinsim::hw
