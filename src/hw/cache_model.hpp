// Cache-affinity model.
//
// The paper attributes much of the measured overhead to cache refills when
// the scheduler moves a task: "a significant overhead is imposed to reload
// L1 and L2 caches and establish new IO channels" (§IV-C). This model
// charges a refill penalty whenever a task is dispatched on a cpu other
// than the one it last ran on, proportional to the task's working-set size
// and the cache distance of the move, plus an IO-channel re-establishment
// cost for IO-active tasks.
#pragma once

#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "util/units.hpp"

namespace pinsim::hw {

class CacheModel {
 public:
  CacheModel(const Topology& topology, const CostModel& costs)
      : topology_(&topology), costs_(&costs) {}

  /// Penalty for dispatching a task with `working_set_mb` of hot state on
  /// `to` when it last ran on `from`. `io_active` adds the IO-channel
  /// re-establishment cost. `from == -1` means the task never ran (first
  /// dispatch is a compulsory fill, charged at same-socket rate).
  SimDuration migration_penalty(CpuId from, CpuId to, double working_set_mb,
                                bool io_active) const;

  /// The refill rate for a given distance (exposed for tests/ablation).
  SimDuration refill_per_mb(CpuDistance distance) const;

 private:
  const Topology* topology_;
  const CostModel* costs_;
};

}  // namespace pinsim::hw
