// Host CPU topology.
//
// Models the socket / physical-core / SMT-thread hierarchy and the cache
// sharing domains that drive migration penalties: SMT siblings share L1/L2,
// cores on a socket share the LLC, and cross-socket moves lose everything.
// The reference machine is the paper's testbed, a Dell PowerEdge R830
// (4 × Xeon E5-4628L v4: 14 cores / 28 threads per socket, 35 MB LLC).
#pragma once

#include <string>

#include "hw/cpuset.hpp"

namespace pinsim::hw {

/// How far apart two logical CPUs are in the cache hierarchy.
enum class CpuDistance {
  SameCpu,     // identical logical cpu
  SmtSibling,  // same physical core, shares L1/L2
  SameSocket,  // same socket, shares LLC
  CrossSocket  // different socket, shares only DRAM
};

const char* to_string(CpuDistance distance);

class Topology {
 public:
  /// `sockets` × `cores_per_socket` physical cores, each with
  /// `threads_per_core` SMT threads. Logical cpu ids are dense:
  /// cpu = ((socket * cores_per_socket) + core) * threads_per_core + thread.
  /// `private_cache_mb` is the per-core private state (L1+L2+TLB
  /// footprint) that must be refilled even when the LLC stays warm.
  Topology(int sockets, int cores_per_socket, int threads_per_core,
           double llc_mb_per_socket, double private_cache_mb = 1.0);

  /// The paper's testbed: 4 sockets x 14 cores x 2 SMT = 112 logical CPUs,
  /// 35 MB LLC per socket.
  static Topology dell_r830();

  /// The 16-core homogeneous host from the CHR experiment (Fig. 7):
  /// 1 socket x 8 cores x 2 SMT.
  static Topology small_host_16();

  /// A host with the first `n` logical cpus of this topology enabled —
  /// the paper models bare-metal instance sizes by limiting cores with
  /// GRUB `maxcpus=`, which enables the first n enumerated CPUs.
  Topology limited_to(int n) const;

  int num_cpus() const { return num_cpus_; }
  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int threads_per_core() const { return threads_per_core_; }
  double llc_mb_per_socket() const { return llc_mb_per_socket_; }
  double private_cache_mb() const { return private_cache_mb_; }

  CpuSet all_cpus() const { return CpuSet::first_n(num_cpus_); }

  int socket_of(CpuId cpu) const;
  /// Physical-core index (global across sockets); SMT siblings share it.
  int core_of(CpuId cpu) const;

  CpuDistance distance(CpuId a, CpuId b) const;

  /// The cpus sharing the LLC with `cpu` (its socket).
  CpuSet socket_cpus(int socket) const;

  /// A compact set of `n` cpus suitable for pinning: fills whole physical
  /// cores (both SMT threads) socket by socket, which is how the paper's
  /// pinning scripts allocate cpusets.
  CpuSet compact_set(int n) const;

  std::string describe() const;

 private:
  Topology(int sockets, int cores_per_socket, int threads_per_core,
           double llc_mb_per_socket, double private_cache_mb, int limit);

  int sockets_;
  int cores_per_socket_;
  int threads_per_core_;
  double llc_mb_per_socket_;
  double private_cache_mb_;
  int num_cpus_;
};

}  // namespace pinsim::hw
