#include "hw/cpuset.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pinsim::hw {

CpuSet CpuSet::first_n(int n) { return range(0, n); }

CpuSet CpuSet::range(int lo, int hi) {
  PINSIM_CHECK(lo >= 0 && hi <= kMaxCpus && lo <= hi);
  CpuSet set;
  for (int cpu = lo; cpu < hi; ++cpu) {
    set.words_[static_cast<std::size_t>(cpu / 64)] |= std::uint64_t{1}
                                                      << (cpu % 64);
  }
  return set;
}

CpuSet CpuSet::of(std::initializer_list<CpuId> ids) {
  CpuSet set;
  for (CpuId id : ids) set.add(id);
  return set;
}

void CpuSet::add(CpuId cpu) {
  PINSIM_CHECK(cpu >= 0 && cpu < kMaxCpus);
  words_[static_cast<std::size_t>(cpu / 64)] |= std::uint64_t{1} << (cpu % 64);
}

void CpuSet::remove(CpuId cpu) {
  PINSIM_CHECK(cpu >= 0 && cpu < kMaxCpus);
  words_[static_cast<std::size_t>(cpu / 64)] &=
      ~(std::uint64_t{1} << (cpu % 64));
}

bool CpuSet::contains(CpuId cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) return false;
  return (words_[static_cast<std::size_t>(cpu / 64)] >> (cpu % 64)) & 1;
}

CpuSet CpuSet::operator&(const CpuSet& other) const {
  CpuSet result;
  for (std::size_t w = 0; w < static_cast<std::size_t>(kWords); ++w) {
    result.words_[w] = words_[w] & other.words_[w];
  }
  return result;
}

CpuSet CpuSet::operator|(const CpuSet& other) const {
  CpuSet result;
  for (std::size_t w = 0; w < static_cast<std::size_t>(kWords); ++w) {
    result.words_[w] = words_[w] | other.words_[w];
  }
  return result;
}

CpuSet CpuSet::operator~() const {
  CpuSet result;
  for (std::size_t w = 0; w < static_cast<std::size_t>(kWords); ++w) {
    result.words_[w] = ~words_[w];
  }
  return result;
}

bool CpuSet::subset_of(const CpuSet& other) const {
  for (std::size_t w = 0; w < static_cast<std::size_t>(kWords); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

CpuId CpuSet::first() const {
  PINSIM_CHECK(!empty());
  return first_set_after(-1);
}

CpuId CpuSet::first_set_after(CpuId cpu) const {
  const int start = cpu + 1;
  if (start >= kMaxCpus) return -1;
  std::size_t w = static_cast<std::size_t>(start / 64);
  std::uint64_t bits = words_[w] & (~std::uint64_t{0} << (start % 64));
  while (true) {
    if (bits != 0) {
      return static_cast<CpuId>(w) * 64 + std::countr_zero(bits);
    }
    if (++w >= static_cast<std::size_t>(kWords)) return -1;
    bits = words_[w];
  }
}

CpuId CpuSet::nth_set(int k) const {
  PINSIM_CHECK(k >= 0);
  for (std::size_t w = 0; w < static_cast<std::size_t>(kWords); ++w) {
    std::uint64_t bits = words_[w];
    const int in_word = std::popcount(bits);
    if (k >= in_word) {
      k -= in_word;
      continue;
    }
    while (k-- > 0) bits &= bits - 1;  // drop the k lowest set bits
    return static_cast<CpuId>(w) * 64 + std::countr_zero(bits);
  }
  PINSIM_CHECK_MSG(false, "nth_set past the end of the set");
  return -1;
}

std::vector<CpuId> CpuSet::to_vector() const {
  std::vector<CpuId> ids;
  ids.reserve(static_cast<std::size_t>(count()));
  for_each([&](CpuId cpu) { ids.push_back(cpu); });
  return ids;
}

std::string CpuSet::to_string() const {
  std::ostringstream os;
  bool first_group = true;
  int cpu = 0;
  while (cpu < kMaxCpus) {
    if (!contains(cpu)) {
      ++cpu;
      continue;
    }
    int end = cpu;
    while (end + 1 < kMaxCpus && contains(end + 1)) ++end;
    if (!first_group) os << ',';
    first_group = false;
    if (end == cpu) {
      os << cpu;
    } else {
      os << cpu << '-' << end;
    }
    cpu = end + 1;
  }
  if (first_group) os << "(empty)";
  return os.str();
}

}  // namespace pinsim::hw
