#include "hw/cpuset.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pinsim::hw {

CpuSet CpuSet::first_n(int n) { return range(0, n); }

CpuSet CpuSet::range(int lo, int hi) {
  PINSIM_CHECK(lo >= 0 && hi <= kMaxCpus && lo <= hi);
  CpuSet set;
  for (int cpu = lo; cpu < hi; ++cpu) {
    set.bits_.set(static_cast<std::size_t>(cpu));
  }
  return set;
}

CpuSet CpuSet::of(std::initializer_list<CpuId> ids) {
  CpuSet set;
  for (CpuId id : ids) set.add(id);
  return set;
}

void CpuSet::add(CpuId cpu) {
  PINSIM_CHECK(cpu >= 0 && cpu < kMaxCpus);
  bits_.set(static_cast<std::size_t>(cpu));
}

void CpuSet::remove(CpuId cpu) {
  PINSIM_CHECK(cpu >= 0 && cpu < kMaxCpus);
  bits_.reset(static_cast<std::size_t>(cpu));
}

bool CpuSet::contains(CpuId cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) return false;
  return bits_.test(static_cast<std::size_t>(cpu));
}

CpuSet CpuSet::operator&(const CpuSet& other) const {
  CpuSet result;
  result.bits_ = bits_ & other.bits_;
  return result;
}

CpuSet CpuSet::operator|(const CpuSet& other) const {
  CpuSet result;
  result.bits_ = bits_ | other.bits_;
  return result;
}

bool CpuSet::subset_of(const CpuSet& other) const {
  return (bits_ & ~other.bits_).none();
}

CpuId CpuSet::first() const {
  PINSIM_CHECK(!empty());
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    if (bits_.test(static_cast<std::size_t>(cpu))) return cpu;
  }
  return -1;  // unreachable
}

std::vector<CpuId> CpuSet::to_vector() const {
  std::vector<CpuId> ids;
  ids.reserve(static_cast<std::size_t>(count()));
  for (int cpu = 0; cpu < kMaxCpus; ++cpu) {
    if (bits_.test(static_cast<std::size_t>(cpu))) ids.push_back(cpu);
  }
  return ids;
}

std::string CpuSet::to_string() const {
  std::ostringstream os;
  bool first_group = true;
  int cpu = 0;
  while (cpu < kMaxCpus) {
    if (!contains(cpu)) {
      ++cpu;
      continue;
    }
    int end = cpu;
    while (end + 1 < kMaxCpus && contains(end + 1)) ++end;
    if (!first_group) os << ',';
    first_group = false;
    if (end == cpu) {
      os << cpu;
    } else {
      os << cpu << '-' << end;
    }
    cpu = end + 1;
  }
  if (first_group) os << "(empty)";
  return os.str();
}

}  // namespace pinsim::hw
