// Set of logical CPUs.
//
// Thin wrapper over std::bitset sized for the largest host we model
// (the paper's Dell R830 exposes 112 logical CPUs; 256 leaves headroom).
// Used for task affinity masks, cgroup cpusets, and pinning plans.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

namespace pinsim::hw {

using CpuId = int;

class CpuSet {
 public:
  static constexpr int kMaxCpus = 256;

  CpuSet() = default;

  /// The set {0, 1, ..., n-1}.
  static CpuSet first_n(int n);

  /// The contiguous range [lo, hi).
  static CpuSet range(int lo, int hi);

  /// A set from explicit ids.
  static CpuSet of(std::initializer_list<CpuId> ids);

  void add(CpuId cpu);
  void remove(CpuId cpu);
  bool contains(CpuId cpu) const;

  int count() const { return static_cast<int>(bits_.count()); }
  bool empty() const { return bits_.none(); }

  CpuSet operator&(const CpuSet& other) const;
  CpuSet operator|(const CpuSet& other) const;
  bool operator==(const CpuSet& other) const { return bits_ == other.bits_; }

  /// True when every cpu in this set is also in `other`.
  bool subset_of(const CpuSet& other) const;

  /// Lowest cpu id in the set; requires non-empty.
  CpuId first() const;

  /// Materialize as a sorted vector of ids.
  std::vector<CpuId> to_vector() const;

  /// Human-readable "0-3,8,10" style rendering.
  std::string to_string() const;

 private:
  std::bitset<kMaxCpus> bits_;
};

}  // namespace pinsim::hw
