// Set of logical CPUs.
//
// Four 64-bit words sized for the largest host we model (the paper's
// Dell R830 exposes 112 logical CPUs; 256 leaves headroom). Used for
// task affinity masks, cgroup cpusets, pinning plans — and, since the
// scheduler hot-path overhaul, for the kernel's incrementally-updated
// idle/busy masks. All queries are ctz/popcount word scans; hot-path
// callers iterate set bits via for_each / first_set_after / nth_set and
// never materialize a std::vector<CpuId> (to_vector is for tests and
// reporting only).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace pinsim::hw {

using CpuId = int;

class CpuSet {
 public:
  static constexpr int kMaxCpus = 256;
  static constexpr int kWords = kMaxCpus / 64;

  CpuSet() = default;

  /// The set {0, 1, ..., n-1}.
  static CpuSet first_n(int n);

  /// The contiguous range [lo, hi).
  static CpuSet range(int lo, int hi);

  /// A set from explicit ids.
  static CpuSet of(std::initializer_list<CpuId> ids);

  void add(CpuId cpu);
  void remove(CpuId cpu);
  bool contains(CpuId cpu) const;

  int count() const {
    int total = 0;
    for (const std::uint64_t word : words_) total += std::popcount(word);
    return total;
  }
  bool empty() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) == 0;
  }

  CpuSet operator&(const CpuSet& other) const;
  CpuSet operator|(const CpuSet& other) const;
  /// Complement over the full kMaxCpus universe; intersect with a
  /// bounded set to subtract (`a & ~b`).
  CpuSet operator~() const;
  bool operator==(const CpuSet& other) const { return words_ == other.words_; }

  /// True when every cpu in this set is also in `other`.
  bool subset_of(const CpuSet& other) const;

  /// Lowest cpu id in the set; requires non-empty.
  CpuId first() const;

  /// Next set bit strictly after `cpu` (pass -1 to start a scan), or -1
  /// when none remain. `for (c = s.first_set_after(-1); c >= 0;
  /// c = s.first_set_after(c))` visits the set in ascending order with
  /// early exit available.
  CpuId first_set_after(CpuId cpu) const;

  /// k-th set bit in ascending order (0-based); requires k < count().
  /// Gives random-pick-by-index over the set without a vector.
  CpuId nth_set(int k) const;

  /// Raw word `i` of the bitmap (bit b of word i is cpu 64*i + b).
  std::uint64_t word(int i) const {
    return words_[static_cast<std::size_t>(i)];
  }

  /// Visit every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w) {
      std::uint64_t bits = words_[static_cast<std::size_t>(w)];
      while (bits != 0) {
        fn(static_cast<CpuId>(w * 64 + std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }

  /// Materialize as a sorted vector of ids (tests/reporting only — hot
  /// paths iterate set bits instead).
  std::vector<CpuId> to_vector() const;

  /// Human-readable "0-3,8,10" style rendering.
  std::string to_string() const;

 private:
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace pinsim::hw
