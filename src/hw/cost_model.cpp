#include "hw/cost_model.hpp"

#include <algorithm>

namespace pinsim::hw {

SimDuration CostModel::min_cross_shard_latency() const {
  // The mechanisms a cross-shard event can ride, cheapest first under
  // the default calibration: SMT-distance cache refill (2 us/MB floors
  // every migration), guest IPC (4 us), host IPC (6 us), a vmexit
  // (8 us), and the virtio IO round trip (30 us on top of the vmexit).
  // The lookahead must lower-bound them all for every calibration the
  // ablation benches sweep, so take the minimum rather than hard-coding
  // today's cheapest.
  SimDuration lookahead = refill_per_mb_smt;
  lookahead = std::min(lookahead, guest_ipc);
  lookahead = std::min(lookahead, host_ipc);
  lookahead = std::min(lookahead, vmexit);
  lookahead = std::min(lookahead, vmexit + virtio_io_overhead);
  return std::max<SimDuration>(lookahead, 1);
}

}  // namespace pinsim::hw
