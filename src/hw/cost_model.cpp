#include "hw/cost_model.hpp"

// CostModel is a plain aggregate; this translation unit exists so the
// module has a home for future non-inline helpers and to keep the build
// graph uniform (one .cpp per header).
