// Queued IO devices.
//
// A device has a fixed number of service channels (an HDD RAID has one
// head per spindle; a NIC has effectively many) and a FIFO backlog.
// Service time is log-normal — the heavy right tail of seek/rotation and
// network jitter — plus a per-KB transfer cost. Completion invokes a
// caller-supplied callback; the OS layer turns that into an interrupt.
//
// The paper's testbed stores data on RAID1 (2 x 900 GB HDD) and serves web
// load over a LAN; `raid1_hdd` and `gigabit_nic` encode those devices.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/engine.hpp"
#include "stats/accumulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::hw {

enum class IoKind { Read, Write, NetRecv, NetSend };

const char* to_string(IoKind kind);

struct IoRequest {
  IoKind kind = IoKind::Read;
  double size_kb = 4.0;
};

class IoDevice {
 public:
  struct Config {
    /// Concurrent service channels.
    int channels = 1;
    /// Mean/stddev of the base service time for reads (and net receive).
    SimDuration read_mean = msec(6);
    SimDuration read_stddev = msec(3);
    /// Mean/stddev for writes (and net send).
    SimDuration write_mean = msec(8);
    SimDuration write_stddev = msec(4);
    /// Transfer cost per KB on top of the base service time.
    SimDuration per_kb = usec(8);
  };

  IoDevice(sim::Engine& engine, std::string name, Config config, Rng rng);

  /// The paper's storage: RAID1 of two 900 GB HDDs. Reads are served by
  /// either spindle (2 channels); writes hit both (modelled as a higher
  /// base service time).
  static IoDevice raid1_hdd(sim::Engine& engine, Rng rng);

  /// LAN NIC: sub-millisecond service, wide parallelism.
  static IoDevice gigabit_nic(sim::Engine& engine, Rng rng);

  /// Enqueue a request; `on_complete` runs at completion time. If
  /// `extra_latency` > 0 it is added to the service time (virtio path).
  void submit(const IoRequest& request, std::function<void()> on_complete,
              SimDuration extra_latency = 0);

  const std::string& name() const { return name_; }
  int queue_depth() const { return static_cast<int>(backlog_.size()); }
  int busy_channels() const { return busy_; }
  std::int64_t completed() const { return completed_; }

  /// Distribution of request latencies (queueing + service), in seconds.
  const stats::Accumulator& latency() const { return latency_; }

 private:
  struct Pending {
    IoRequest request;
    std::function<void()> on_complete;
    SimDuration extra_latency;
    SimTime submitted;
  };

  SimDuration sample_service(const IoRequest& request);
  void start(Pending pending);
  void finish(const Pending& pending);

  sim::Engine* engine_;
  std::string name_;
  Config config_;
  Rng rng_;
  int busy_ = 0;
  std::deque<Pending> backlog_;
  std::int64_t completed_ = 0;
  stats::Accumulator latency_;
};

}  // namespace pinsim::hw
