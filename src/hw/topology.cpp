#include "hw/topology.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace pinsim::hw {

const char* to_string(CpuDistance distance) {
  switch (distance) {
    case CpuDistance::SameCpu:
      return "same-cpu";
    case CpuDistance::SmtSibling:
      return "smt-sibling";
    case CpuDistance::SameSocket:
      return "same-socket";
    case CpuDistance::CrossSocket:
      return "cross-socket";
  }
  return "unknown";
}

Topology::Topology(int sockets, int cores_per_socket, int threads_per_core,
                   double llc_mb_per_socket, double private_cache_mb)
    : Topology(sockets, cores_per_socket, threads_per_core,
               llc_mb_per_socket, private_cache_mb,
               sockets * cores_per_socket * threads_per_core) {}

Topology::Topology(int sockets, int cores_per_socket, int threads_per_core,
                   double llc_mb_per_socket, double private_cache_mb,
                   int limit)
    : sockets_(sockets),
      cores_per_socket_(cores_per_socket),
      threads_per_core_(threads_per_core),
      llc_mb_per_socket_(llc_mb_per_socket),
      private_cache_mb_(private_cache_mb),
      num_cpus_(limit) {
  PINSIM_CHECK(sockets >= 1);
  PINSIM_CHECK(cores_per_socket >= 1);
  PINSIM_CHECK(threads_per_core >= 1);
  PINSIM_CHECK(llc_mb_per_socket > 0.0);
  PINSIM_CHECK(private_cache_mb > 0.0);
  const int full = sockets * cores_per_socket * threads_per_core;
  PINSIM_CHECK(limit >= 1 && limit <= full);
  PINSIM_CHECK(full <= CpuSet::kMaxCpus);
}

Topology Topology::dell_r830() { return Topology(4, 14, 2, 35.0); }

Topology Topology::small_host_16() { return Topology(1, 8, 2, 20.0); }

Topology Topology::limited_to(int n) const {
  return Topology(sockets_, cores_per_socket_, threads_per_core_,
                  llc_mb_per_socket_, private_cache_mb_, n);
}

int Topology::socket_of(CpuId cpu) const {
  PINSIM_CHECK(cpu >= 0 && cpu < num_cpus_);
  return cpu / (cores_per_socket_ * threads_per_core_);
}

int Topology::core_of(CpuId cpu) const {
  PINSIM_CHECK(cpu >= 0 && cpu < num_cpus_);
  return cpu / threads_per_core_;
}

CpuDistance Topology::distance(CpuId a, CpuId b) const {
  PINSIM_CHECK(a >= 0 && a < num_cpus_);
  PINSIM_CHECK(b >= 0 && b < num_cpus_);
  if (a == b) return CpuDistance::SameCpu;
  if (core_of(a) == core_of(b)) return CpuDistance::SmtSibling;
  if (socket_of(a) == socket_of(b)) return CpuDistance::SameSocket;
  return CpuDistance::CrossSocket;
}

CpuSet Topology::socket_cpus(int socket) const {
  PINSIM_CHECK(socket >= 0 && socket < sockets_);
  const int per_socket = cores_per_socket_ * threads_per_core_;
  const int lo = socket * per_socket;
  const int hi = std::min(lo + per_socket, num_cpus_);
  if (lo >= num_cpus_) return CpuSet();
  return CpuSet::range(lo, hi);
}

CpuSet Topology::compact_set(int n) const {
  PINSIM_CHECK_MSG(n >= 1 && n <= num_cpus_,
                   "cannot pin " << n << " cpus on a " << num_cpus_
                                 << "-cpu host");
  // Dense enumeration already fills core-by-core, socket-by-socket.
  return CpuSet::first_n(n);
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << sockets_ << " socket(s) x " << cores_per_socket_ << " core(s) x "
     << threads_per_core_ << " thread(s), " << num_cpus_
     << " logical cpus enabled, " << llc_mb_per_socket_ << " MB LLC/socket";
  return os.str();
}

}  // namespace pinsim::hw
