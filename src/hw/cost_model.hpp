// Every calibration constant of the simulation, in one place.
//
// Each cost corresponds to a real mechanism the paper identifies as a
// source of overhead. Defaults are calibrated so that the platform
// overhead *ratios* land in the bands the paper reports on its testbed
// (see EXPERIMENTS.md). The ablation benches sweep individual knobs to
// show which conclusions are robust to the calibration.
#pragma once

#include "util/units.hpp"

namespace pinsim::hw {

struct CostModel {
  // --- Kernel scheduling costs -------------------------------------------
  /// Direct cost of a context switch (register/state swap, pipeline drain).
  SimDuration context_switch = usec(3);
  /// User->kernel mode transition (syscall / interrupt entry+exit).
  SimDuration kernel_entry = nsec(400);
  /// Scheduler bookkeeping on a wakeup: enqueue, dequeue, pick-next.
  SimDuration sched_pick = usec(1);
  /// Servicing a device interrupt on the receiving core.
  SimDuration irq_service = usec(5);

  // --- Cache / migration penalties ---------------------------------------
  /// Cache-refill penalty per MB of task working set, by migration
  /// distance. Refilling from a shared L2 (SMT sibling) is nearly free;
  /// refilling across sockets streams the working set from DRAM
  /// (~10 GB/s => ~100 us/MB).
  SimDuration refill_per_mb_smt = usec(2);
  SimDuration refill_per_mb_socket = usec(35);
  SimDuration refill_per_mb_cross = usec(100);
  /// Extra penalty when an IO-bound task is migrated: interrupt routing
  /// and IO channels must be re-established on the new core (paper §IV-C).
  SimDuration io_channel_reestablish = usec(60);
  /// NUMA: compute executed on a socket remote from the task's memory
  /// home runs this much slower (remote DRAM latency). First-touch
  /// placement sets the home; scattered vanilla platforms therefore run
  /// much of their work remote, NUMA-compact pinned cpusets do not.
  double numa_remote_tax = 0.40;
  /// wake_affine cache-hot window: a task blocked for less than this is
  /// still cache-hot on its previous cpu and wakes there; blocked longer
  /// it follows the waker/IRQ locality hint instead.
  SimDuration cache_hot_window = msec(2);

  // --- cgroups CPU controller (paper §IV-B) -------------------------------
  /// Per scheduling-event usage-tracking charge for a grouped task
  /// (one user->kernel transition per invocation).
  SimDuration cgroup_account = usec(2);
  /// Atomic usage aggregation across cores: base + per-distinct-core cost.
  /// The group is effectively suspended while it runs.
  SimDuration cgroup_aggregate_base = usec(10);
  SimDuration cgroup_aggregate_per_core = usec(4);
  /// How often the aggregation runs.
  SimDuration cgroup_aggregate_interval = msec(1);
  /// CFS bandwidth: runtime is handed to cores in slices of this size;
  /// small slices on many cores = frequent refill traffic (kernel's
  /// sched_cfs_bandwidth_slice_us default is 5 ms).
  SimDuration cfs_bandwidth_slice = msec(5);
  /// CFS bandwidth enforcement period (kernel default 100 ms).
  SimDuration cfs_period = msec(100);

  // --- Hypervisor (KVM/QEMU as configured in the paper) -------------------
  /// Multiplier on guest user-mode compute. The paper measures FFmpeg in
  /// a VM at >= 2x bare-metal across all instance sizes (their QEMU 2.11
  /// stack without host CPU passthrough); this constant is that measured
  /// platform-type overhead.
  double guest_compute_inflation = 1.95;
  /// One VM exit / entry round trip.
  SimDuration vmexit = usec(8);
  /// Para-virtual (virtio) IO: extra host-side cost per guest IO request
  /// on top of the vmexit.
  SimDuration virtio_io_overhead = usec(30);
  /// Guest timer tick period (250 Hz kernel); each tick costs one vmexit
  /// while the vCPU runs.
  SimDuration guest_tick_period = msec(4);
  /// Cost charged inside the guest for a guest context switch, on top of
  /// the plain context switch (shadow state bookkeeping).
  SimDuration guest_context_switch_extra = usec(1);
  /// Inter-rank message delivered entirely inside one guest via the
  /// hypervisor-provided shared memory (paper §III-B2: the hypervisor
  /// "facilitates inter-core communication").
  SimDuration guest_ipc = usec(4);
  /// KVM halt-polling (halt_poll_ns): an idle vCPU busy-polls this long
  /// before actually halting, so short guest idle gaps (message waits)
  /// cost no HLT exit / kick IPI.
  SimDuration halt_poll = usec(200);
  /// Granularity at which a polling vCPU notices newly runnable work.
  SimDuration halt_poll_chunk = usec(25);
  /// Granularity at which a user-space spin-wait (MPI receive polling)
  /// notices a delivered message.
  SimDuration spin_poll_chunk = usec(50);

  // --- Host-mediated IPC (bare-metal / container message passing) ---------
  /// Inter-process message through the host kernel (pipe/shm + futex
  /// wake): syscall + wake chain, before any cgroup tax.
  SimDuration host_ipc = usec(6);
  /// Extra per-message cost when both endpoints live inside a container:
  /// socket traffic crosses the veth/bridge network path (NAT + softirq)
  /// instead of raw shared memory — the "host OS intervention" the paper
  /// blames for containers being the worst MPI platform (§III-B2).
  SimDuration container_net_msg = usec(10);

  CostModel() = default;

  /// Conservative lookahead for the sharded engine: the smallest delay
  /// any cross-domain interaction the model prices can take (task
  /// migration refill, IPC delivery, a vmexit, a virtio round trip).
  /// Events that cross event-shard boundaries always ride one of those
  /// mechanisms, so a sharded round may advance every shard this far
  /// past the global minimum without reordering anything (DESIGN.md §7).
  /// Never below 1 simulated ns — a zero lookahead would make the
  /// conservative window empty.
  SimDuration min_cross_shard_latency() const;
};

}  // namespace pinsim::hw
