#include "hw/cache_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pinsim::hw {

SimDuration CacheModel::refill_per_mb(CpuDistance distance) const {
  switch (distance) {
    case CpuDistance::SameCpu:
      return 0;
    case CpuDistance::SmtSibling:
      return costs_->refill_per_mb_smt;
    case CpuDistance::SameSocket:
      return costs_->refill_per_mb_socket;
    case CpuDistance::CrossSocket:
      return costs_->refill_per_mb_cross;
  }
  return 0;
}

SimDuration CacheModel::migration_penalty(CpuId from, CpuId to,
                                          double working_set_mb,
                                          bool io_active) const {
  PINSIM_CHECK(working_set_mb >= 0.0);
  CpuDistance distance = CpuDistance::SameSocket;  // compulsory first fill
  if (from >= 0) {
    distance = topology_->distance(from, to);
    if (distance == CpuDistance::SameCpu) return 0;
  }
  // What needs refilling depends on how far the task moved: within a
  // socket the (inclusive) LLC stays warm and only the private L1/L2/TLB
  // state refills; across sockets the whole LLC-resident working set
  // streams over from DRAM/the remote cache.
  const double cache_cap = distance == CpuDistance::CrossSocket
                               ? topology_->llc_mb_per_socket()
                               : topology_->private_cache_mb();
  const double hot_mb = std::min(working_set_mb, cache_cap);
  SimDuration penalty = static_cast<SimDuration>(
      static_cast<double>(refill_per_mb(distance)) * hot_mb);
  if (io_active && from >= 0 && distance != CpuDistance::SmtSibling) {
    penalty += costs_->io_channel_reestablish;
  }
  return penalty;
}

}  // namespace pinsim::hw
