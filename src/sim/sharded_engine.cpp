#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <thread>
#include <utility>

namespace pinsim::sim {
namespace {

/// End of the round that starts at `t_min`: t_min + lookahead, capped
/// at `horizon` and saturating just below kNoHorizon so an unbounded
/// run still advances in bounded windows. Capping below t_min +
/// lookahead is always conservative — it can only shrink the window.
SimTime bounded_window(SimTime t_min, SimDuration lookahead, SimTime horizon) {
  const SimTime cap = Engine::kNoHorizon - 1;
  const SimTime window =
      (t_min > cap - lookahead) ? cap : t_min + lookahead;
  return std::min(window, horizon);
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config) : config_(config) {
  PINSIM_CHECK_MSG(config.shards >= 1,
                   "ShardedEngine needs >= 1 shard (got " << config.shards
                                                          << ")");
  PINSIM_CHECK_MSG(config.shards == 1 || config.lookahead > 0,
                   "multi-shard ShardedEngine needs a positive lookahead");
  PINSIM_CHECK_MSG(config.threads >= 0,
                   "threads must be >= 0 (0 = one per shard)");
  const std::size_t n = static_cast<std::size_t>(config.shards);
  engines_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    engines_.push_back(std::make_unique<Engine>());
  }
  rngs_.assign(n, Rng());
  outbox_.resize(n * n);
  post_seq_.assign(n, 0);
  cross_posts_.assign(n, 0);
  local_posts_.assign(n, 0);
}

void ShardedEngine::seed_rngs(Rng source) {
  for (Rng& rng : rngs_) {
    rng = source.fork();
  }
}

SimTime ShardedEngine::now() const {
  SimTime t = engines_.front()->now();
  for (const auto& engine : engines_) {
    t = std::min(t, engine->now());
  }
  return t;
}

void ShardedEngine::post(int src, int dst, SimDuration delay,
                         Engine::Callback fn) {
  checked(dst);
  const std::size_t s = static_cast<std::size_t>(checked(src));
  Engine& source = *engines_[s];
  if (src == dst) {
    ++local_posts_[s];
    source.schedule_detached(delay, std::move(fn));
    return;
  }
  PINSIM_CHECK_MSG(delay >= config_.lookahead,
                   "cross-shard post below lookahead ("
                       << delay << " < " << config_.lookahead
                       << "): the conservative window would be unsound");
  const SimTime when = source.now() + delay;
  outbox_[s * static_cast<std::size_t>(shards()) +
          static_cast<std::size_t>(dst)]
      .push_back(Post{when, src, dst, post_seq_[s]++, std::move(fn)});
  ++cross_posts_[s];
}

std::int64_t ShardedEngine::advance_shard(Engine& engine, SimTime window) {
  const std::int64_t fired = engine.run(window);
  // run() parks the clock at the horizon only when the heap drained;
  // park it explicitly otherwise so every shard leaves the round at the
  // same instant and the next round's deliveries are never in its past.
  if (engine.now() < window) {
    engine.advance_clock_to(window);
  }
  return fired;
}

void ShardedEngine::exchange() {
  batch_.clear();
  for (std::vector<Post>& box : outbox_) {
    for (Post& post : box) {
      batch_.push_back(std::move(post));
    }
    box.clear();
  }
  if (batch_.empty()) return;
  // Canonical merge order. Keys are unique — `seq` is strictly
  // monotonic per source — so the sort has no equal elements and the
  // delivery order is a pure function of the posts.
  std::sort(batch_.begin(), batch_.end(), [](const Post& a, const Post& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Post& post : batch_) {
    engines_[static_cast<std::size_t>(post.dst)]->schedule_detached_at(
        post.when, std::move(post.fn));
  }
  peak_round_batch_ =
      std::max(peak_round_batch_, static_cast<std::int64_t>(batch_.size()));
  batch_.clear();
}

std::int64_t ShardedEngine::run_rounds(SimTime horizon,
                                       const std::function<bool()>* predicate,
                                       bool* predicate_held) {
  const int n = shards();
  int workers = config_.threads == 0 ? n : std::min(config_.threads, n);
  workers = std::max(workers, 1);

  // Round state shared with the worker pool. The coordinator's writes
  // (window, done) happen-before the workers' reads through the start
  // barrier, and the workers' writes (fired counts, engine state,
  // mailbox rows, errors) happen-before the coordinator's reads through
  // the finish barrier — no atomics, no locks, just two phases.
  SimTime window = 0;
  bool done = false;
  std::vector<std::int64_t> fired_by_shard(static_cast<std::size_t>(n), 0);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(workers));

  // Shard -> worker assignment is fixed (s % workers) but irrelevant to
  // results: shard state is only touched by one worker per round, and
  // everything cross-shard funnels through the coordinator.
  const auto advance_range = [&](int worker) {
    try {
      for (int s = worker; s < n; s += workers) {
        const std::size_t i = static_cast<std::size_t>(s);
        fired_by_shard[i] += advance_shard(*engines_[i], window);
      }
    } catch (...) {
      errors[static_cast<std::size_t>(worker)] = std::current_exception();
    }
  };

  std::barrier start(workers);
  std::barrier finish(workers);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (;;) {
        start.arrive_and_wait();
        if (done) return;
        advance_range(w);
        finish.arrive_and_wait();
      }
    });
  }
  const auto stop_workers = [&] {
    if (!pool.empty()) {
      done = true;
      start.arrive_and_wait();
      for (std::thread& t : pool) {
        t.join();
      }
      pool.clear();
    }
  };
  const auto park_clocks_at = [&](SimTime when) {
    for (const auto& engine : engines_) {
      if (engine->now() < when) engine->advance_clock_to(when);
    }
  };

  bool held = false;
  try {
    for (;;) {
      if (predicate != nullptr && (*predicate)()) {
        held = true;
        break;
      }
      SimTime t_min = Engine::kNoHorizon;
      for (const auto& engine : engines_) {
        t_min = std::min(t_min, engine->peek_next());
      }
      if (t_min == Engine::kNoHorizon) {
        // Every heap drained and every mailbox was flushed last round:
        // the simulation is over. Match Engine::run()'s bounded-run
        // semantics by parking the clocks at the horizon.
        if (horizon != Engine::kNoHorizon) park_clocks_at(horizon);
        break;
      }
      if (t_min > horizon) {
        park_clocks_at(horizon);
        break;
      }
      window = bounded_window(t_min, config_.lookahead, horizon);
      start.arrive_and_wait();
      advance_range(0);
      finish.arrive_and_wait();
      for (const std::exception_ptr& error : errors) {
        if (error) std::rethrow_exception(error);
      }
      exchange();
      ++rounds_;
    }
  } catch (...) {
    stop_workers();
    throw;
  }
  stop_workers();

  if (predicate_held != nullptr) *predicate_held = held;
  std::int64_t total = 0;
  for (const std::int64_t fired : fired_by_shard) {
    total += fired;
  }
  return total;
}

std::int64_t ShardedEngine::run(SimTime horizon) {
  if (shards() == 1) return engines_.front()->run(horizon);
  return run_rounds(horizon, nullptr, nullptr);
}

bool ShardedEngine::run_until(const std::function<bool()>& predicate,
                              SimTime horizon) {
  PINSIM_CHECK_MSG(predicate != nullptr, "run_until needs a predicate");
  if (shards() == 1) {
    // Strict pass-through: per-event predicate checks, exactly like
    // driving the Engine directly.
    return engines_.front()->run_until(predicate, horizon);
  }
  bool held = false;
  run_rounds(horizon, &predicate, &held);
  return held;
}

EngineStats ShardedEngine::engine_stats() const {
  EngineStats total;
  for (const auto& engine : engines_) {
    const EngineStats s = engine->stats();
    total.scheduled += s.scheduled;
    total.fired += s.fired;
    total.tombstone_pops += s.tombstone_pops;
    total.deferred_rearms += s.deferred_rearms;
    total.reschedules += s.reschedules;
    total.peak_heap += s.peak_heap;
  }
  return total;
}

ShardedEngineStats ShardedEngine::stats() const {
  ShardedEngineStats s;
  s.rounds = rounds_;
  s.peak_round_batch = peak_round_batch_;
  for (const std::int64_t c : cross_posts_) {
    s.cross_posts += c;
  }
  for (const std::int64_t c : local_posts_) {
    s.local_posts += c;
  }
  return s;
}

}  // namespace pinsim::sim
