// Discrete-event simulation engine.
//
// A single monotonically advancing clock and a binary heap of events.
// Events scheduled at the same instant fire in scheduling order (FIFO by
// sequence number) so the simulation is fully deterministic. Events can be
// cancelled through the returned handle — the kernel uses this to retract
// a core's quantum-expiry event when the core reschedules early.
//
// Hot-path design: each event's callback (a small-buffer-optimized
// move-only util::MoveFunction) and cancellation flag live in a slab
// node recycled through a free list — no shared_ptr control block per
// event. The heap itself holds only trivially-copyable 24-byte entries
// (time, sequence, node index), so sift-up/down moves are plain copies
// instead of type-erased callback moves. Generation counters on the
// nodes make stale handles to recycled nodes inert. Fire-and-forget
// call sites use schedule_detached(), which skips handle construction.
// Handles must not outlive the engine that issued them (they hold a raw
// pointer into it); default-constructed handles are inert.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/move_function.hpp"
#include "util/units.hpp"

namespace pinsim::sim {

class Engine;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; cancelling twice is a no-op. Valid only while the issuing
/// Engine is alive.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call after the event fired.
  void cancel();

  /// True when the event is still pending (scheduled, not cancelled, not
  /// yet fired).
  bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint64_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Engine {
 public:
  using Callback = util::MoveFunction;

  Engine() = default;
  // EventHandles hold raw pointers into the engine, so it must stay put.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // The schedule path is defined inline (below the class) so callers in
  // other translation units can collapse the callback's type-erased
  // construction and moves into direct stores into the slab node.

  /// Schedule `fn` to run `delay` from now. `delay` must be >= 0.
  EventHandle schedule(SimDuration delay, Callback fn);

  /// Schedule `fn` at the absolute instant `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Fire-and-forget variants: no cancellation handle returned. Cheaper
  /// than schedule(); use when the caller discards the handle.
  void schedule_detached(SimDuration delay, Callback fn);
  void schedule_detached_at(SimTime when, Callback fn);

  /// Run until the event queue drains or `horizon` is reached (events at
  /// exactly `horizon` still fire). Returns the number of events fired.
  std::int64_t run(SimTime horizon = kNoHorizon);

  /// Run until `predicate()` becomes true (checked after each event) or
  /// the queue drains. Returns true when the predicate was satisfied.
  bool run_until(const std::function<bool()>& predicate,
                 SimTime horizon = kNoHorizon);

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  friend class EventHandle;

  /// Slab node: the event's callback plus cancellation state. The
  /// generation counter distinguishes the current tenant event from
  /// stale handles to earlier tenants of the same node.
  struct Node {
    Callback fn;
    std::uint64_t gen = 0;
    bool cancelled = false;
  };

  /// Heap entry: trivially copyable so sift moves are plain copies. The
  /// (when, seq) ordering key is packed into one 128-bit integer so the
  /// comparison is a single sub/sbb with no data-dependent branch — the
  /// min-child selection in pop_min() runs on conditional moves instead
  /// of mispredicting per level. `when` is never negative (the clock
  /// starts at zero and only advances), so the unsigned compare is safe.
  struct Entry {
    unsigned __int128 key;
    std::uint32_t node;
  };
  static unsigned __int128 make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(when))
            << 64) |
           seq;
  }
  static SimTime when_of(const Entry& e) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(e.key >> 64));
  }

  /// Fire the next event; returns false when the queue is empty or the
  /// next event lies beyond `horizon`.
  bool step(SimTime horizon);

  // 4-ary min-heap: half the depth of a binary heap and the four
  // children share cache lines, so drain-heavy workloads sift faster.
  void sift_up(std::size_t i) {
    const Entry value = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (value.key >= heap_[parent].key) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = value;
  }
  Entry pop_min();

  std::uint32_t push_event(SimTime when, Callback&& fn) {
    const std::uint32_t slot = acquire_node();
    node(slot).fn = std::move(fn);
    heap_.push_back(Entry{make_key(when, next_seq_++), slot});
    sift_up(heap_.size() - 1);
    return slot;
  }
  std::uint32_t acquire_node() {
    if (!free_nodes_.empty()) {
      const std::uint32_t slot = free_nodes_.back();
      free_nodes_.pop_back();
      return slot;
    }
    if ((node_count_ >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(
          std::make_unique<Node[]>(std::size_t{1} << kChunkShift));
    }
    return node_count_++;
  }
  void release_node(std::uint32_t node);

  // Nodes live in fixed-size chunks so growing the slab never relocates
  // existing nodes — a vector<Node> would move-construct every live
  // callback on each capacity doubling, which dominated the schedule
  // path's cost.
  static constexpr std::uint32_t kChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;
  Node& node(std::uint32_t i) { return chunks_[i >> kChunkShift][i & kChunkMask]; }
  const Node& node(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  bool node_pending(std::uint32_t i, std::uint64_t gen) const {
    const Node& n = node(i);
    return n.gen == gen && !n.cancelled;
  }
  void node_cancel(std::uint32_t i, std::uint64_t gen) {
    Node& n = node(i);
    if (n.gen == gen) n.cancelled = true;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;  // 4-ary min-heap ordered by (when, seq)
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t node_count_ = 0;
  std::vector<std::uint32_t> free_nodes_;
};

inline void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->node_cancel(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return engine_ != nullptr && engine_->node_pending(slot_, gen_);
}

inline EventHandle Engine::schedule(SimDuration delay, Callback fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  return schedule_at(now_ + delay, std::move(fn));
}

inline EventHandle Engine::schedule_at(SimTime when, Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  const std::uint32_t slot = push_event(when, std::move(fn));
  return EventHandle(this, slot, node(slot).gen);
}

inline void Engine::schedule_detached(SimDuration delay, Callback fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  schedule_detached_at(now_ + delay, std::move(fn));
}

inline void Engine::schedule_detached_at(SimTime when, Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  push_event(when, std::move(fn));
}

}  // namespace pinsim::sim
