// Discrete-event simulation engine.
//
// A single monotonically advancing clock and a binary heap of events.
// Events scheduled at the same instant fire in scheduling order (FIFO by
// sequence number) so the simulation is fully deterministic. Events can be
// cancelled through the returned handle — the kernel uses this to retract
// a core's quantum-expiry event when the core reschedules early.
//
// Hot-path design: each event's callback (a small-buffer-optimized
// move-only util::MoveFunction) and cancellation flag live in a slab
// node recycled through a free list — no shared_ptr control block per
// event. The heap itself holds only trivially-copyable entries (time,
// sequence, node index) packed into one 128-bit key, so sift-up/down
// moves are plain copies instead of type-erased callback moves.
// Generation counters on the nodes make stale handles to recycled nodes
// inert. Fire-and-forget call sites use schedule_detached(), which
// skips handle construction.
//
// Timer re-arming is tombstone-free: reschedule() moves a pending
// event's deadline in place. Re-armable events are scheduled through
// schedule_tracked()/schedule_tracked_at(), which tag the heap entry;
// tracked entries maintain a dense node→heap-slot back-pointer array
// (updated on every heap move, the Task::rq_index trick) that lets
// reschedule() find the live entry in O(1). Moving a deadline *earlier*
// is then an O(log n) decrease-key on the live entry. Moving it *later*
// is a lazy deferral: the new (deadline, seq) pair goes into a dense
// side array, the live entry gets a second tag bit, and the heap entry
// is otherwise left alone; when the stale entry reaches the top, step()
// re-arms it with a single push instead of firing. Either way the event
// keeps the fire-order key (when, seq-at-reschedule-time) that a
// cancel() + fresh schedule() would have produced, so simulations are
// bit-identical to the historical cancel+push pattern — without its
// dead heap entries.
//
// Tracking is opt-in because it is not free: maintaining back-pointers
// for every entry would add a store to every sift move of every pop,
// which measurably slows all simulation. A typical kernel has a handful
// of re-armable timers (per-core boundary timers, the housekeeping
// tick) among millions of fire-once events, so untracked entries pay
// only a predicted-not-taken branch per heap move.
//
// Handles must not outlive the engine that issued them (they hold a raw
// pointer into it); default-constructed handles are inert.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/move_function.hpp"
#include "util/units.hpp"

namespace pinsim::sim {

class Engine;

/// Always-on event-engine counters. The only counter the fire fast path
/// maintains is `fired` (one register add); the rest increment on cold
/// paths or are derived at read time, so the accounting never shows up
/// in simulation profiles. Per-instance via Engine::stats();
/// process-wide totals via aggregate_engine_stats().
struct EngineStats {
  std::int64_t scheduled = 0;        // schedule()/schedule_detached() events
  std::int64_t fired = 0;            // callbacks invoked
  std::int64_t tombstone_pops = 0;   // cancelled entries discarded by pop
  std::int64_t deferred_rearms = 0;  // stale entries re-pushed at new deadline
  std::int64_t reschedules = 0;      // reschedule() calls served in place
  std::int64_t peak_heap = 0;        // high-water mark of pending entries
  std::int64_t boundaries_batched = 0;  // same-instant peers drained batched
  std::int64_t boundaries_skipped = 0;  // boundary fires elided by quiet cores
  std::int64_t quiet_windows = 0;       // quiet-core fast-forwards entered
};

/// Process-wide totals across every Engine destroyed so far (each engine
/// folds its counters in on destruction). The figure benches print this
/// under --stats; worker-thread engines accumulate atomically.
EngineStats aggregate_engine_stats();

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; cancelling twice is a no-op. Valid only while the issuing
/// Engine is alive.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call after the event fired.
  void cancel();

  /// True when the event is still pending (scheduled, not cancelled, not
  /// yet fired).
  bool pending() const;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint64_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Engine {
 public:
  using Callback = util::MoveFunction;

  Engine() = default;
  ~Engine();
  // EventHandles hold raw pointers into the engine, so it must stay put.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  // The schedule path is defined inline (below the class) so callers in
  // other translation units can collapse the callback's type-erased
  // construction and moves into direct stores into the slab node.

  /// Schedule `fn` to run `delay` from now. `delay` must be >= 0.
  EventHandle schedule(SimDuration delay, Callback fn);

  /// Schedule `fn` at the absolute instant `when` (>= now()).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Fire-and-forget variants: no cancellation handle returned. Cheaper
  /// than schedule(); use when the caller discards the handle.
  void schedule_detached(SimDuration delay, Callback fn);
  void schedule_detached_at(SimTime when, Callback fn);

  /// Tracked variants: like schedule()/schedule_at(), but the returned
  /// handle additionally supports reschedule(). Use for persistent
  /// re-armable timers; plain schedule() is cheaper for fire-once
  /// events (tracked entries pay a back-pointer store per heap move).
  EventHandle schedule_tracked(SimDuration delay, Callback fn);
  EventHandle schedule_tracked_at(SimTime when, Callback fn);

  /// Tracked schedule carrying a batch cookie `(domain << 16) | payload`.
  /// Cookied entries are eligible for pop_batched_peer(): when one fires
  /// through the normal step() path, the owner can drain its same-instant
  /// domain peers without paying a callback dispatch each. Domain ids
  /// come from new_batch_domain(); cookie 0 means "not batchable" (the
  /// default for the other tracked overloads).
  EventHandle schedule_tracked_at(SimTime when, std::uint32_t cookie,
                                  Callback fn);

  /// Allocate a batch-cookie domain id (16-bit, starts at 1 so the
  /// implicit cookie 0 of un-cookied tracked entries never matches).
  /// Several kernels can share one engine (sharded fleets); each takes
  /// its own domain so a sweep never drains a foreign kernel's timers.
  std::uint32_t new_batch_domain() {
    PINSIM_CHECK_MSG(next_batch_domain_ < 0xffffu, "batch domains exhausted");
    return next_batch_domain_++;
  }

  /// Batched same-instant drain: if the top heap entry is an un-deferred
  /// tracked entry armed at exactly now() whose cookie belongs to
  /// `domain`, pop it without dispatching its callback and return the
  /// cookie's 16-bit payload; otherwise return -1 and leave the heap
  /// alone. Cancelled matching entries are tombstoned and the scan
  /// continues. Callers loop until -1, handling each payload inline —
  /// one at a time, so a handler that cancels or defers a peer's entry
  /// is observed before that peer is popped, exactly like the
  /// one-step()-per-fire path this replaces.
  // pinsim-lint: hot
  int pop_batched_peer(std::uint32_t domain) {
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      if (when_of(top) != now_) return -1;
      if (!(top.node & kTrackedBit) || (top.node & kDeferredBit)) return -1;
      const std::uint32_t id = top.node & kNodeIdMask;
      const std::uint32_t cookie = cookie_[id];
      if ((cookie >> 16) != domain) return -1;
      pop_min();
      if (node(id).cancelled) {
        ++stats_.tombstone_pops;
        release_node(id);
        continue;
      }
      // A batched pop is a real fire for accounting purposes — the
      // owner runs the same handler the callback would have run.
      ++stats_.fired;
      ++stats_.boundaries_batched;
      release_node(id);
      return static_cast<int>(cookie & 0xffffu);
    }
    return -1;
  }

  /// Quiet-core fast-forward accounting (the counters live here so
  /// aggregate_engine_stats() folds them with everything else).
  void note_boundaries_skipped(std::int64_t n) {
    stats_.boundaries_skipped += n;
  }
  void note_quiet_window() { ++stats_.quiet_windows; }

  /// Move a pending event's deadline to `when` (>= now()) without
  /// cancelling it — the callback is untouched. The handle must come
  /// from schedule_tracked()/schedule_tracked_at() (checked). Returns
  /// false (and does nothing) when the handle is inert, cancelled, or
  /// already fired; the caller then schedules afresh. Fire order is
  /// exactly what cancel() plus a new schedule_tracked_at() would give:
  /// the event is re-keyed with a fresh sequence number, so among
  /// same-instant events it fires last.
  bool reschedule(EventHandle& handle, SimTime when);

  /// Run until the event queue drains or `horizon` is reached (events at
  /// exactly `horizon` still fire). Returns the number of events fired.
  std::int64_t run(SimTime horizon = kNoHorizon);

  /// Run until `predicate()` becomes true (checked after each event) or
  /// the queue drains. Returns true when the predicate was satisfied.
  /// The predicate is a template parameter so tight measure loops pay a
  /// direct call per event, not type-erased std::function dispatch.
  template <typename Predicate>
  bool run_until(Predicate&& predicate, SimTime horizon = kNoHorizon) {
    if (predicate()) return true;
    while (step(horizon)) {
      if (predicate()) return true;
    }
    return predicate();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }

  /// Instant of the earliest pending heap entry, or kNoHorizon when the
  /// queue is empty. For an entry whose deadline was deferred later (see
  /// reschedule()) this reports the stale armed instant — a lower bound
  /// on when the event can actually fire, which is exactly what the
  /// sharded round loop needs for a conservative window.
  SimTime peek_next() const {
    return heap_.empty() ? kNoHorizon : when_of(heap_.front());
  }

  /// Jump the clock forward to `when` without firing anything. Only
  /// legal when no pending event lies at or before `when` (checked) —
  /// the sharded engine uses this to keep every shard's clock aligned
  /// at a window boundary so cross-shard deliveries are never in a
  /// receiver's past.
  void advance_clock_to(SimTime when) {
    PINSIM_CHECK_MSG(when >= now_, "clock moved backwards (" << when << " < "
                                                             << now_ << ")");
    PINSIM_CHECK_MSG(peek_next() > when,
                     "advance_clock_to(" << when
                                         << ") would skip a pending event at "
                                         << peek_next());
    now_ = when;
  }

  /// Counter snapshot. `scheduled` and `peak_heap` are derived here
  /// rather than maintained per event: every reschedule() and every
  /// schedule consumes exactly one sequence number, so scheduled =
  /// next_seq_ - reschedules; and heap entries map 1:1 onto live slab
  /// nodes (a node is released exactly when its entry pops), so the
  /// slab high-water mark IS the heap high-water mark.
  EngineStats stats() const {
    EngineStats s = stats_;
    s.scheduled =
        static_cast<std::int64_t>(next_seq_) - stats_.reschedules;
    s.peak_heap = static_cast<std::int64_t>(node_count_);
    return s;
  }

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  friend class EventHandle;

  /// Slab node: the event's callback plus cancellation state. The
  /// generation counter distinguishes the current tenant event from
  /// stale handles to earlier tenants of the same node. Deliberately
  /// free of reschedule state: growing the node (~72 bytes, the pop
  /// path's main cache-line traffic) measurably slows every simulation.
  /// `tracked` packs into the tail padding next to `cancelled`.
  struct Node {
    Callback fn;
    std::uint64_t gen = 0;
    bool cancelled = false;
    bool tracked = false;
  };

  /// Deferred re-arm key for a node whose deadline moved later while its
  /// heap entry stayed armed. Only valid while the entry carries
  /// kDeferredBit; stale contents are harmless once the bit clears.
  struct Deferred {
    SimTime when;
    std::uint64_t seq;
  };

  /// Heap entry: trivially copyable so sift moves are plain copies. The
  /// (when, seq) ordering key is packed into one 128-bit integer so the
  /// comparison is a single sub/sbb with no data-dependent branch — the
  /// min-child selection in pop_min() runs on conditional moves instead
  /// of mispredicting per level. `when` is never negative (the clock
  /// starts at zero and only advances), so the unsigned compare is safe.
  struct Entry {
    unsigned __int128 key;
    /// Node id, with kTrackedBit tagged in for rescheduleable entries
    /// and kDeferredBit tagged in when the event's deadline moved later
    /// than this entry's key (see reschedule()).
    std::uint32_t node;
  };

  /// Tag bits on Entry::node. kTrackedBit marks an entry that maintains
  /// its node→slot back-pointer in slot_of_; kDeferredBit marks an
  /// entry whose node has a pending deferral in deferred_ (implies
  /// tracked). Node ids stay far below 2^30 (the slab would exceed
  /// memory long before), so the bits are free.
  static constexpr std::uint32_t kDeferredBit = 0x80000000u;
  static constexpr std::uint32_t kTrackedBit = 0x40000000u;
  static constexpr std::uint32_t kNodeIdMask = kTrackedBit - 1;
  static unsigned __int128 make_key(SimTime when, std::uint64_t seq) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(when))
            << 64) |
           seq;
  }
  static SimTime when_of(const Entry& e) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(e.key >> 64));
  }

  /// Fire the next event; returns false when the queue is empty or the
  /// next event lies beyond `horizon`.
  bool step(SimTime horizon);

  /// Slow path for a popped entry tagged kDeferredBit: tombstone it if
  /// cancelled, otherwise re-push at its deferred (when, seq). Kept out
  /// of line so step()'s fast path stays small enough to inline well.
  void resolve_tagged(std::uint32_t tagged_node);

  /// Store `e` at heap index `i`, and for tracked entries point the
  /// node back at the slot. The back-pointers live in `slot_of_` — a
  /// dense 4-bytes-per-node array, not the slab nodes — and untracked
  /// entries (the vast majority) skip the store entirely: one
  /// predicted-not-taken branch per heap move instead of an
  /// unconditional extra store, which benchmarked ~1.5x slower on
  /// schedule/fire-heavy workloads.
  void put(std::size_t i, const Entry& e) {
    heap_[i] = e;
    if (e.node & kTrackedBit) [[unlikely]] {
      slot_of_[e.node & kNodeIdMask] = static_cast<std::uint32_t>(i);
    }
  }

  // 4-ary min-heap: half the depth of a binary heap and the four
  // children share cache lines, so drain-heavy workloads sift faster.
  void sift_up(std::size_t i) {
    const Entry value = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (value.key >= heap_[parent].key) break;
      put(i, heap_[parent]);
      i = parent;
    }
    put(i, value);
  }
  void sift_down(std::size_t i);
  Entry pop_min();

  std::uint32_t push_event(SimTime when, Callback&& fn) {
    const std::uint32_t slot = acquire_node();
    node(slot).fn = std::move(fn);
    heap_.push_back(Entry{make_key(when, next_seq_++), slot});
    sift_up(heap_.size() - 1);
    return slot;
  }
  std::uint32_t push_event_tracked(SimTime when, Callback&& fn,
                                   std::uint32_t cookie = 0) {
    const std::uint32_t slot = acquire_node();
    Node& n = node(slot);
    n.fn = std::move(fn);
    n.tracked = true;
    // Unconditional store: a recycled node may carry a previous tenant's
    // cookie, and pop_batched_peer() must never match a stale one.
    cookie_[slot] = cookie;
    heap_.push_back(Entry{make_key(when, next_seq_++), slot | kTrackedBit});
    sift_up(heap_.size() - 1);
    return slot;
  }
  std::uint32_t acquire_node() {
    if (!free_nodes_.empty()) {
      const std::uint32_t slot = free_nodes_.back();
      free_nodes_.pop_back();
      return slot;
    }
    // grow_slab() is outlined: with the chunk allocation and the two
    // side-array resizes inlined here, acquire_node() exceeds the
    // inliner's budget and turns into an out-of-line call on every
    // schedule — measurably slower than keeping this wrapper tiny.
    if ((node_count_ >> kChunkShift) == chunks_.size()) [[unlikely]] {
      grow_slab();
    }
    return node_count_++;
  }
  void grow_slab();
  void release_node(std::uint32_t node);

  // Nodes live in fixed-size chunks so growing the slab never relocates
  // existing nodes — a vector<Node> would move-construct every live
  // callback on each capacity doubling, which dominated the schedule
  // path's cost.
  static constexpr std::uint32_t kChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;
  Node& node(std::uint32_t i) { return chunks_[i >> kChunkShift][i & kChunkMask]; }
  const Node& node(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  bool node_pending(std::uint32_t i, std::uint64_t gen) const {
    const Node& n = node(i);
    return n.gen == gen && !n.cancelled;
  }
  void node_cancel(std::uint32_t i, std::uint64_t gen) {
    Node& n = node(i);
    if (n.gen == gen) n.cancelled = true;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> heap_;  // 4-ary min-heap ordered by (when, seq)
  /// node id -> index of its live heap entry (valid while pending).
  std::vector<std::uint32_t> slot_of_;
  /// node id -> deferred re-arm key (valid while the entry is tagged).
  std::vector<Deferred> deferred_;
  /// node id -> batch cookie, written on every tracked push (0 = none).
  std::vector<std::uint32_t> cookie_;
  std::uint32_t next_batch_domain_ = 1;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t node_count_ = 0;
  std::vector<std::uint32_t> free_nodes_;
  EngineStats stats_;
};

inline void EventHandle::cancel() {
  if (engine_ != nullptr) engine_->node_cancel(slot_, gen_);
}

inline bool EventHandle::pending() const {
  return engine_ != nullptr && engine_->node_pending(slot_, gen_);
}

inline EventHandle Engine::schedule(SimDuration delay, Callback fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  return schedule_at(now_ + delay, std::move(fn));
}

inline EventHandle Engine::schedule_at(SimTime when, Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  const std::uint32_t slot = push_event(when, std::move(fn));
  return EventHandle(this, slot, node(slot).gen);
}

inline void Engine::schedule_detached(SimDuration delay, Callback fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  schedule_detached_at(now_ + delay, std::move(fn));
}

inline void Engine::schedule_detached_at(SimTime when, Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  push_event(when, std::move(fn));
}

inline EventHandle Engine::schedule_tracked(SimDuration delay, Callback fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  return schedule_tracked_at(now_ + delay, std::move(fn));
}

inline EventHandle Engine::schedule_tracked_at(SimTime when, Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  const std::uint32_t slot = push_event_tracked(when, std::move(fn));
  return EventHandle(this, slot, node(slot).gen);
}

inline EventHandle Engine::schedule_tracked_at(SimTime when,
                                               std::uint32_t cookie,
                                               Callback fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  const std::uint32_t slot = push_event_tracked(when, std::move(fn), cookie);
  return EventHandle(this, slot, node(slot).gen);
}

inline bool Engine::reschedule(EventHandle& handle, SimTime when) {
  if (handle.engine_ != this) return false;  // inert or foreign handle
  Node& n = node(handle.slot_);
  if (n.gen != handle.gen_ || n.cancelled) return false;
  PINSIM_CHECK_MSG(n.tracked,
                   "reschedule() on an untracked event; use "
                   "schedule_tracked()/schedule_tracked_at()");
  PINSIM_CHECK_MSG(when >= now_,
                   "event rescheduled before now (" << when << " < " << now_
                                                    << ")");
  // One sequence number per re-arm, exactly like the cancel+push pattern
  // this replaces — so every other event's seq (and thus every FIFO
  // tie-break) is unchanged.
  const std::uint64_t seq = next_seq_++;
  ++stats_.reschedules;
  const std::uint32_t slot = slot_of_[handle.slot_];
  const SimTime armed = when_of(heap_[slot]);
  if (when > armed) {
    // Later than the live entry: defer lazily. step() re-arms with one
    // push when the tagged entry surfaces at `armed`. Repeated
    // deferrals just overwrite the side-array key.
    deferred_[handle.slot_] = Deferred{when, seq};
    heap_[slot].node = handle.slot_ | kTrackedBit | kDeferredBit;
    return true;
  }
  // At or before the live entry: re-key in place (clearing any deferral
  // tag from an earlier move). Equal-time re-arms still grow the key
  // (fresh seq), so they sift down, never up.
  heap_[slot].node = handle.slot_ | kTrackedBit;
  const bool earlier = when < armed;
  heap_[slot].key = make_key(when, seq);
  if (earlier) {
    sift_up(slot);
  } else {
    sift_down(slot);
  }
  return true;
}

}  // namespace pinsim::sim
