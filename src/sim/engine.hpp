// Discrete-event simulation engine.
//
// A single monotonically advancing clock and a priority queue of events.
// Events scheduled at the same instant fire in scheduling order (FIFO by
// sequence number) so the simulation is fully deterministic. Events can be
// cancelled through the returned handle — the kernel uses this to retract
// a core's quantum-expiry event when the core reschedules early.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace pinsim::sim {

class Engine;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; cancelling twice is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call after the event fired.
  void cancel();

  /// True when the event is still pending (scheduled, not cancelled, not
  /// yet fired).
  bool pending() const;

 private:
  friend class Engine;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. `delay` must be >= 0.
  EventHandle schedule(SimDuration delay, std::function<void()> fn);

  /// Schedule `fn` at the absolute instant `when` (>= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the event queue drains or `horizon` is reached (events at
  /// exactly `horizon` still fire). Returns the number of events fired.
  std::int64_t run(SimTime horizon = kNoHorizon);

  /// Run until `predicate()` becomes true (checked after each event) or
  /// the queue drains. Returns true when the predicate was satisfied.
  bool run_until(const std::function<bool()>& predicate,
                 SimTime horizon = kNoHorizon);

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Fire the next event; returns false when the queue is empty or the
  /// next event lies beyond `horizon`.
  bool step(SimTime horizon);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace pinsim::sim
