#include "sim/engine.hpp"

#include <utility>

namespace pinsim::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Engine::schedule(SimDuration delay, std::function<void()> fn) {
  PINSIM_CHECK_MSG(delay >= 0, "event scheduled in the past (delay=" << delay
                                                                     << ")");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  PINSIM_CHECK_MSG(when >= now_,
                   "event scheduled before now (" << when << " < " << now_
                                                  << ")");
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

bool Engine::step(SimTime horizon) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > horizon) return false;
    if (top.state->cancelled) {
      queue_.pop();
      continue;
    }
    // Move out before popping; the callback may schedule further events.
    Entry entry{top.when, top.seq, std::move(const_cast<Entry&>(top).fn),
                top.state};
    queue_.pop();
    now_ = entry.when;
    entry.state->fired = true;
    entry.fn();
    return true;
  }
  return false;
}

std::int64_t Engine::run(SimTime horizon) {
  std::int64_t fired = 0;
  while (step(horizon)) {
    ++fired;
  }
  if (horizon != kNoHorizon && now_ < horizon && queue_.empty()) {
    now_ = horizon;
  }
  return fired;
}

bool Engine::run_until(const std::function<bool()>& predicate,
                       SimTime horizon) {
  if (predicate()) return true;
  while (step(horizon)) {
    if (predicate()) return true;
  }
  return predicate();
}

}  // namespace pinsim::sim
