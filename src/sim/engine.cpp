#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

namespace pinsim::sim {

Engine::Entry Engine::pop_min() {
  // Bottom-up extraction: walk the hole left by the root down the
  // min-child path to a leaf (child comparisons only), then bubble the
  // displaced last element up from there. The last element came from the
  // bottom of the heap, so the up pass almost always stops immediately —
  // this skips the per-level value comparison of a classic sift-down.
  // The min-child scan is written so each step is a conditional move,
  // not a data-dependent branch.
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  std::size_t hole = 0;
  while (true) {
    const std::size_t first = 4 * hole + 1;
    if (first + 4 <= n) {
      // Full fan-out: pairwise tournament so the two halves race in
      // parallel instead of one serial cmov chain over four children.
      const unsigned __int128 k0 = heap_[first].key;
      const unsigned __int128 k1 = heap_[first + 1].key;
      const unsigned __int128 k2 = heap_[first + 2].key;
      const unsigned __int128 k3 = heap_[first + 3].key;
      const std::size_t a = k1 < k0 ? first + 1 : first;
      const unsigned __int128 ka = k1 < k0 ? k1 : k0;
      const std::size_t b = k3 < k2 ? first + 3 : first + 2;
      const unsigned __int128 kb = k3 < k2 ? k3 : k2;
      const std::size_t best = kb < ka ? b : a;
      heap_[hole] = heap_[best];
      hole = best;
      continue;
    }
    if (first >= n) break;
    std::size_t best = first;
    unsigned __int128 best_key = heap_[first].key;
    for (std::size_t c = first + 1; c < n; ++c) {
      const unsigned __int128 ck = heap_[c].key;
      const bool lt = ck < best_key;
      best = lt ? c : best;
      best_key = lt ? ck : best_key;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (last.key >= heap_[parent].key) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
  return top;
}

void Engine::release_node(std::uint32_t slot) {
  // Bumping the generation invalidates every outstanding handle to the
  // node's previous tenant; stale cancel()/pending() become no-ops.
  Node& n = node(slot);
  ++n.gen;
  n.cancelled = false;
  n.fn = Callback();
  free_nodes_.push_back(slot);
}

bool Engine::step(SimTime horizon) {
  while (!heap_.empty()) {
    if (when_of(heap_.front()) > horizon) return false;
    const Entry top = pop_min();
    Node& n = node(top.node);
    if (n.cancelled) {
      release_node(top.node);
      continue;
    }
    now_ = when_of(top);
    // Move the callback out and release the node before invoking, so the
    // event reads as no-longer-pending from inside its own callback and
    // nested scheduling can reuse the node immediately.
    Callback fn = std::move(n.fn);
    release_node(top.node);
    fn();
    return true;
  }
  return false;
}

std::int64_t Engine::run(SimTime horizon) {
  std::int64_t fired = 0;
  while (step(horizon)) {
    ++fired;
  }
  if (horizon != kNoHorizon && now_ < horizon && heap_.empty()) {
    now_ = horizon;
  }
  return fired;
}

bool Engine::run_until(const std::function<bool()>& predicate,
                       SimTime horizon) {
  if (predicate()) return true;
  while (step(horizon)) {
    if (predicate()) return true;
  }
  return predicate();
}

}  // namespace pinsim::sim
