#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace pinsim::sim {

namespace {

// Process-wide totals, folded in by ~Engine. Worker threads each own
// private engines, so contention is one batch of relaxed adds per
// simulation, not per event.
std::atomic<std::int64_t> g_scheduled{0};
std::atomic<std::int64_t> g_fired{0};
std::atomic<std::int64_t> g_tombstone_pops{0};
std::atomic<std::int64_t> g_deferred_rearms{0};
std::atomic<std::int64_t> g_reschedules{0};
std::atomic<std::int64_t> g_peak_heap{0};
std::atomic<std::int64_t> g_boundaries_batched{0};
std::atomic<std::int64_t> g_boundaries_skipped{0};
std::atomic<std::int64_t> g_quiet_windows{0};

}  // namespace

EngineStats aggregate_engine_stats() {
  EngineStats stats;
  stats.scheduled = g_scheduled.load(std::memory_order_relaxed);
  stats.fired = g_fired.load(std::memory_order_relaxed);
  stats.tombstone_pops = g_tombstone_pops.load(std::memory_order_relaxed);
  stats.deferred_rearms = g_deferred_rearms.load(std::memory_order_relaxed);
  stats.reschedules = g_reschedules.load(std::memory_order_relaxed);
  stats.peak_heap = g_peak_heap.load(std::memory_order_relaxed);
  stats.boundaries_batched =
      g_boundaries_batched.load(std::memory_order_relaxed);
  stats.boundaries_skipped =
      g_boundaries_skipped.load(std::memory_order_relaxed);
  stats.quiet_windows = g_quiet_windows.load(std::memory_order_relaxed);
  return stats;
}

Engine::~Engine() {
  const EngineStats s = stats();
  g_scheduled.fetch_add(s.scheduled, std::memory_order_relaxed);
  g_fired.fetch_add(s.fired, std::memory_order_relaxed);
  g_tombstone_pops.fetch_add(s.tombstone_pops, std::memory_order_relaxed);
  g_deferred_rearms.fetch_add(s.deferred_rearms, std::memory_order_relaxed);
  g_reschedules.fetch_add(s.reschedules, std::memory_order_relaxed);
  g_boundaries_batched.fetch_add(s.boundaries_batched,
                                 std::memory_order_relaxed);
  g_boundaries_skipped.fetch_add(s.boundaries_skipped,
                                 std::memory_order_relaxed);
  g_quiet_windows.fetch_add(s.quiet_windows, std::memory_order_relaxed);
  std::int64_t peak = g_peak_heap.load(std::memory_order_relaxed);
  while (peak < s.peak_heap &&
         !g_peak_heap.compare_exchange_weak(peak, s.peak_heap,
                                            std::memory_order_relaxed)) {
  }
}

Engine::Entry Engine::pop_min() {
  // Bottom-up extraction: walk the hole left by the root down the
  // min-child path to a leaf (child comparisons only), then bubble the
  // displaced last element up from there. The last element came from the
  // bottom of the heap, so the up pass almost always stops immediately —
  // this skips the per-level value comparison of a classic sift-down.
  // The min-child scan is written so each step is a conditional move,
  // not a data-dependent branch.
  const Entry top = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  std::size_t hole = 0;
  while (true) {
    const std::size_t first = 4 * hole + 1;
    if (first + 4 <= n) {
      // Full fan-out: pairwise tournament so the two halves race in
      // parallel instead of one serial cmov chain over four children.
      const unsigned __int128 k0 = heap_[first].key;
      const unsigned __int128 k1 = heap_[first + 1].key;
      const unsigned __int128 k2 = heap_[first + 2].key;
      const unsigned __int128 k3 = heap_[first + 3].key;
      const std::size_t a = k1 < k0 ? first + 1 : first;
      const unsigned __int128 ka = k1 < k0 ? k1 : k0;
      const std::size_t b = k3 < k2 ? first + 3 : first + 2;
      const unsigned __int128 kb = k3 < k2 ? k3 : k2;
      const std::size_t best = kb < ka ? b : a;
      put(hole, heap_[best]);
      hole = best;
      continue;
    }
    if (first >= n) break;
    std::size_t best = first;
    unsigned __int128 best_key = heap_[first].key;
    for (std::size_t c = first + 1; c < n; ++c) {
      const unsigned __int128 ck = heap_[c].key;
      const bool lt = ck < best_key;
      best = lt ? c : best;
      best_key = lt ? ck : best_key;
    }
    put(hole, heap_[best]);
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (last.key >= heap_[parent].key) break;
    put(hole, heap_[parent]);
    hole = parent;
  }
  put(hole, last);
  return top;
}

void Engine::sift_down(std::size_t i) {
  // Only reached from reschedule() re-keying an entry to the same
  // instant (fresh seq grows the key), so the walk is usually short.
  const Entry value = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + 4, n);
    std::size_t best = first;
    unsigned __int128 best_key = heap_[first].key;
    for (std::size_t c = first + 1; c < end; ++c) {
      const unsigned __int128 ck = heap_[c].key;
      const bool lt = ck < best_key;
      best = lt ? c : best;
      best_key = lt ? ck : best_key;
    }
    if (value.key <= best_key) break;
    put(i, heap_[best]);
    i = best;
  }
  put(i, value);
}

// Cold: one call per 256 nodes. Out of line (and never inlined) so
// acquire_node() stays small enough to inline into the schedule path.
__attribute__((noinline)) void Engine::grow_slab() {
  // The slab growth itself is the sanctioned cold-path allocation: one
  // call per 256 nodes, explicitly kept out of line.
  // pinsim-lint: allow(hot-path)
  chunks_.push_back(std::make_unique<Node[]>(std::size_t{1} << kChunkShift));
  slot_of_.resize(chunks_.size() << kChunkShift);
  deferred_.resize(chunks_.size() << kChunkShift);
  cookie_.resize(chunks_.size() << kChunkShift);
  // Every heap entry and every free-list entry refers to a live node,
  // so node capacity bounds both. Reserving here makes push_event /
  // release_node allocation-free between slab growths.
  heap_.reserve(chunks_.size() << kChunkShift);
  free_nodes_.reserve(chunks_.size() << kChunkShift);
}

void Engine::release_node(std::uint32_t slot) {
  // Bumping the generation invalidates every outstanding handle to the
  // node's previous tenant; stale cancel()/pending() become no-ops.
  // deferred_[slot] may hold stale data — harmless, the tag bit that
  // validates it died with the heap entry.
  Node& n = node(slot);
  ++n.gen;
  n.cancelled = false;
  n.tracked = false;
  n.fn = Callback();
  free_nodes_.push_back(slot);
}

// Out of line (and never inlined) so step()'s fast path stays compact:
// inlining the re-arm push + sift would triple step()'s code size and
// measurably slow the common fire path.
__attribute__((noinline)) void Engine::resolve_tagged(
    std::uint32_t tagged_node) {
  // The deadline moved later while this entry was armed. Cancel still
  // wins: a cancelled-after-deferral event tombstones here and its
  // deferred key is never pushed.
  const std::uint32_t id = tagged_node & kNodeIdMask;
  if (node(id).cancelled) {
    ++stats_.tombstone_pops;
    release_node(id);
    return;
  }
  // Re-arm with the (when, seq) pair stored at reschedule() time — one
  // push (still tracked, so later reschedules keep working), no firing.
  ++stats_.deferred_rearms;
  const Deferred d = deferred_[id];
  heap_.push_back(Entry{make_key(d.when, d.seq), id | kTrackedBit});
  sift_up(heap_.size() - 1);
}

bool Engine::step(SimTime horizon) {
  while (!heap_.empty()) {
    if (when_of(heap_.front()) > horizon) return false;
    const Entry top = pop_min();
    if (top.node & kDeferredBit) [[unlikely]] {
      resolve_tagged(top.node);
      continue;
    }
    const std::uint32_t id = top.node & kNodeIdMask;
    Node& n = node(id);
    if (n.cancelled) {
      ++stats_.tombstone_pops;
      release_node(id);
      continue;
    }
    now_ = when_of(top);
    ++stats_.fired;
    // Move the callback out and release the node before invoking, so the
    // event reads as no-longer-pending from inside its own callback and
    // nested scheduling can reuse the node immediately.
    Callback fn = std::move(n.fn);
    release_node(id);
    fn();
    return true;
  }
  return false;
}

std::int64_t Engine::run(SimTime horizon) {
  std::int64_t fired = 0;
  while (step(horizon)) {
    ++fired;
  }
  if (horizon != kNoHorizon && now_ < horizon && heap_.empty()) {
    now_ = horizon;
  }
  return fired;
}

}  // namespace pinsim::sim
