// Sharded discrete-event engine: one simulation, many event heaps.
//
// A ShardedEngine partitions a simulation into `shards` domains, each
// owning a private sim::Engine (heap + clock + sequence space) and a
// private Rng stream. Shards advance in bounded rounds under
// conservative synchronization: every cross-shard interaction must be
// posted with a delay of at least the configured `lookahead` (the
// minimum cross-domain latency of the simulated hardware — migration
// cost, IPC delivery, virtio round trip; see
// hw::CostModel::min_cross_shard_latency()), so a round may safely
// advance every shard to
//
//   window = min_s(shard s's next event) + lookahead
//
// without any shard receiving an event in its past. Cross-shard events
// travel through per-(src, dst) mailboxes: post() stamps each entry
// with (when, src_shard, seq) where `seq` is a per-source monotonic
// counter, and the coordinator drains all mailboxes at the window
// boundary in ascending (when, src_shard, seq) order — the canonical
// merge order. Delivery consumes destination sequence numbers in that
// canonical order, so the interleaving of delivered events with the
// destination shard's own same-instant events is a pure function of
// the configuration, never of host-thread timing.
//
// Threading: rounds can fan the advance phase across `threads` workers
// (the calling thread acts as worker 0). Shard state is touched only
// by its assigned worker between two std::barrier phases, and the
// mailbox exchange runs single-threaded on the caller between rounds,
// so results are bit-identical for every `threads` value — determinism
// is by construction, not by accident of scheduling.
//
// shards == 1 is a strict pass-through: run()/run_until() delegate to
// the single Engine with no windows, no barriers, and no mailbox
// machinery, so a one-shard simulation is byte-identical to driving
// the Engine directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::sim {

struct ShardedEngineConfig {
  /// Number of event shards (>= 1).
  int shards = 1;
  /// Conservative lookahead: the minimum delay of every cross-shard
  /// post (checked). Must be > 0 when shards > 1 — a zero lookahead
  /// would make the synchronization window empty.
  SimDuration lookahead = 0;
  /// Executors for the round advance phase, including the calling
  /// thread; 1 = fully single-threaded, 0 = one per shard. The value
  /// changes wall-clock behaviour only — simulated results are
  /// bit-identical for every thread count.
  int threads = 1;
};

/// Round-loop counters (the per-shard event counters live in each
/// shard's EngineStats; fold them with ShardedEngine::engine_stats()).
struct ShardedEngineStats {
  std::int64_t rounds = 0;           // synchronization windows advanced
  std::int64_t cross_posts = 0;      // mailbox entries exchanged
  std::int64_t local_posts = 0;      // same-shard posts (direct schedule)
  std::int64_t peak_round_batch = 0; // largest one-round delivery count
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineConfig config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shards() const { return static_cast<int>(engines_.size()); }
  SimDuration lookahead() const { return config_.lookahead; }

  /// The shard's private engine. Domain code (a kernel, a device, a
  /// workload) schedules its intra-shard events here directly.
  Engine& shard(int s) { return *engines_[checked(s)]; }
  const Engine& shard(int s) const { return *engines_[checked(s)]; }

  /// The shard's private random stream, forked from the seeding Rng in
  /// shard order. Domains on different shards never share a stream, so
  /// draw counts on one shard cannot perturb another.
  Rng& rng(int s) { return rngs_[static_cast<std::size_t>(checked(s))]; }

  /// Seed the per-shard Rng streams (fork per shard, in shard order).
  void seed_rngs(Rng source);

  /// The common round clock: every shard's clock equals this at a
  /// window boundary (between rounds and after run() returns).
  SimTime now() const;

  /// Schedule `fn` on shard `dst`, `delay` from shard `src`'s current
  /// instant. Cross-shard posts (src != dst) require
  /// delay >= lookahead (checked) and are delivered at the next window
  /// boundary in canonical (when, src_shard, seq) order; same-shard
  /// posts schedule directly. Must be called from shard `src`'s
  /// executor (its events' callbacks) — the mailbox rows are
  /// source-owned and unlocked.
  void post(int src, int dst, SimDuration delay, Engine::Callback fn);

  /// Advance all shards until every heap drains or `horizon` is
  /// reached (events at exactly `horizon` still fire). Returns the
  /// number of events fired across all shards.
  std::int64_t run(SimTime horizon = Engine::kNoHorizon);

  /// Advance in rounds until `predicate()` becomes true or every heap
  /// drains. The predicate is evaluated on the calling thread at
  /// window boundaries only (round granularity — coarser than
  /// Engine::run_until's per-event checks), where it may safely read
  /// state owned by any shard. Returns true when the predicate held at
  /// exit.
  bool run_until(const std::function<bool()>& predicate,
                 SimTime horizon = Engine::kNoHorizon);

  /// Fold of every shard's EngineStats — one fold per shard engine, so
  /// totals line up with what a single-engine run of the same
  /// simulation would report.
  EngineStats engine_stats() const;

  /// Round-loop counter snapshot. The post counters are kept per source
  /// shard (each is written only by its shard's executor) and folded
  /// here; call between runs, not from inside event callbacks.
  ShardedEngineStats stats() const;

 private:
  /// One mailbox entry. `seq` is the per-source posting counter; the
  /// (when, src, seq) triple is the canonical merge key, `dst` routes
  /// the delivery once the matrix rows are flattened into one batch.
  struct Post {
    SimTime when;
    int src;
    int dst;
    std::uint64_t seq;
    Engine::Callback fn;
  };

  int checked(int s) const {
    PINSIM_CHECK_MSG(s >= 0 && s < shards(), "shard " << s << " out of range");
    return s;
  }

  /// The round loop behind run()/run_until(). `predicate` may be null.
  std::int64_t run_rounds(SimTime horizon,
                          const std::function<bool()>* predicate,
                          bool* predicate_held);

  /// Advance `engine` through the window ending at `window` and leave
  /// its clock parked exactly at the boundary.
  static std::int64_t advance_shard(Engine& engine, SimTime window);

  /// Drain every mailbox in canonical order into the destination
  /// engines. Single-threaded; called between rounds.
  void exchange();

  ShardedEngineConfig config_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Rng> rngs_;
  /// Mailbox matrix, row-major by source: outbox_[src * shards + dst].
  /// A row is written only by shard src's executor during the advance
  /// phase and drained only by the coordinator between rounds.
  std::vector<std::vector<Post>> outbox_;
  /// Per-source posting counters (monotonic across the whole run).
  /// Like the mailbox rows, element s is written only by shard s's
  /// executor, so posting needs no locks.
  std::vector<std::uint64_t> post_seq_;
  /// Per-source post tallies, same single-writer discipline as above.
  std::vector<std::int64_t> cross_posts_;
  std::vector<std::int64_t> local_posts_;
  /// Scratch for exchange(): the flattened, canonically sorted batch.
  /// Member so round after round reuses its capacity.
  std::vector<Post> batch_;
  // Coordinator-only round counters.
  std::int64_t rounds_ = 0;
  std::int64_t peak_round_batch_ = 0;
};

}  // namespace pinsim::sim
