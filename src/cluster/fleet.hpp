// The cluster serving layer: N simulated hosts behind one front end.
//
// A Fleet instantiates `hosts` full virt::Hosts (host h shard-resident
// on shard h % shards, built through core::build_fleet_hosts so seeds
// and construction order match ShardedFleet), deploys one
// workload::RequestSource per host, and drives open-loop traffic from a
// front end living on shard 0:
//
//   Arrivals ----> LoadBalancer ----> host h's RequestSource
//      |  pick()+dispatch   \--- post(0, shard(h), dispatch_latency)
//      |                          inject() ... request executes ...
//      |              completion: post(shard(h), 0, dispatch_latency)
//      v
//   Autoscaler tick: watermark decisions -> provisioning timers ->
//   activate/deactivate instances in the balancer
//
// The pinning controller (PinningPolicy::ChrAdvisor) turns the paper's
// post-hoc CHR table into placement policy: every host's container is
// sized by core::recommend_instance for the app class and pinned.
//
// Determinism contract (tests/cluster/fleet_test.cpp): a fixed config +
// seed yields a byte-identical request trace and ClusterResult summary
// for any `threads` and any `shards`. The load-bearing choices:
//  - every front-end structure (balancer, autoscaler, trace, counters)
//    is touched only by shard-0 events; hosts are reached exclusively
//    through ShardedEngine::post with dispatch_latency >= lookahead,
//    and completions notify the front end the same way, so all
//    cross-shard influence travels the canonical mailbox merge;
//  - per-request latency is recorded into trace[id] at exact event
//    instants, keyed by the dispatch-order id, and the SLO summary is
//    folded from the trace in id order after the run — no accumulation
//    follows event-completion order, which may tie-break differently
//    between shard counts;
//  - raw wall-clock at stop is window-granular under shards > 1 (see
//    ShardedFleet) and deliberately not part of ClusterResult.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/arrivals.hpp"
#include "cluster/autoscaler.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/slo.hpp"
#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "util/units.hpp"
#include "virt/factory.hpp"
#include "workload/cassandra.hpp"
#include "workload/profiles.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::cluster {

/// How the fleet sizes and pins its per-host instances.
enum class PinningPolicy {
  /// Run FleetConfig::spec / host_specs exactly as given.
  AsConfigured,
  /// Size every host by core::recommend_instance (smallest instance in
  /// the app class's recommended CHR band, pinned); fall back to the
  /// largest catalog instance that fits when no size lands in the band.
  ChrAdvisor,
};

const char* to_string(PinningPolicy policy);

struct FleetConfig {
  int hosts = 4;
  /// Event shards; host h lives on shard h % shards, the front end on
  /// shard 0. shards == 1 is the serial baseline.
  int shards = 1;
  /// Host threads for the sharded round loop.
  int threads = 1;
  /// Serving application (IoWeb -> WordPress, IoNoSql -> Cassandra).
  workload::AppClass app = workload::AppClass::IoWeb;
  /// Platform every host runs, unless host_specs or the pinning policy
  /// overrides it.
  virt::PlatformSpec spec{virt::PlatformKind::Container,
                          virt::CpuMode::Vanilla,
                          virt::instance_by_name("xLarge")};
  /// Optional heterogeneous fleet: host h runs host_specs[h % size()].
  std::vector<virt::PlatformSpec> host_specs;
  PinningPolicy pinning = PinningPolicy::AsConfigured;
  hw::Topology full_host = hw::Topology::small_host_16();
  hw::CostModel costs;
  std::uint64_t base_seed = 42;

  ArrivalConfig arrivals;
  /// Arrivals are generated inside [0, traffic_seconds); the run then
  /// drains until every dispatched request completed (checked against
  /// traffic_seconds + drain_seconds).
  double traffic_seconds = 30.0;
  double drain_seconds = 120.0;

  BalancerPolicy balancer = BalancerPolicy::LeastOutstanding;

  bool autoscale = false;
  AutoscalerConfig autoscaler;
  /// Active instances at t = 0; 0 means "all hosts" without
  /// autoscaling and autoscaler.min_instances with it.
  int initial_instances = 0;

  SloConfig slo;

  /// Simulated front-end <-> host network latency, each way. Must be
  /// >= the cost model's cross-shard lookahead (checked).
  SimDuration dispatch_latency = usec(200);

  /// Service-recipe tuning for the serving sources (batch-only fields
  /// are ignored; see workload/request_source.hpp).
  workload::WordPressConfig wordpress;
  workload::CassandraConfig cassandra;
};

/// One request as the front end saw it. trace[id] is written at
/// dispatch (arrival, host) and at the completion notification
/// (latency); id order is dispatch order.
struct RequestRecord {
  SimTime arrival = 0;
  int host = -1;
  /// Front-end round trip: completion notification minus arrival
  /// (network legs included); -1 until the request completes.
  SimDuration latency = -1;
};

struct FleetHostReport {
  virt::PlatformSpec spec;
  double chr = 0.0;
  bool chr_in_range = false;
  std::int64_t dispatched = 0;
  std::int64_t served = 0;
};

// Front-end state: shard-0-owned (see LoadBalancer).
// pinsim-lint: shard-owner(0)
struct ClusterResult {
  std::vector<RequestRecord> trace;
  std::int64_t dispatched = 0;
  std::int64_t completed = 0;
  SloSummary slo;
  std::vector<FleetHostReport> hosts;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
  int peak_active = 0;
  int final_active = 0;
  sim::ShardedEngineStats shard_stats;
  sim::EngineStats engine_stats;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  const FleetConfig& config() const { return config_; }

  /// Shard hosting host `h` (checked accessor for the host_shard_ map).
  int shard_of(int host) const;

  /// Per-host platform specs after host_specs cycling and the pinning
  /// policy are applied.
  std::vector<virt::PlatformSpec> resolved_specs() const;

  /// Build the fleet, run the traffic, drain, and summarize.
  ClusterResult run();

 private:
  int initial_active() const;

  FleetConfig config_;
  /// host -> shard back-pointer map, fixed at construction.
  std::vector<int> host_shard_;
};

/// Convenience one-shot wrapper.
ClusterResult run_cluster(const FleetConfig& config);

}  // namespace pinsim::cluster
