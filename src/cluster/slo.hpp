// Tail-latency SLO accounting for the cluster serving layer.
//
// Per-request latencies land in a stats::LinearHistogram (p50/p99/p999
// by interpolated bucket walk) plus a stats::Accumulator for exact
// moments; violations are counted sample-exactly against the configured
// objective. The tracker is fed in request-id order after a fleet run
// completes, never online from event callbacks, so its summary is
// byte-identical across thread and shard counts (floating-point
// accumulation order is fixed by construction).
#pragma once

#include <cstddef>
#include <cstdint>

#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"

namespace pinsim::cluster {

struct SloConfig {
  /// Per-request latency objective.
  double target_seconds = 0.5;
  /// Histogram resolution backing the percentile estimates; samples at
  /// or above bucket_seconds * max_buckets clamp into the last bucket.
  double bucket_seconds = 0.001;
  std::size_t max_buckets = 20000;
};

struct SloSummary {
  std::int64_t total = 0;
  std::int64_t violations = 0;
  double violation_fraction = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
};

// Front-end state: shard-0-owned (see LoadBalancer).
// pinsim-lint: shard-owner(0)
class SloTracker {
 public:
  explicit SloTracker(SloConfig config);

  void record(double latency_seconds);

  /// Zero-filled when no samples were recorded.
  SloSummary summary() const;

  const SloConfig& config() const { return config_; }
  const stats::LinearHistogram& histogram() const { return histogram_; }

 private:
  SloConfig config_;
  stats::LinearHistogram histogram_;
  stats::Accumulator moments_;
  std::int64_t violations_ = 0;
};

}  // namespace pinsim::cluster
