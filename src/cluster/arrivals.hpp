// Open-loop arrival processes for the cluster serving layer.
//
// The paper's load generators are closed bursts (JMeter fires 1,000
// requests, cassandra-stress 1,000 ops); a production front end sees an
// open-loop stream whose rate varies on its own schedule. `Arrivals`
// generates such a stream deterministically: each instance owns its Rng,
// so a (config, seed) pair always produces the same arrival-time
// sequence regardless of what else the simulation draws — the property
// the cluster determinism tests pin down.
//
// Three profiles cover the serving scenarios:
//   Poisson  constant-rate memoryless traffic (steady state);
//   Burst    square-wave rate alternating quiet and burst phases
//            (flash crowds, the autoscaler's stress case);
//   Diurnal  sinusoidal day curve, trough at t = 0 (the "10M daily
//            users" shape, compressible to any period).
//
// Non-homogeneous profiles are sampled by Lewis-Shedler thinning against
// the profile's peak rate, so every profile is exact (no per-interval
// discretization) and costs O(1) draws per accepted arrival.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::cluster {

enum class ArrivalKind { Poisson, Burst, Diurnal };

const char* to_string(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::Poisson;
  /// Mean rate of the Poisson profile, the quiet-phase rate of the
  /// burst profile, and the daily mean of the diurnal profile.
  double rate_per_second = 100.0;
  /// Burst profile: burst_seconds at rate * burst_multiplier, then
  /// quiet_seconds at rate, repeating (burst phase first).
  double burst_multiplier = 8.0;
  double burst_seconds = 2.0;
  double quiet_seconds = 10.0;
  /// Diurnal profile: rate(t) = rate * (1 - amplitude * cos(2*pi*t /
  /// period)) — trough at t = 0, peak half a period in.
  double diurnal_amplitude = 0.8;
  double diurnal_period_seconds = 86400.0;
};

/// Deterministic per-stream arrival-time generator. `next()` returns
/// absolute arrival instants in non-decreasing order.
// Front-end state: shard-0-owned (see LoadBalancer).
// pinsim-lint: shard-owner(0)
class Arrivals {
 public:
  Arrivals(ArrivalConfig config, Rng rng);

  /// The next arrival instant.
  SimTime next();

  /// Instantaneous rate `t_seconds` into the stream.
  double rate_at(double t_seconds) const;

  /// The profile's peak instantaneous rate (the thinning majorant).
  double peak_rate() const;

  const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  Rng rng_;
  /// Continuous-time position kept in double seconds so the exponential
  /// gaps compose without nanosecond rounding drift.
  double t_seconds_ = 0.0;
};

}  // namespace pinsim::cluster
