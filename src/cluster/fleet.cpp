#include "cluster/fleet.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "core/chr_advisor.hpp"
#include "core/sharded_fleet.hpp"
#include "util/check.hpp"
#include "virt/platform.hpp"
#include "workload/request_source.hpp"

namespace pinsim::cluster {

namespace {

std::unique_ptr<workload::RequestSource> make_source(const FleetConfig& config,
                                                     virt::Platform& platform,
                                                     Rng rng) {
  if (config.app == workload::AppClass::IoWeb) {
    return workload::make_wordpress_source(platform, config.wordpress, rng);
  }
  return workload::make_cassandra_source(platform, config.cassandra, rng);
}

}  // namespace

const char* to_string(PinningPolicy policy) {
  switch (policy) {
    case PinningPolicy::AsConfigured:
      return "as-configured";
    case PinningPolicy::ChrAdvisor:
      return "chr-advisor";
  }
  return "?";
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  PINSIM_CHECK_MSG(config_.hosts >= 1,
                   "fleet needs >= 1 host (got " << config_.hosts << ")");
  PINSIM_CHECK_MSG(config_.shards >= 1,
                   "fleet needs >= 1 shard (got " << config_.shards << ")");
  PINSIM_CHECK_MSG(config_.threads >= 1,
                   "fleet needs >= 1 thread (got " << config_.threads << ")");
  PINSIM_CHECK_MSG(config_.traffic_seconds > 0.0,
                   "traffic window must be positive");
  PINSIM_CHECK_MSG(config_.drain_seconds > 0.0, "drain window must be positive");
  PINSIM_CHECK_MSG(config_.app == workload::AppClass::IoWeb ||
                       config_.app == workload::AppClass::IoNoSql,
                   "the serving layer models the paper's request-serving "
                   "applications (IoWeb -> WordPress, IoNoSql -> Cassandra)");
  PINSIM_CHECK_MSG(
      config_.initial_instances >= 0 &&
          config_.initial_instances <= config_.hosts,
      "initial_instances " << config_.initial_instances << " out of range");
  PINSIM_CHECK_MSG(config_.autoscaler.min_instances <= config_.hosts,
                   "autoscaler floor exceeds the fleet size");
  config_.autoscaler.max_instances =
      std::min(config_.autoscaler.max_instances, config_.hosts);
  host_shard_.reserve(static_cast<std::size_t>(config_.hosts));
  for (int h = 0; h < config_.hosts; ++h) {
    host_shard_.push_back(h % config_.shards);
  }
}

int Fleet::shard_of(int host) const {
  PINSIM_CHECK_MSG(host >= 0 && host < config_.hosts,
                   "host " << host << " out of range");
  return host_shard_[static_cast<std::size_t>(host)];
}

std::vector<virt::PlatformSpec> Fleet::resolved_specs() const {
  std::vector<virt::PlatformSpec> out;
  out.reserve(static_cast<std::size_t>(config_.hosts));
  std::optional<virt::InstanceType> advised;
  if (config_.pinning == PinningPolicy::ChrAdvisor) {
    advised = core::recommend_instance(config_.app, config_.full_host);
    if (!advised) {
      advised = virt::largest_instance_within(config_.full_host.num_cpus());
    }
  }
  for (int h = 0; h < config_.hosts; ++h) {
    virt::PlatformSpec spec =
        config_.host_specs.empty()
            ? config_.spec
            : config_.host_specs[static_cast<std::size_t>(h) %
                                 config_.host_specs.size()];
    if (advised) {
      spec.instance = *advised;
      spec.mode = virt::CpuMode::Pinned;
    }
    out.push_back(std::move(spec));
  }
  return out;
}

int Fleet::initial_active() const {
  if (config_.initial_instances > 0) return config_.initial_instances;
  if (config_.autoscale) {
    return std::min(config_.autoscaler.min_instances, config_.hosts);
  }
  return config_.hosts;
}

ClusterResult Fleet::run() {
  const int n = config_.hosts;
  const SimDuration lookahead = config_.costs.min_cross_shard_latency();
  PINSIM_CHECK_MSG(config_.dispatch_latency >= lookahead,
                   "dispatch latency " << config_.dispatch_latency
                                       << " below the cross-shard lookahead "
                                       << lookahead);

  sim::ShardedEngine sharded(
      sim::ShardedEngineConfig{config_.shards, lookahead, config_.threads});
  sharded.seed_rngs(Rng(config_.base_seed));

  // Hosts + serving sources, built through the shared fleet builder so
  // seeds and construction interleaving match ShardedFleet.
  const std::vector<virt::PlatformSpec> specs = resolved_specs();
  std::vector<std::unique_ptr<workload::RequestSource>> sources;
  sources.reserve(static_cast<std::size_t>(n));
  const core::FleetHosts built = core::build_fleet_hosts(
      sharded, host_shard_, specs, config_.full_host, config_.costs,
      config_.base_seed, [this, &sources](int, virt::Platform& platform, Rng rng) {
        sources.push_back(make_source(config_, platform, rng));
      });

  // Front-end state. Everything below is touched only from shard-0
  // events, so it needs no locks and behaves identically for every
  // thread and shard count.
  LoadBalancer balancer(config_.balancer, n);
  const core::ChrRange band = core::paper_chr_range(config_.app);
  std::vector<double> chr(static_cast<std::size_t>(n), 0.0);
  for (int h = 0; h < n; ++h) {
    const std::size_t i = static_cast<std::size_t>(h);
    chr[i] = core::chr_of(specs[i].instance, config_.full_host);
    balancer.set_chr_in_range(h, band.contains(chr[i]));
  }
  const int initial = initial_active();
  for (int h = 0; h < n; ++h) balancer.set_active(h, h < initial);

  ClusterResult out;
  out.peak_active = balancer.active_count();
  std::vector<std::int64_t> dispatched_per_host(static_cast<std::size_t>(n),
                                                0);
  Autoscaler autoscaler(config_.autoscaler);
  std::vector<char> provisioning(static_cast<std::size_t>(n), 0);
  int provisioning_count = 0;

  sim::Engine& front = sharded.shard(0);
  const SimTime traffic_end = sec_f(config_.traffic_seconds);
  const SimTime horizon =
      sec_f(config_.traffic_seconds + config_.drain_seconds);

  auto dispatch = [&](SimTime now) {
    const int host = balancer.pick();
    PINSIM_CHECK_MSG(host >= 0, "cluster front end found no active instance");
    const int id = static_cast<int>(out.trace.size());
    out.trace.push_back(RequestRecord{now, host, -1});
    ++out.dispatched;
    ++dispatched_per_host[static_cast<std::size_t>(host)];
    balancer.add_outstanding(host, +1);

    workload::RequestSource* source =
        sources[static_cast<std::size_t>(host)].get();
    sim::ShardedEngine* net = &sharded;
    sim::Engine* front_engine = &front;
    ClusterResult* result = &out;
    LoadBalancer* lb = &balancer;
    const int shard = shard_of(host);
    const SimDuration leg = config_.dispatch_latency;
    net->post(
        0, shard, leg,
        [net, front_engine, result, lb, source, shard, leg, id, host] {
          source->inject([net, front_engine, result, lb, shard, leg, id,
                          host] {
            net->post(shard, 0, leg, [front_engine, result, lb, id, host] {
              RequestRecord& record =
                  result->trace[static_cast<std::size_t>(id)];
              record.latency = front_engine->now() - record.arrival;
              lb->add_outstanding(host, -1);
              ++result->completed;
            });
          });
        });
  };

  // Open-loop arrival pump: a self-rescheduling shard-0 event chain.
  Arrivals arrivals(config_.arrivals,
                    Rng(config_.base_seed ^ 0x94d049bb133111ebull));
  bool generating = false;
  std::function<void()> pump = [&] {
    dispatch(front.now());
    const SimTime next = arrivals.next();
    if (next < traffic_end) {
      front.schedule_detached(next - front.now(), [&] { pump(); });
    } else {
      generating = false;
    }
  };
  {
    const SimTime first = arrivals.next();
    if (first < traffic_end) {
      generating = true;
      front.schedule_detached(first, [&] { pump(); });
    }
  }

  // Watermark autoscaling: periodic shard-0 control ticks; scale-ups
  // pay the provisioning delay before the balancer may route to them,
  // scale-downs drain (in-flight requests still complete).
  auto activate_later = [&](int host) {
    provisioning[static_cast<std::size_t>(host)] = 1;
    ++provisioning_count;
    ++out.scale_ups;
    front.schedule_detached(config_.autoscaler.provisioning_delay,
                            [&, host] {
                              provisioning[static_cast<std::size_t>(host)] = 0;
                              --provisioning_count;
                              balancer.set_active(host, true);
                              out.peak_active = std::max(
                                  out.peak_active, balancer.active_count());
                            });
  };
  auto scale_up = [&](int count) {
    for (int k = 0; k < count; ++k) {
      int pick = -1;
      // Prefer instances whose CHR sits in the recommended band.
      for (int pass = 0; pass < 2 && pick < 0; ++pass) {
        for (int h = 0; h < n; ++h) {
          if (balancer.active(h) ||
              provisioning[static_cast<std::size_t>(h)] != 0) {
            continue;
          }
          if (pass == 0 && !balancer.chr_in_range(h)) continue;
          pick = h;
          break;
        }
      }
      if (pick < 0) return;
      activate_later(pick);
    }
  };
  auto scale_down = [&](int count) {
    for (int k = 0; k < count; ++k) {
      if (balancer.active_count() <= 1) return;  // keep one instance routable
      int pick = -1;
      // Least-loaded active instance, ties to the highest index.
      for (int h = 0; h < n; ++h) {
        if (!balancer.active(h)) continue;
        if (pick < 0 ||
            balancer.outstanding(h) <= balancer.outstanding(pick)) {
          pick = h;
        }
      }
      balancer.set_active(pick, false);
      ++out.scale_downs;
    }
  };
  std::function<void()> tick;
  if (config_.autoscale) {
    tick = [&] {
      const int delta =
          autoscaler.evaluate(front.now(), balancer.active_count(),
                              provisioning_count, balancer.total_outstanding());
      if (delta > 0) scale_up(delta);
      if (delta < 0) scale_down(-delta);
      if (front.now() + config_.autoscaler.evaluation_period <= horizon) {
        front.schedule_detached(config_.autoscaler.evaluation_period,
                                [&] { tick(); });
      }
    };
    front.schedule_detached(config_.autoscaler.evaluation_period,
                            [&] { tick(); });
  }

  const auto drained = [&generating, &out] {
    return !generating && out.completed == out.dispatched;
  };
  const bool finished = sharded.run_until(drained, horizon);
  PINSIM_CHECK_MSG(finished, "cluster fleet (" << n << " hosts) did not drain "
                                               << "by the horizon");

  // Fold the SLO summary from the trace in request-id order — never in
  // completion order, which may tie-break differently across shard
  // counts.
  SloTracker tracker(config_.slo);
  for (const RequestRecord& record : out.trace) {
    PINSIM_CHECK(record.latency >= 0);
    tracker.record(to_seconds(record.latency));
  }
  out.slo = tracker.summary();

  out.hosts.reserve(static_cast<std::size_t>(n));
  for (int h = 0; h < n; ++h) {
    const std::size_t i = static_cast<std::size_t>(h);
    FleetHostReport report;
    report.spec = specs[i];
    report.chr = chr[i];
    report.chr_in_range = balancer.chr_in_range(h);
    report.dispatched = dispatched_per_host[i];
    report.served = sources[i]->served();
    out.hosts.push_back(std::move(report));
  }
  out.final_active = balancer.active_count();
  out.shard_stats = sharded.stats();
  out.engine_stats = sharded.engine_stats();
  return out;
}

ClusterResult run_cluster(const FleetConfig& config) {
  Fleet fleet(config);
  return fleet.run();
}

}  // namespace pinsim::cluster
