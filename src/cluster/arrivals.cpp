#include "cluster/arrivals.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pinsim::cluster {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::Poisson:
      return "poisson";
    case ArrivalKind::Burst:
      return "burst";
    case ArrivalKind::Diurnal:
      return "diurnal";
  }
  return "?";
}

Arrivals::Arrivals(ArrivalConfig config, Rng rng) : config_(config), rng_(rng) {
  PINSIM_CHECK(config_.rate_per_second > 0.0);
  PINSIM_CHECK(config_.burst_multiplier >= 1.0);
  PINSIM_CHECK(config_.burst_seconds > 0.0);
  PINSIM_CHECK(config_.quiet_seconds > 0.0);
  PINSIM_CHECK(config_.diurnal_amplitude >= 0.0 &&
               config_.diurnal_amplitude < 1.0);
  PINSIM_CHECK(config_.diurnal_period_seconds > 0.0);
}

double Arrivals::rate_at(double t_seconds) const {
  switch (config_.kind) {
    case ArrivalKind::Poisson:
      return config_.rate_per_second;
    case ArrivalKind::Burst: {
      const double cycle = config_.burst_seconds + config_.quiet_seconds;
      const double phase = std::fmod(t_seconds, cycle);
      return phase < config_.burst_seconds
                 ? config_.rate_per_second * config_.burst_multiplier
                 : config_.rate_per_second;
    }
    case ArrivalKind::Diurnal:
      return config_.rate_per_second *
             (1.0 - config_.diurnal_amplitude *
                        std::cos(kTwoPi * t_seconds /
                                 config_.diurnal_period_seconds));
  }
  return config_.rate_per_second;
}

double Arrivals::peak_rate() const {
  switch (config_.kind) {
    case ArrivalKind::Poisson:
      return config_.rate_per_second;
    case ArrivalKind::Burst:
      return config_.rate_per_second * config_.burst_multiplier;
    case ArrivalKind::Diurnal:
      return config_.rate_per_second * (1.0 + config_.diurnal_amplitude);
  }
  return config_.rate_per_second;
}

SimTime Arrivals::next() {
  // Lewis-Shedler thinning: draw candidate gaps from the homogeneous
  // process at the peak rate and keep a candidate at t with probability
  // rate(t) / peak. For the Poisson profile the test always passes, so
  // the homogeneous case pays no extra draws beyond the uniform.
  const double peak = peak_rate();
  for (;;) {
    t_seconds_ += rng_.exponential(1.0 / peak);
    if (rng_.next_double() * peak <= rate_at(t_seconds_)) {
      return sec_f(t_seconds_);
    }
  }
}

}  // namespace pinsim::cluster
