// Front-end request routing for the cluster serving layer.
//
// The LoadBalancer is pure bookkeeping: it holds what the front end
// knows about every backend instance — active or not, outstanding
// requests as seen from the front end (dispatches minus completion
// notifications, so the view lags the hosts by the network latency),
// and whether the instance's container-to-host core ratio sits inside
// the paper's recommended band for the application class. pick() is a
// deterministic pure function of that state:
//
//   RoundRobin        next active backend after the previous pick;
//   LeastOutstanding  active backend with the fewest outstanding
//                     requests, ties to the lowest index;
//   ChrAware          LeastOutstanding restricted to backends whose CHR
//                     is in the recommended band (paper §VI best
//                     practice 5 as a live routing policy), falling
//                     back to all active backends when none qualify.
#pragma once

#include <cstdint>
#include <vector>

namespace pinsim::cluster {

enum class BalancerPolicy { RoundRobin, LeastOutstanding, ChrAware };

const char* to_string(BalancerPolicy policy);

// Front-end state: lives on shard 0, mutated only by the dispatch
// loop there. Worker-shard callbacks reach it by posting back.
// pinsim-lint: shard-owner(0)
class LoadBalancer {
 public:
  LoadBalancer(BalancerPolicy policy, int backends);

  BalancerPolicy policy() const { return policy_; }
  int backends() const { return static_cast<int>(backends_.size()); }

  void set_active(int backend, bool active);
  bool active(int backend) const;
  int active_count() const;

  void set_chr_in_range(int backend, bool in_range);
  bool chr_in_range(int backend) const;

  void add_outstanding(int backend, int delta);
  int outstanding(int backend) const;
  std::int64_t total_outstanding() const;

  /// Route the next request; -1 when no backend is active. Does not
  /// adjust outstanding counts — the caller records the dispatch.
  int pick();

  /// Successful pick() calls so far.
  std::int64_t decisions() const { return decisions_; }

 private:
  struct Backend {
    bool active = true;
    bool in_range = true;
    int outstanding = 0;
  };

  Backend& slot(int backend);
  const Backend& slot(int backend) const;
  int pick_least(bool require_in_range) const;

  BalancerPolicy policy_;
  std::vector<Backend> backends_;
  int cursor_ = -1;
  std::int64_t decisions_ = 0;
};

}  // namespace pinsim::cluster
