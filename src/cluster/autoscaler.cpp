#include "cluster/autoscaler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::cluster {

Autoscaler::Autoscaler(AutoscalerConfig config) : config_(config) {
  PINSIM_CHECK(config_.min_instances >= 1);
  PINSIM_CHECK(config_.max_instances >= config_.min_instances);
  PINSIM_CHECK(config_.high_watermark > config_.low_watermark);
  PINSIM_CHECK(config_.low_watermark >= 0.0);
  PINSIM_CHECK(config_.evaluation_period > 0);
  PINSIM_CHECK(config_.provisioning_delay >= 0);
  PINSIM_CHECK(config_.cooldown >= 0);
  PINSIM_CHECK(config_.step >= 1);
}

int Autoscaler::evaluate(SimTime now, int active, int provisioning,
                         std::int64_t outstanding) {
  PINSIM_CHECK(active >= 0 && provisioning >= 0 && outstanding >= 0);
  const int capacity = active + provisioning;
  // Below the floor: repair immediately, cooldown notwithstanding.
  if (capacity < config_.min_instances) {
    return config_.min_instances - capacity;
  }
  if (scaled_before_ && now - last_scale_ < config_.cooldown) return 0;
  const double per_instance =
      static_cast<double>(outstanding) / static_cast<double>(capacity);
  int delta = 0;
  if (per_instance > config_.high_watermark) {
    delta = std::min(config_.step, config_.max_instances - capacity);
  } else if (per_instance < config_.low_watermark) {
    delta = -std::min(config_.step, capacity - config_.min_instances);
  }
  if (delta != 0) {
    scaled_before_ = true;
    last_scale_ = now;
  }
  return delta;
}

}  // namespace pinsim::cluster
