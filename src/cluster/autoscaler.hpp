// Instance-count control for the cluster serving layer.
//
// The Autoscaler is a pure decision function: each evaluation tick it
// sees the front end's view (active instances, instances still
// provisioning, outstanding requests) and answers with an instance
// delta. Everything stateful about applying the decision — which host
// to activate, the provisioning timer, draining a deactivated host —
// lives in cluster::Fleet; keeping the policy side effect free is what
// makes it unit-testable without an engine.
//
// The policy is classic watermark control: scale up when outstanding
// requests per available instance exceed the high watermark, down when
// they fall below the low one, with a cooldown between decisions so one
// burst does not thrash the fleet. Scale-ups take effect only after the
// configured provisioning delay (arXiv:2602.15214 decomposes container
// startup latency; the delay is the price of every scale-out decision),
// which is why provisioning instances count toward capacity here — the
// controller must not re-order more capacity it already paid for.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pinsim::cluster {

struct AutoscalerConfig {
  int min_instances = 1;
  int max_instances = 1 << 16;  // callers clamp to the fleet size
  /// Outstanding requests per available (active + provisioning)
  /// instance above which the fleet grows / below which it shrinks.
  double high_watermark = 8.0;
  double low_watermark = 2.0;
  SimDuration evaluation_period = msec(500);
  /// Container cold-start: a scale-up becomes routable this much later.
  SimDuration provisioning_delay = sec(2);
  SimDuration cooldown = sec(5);
  /// Instances added/removed per decision.
  int step = 1;
};

// Front-end state: shard-0-owned (see LoadBalancer).
// pinsim-lint: shard-owner(0)
class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig config);

  const AutoscalerConfig& config() const { return config_; }

  /// Instance delta to apply now (positive = provision, negative =
  /// deactivate, 0 = hold).
  int evaluate(SimTime now, int active, int provisioning,
               std::int64_t outstanding);

 private:
  AutoscalerConfig config_;
  bool scaled_before_ = false;
  SimTime last_scale_ = 0;
};

}  // namespace pinsim::cluster
