#include "cluster/slo.hpp"

#include "util/check.hpp"

namespace pinsim::cluster {

SloTracker::SloTracker(SloConfig config)
    : config_(config), histogram_(config.bucket_seconds, config.max_buckets) {
  PINSIM_CHECK(config_.target_seconds > 0.0);
}

void SloTracker::record(double latency_seconds) {
  PINSIM_CHECK(latency_seconds >= 0.0);
  histogram_.add(latency_seconds);
  moments_.add(latency_seconds);
  if (latency_seconds > config_.target_seconds) ++violations_;
}

SloSummary SloTracker::summary() const {
  SloSummary out;
  out.total = histogram_.count();
  if (out.total == 0) return out;
  out.violations = violations_;
  out.violation_fraction =
      static_cast<double>(violations_) / static_cast<double>(out.total);
  out.p50_seconds = histogram_.quantile(0.50);
  out.p99_seconds = histogram_.quantile(0.99);
  out.p999_seconds = histogram_.quantile(0.999);
  out.mean_seconds = moments_.mean();
  out.max_seconds = moments_.max();
  return out;
}

}  // namespace pinsim::cluster
