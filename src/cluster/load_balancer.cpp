#include "cluster/load_balancer.hpp"

#include "util/check.hpp"

namespace pinsim::cluster {

const char* to_string(BalancerPolicy policy) {
  switch (policy) {
    case BalancerPolicy::RoundRobin:
      return "round-robin";
    case BalancerPolicy::LeastOutstanding:
      return "least-outstanding";
    case BalancerPolicy::ChrAware:
      return "chr-aware";
  }
  return "?";
}

LoadBalancer::LoadBalancer(BalancerPolicy policy, int backends)
    : policy_(policy) {
  PINSIM_CHECK_MSG(backends >= 1,
                   "balancer needs >= 1 backend (got " << backends << ")");
  backends_.resize(static_cast<std::size_t>(backends));
}

LoadBalancer::Backend& LoadBalancer::slot(int backend) {
  PINSIM_CHECK_MSG(backend >= 0 && backend < backends(),
                   "backend " << backend << " out of range");
  return backends_[static_cast<std::size_t>(backend)];
}

const LoadBalancer::Backend& LoadBalancer::slot(int backend) const {
  PINSIM_CHECK_MSG(backend >= 0 && backend < backends(),
                   "backend " << backend << " out of range");
  return backends_[static_cast<std::size_t>(backend)];
}

void LoadBalancer::set_active(int backend, bool active) {
  slot(backend).active = active;
}

bool LoadBalancer::active(int backend) const { return slot(backend).active; }

int LoadBalancer::active_count() const {
  int count = 0;
  for (const Backend& b : backends_) {
    if (b.active) ++count;
  }
  return count;
}

void LoadBalancer::set_chr_in_range(int backend, bool in_range) {
  slot(backend).in_range = in_range;
}

bool LoadBalancer::chr_in_range(int backend) const {
  return slot(backend).in_range;
}

void LoadBalancer::add_outstanding(int backend, int delta) {
  Backend& b = slot(backend);
  b.outstanding += delta;
  PINSIM_CHECK_MSG(b.outstanding >= 0, "backend " << backend
                                                  << " outstanding went "
                                                     "negative");
}

int LoadBalancer::outstanding(int backend) const {
  return slot(backend).outstanding;
}

std::int64_t LoadBalancer::total_outstanding() const {
  std::int64_t total = 0;
  for (const Backend& b : backends_) total += b.outstanding;
  return total;
}

int LoadBalancer::pick_least(bool require_in_range) const {
  int best = -1;
  for (int i = 0; i < backends(); ++i) {
    const Backend& b = backends_[static_cast<std::size_t>(i)];
    if (!b.active) continue;
    if (require_in_range && !b.in_range) continue;
    if (best < 0 ||
        b.outstanding < backends_[static_cast<std::size_t>(best)].outstanding) {
      best = i;
    }
  }
  return best;
}

int LoadBalancer::pick() {
  int choice = -1;
  switch (policy_) {
    case BalancerPolicy::RoundRobin: {
      const int n = backends();
      for (int step = 1; step <= n; ++step) {
        const int i = (cursor_ + step) % n;
        if (backends_[static_cast<std::size_t>(i)].active) {
          choice = i;
          break;
        }
      }
      if (choice >= 0) cursor_ = choice;
      break;
    }
    case BalancerPolicy::LeastOutstanding:
      choice = pick_least(false);
      break;
    case BalancerPolicy::ChrAware:
      choice = pick_least(true);
      if (choice < 0) choice = pick_least(false);
      break;
  }
  if (choice >= 0) ++decisions_;
  return choice;
}

}  // namespace pinsim::cluster
