#include "util/thread_pool.hpp"

#include <algorithm>

namespace pinsim::util {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    MoveFunction task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::default_jobs() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace pinsim::util
