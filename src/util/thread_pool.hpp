// Fixed-size worker pool with a shared work queue.
//
// The experiment harness fans independent (spec, repetition) simulation
// cells across workers; each cell builds its own Host/platform/workload
// from its own seed, so workers share nothing but the queue. submit()
// returns a std::future so callers can gather results in a deterministic
// order regardless of completion order.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/move_function.hpp"

namespace pinsim::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks still run; the destructor joins
  /// after the queue empties.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue `fn` and return a future for its result. Exceptions thrown
  /// by `fn` surface through future::get().
  template <typename F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F&>> {
    using Result = std::invoke_result_t<F&>;
    std::packaged_task<Result()> task(std::move(fn));
    std::future<Result> future = task.get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([t = std::move(task)]() mutable { t(); });
    }
    ready_.notify_one();
    return future;
  }

  /// A sensible default worker count for this host (>= 1).
  static int default_jobs();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<MoveFunction> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pinsim::util
