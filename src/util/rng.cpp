#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pinsim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    s = splitmix64(x);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PINSIM_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform(double lo, double hi) {
  PINSIM_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  PINSIM_CHECK(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  PINSIM_CHECK(stddev >= 0.0);
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

double Rng::lognormal_from_moments(double mean, double stddev) {
  PINSIM_CHECK(mean > 0.0);
  PINSIM_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  const double variance_ratio = (stddev * stddev) / (mean * mean);
  const double sigma2 = std::log(1.0 + variance_ratio);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pinsim
