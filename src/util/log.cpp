#include "util/log.hpp"

#include <iostream>

namespace pinsim {

namespace {
LogLevel g_level = LogLevel::Warn;
std::ostream* g_sink = nullptr;
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level; }

bool Log::enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void Log::write(LogLevel level, const std::string& message) {
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[" << to_string(level) << "] " << message << '\n';
}

void Log::set_sink(std::ostream* sink) { g_sink = sink; }

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "trace";
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
  }
  return "unknown";
}

}  // namespace pinsim
