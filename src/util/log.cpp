#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pinsim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::ostream* g_sink = nullptr;
// Serializes sink writes so concurrent experiment workers emit whole
// lines (set_sink itself stays a single-threaded setup call).
std::mutex g_sink_mutex;
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

bool Log::enabled(LogLevel level) {
  return static_cast<int>(level) >=
         static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void Log::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[" << to_string(level) << "] " << message << '\n';
}

void Log::set_sink(std::ostream* sink) { g_sink = sink; }

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "trace";
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
  }
  return "unknown";
}

}  // namespace pinsim
