// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (IO service times, workload
// jitter, tie-breaking in the scheduler) draws from an explicitly seeded
// Rng so that a run is exactly reproducible from its seed. The generator
// is xoshiro256**, seeded through splitmix64 — fast, high quality, and
// trivially portable; std::mt19937_64 is avoided because its streams are
// not stable across standard library implementations when combined with
// the distribution adaptors.
#pragma once

#include <cstdint>
#include <limits>

namespace pinsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the mean/stddev of the *resulting*
  /// distribution (convenient for service-time models quoted as
  /// "mean 8 ms, sd 2 ms, heavy right tail").
  double lognormal_from_moments(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derive an independent child stream; used to give each repetition and
  /// each subsystem its own stream so adding draws in one place does not
  /// perturb another.
  Rng fork();

 private:
  std::uint64_t s_[4];
  // Cached spare for the polar method.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pinsim
