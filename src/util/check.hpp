// Invariant checking for the simulator.
//
// Simulation bugs (a task on a core outside its affinity, a negative
// runtime grant, an event scheduled in the past) must fail loudly and
// immediately: silently mis-simulated physics would corrupt every figure
// downstream. PINSIM_CHECK is therefore active in all build types.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pinsim {

/// Thrown when an internal simulator invariant is violated.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace pinsim

#define PINSIM_CHECK(expr)                                       \
  do {                                                           \
    if (!(expr)) {                                               \
      ::pinsim::check_failed(#expr, __FILE__, __LINE__, "");     \
    }                                                            \
  } while (false)

#define PINSIM_CHECK_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream pinsim_check_os;                        \
      pinsim_check_os << msg;                                    \
      ::pinsim::check_failed(#expr, __FILE__, __LINE__,          \
                             pinsim_check_os.str());             \
    }                                                            \
  } while (false)
