// Small-buffer-optimized move-only callable, signature void().
//
// The event engine schedules tens of millions of callbacks per simulated
// experiment; `std::function` pays for copyability it never uses and its
// small-object threshold (16 B on libstdc++) spills the common
// "this + two captures" lambda to the heap. MoveFunction stores any
// callable up to kInlineSize bytes inline (48 B covers every callback in
// the simulator today) and falls back to a single heap allocation for
// larger ones. Trivially-copyable callables (lambdas capturing pointers
// and scalars — the overwhelming majority) move by memcpy with no
// indirect call and destroy as a no-op. Move-only, so it also holds
// non-copyable callables such as `std::packaged_task` — the thread
// pool's work items use it too.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pinsim::util {

class MoveFunction {
 public:
  /// Inline storage: sized for a lambda capturing this + a handful of
  /// words. Larger callables are heap-allocated transparently.
  static constexpr std::size_t kInlineSize = 48;

  MoveFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MoveFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  MoveFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &inline_ops<Decayed>;
      kind_ = std::is_trivially_copyable_v<Decayed> &&
                      std::is_trivially_destructible_v<Decayed>
                  ? Kind::kInlineTrivial
                  : Kind::kInlineManaged;
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &heap_ops<Decayed>;
      kind_ = Kind::kHeap;
    }
  }

  MoveFunction(MoveFunction&& other) noexcept { steal(other); }

  MoveFunction& operator=(MoveFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  MoveFunction(const MoveFunction&) = delete;
  MoveFunction& operator=(const MoveFunction&) = delete;

  ~MoveFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  enum class Kind : unsigned char {
    kInlineTrivial,  // moves by memcpy, no destructor
    kInlineManaged,  // moves/destroys through ops_
    kHeap,           // stored pointer memcpys; destroy deletes the node
  };

  struct Ops {
    void (*invoke)(unsigned char* storage);
    /// Move the callable from `from` into raw `to` and destroy `from`.
    /// Unused (null) for kinds that relocate by memcpy.
    void (*relocate)(unsigned char* from, unsigned char* to);
    /// Destroy the callable. Unused (null) for kInlineTrivial.
    void (*destroy)(unsigned char* storage);
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineSize &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static F* inline_target(unsigned char* storage) {
    return std::launder(reinterpret_cast<F*>(storage));
  }

  template <typename F>
  static constexpr Ops inline_ops = {
      [](unsigned char* storage) { (*inline_target<F>(storage))(); },
      [](unsigned char* from, unsigned char* to) {
        ::new (static_cast<void*>(to)) F(std::move(*inline_target<F>(from)));
        inline_target<F>(from)->~F();
      },
      [](unsigned char* storage) { inline_target<F>(storage)->~F(); },
  };

  template <typename F>
  static F*& heap_target(unsigned char* storage) {
    return *std::launder(reinterpret_cast<F**>(storage));
  }

  template <typename F>
  static constexpr Ops heap_ops = {
      [](unsigned char* storage) { (*heap_target<F>(storage))(); },
      nullptr,  // the owning pointer relocates by memcpy
      [](unsigned char* storage) { delete heap_target<F>(storage); },
  };

  /// Take `other`'s callable; `other` becomes empty. Assumes *this is
  /// currently empty.
  // Trivial and heap-owning callables relocate by copying the whole
  // inline buffer; bytes past the callable's own size are indeterminate
  // and never read, which GCC's interprocedural -W(maybe-)uninitialized
  // cannot prove once steal() inlines into a caller holding a temporary.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void steal(MoveFunction& other) noexcept {
    ops_ = other.ops_;
    kind_ = other.kind_;
    if (ops_ != nullptr) {
      if (kind_ == Kind::kInlineManaged) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  void reset() {
    if (ops_ != nullptr) {
      if (kind_ != Kind::kInlineTrivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
  Kind kind_ = Kind::kInlineTrivial;
};

}  // namespace pinsim::util
