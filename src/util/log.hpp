// Minimal leveled logger.
//
// Each simulation is deterministic and single-threaded, but the parallel
// experiment harness runs many simulations at once, so the sink is
// mutex-guarded: every write() emits one complete line, never an
// interleaved fragment. Verbosity defaults to Warn so that test and
// bench output stays clean; debugging a scheduler decision trail is a
// matter of `Log::set_level(LogLevel::Trace)`.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace pinsim {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Returns true when messages at `level` would be emitted.
  static bool enabled(LogLevel level);

  /// Emit a single log line; used through the PINSIM_LOG macro.
  static void write(LogLevel level, const std::string& message);

  /// Redirect output (tests capture log lines this way). Pass nullptr to
  /// restore the default stream (stderr).
  static void set_sink(std::ostream* sink);
};

const char* to_string(LogLevel level);

}  // namespace pinsim

#define PINSIM_LOG(level, expr)                                \
  do {                                                         \
    if (::pinsim::Log::enabled(level)) {                       \
      std::ostringstream pinsim_log_os;                        \
      pinsim_log_os << expr;                                   \
      ::pinsim::Log::write(level, pinsim_log_os.str());        \
    }                                                          \
  } while (false)

#define PINSIM_TRACE(expr) PINSIM_LOG(::pinsim::LogLevel::Trace, expr)
#define PINSIM_DEBUG(expr) PINSIM_LOG(::pinsim::LogLevel::Debug, expr)
#define PINSIM_INFO(expr) PINSIM_LOG(::pinsim::LogLevel::Info, expr)
#define PINSIM_WARN(expr) PINSIM_LOG(::pinsim::LogLevel::Warn, expr)
#define PINSIM_ERROR(expr) PINSIM_LOG(::pinsim::LogLevel::Error, expr)
