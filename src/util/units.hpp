// Strongly-suggestive time units for the simulation clock.
//
// All simulated time is carried as a signed 64-bit count of nanoseconds
// (`SimTime`). 2^63 ns is ~292 years, far beyond any experiment horizon.
// Helper factory functions keep call sites readable and conversion-safe:
// `5 * kMilli` style arithmetic is deliberately avoided in favour of
// `msec(5)`.
#pragma once

#include <cstdint>

namespace pinsim {

/// Simulated time in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// Simulated duration in nanoseconds.
using SimDuration = std::int64_t;

constexpr SimDuration nsec(std::int64_t n) { return n; }
constexpr SimDuration usec(std::int64_t n) { return n * 1'000; }
constexpr SimDuration msec(std::int64_t n) { return n * 1'000'000; }
constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000'000; }

/// Fractional-second constructors used by workload definitions.
constexpr SimDuration usec_f(double n) {
  return static_cast<SimDuration>(n * 1e3);
}
constexpr SimDuration msec_f(double n) {
  return static_cast<SimDuration>(n * 1e6);
}
constexpr SimDuration sec_f(double n) {
  return static_cast<SimDuration>(n * 1e9);
}

/// Convert a simulated duration back to floating-point seconds for
/// reporting. Statistics and figures are rendered in seconds, matching
/// the paper's axes.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e9;
}

/// Convert to floating-point milliseconds (used by latency histograms).
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

}  // namespace pinsim
