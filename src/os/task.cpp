#include "os/task.hpp"

#include <utility>

#include "util/check.hpp"

namespace pinsim::os {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::Created:
      return "created";
    case TaskState::Runnable:
      return "runnable";
    case TaskState::Running:
      return "running";
    case TaskState::Blocked:
      return "blocked";
    case TaskState::Throttled:
      return "throttled";
    case TaskState::Finished:
      return "finished";
  }
  return "unknown";
}

Action Action::compute(SimDuration work) {
  PINSIM_CHECK(work >= 0);
  Action action;
  action.kind = Kind::Compute;
  action.work = work;
  return action;
}

Action Action::io(hw::IoDevice& device, hw::IoRequest request) {
  Action action;
  action.kind = Kind::Io;
  action.device = &device;
  action.request = request;
  return action;
}

Action Action::recv() {
  Action action;
  action.kind = Kind::Recv;
  return action;
}

Action Action::recv_spin() {
  Action action;
  action.kind = Kind::Recv;
  action.spin = true;
  return action;
}

Action Action::post(Task& target, int count) {
  PINSIM_CHECK(count >= 1);
  Action action;
  action.kind = Kind::Post;
  action.target = &target;
  action.count = count;
  return action;
}

Action Action::sleep_for(SimDuration duration) {
  PINSIM_CHECK(duration >= 0);
  Action action;
  action.kind = Kind::Sleep;
  action.duration = duration;
  return action;
}

Action Action::exit() {
  Action action;
  action.kind = Kind::Exit;
  return action;
}

Task::Task(Id id, std::string name, std::unique_ptr<TaskDriver> driver)
    : id_(id), name_(std::move(name)), driver_(std::move(driver)) {
  PINSIM_CHECK(driver_ != nullptr);
}

}  // namespace pinsim::os
