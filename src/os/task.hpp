// Tasks and their behaviour protocol.
//
// A Task is the schedulable entity — a thread from the executor's point of
// view. Its behaviour is supplied by a TaskDriver that yields Actions:
// compute bursts, IO, message sends/receives, sleeps, exit. The same Task
// and driver run unmodified under the host kernel (bare-metal, container)
// or a guest kernel inside a simulated VM — the executor decides what each
// action costs, which is exactly the paper's subject.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "hw/cpuset.hpp"
#include "hw/disk.hpp"
#include "util/units.hpp"

namespace pinsim::os {

class Task;
class Cgroup;

enum class TaskState {
  Created,    // not yet started
  Runnable,   // waiting in a runqueue
  Running,    // on a cpu
  Blocked,    // waiting for IO / message / sleep
  Throttled,  // dequeued by cgroup bandwidth control
  Finished
};

const char* to_string(TaskState state);

/// One step of task behaviour.
struct Action {
  enum class Kind { Compute, Io, Recv, Post, Sleep, Exit };

  Kind kind = Kind::Exit;
  /// Recv: busy-poll for the message instead of blocking (MPI-style
  /// user-space spinning; burns CPU — and cgroup quota — while waiting,
  /// but avoids the sleep/wake path entirely).
  bool spin = false;
  /// Compute: pure work in ns (bare-metal user-mode CPU time).
  SimDuration work = 0;
  /// Io: target device and request.
  hw::IoDevice* device = nullptr;
  hw::IoRequest request;
  /// Post: destination task (must belong to the same executor).
  Task* target = nullptr;
  /// Post: number of messages to deliver.
  int count = 1;
  /// Sleep: duration.
  SimDuration duration = 0;

  static Action compute(SimDuration work);
  static Action io(hw::IoDevice& device, hw::IoRequest request);
  /// Block until at least one message is pending, then consume one.
  static Action recv();
  /// Busy-poll until a message is pending, then consume one.
  static Action recv_spin();
  /// Deliver `count` messages to `target` and continue immediately.
  static Action post(Task& target, int count = 1);
  static Action sleep_for(SimDuration duration);
  static Action exit();
};

/// Supplies a task's next action. `next()` is called exactly when the
/// previous action has fully completed (compute charged, IO finished,
/// message received). Drivers are owned by their task.
class TaskDriver {
 public:
  virtual ~TaskDriver() = default;
  virtual Action next(Task& task) = 0;
};

struct TaskStats {
  SimDuration cpu_time = 0;       // host cpu time consumed (incl. overheads)
  SimDuration work_done = 0;      // pure work accomplished
  SimDuration overhead_paid = 0;  // debt paid (migrations, cgroups, vmexits…)
  SimDuration wait_time = 0;      // runnable, waiting for a cpu
  SimDuration block_time = 0;     // blocked on IO / messages / sleep
  std::int64_t migrations = 0;
  std::int64_t context_switches = 0;
  std::int64_t wakeups = 0;
  std::int64_t io_ops = 0;
  std::int64_t messages_sent = 0;
  SimTime started_at = -1;
  SimTime finished_at = -1;
};

class Task {
 public:
  using Id = std::int64_t;

  Task(Id id, std::string name, std::unique_ptr<TaskDriver> driver);

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Id id() const { return id_; }
  const std::string& name() const { return name_; }
  TaskDriver& driver() { return *driver_; }

  // --- Fields owned by the executor. Kept public: Task is an internal
  // scheduler record, and the kernel manipulates these in concert; mirror
  // accessors would only add noise. External code should treat everything
  // below as read-only and use the stats() snapshot.
  TaskState state = TaskState::Created;
  double weight = 1.0;
  SimDuration vruntime = 0;
  hw::CpuSet affinity;          // empty = all cpus of the executor
  Cgroup* cgroup = nullptr;

  /// Remaining executor-CPU time of the current compute burst.
  SimDuration burst_remaining = 0;
  /// Overhead owed before any real work progresses (migration refills,
  /// cgroup charges, vmexits, wakeup chains).
  SimDuration overhead_debt = 0;
  /// Cumulative executor-CPU time spent on compute bursts; work_done is
  /// derived from this so per-slice rounding never drifts.
  SimDuration burst_consumed = 0;
  /// Multiplier from pure work to executor CPU time (guest tasks carry
  /// the hypervisor's compute inflation).
  double compute_inflation = 1.0;

  hw::CpuId last_cpu = -1;
  double working_set_mb = 5.0;
  /// Shared memory-home socket (first-touch NUMA). All threads of a
  /// process share one; set to the first socket any of them runs on.
  /// Null = NUMA-exempt (e.g. vCPU threads, whose guest RAM policy is
  /// folded into the hypervisor calibration).
  std::shared_ptr<int> numa_home;
  /// Set once the task performs IO; migrations then also pay the
  /// IO-channel re-establishment cost.
  bool io_active = false;

  /// Pending unconsumed messages (Recv blocks while 0).
  int pending_msgs = 0;
  /// True while the task is blocked inside a Recv action.
  bool recv_waiting = false;
  /// True while the task is busy-polling inside a spinning Recv.
  bool spin_recv = false;

  /// Pinned platforms wake their tasks on the previous cpu even when it
  /// is busy (IO affinity beats load balance); vanilla platforms let the
  /// scheduler spread wakeups.
  bool sticky_wakeup = false;

  /// Network-born tasks (one process per request) start on the device's
  /// softirq cpu rather than a random idle cpu — where accept() ran.
  bool device_local_start = false;

  // Executor bookkeeping timestamps.
  SimTime enqueued_at = 0;
  SimTime blocked_at = 0;
  /// Cpu whose runqueue currently holds this task (-1 when not queued).
  hw::CpuId queued_cpu = -1;
  /// Slot index in the holding runqueue's heap (-1 when not queued).
  /// Maintained by Runqueue; nobody else writes it.
  int rq_index = -1;
  /// Slot index in the cgroup's parked list (-1 when not parked).
  /// Maintained by Cgroup; nobody else writes it.
  int park_index = -1;

  TaskStats stats;

 private:
  Id id_;
  std::string name_;
  std::unique_ptr<TaskDriver> driver_;
};

/// Convenience driver built from a lambda: `fn(task)` returns the next
/// Action. Useful in tests and simple workloads.
class LambdaDriver final : public TaskDriver {
 public:
  using Fn = std::function<Action(Task&)>;
  explicit LambdaDriver(Fn fn) : fn_(std::move(fn)) {}
  Action next(Task& task) override { return fn_(task); }

 private:
  Fn fn_;
};

}  // namespace pinsim::os
