#include "os/runqueue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::os {

void Runqueue::place(std::size_t index, const Slot& slot) {
  heap_[index] = slot;
  slot.task->rq_index = static_cast<int>(index);
}

void Runqueue::sift_up(std::size_t index) {
  const Slot moving = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!key_less(moving, heap_[parent])) break;
    place(index, heap_[parent]);
    index = parent;
  }
  place(index, moving);
}

void Runqueue::sift_down(std::size_t index) {
  const Slot moving = heap_[index];
  const std::size_t size = heap_.size();
  while (true) {
    std::size_t child = 2 * index + 1;
    if (child >= size) break;
    if (child + 1 < size && key_less(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!key_less(heap_[child], moving)) break;
    place(index, heap_[child]);
    index = child;
  }
  place(index, moving);
}

// pinsim-lint: hot
void Runqueue::enqueue(Task& task) {
  PINSIM_CHECK_MSG(!contains(task),
                   "task " << task.name() << " enqueued twice");
  heap_.push_back(Slot{task.vruntime, task.id(), &task});
  task.rq_index = static_cast<int>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  min_vruntime_ = std::max(min_vruntime_, heap_.front().vruntime);
}

void Runqueue::remove(Task& task) {
  PINSIM_CHECK_MSG(contains(task),
                   "task " << task.name() << " not in runqueue");
  const std::size_t index = static_cast<std::size_t>(task.rq_index);
  task.rq_index = -1;
  const Slot last = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // removed the trailing slot
  place(index, last);
  sift_up(index);
  sift_down(static_cast<std::size_t>(last.task->rq_index));
}

bool Runqueue::contains(const Task& task) const {
  const int index = task.rq_index;
  return index >= 0 && index < static_cast<int>(heap_.size()) &&
         heap_[static_cast<std::size_t>(index)].task == &task;
}

Task* Runqueue::peek_min() const {
  if (heap_.empty()) return nullptr;
  return heap_.front().task;
}

// pinsim-lint: hot
Task& Runqueue::pop_min() {
  PINSIM_CHECK(!heap_.empty());
  Task& task = *heap_.front().task;
  min_vruntime_ = std::max(min_vruntime_, heap_.front().vruntime);
  task.rq_index = -1;
  const Slot last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, last);
    sift_down(0);
  }
  return task;
}

Task* Runqueue::peek_max() const {
  const Slot* best = nullptr;
  for (const Slot& slot : heap_) {
    if (best == nullptr || key_less(*best, slot)) best = &slot;
  }
  return best == nullptr ? nullptr : best->task;
}

}  // namespace pinsim::os
