#include "os/runqueue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::os {

void Runqueue::enqueue(Task& task) {
  PINSIM_CHECK_MSG(!contains(task),
                   "task " << task.name() << " enqueued twice");
  entries_.insert(Entry{task.vruntime, task.id(), &task});
  min_vruntime_ = std::max(min_vruntime_, entries_.begin()->vruntime);
}

void Runqueue::remove(Task& task) {
  const auto it = entries_.find(Entry{task.vruntime, task.id(), &task});
  PINSIM_CHECK_MSG(it != entries_.end(),
                   "task " << task.name() << " not in runqueue");
  entries_.erase(it);
}

bool Runqueue::contains(const Task& task) const {
  return entries_.count(
             Entry{task.vruntime, task.id(), const_cast<Task*>(&task)}) > 0;
}

Task* Runqueue::peek_min() const {
  if (entries_.empty()) return nullptr;
  return entries_.begin()->task;
}

Task& Runqueue::pop_min() {
  PINSIM_CHECK(!entries_.empty());
  Task& task = *entries_.begin()->task;
  min_vruntime_ = std::max(min_vruntime_, entries_.begin()->vruntime);
  entries_.erase(entries_.begin());
  return task;
}

Task* Runqueue::peek_max() const {
  if (entries_.empty()) return nullptr;
  return entries_.rbegin()->task;
}

}  // namespace pinsim::os
