#include "os/cgroup.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::os {

Cgroup::Cgroup(Config config, const hw::CostModel& costs)
    : config_(std::move(config)), costs_(&costs) {
  PINSIM_CHECK(config_.cpu_limit >= 0.0);
  if (has_quota()) {
    period_quota_ = static_cast<SimDuration>(
        config_.cpu_limit * static_cast<double>(costs_->cfs_period));
    runtime_left_ = period_quota_;
    local_slice_.assign(static_cast<std::size_t>(hw::CpuSet::kMaxCpus), 0);
  }
}

SimDuration Cgroup::charge(hw::CpuId cpu, SimDuration amount) {
  PINSIM_CHECK(amount >= 0);
  if (amount == 0) return 0;
  stats_.usage += amount;
  spread_.add(cpu);

  if (!has_quota()) return 0;

  SimDuration overhead = 0;
  SimDuration remaining = amount;
  touched_.add(cpu);
  SimDuration& local = local_slice_[static_cast<std::size_t>(cpu)];
  while (remaining > 0) {
    if (local >= remaining) {
      local -= remaining;
      remaining = 0;
      break;
    }
    remaining -= local;
    local = 0;
    if (runtime_left_ <= 0) {
      // Pool dry: the overrun (at most one charge granule) is absorbed,
      // mirroring the kernel, and the group throttles.
      if (!throttled_) {
        throttled_ = true;
        ++stats_.throttles;
      }
      break;
    }
    // Transfer one slice from the global pool — a kernel-space
    // accounting invocation.
    const SimDuration slice =
        std::min(costs_->cfs_bandwidth_slice, runtime_left_);
    runtime_left_ -= slice;
    local += slice;
    overhead += costs_->cgroup_account;
    ++stats_.slice_refills;
  }
  stats_.accounting_overhead += overhead;
  return overhead;
}

SimDuration Cgroup::local_runtime(hw::CpuId cpu) const {
  if (local_slice_.empty() || cpu < 0 || cpu >= hw::CpuSet::kMaxCpus) {
    return 0;
  }
  return local_slice_[static_cast<std::size_t>(cpu)];
}

SimDuration Cgroup::runtime_horizon(hw::CpuId cpu) const {
  PINSIM_CHECK(has_quota());
  return local_runtime(cpu) + runtime_left_;
}

bool Cgroup::refill_period() {
  if (!has_quota()) return false;
  runtime_left_ = period_quota_;
  // Reset only the slices actually handed out this period: walk the
  // touched set's bits instead of clearing the whole per-cpu array.
  touched_.for_each([this](hw::CpuId cpu) {
    local_slice_[static_cast<std::size_t>(cpu)] = 0;
  });
  touched_ = hw::CpuSet();
  const bool released = throttled_;
  throttled_ = false;
  return released;
}

SimDuration Cgroup::aggregate() {
  const int spread = spread_.count();
  ++stats_.aggregations;
  stats_.spread_samples += spread;
  stats_.max_spread = std::max(stats_.max_spread, spread);
  spread_ = hw::CpuSet();
  if (spread == 0) return 0;
  SimDuration cost =
      costs_->cgroup_aggregate_base +
      static_cast<SimDuration>(spread) * costs_->cgroup_aggregate_per_core;
  // The walk cannot take longer than its own scheduling interval — a
  // longer pass would simply delay the next one, so the steady-state
  // stall is bounded by (most of) one interval.
  cost = std::min(cost, costs_->cgroup_aggregate_interval * 4 / 5);
  stats_.accounting_overhead += cost;
  return cost;
}

void Cgroup::park(Task& task) {
  PINSIM_CHECK_MSG(task.park_index < 0,
                   "task " << task.name() << " parked twice");
  task.park_index = static_cast<int>(parked_.size());
  parked_.push_back(&task);
}

void Cgroup::unpark(Task& task) {
  PINSIM_CHECK_MSG(is_parked(task),
                   "task " << task.name() << " not parked here");
  const std::size_t index = static_cast<std::size_t>(task.park_index);
  Task* last = parked_.back();
  parked_[index] = last;
  last->park_index = static_cast<int>(index);
  parked_.pop_back();
  task.park_index = -1;
}

bool Cgroup::is_parked(const Task& task) const {
  const int index = task.park_index;
  return index >= 0 && index < static_cast<int>(parked_.size()) &&
         parked_[static_cast<std::size_t>(index)] == &task;
}

std::vector<Task*> Cgroup::take_parked() {
  for (Task* task : parked_) task->park_index = -1;
  std::vector<Task*> taken;
  taken.swap(parked_);
  return taken;
}

void Cgroup::add_member(Task& task) {
  PINSIM_CHECK(task.cgroup == nullptr || task.cgroup == this);
  task.cgroup = this;
  if (std::find(members_.begin(), members_.end(), &task) == members_.end()) {
    members_.push_back(&task);
  }
}

void Cgroup::remove_member(Task& task) {
  PINSIM_CHECK(task.cgroup == this);
  if (is_parked(task)) unpark(task);
  task.cgroup = nullptr;
  members_.erase(std::remove(members_.begin(), members_.end(), &task),
                 members_.end());
}

}  // namespace pinsim::os
