// The operating-system kernel model.
//
// An event-driven CFS-like scheduler over the host topology:
//  - per-cpu runqueues ordered by vruntime, slice = latency / nr_running;
//  - wakeup placement that prefers the previous cpu and otherwise picks
//    an idle/least-loaded cpu within the task's allowed set — vanilla
//    platforms therefore scatter across the host, pinned ones stay put;
//  - new-idle stealing and periodic load balancing;
//  - migration dispatch charges the cache-refill penalty from
//    hw::CacheModel;
//  - cgroup bandwidth periods, usage aggregation, and throttling;
//  - device interrupts: completion IRQs steal time from the interrupted
//    cpu and pay the wakeup chain, with IRQ steering to the task's
//    previous cpu for pinned groups (IO affinity, paper §III-B3).
//
// The same class instantiates the bare-metal host, the (GRUB-limited)
// bare-metal instance sizes, and — with a different Topology — nothing
// else: the guest kernel inside a VM is virt::GuestKernel, which reuses
// Task/Runqueue/Cgroup but advances only when its vCPUs are granted host
// CPU time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/cache_model.hpp"
#include "hw/cost_model.hpp"
#include "hw/cpuset.hpp"
#include "hw/topology.hpp"
#include "os/cgroup.hpp"
#include "os/observer.hpp"
#include "os/runqueue.hpp"
#include "os/task.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::os {

struct SchedParams {
  /// Target latency: every runnable task runs once per this window.
  SimDuration sched_latency = msec(12);
  /// Minimum slice regardless of queue depth.
  SimDuration min_granularity = msec(1);
  /// A waking task preempts the running one only if it is behind by at
  /// least this much vruntime.
  SimDuration wakeup_preempt_granularity = msec(1);
  /// Periodic load-balance interval.
  SimDuration balance_interval = msec(8);
  /// Sleeper credit: a waking task's vruntime is floored at
  /// (queue min_vruntime − sched_latency).
  bool sleeper_credit = true;
  /// Quiet-core fast-forward: a core whose single runnable task cannot
  /// be preempted before its next real event skips its quantum-boundary
  /// timers (see Kernel::reprogram). Simulated behaviour is identical
  /// either way — the flag exists so the fuzz oracle can run the
  /// skip-free path against the fast-forward path on the same seed.
  bool quiet_fast_forward = true;
};

struct KernelStats {
  std::int64_t context_switches = 0;
  std::int64_t migrations = 0;
  std::int64_t cross_socket_migrations = 0;
  std::int64_t wakeups = 0;
  std::int64_t preemptions = 0;
  std::int64_t irqs = 0;
  std::int64_t steals = 0;
  std::int64_t balance_moves = 0;
  std::int64_t throttle_events = 0;
  std::int64_t unthrottle_events = 0;
  std::int64_t aggregation_events = 0;
  SimDuration migration_penalty_total = 0;
};

struct TaskConfig {
  /// Allowed cpus; empty = all cpus of this kernel.
  hw::CpuSet affinity;
  Cgroup* cgroup = nullptr;
  double weight = 1.0;
  double working_set_mb = 5.0;
  /// Multiplier from pure work to cpu time (used by the VM layer).
  double compute_inflation = 1.0;
  /// First-touch NUMA home shared with sibling threads; null = exempt.
  std::shared_ptr<int> numa_home;
  /// Start the task on the device IRQ domain (network-born requests).
  bool device_local_start = false;
  /// Invoked when the task exits (response-time collection).
  std::function<void(Task&)> on_exit;
};

class Kernel {
 public:
  Kernel(sim::Engine& engine, const hw::Topology& topology,
         const hw::CostModel& costs, Rng rng, SchedParams params = {},
         std::string name = "host");
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- setup ---------------------------------------------------------------
  Cgroup& create_cgroup(Cgroup::Config config);

  Task& create_task(std::string name, std::unique_ptr<TaskDriver> driver,
                    TaskConfig config = {});

  /// Make a created task runnable now (arrival).
  void start_task(Task& task);

  /// Wake a blocked task (message/event delivery from outside the
  /// kernel, e.g. a load generator or hypervisor).
  void wake(Task& task);

  /// Deliver `count` messages to `task` from outside the kernel, waking
  /// it if it blocks in Recv. Models arrival through a device interrupt:
  /// charges IRQ service on a (steered or round-robin) cpu and wakes the
  /// task with that cpu as the locality hint.
  void post_external(Task& task, int count = 1);

  /// Like post_external but local: the wake targets the task's previous
  /// cpu without a device interrupt (KVM-style vCPU kick: the IPI goes
  /// to wherever the vCPU last ran).
  void post_local(Task& task, int count = 1);

  void add_observer(SchedObserver& observer);

  // --- queries ---------------------------------------------------------------
  sim::Engine& engine() { return *engine_; }
  SimTime now() const { return engine_->now(); }
  const hw::Topology& topology() const { return *topology_; }
  const hw::CostModel& costs() const { return *costs_; }
  const std::string& name() const { return name_; }

  /// Event shard this kernel's machine lives on (0 in a solo-engine
  /// run). The kernel itself never crosses shards — its engine IS the
  /// shard's engine — but the id lets cross-machine plumbing
  /// (core::ShardedFleet heartbeats, future cluster workloads) route
  /// mailbox traffic to the right destination shard.
  int shard() const { return shard_; }
  void bind_shard(int shard) { shard_ = shard; }

  int live_tasks() const { return live_tasks_; }
  bool idle_cpu(hw::CpuId cpu) const;
  const KernelStats& stats() const { return stats_; }
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

  /// Run the engine until every started task has finished (or `horizon`).
  /// Returns true when all tasks finished.
  bool run_until_quiescent(SimTime horizon = sim::Engine::kNoHorizon);

 private:
  // Bench/test access to the private placement path and idle masks
  // (bench/micro_sched.cpp, tests/os/kernel_property_test.cpp).
  friend struct SchedBenchAccess;

  // --- core scheduling (kernel.cpp) ---------------------------------------
  void dispatch(hw::CpuId cpu);
  /// Boundary-timer callback: handle this core's boundary, then drain
  /// every same-instant peer boundary of this kernel through the
  /// engine's batched pop — one sweep over the SoA core state instead
  /// of N independent callback dispatches.
  void on_boundary(hw::CpuId cpu);
  /// One core's quantum-boundary work (the old per-core callback body).
  void handle_boundary(hw::CpuId cpu);
  void charge_running(hw::CpuId cpu);
  /// Charge the running task for [charged_until_[cpu], t_end]. The
  /// quiet-core replay calls this directly (charge_running() adds the
  /// exit_quiet() hook on top).
  void charge_up_to(hw::CpuId cpu, SimTime t_end);
  void reprogram(hw::CpuId cpu);
  /// Leave the quiet-core window (no-op when `cpu` is not quiet):
  /// replay the skipped pure-restart boundaries up to now() as one lump
  /// charge — exact because the quiet predicate admits only tasks whose
  /// chunked charges are associative (weight 1.0, NUMA-local, no
  /// cgroup) — and move the parked boundary timer to the instant the
  /// skip-free path would have it armed at. CHECKs that no skipped
  /// boundary could have changed a scheduling decision.
  void exit_quiet(hw::CpuId cpu);
  /// Move the core's persistent boundary timer to now()+delay: an
  /// in-place reschedule while the timer is pending, one fresh push
  /// right after it fired. No cancel+push tombstones either way.
  void arm_boundary(hw::CpuId cpu, SimDuration delay);
  void stop_running(hw::CpuId cpu, bool requeue);
  /// Ask the driver for actions until the task blocks, exits, or has a
  /// compute burst. Returns true while the task should stay on the cpu.
  bool advance_actions(hw::CpuId cpu, Task& task);
  void finish_task(Task& task);
  void block_task(Task& task);
  void deliver(Task& from, Task& to, int count);
  SimDuration slice_for(hw::CpuId cpu) const;
  SimDuration remaining_cost(const Task& task) const;
  /// NUMA slowdown factor for running `task` on `cpu` (>= 1.0).
  double numa_slowdown(const Task& task, hw::CpuId cpu) const;
  /// remaining_cost adjusted for the NUMA slowdown on `cpu`.
  SimDuration remaining_cost_on(const Task& task, hw::CpuId cpu) const;

  // --- wakeup path (kernel_wakeup.cpp) -------------------------------------
  hw::CpuSet allowed_cpus(const Task& task) const;
  /// `hint` is the cpu the wakeup originated on (IRQ handler, message
  /// poster); -1 means no locality hint. Unpinned tasks are pulled
  /// toward the hint's LLC domain (wake_affine), which is what smears a
  /// vanilla container across the host as its interrupts round-robin.
  hw::CpuId place_task(Task& task, hw::CpuId hint = -1);
  void enqueue_task(Task& task, hw::CpuId cpu);
  void wake_common(Task& task, SimDuration extra_debt,
                   hw::CpuId hint = -1);
  void io_complete(Task& task);
  void submit_io(Task& task, const Action& action);
  hw::CpuId irq_target(const Task& task);
  void charge_irq(hw::CpuId cpu);

  /// Re-derive `cpu`'s bits in the idle/busy masks from its core state.
  /// Called after every mutation of a core's `current` or runqueue so
  /// wakeup placement is pure mask arithmetic. The masks carry no state
  /// of their own — tests validate them against a recompute.
  void refresh_cpu_masks(hw::CpuId cpu);

  // --- balancing & cgroup periodic work (kernel_balance.cpp) --------------
  void steal_for(hw::CpuId cpu);
  void periodic_balance();
  void housekeeping_tick();
  void cgroup_period(Cgroup& group);
  void cgroup_aggregate(Cgroup& group);
  void park_group(Cgroup& group);
  void release_group(Cgroup& group);
  void ensure_housekeeping();
  /// Arm the persistent housekeeping timer for now()+delay (same
  /// reschedule-or-push mechanism as the per-core boundary timers).
  void arm_housekeeping(SimDuration delay);

  // --- helpers --------------------------------------------------------------
  hw::CpuId cpu_of_running(const Task& task) const;
  template <typename Fn>
  void notify(Fn&& fn) {
    for (auto* obs : observers_) fn(*obs);
  }

  sim::Engine* engine_;
  const hw::Topology* topology_;
  const hw::CostModel* costs_;
  hw::CacheModel cache_model_;
  Rng rng_;
  SchedParams params_;
  std::string name_;
  int shard_ = 0;

  // Struct-of-arrays per-core scheduler state, indexed by cpu id. The
  // boundary sweep and the charge path walk one field across cores, so
  // same-tick work touches dense homogeneous arrays instead of striding
  // over an array-of-structs with a cold Runqueue in the middle.
  // Canonical task fields (vruntime, burst, debt) stay on os::Task —
  // mirroring them here would trade bit-identity risk for little gain,
  // since the quiet fast-forward removes most boundary fires outright.
  std::vector<Task*> current_;
  std::vector<Runqueue> rq_;
  std::vector<sim::EventHandle> boundary_;
  std::vector<SimTime> charged_until_;
  std::vector<SimTime> slice_started_;
  std::vector<SimDuration> slice_length_;
  // Quiet-core fast-forward bookkeeping, valid while quiet_[cpu] != 0:
  // the first skipped boundary instant, the landing instant (when the
  // task's remaining cost is exhausted), and the task the window was
  // entered for (invariant: it must still be current at exit).
  std::vector<std::uint8_t> quiet_;
  std::vector<SimTime> quiet_b0_;
  std::vector<SimTime> quiet_land_;
  std::vector<Task*> quiet_task_;
  // Revocation hysteresis: set when a window is revoked before its
  // first skipped boundary (the entry/exit reschedules bought nothing),
  // cleared when a boundary fires naturally or a window pays off. While
  // set, reprogram() keeps the skip-free arming for that core so a
  // wakeup-heavy phase cannot thrash quiet entry. Timer-placement only;
  // simulated behaviour is identical either way.
  std::vector<std::uint8_t> quiet_burned_;
  /// Slice length of a core running exactly one task (the only slice a
  /// quiet window ever restarts with).
  SimDuration solo_slice_ = 0;
  /// Engine batch-cookie domain for this kernel's boundary timers.
  std::uint32_t batch_domain_ = 0;
  // Incrementally-updated placement masks (see refresh_cpu_masks):
  // idle_ holds every cpu with no current task and an empty runqueue,
  // idle_socket_[s] the idle cpus of socket s, busy_ every cpu with a
  // current task, and queued_ every cpu with a nonempty runqueue — so
  // wakeup placement is `allowed & idle_socket_[s]` plus one nth_set
  // pick, the cgroup aggregation sweep walks only busy cpus, and the
  // steal/balance scans word-scan only cpus with queued work instead of
  // all num_cpus() runqueues.
  hw::CpuSet idle_;
  hw::CpuSet busy_;
  hw::CpuSet queued_;
  std::vector<hw::CpuSet> idle_socket_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<Cgroup>> cgroups_;
  std::vector<SchedObserver*> observers_;
  std::vector<std::function<void(Task&)>> on_exit_;

  int live_tasks_ = 0;
  hw::CpuId irq_rr_ = 0;  // round-robin irq distribution for unpinned IO
  bool housekeeping_active_ = false;
  sim::EventHandle housekeeping_;
  std::vector<SimTime> cgroup_next_period_;  // parallel to cgroups_
  SimTime next_balance_ = 0;
  KernelStats stats_;
};

}  // namespace pinsim::os
