// Wakeup placement, IO submission/completion, and interrupt handling.
//
// Placement policy is where vanilla and pinned platforms diverge:
//  - sticky tasks (pinned platforms) return to their previous cpu even if
//    it is busy — IO affinity beats load balance;
//  - everyone else prefers the previous cpu when idle, then an idle cpu
//    near the previous one, then the least-loaded allowed cpu, with
//    random tie-breaking — which is what scatters a vanilla container
//    across all 112 host cores.
#include "os/kernel.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::os {

hw::CpuSet Kernel::allowed_cpus(const Task& task) const {
  hw::CpuSet allowed = topology_->all_cpus();
  if (!task.affinity.empty()) allowed = allowed & task.affinity;
  if (task.cgroup != nullptr && !task.cgroup->cpuset().empty()) {
    allowed = allowed & task.cgroup->cpuset();
  }
  PINSIM_CHECK_MSG(!allowed.empty(),
                   "task " << task.name() << " has no allowed cpus");
  return allowed;
}

hw::CpuId Kernel::place_task(Task& task, hw::CpuId hint) {
  const hw::CpuSet allowed = allowed_cpus(task);
  const hw::CpuId prev = task.last_cpu;

  if (task.sticky_wakeup && prev >= 0 && allowed.contains(prev)) {
    return prev;
  }
  // wake_affine: with a locality hint (the IRQ handler's or the message
  // poster's cpu), the scheduler pulls the wakee toward the hint's LLC
  // domain; the previous cpu only wins when it shares that domain.
  const int affine_socket =
      hint >= 0 ? topology_->socket_of(hint)
                : (prev >= 0 ? topology_->socket_of(prev) : -1);
  const bool prev_idle =
      prev >= 0 && allowed.contains(prev) && idle_.contains(prev);
  if (prev_idle &&
      (affine_socket < 0 || topology_->socket_of(prev) == affine_socket)) {
    return prev;
  }

  // Idle cpus, preferring the affine socket: mask intersections over
  // the incrementally-maintained idle masks plus one nth_set pick. The
  // candidate sets — and the single uniform draw over each, in
  // ascending cpu order — are exactly the historical ones, so the RNG
  // stream (and with it every figure) is unchanged.
  auto pick_random = [this](const hw::CpuSet& cpus, int count) {
    return cpus.nth_set(static_cast<int>(
        rng_.uniform_int(0, static_cast<std::int64_t>(count) - 1)));
  };
  if (affine_socket >= 0) {
    const hw::CpuSet idle_near =
        allowed & idle_socket_[static_cast<std::size_t>(affine_socket)];
    const int near_count = idle_near.count();
    if (near_count > 0) return pick_random(idle_near, near_count);
  }
  if (prev_idle) return prev;
  hw::CpuSet idle_far = allowed & idle_;
  if (affine_socket >= 0) {
    // Every idle cpu of the affine socket is in its idle mask, so this
    // subtracts exactly the near candidates handled above.
    idle_far =
        idle_far & ~idle_socket_[static_cast<std::size_t>(affine_socket)];
  }
  const int far_count = idle_far.count();
  if (far_count > 0) return pick_random(idle_far, far_count);

  // No idle cpu: like wake_affine, choose only between the previous cpu
  // (cache-warm) and the waker's (hint), whichever queues shorter —
  // never a random scatter, which would turn every busy wakeup into a
  // cache refill.
  auto load_of = [this](hw::CpuId cpu) {
    const auto i = static_cast<std::size_t>(cpu);
    return rq_[i].size() + (current_[i] != nullptr ? 1 : 0);
  };
  const bool prev_ok = prev >= 0 && allowed.contains(prev);
  const bool hint_ok = hint >= 0 && allowed.contains(hint);
  if (prev_ok && hint_ok) {
    return load_of(hint) < load_of(prev) ? hint : prev;
  }
  if (prev_ok) return prev;
  if (hint_ok) return hint;

  // Fresh task with no history: least loaded, random among ties —
  // count the ties in one pass over `allowed`'s set bits, then select
  // the drawn one in a second.
  int best_load = INT32_MAX;
  int ties = 0;
  for (hw::CpuId cpu = allowed.first_set_after(-1); cpu >= 0;
       cpu = allowed.first_set_after(cpu)) {
    const int load = load_of(cpu);
    if (load < best_load) {
      best_load = load;
      ties = 0;
    }
    if (load == best_load) ++ties;
  }
  PINSIM_CHECK(ties > 0);
  std::int64_t pick = rng_.uniform_int(0, ties - 1);
  for (hw::CpuId cpu = allowed.first_set_after(-1); cpu >= 0;
       cpu = allowed.first_set_after(cpu)) {
    if (load_of(cpu) == best_load && pick-- == 0) return cpu;
  }
  PINSIM_CHECK_MSG(false, "tie pick fell off the allowed set");
  return allowed.first();
}

// Exits the quiet window (see the comment at the exit_quiet call)
// before the enqueue; the wakeup-preemption slice rewrite at the
// bottom therefore runs with the window closed.
// pinsim-lint: quiet-mutator
void Kernel::enqueue_task(Task& task, hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  if (task.cgroup != nullptr && task.cgroup->throttled_on(cpu)) {
    task.state = TaskState::Throttled;
    task.cgroup->park(task);
    return;
  }
  // A wakeup enqueue is exactly the preemption opportunity the quiet
  // window assumed away. Exit before anything reads the running task —
  // the preempt check below compares against its vruntime, which the
  // replay brings up to date.
  exit_quiet(cpu);
  task.state = TaskState::Runnable;
  task.enqueued_at = now();
  task.queued_cpu = cpu;
  rq_[i].enqueue(task);
  refresh_cpu_masks(cpu);

  if (current_[i] == nullptr) {
    dispatch(cpu);
    return;
  }
  // Wakeup preemption: mark the running slice expired; the boundary event
  // (rescheduled to fire immediately) performs the switch. Doing it via
  // the boundary keeps this safe even when the wakeup happens while the
  // running task is mid-action (e.g. it posted the message).
  Task& running = *current_[i];
  if (running.vruntime - task.vruntime >
      params_.wakeup_preempt_granularity) {
    charge_running(cpu);
    slice_length_[i] = now() - slice_started_[i];
    // The running task may be mid-action (it might be the waker) with no
    // outstanding cost; its caller reprograms after choosing the next
    // action, and the expired slice then takes effect.
    if (remaining_cost(running) > 0) reprogram(cpu);
  }
}

void Kernel::wake_common(Task& task, SimDuration extra_debt,
                         hw::CpuId hint) {
  PINSIM_CHECK_MSG(task.state == TaskState::Blocked,
                   "wake of non-blocked task " << task.name() << " in state "
                                               << to_string(task.state));
  const SimDuration blocked = now() - task.blocked_at;
  task.stats.block_time += blocked;
  ++task.stats.wakeups;
  ++stats_.wakeups;
  notify([&](SchedObserver& o) { o.off_cpu(task, blocked); });

  task.overhead_debt += costs_->sched_pick + costs_->kernel_entry + extra_debt;
  // Grouped tasks pay usage tracking on every scheduling event — one
  // user->kernel transition per cgroups invocation (paper §IV-B).
  if (task.cgroup != nullptr) task.overhead_debt += costs_->cgroup_account;
  // Cache-hot wakeup (wake_affine): after a short block the previous cpu
  // still holds the task's state — ignore the waker locality hint.
  if (blocked < costs_->cache_hot_window) hint = -1;
  const hw::CpuId cpu = place_task(task, hint);
  if (params_.sleeper_credit) {
    task.vruntime = std::max(
        task.vruntime, rq_[static_cast<std::size_t>(cpu)].min_vruntime() -
                           params_.sched_latency);
  }
  enqueue_task(task, cpu);
}

void Kernel::wake(Task& task) { wake_common(task, 0); }

void Kernel::submit_io(Task& task, const Action& action) {
  PINSIM_CHECK(action.device != nullptr);
  task.io_active = true;
  ++task.stats.io_ops;
  Task* waiter = &task;
  action.device->submit(action.request,
                        [this, waiter] { io_complete(*waiter); });
}

hw::CpuId Kernel::irq_target(const Task& task) {
  // Pinned platforms steer device interrupts to the cpu the waiting task
  // last ran on (IRQ affinity set alongside the cpuset). The default is
  // the device's own (stable) IRQ affinity: round-robin over its queue
  // cpus, which all live on the first socket — so lightly loaded tasks
  // gravitate there and stay cache/NUMA-local, while an overloaded small
  // container spills across sockets and pays for it.
  const hw::CpuSet allowed = allowed_cpus(task);
  const bool pinned = allowed.count() < topology_->num_cpus();
  if (pinned && task.last_cpu >= 0 && allowed.contains(task.last_cpu)) {
    return task.last_cpu;
  }
  const int device_cpus = topology_->socket_cpus(0).count();
  irq_rr_ = (irq_rr_ + 1) % device_cpus;
  return irq_rr_;
}

void Kernel::charge_irq(hw::CpuId cpu) {
  ++stats_.irqs;
  notify([&](SchedObserver& o) { o.on_irq(cpu); });
  const auto i = static_cast<std::size_t>(cpu);
  if (current_[i] != nullptr) {
    // The handler steals time from whatever runs on the interrupted cpu.
    charge_running(cpu);
    current_[i]->overhead_debt += costs_->irq_service + costs_->kernel_entry;
    reprogram(cpu);
  }
}

void Kernel::io_complete(Task& task) {
  const hw::CpuId irq_cpu = irq_target(task);
  charge_irq(irq_cpu);
  // IO return path: interrupt bottom half + syscall return. The wakeup
  // originates on the IRQ cpu (wake_affine pulls the task toward it).
  wake_common(task, costs_->kernel_entry, irq_cpu);
}

}  // namespace pinsim::os
