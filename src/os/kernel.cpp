// Core scheduling: dispatch, charging, slice boundaries, action protocol.
#include "os/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace pinsim::os {

Kernel::Kernel(sim::Engine& engine, const hw::Topology& topology,
               const hw::CostModel& costs, Rng rng, SchedParams params,
               std::string name)
    : engine_(&engine),
      topology_(&topology),
      costs_(&costs),
      cache_model_(topology, costs),
      rng_(rng),
      params_(params),
      name_(std::move(name)),
      cores_(static_cast<std::size_t>(topology.num_cpus())) {
  PINSIM_CHECK(params_.sched_latency > 0);
  PINSIM_CHECK(params_.min_granularity > 0);
  idle_socket_.resize(static_cast<std::size_t>(topology.sockets()));
  for (int cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    refresh_cpu_masks(cpu);  // everything starts idle
  }
}

void Kernel::refresh_cpu_masks(hw::CpuId cpu) {
  const auto& core = cores_[static_cast<std::size_t>(cpu)];
  auto& socket_idle =
      idle_socket_[static_cast<std::size_t>(topology_->socket_of(cpu))];
  if (core.current != nullptr) {
    busy_.add(cpu);
  } else {
    busy_.remove(cpu);
  }
  if (core.rq.empty()) {
    queued_.remove(cpu);
  } else {
    queued_.add(cpu);
  }
  if (core.current == nullptr && core.rq.empty()) {
    idle_.add(cpu);
    socket_idle.add(cpu);
  } else {
    idle_.remove(cpu);
    socket_idle.remove(cpu);
  }
}

Kernel::~Kernel() = default;

Cgroup& Kernel::create_cgroup(Cgroup::Config config) {
  if (!config.cpuset.empty()) {
    PINSIM_CHECK_MSG(config.cpuset.subset_of(topology_->all_cpus()),
                     "cgroup cpuset outside host topology");
  }
  cgroups_.push_back(std::make_unique<Cgroup>(std::move(config), *costs_));
  return *cgroups_.back();
}

Task& Kernel::create_task(std::string name,
                          std::unique_ptr<TaskDriver> driver,
                          TaskConfig config) {
  const Task::Id id = static_cast<Task::Id>(tasks_.size());
  tasks_.push_back(
      std::make_unique<Task>(id, std::move(name), std::move(driver)));
  Task& task = *tasks_.back();
  task.affinity = config.affinity;
  if (!task.affinity.empty()) {
    PINSIM_CHECK_MSG(!(task.affinity & topology_->all_cpus()).empty(),
                     "task affinity disjoint from host cpus");
  }
  task.weight = config.weight;
  task.working_set_mb = config.working_set_mb;
  task.compute_inflation = config.compute_inflation;
  task.numa_home = config.numa_home;
  task.device_local_start = config.device_local_start;
  if (config.cgroup != nullptr) {
    config.cgroup->add_member(task);
  }
  on_exit_.push_back(std::move(config.on_exit));
  return task;
}

void Kernel::start_task(Task& task) {
  PINSIM_CHECK_MSG(task.state == TaskState::Created,
                   "task " << task.name() << " started twice");
  ++live_tasks_;
  task.stats.started_at = now();
  task.overhead_debt += costs_->sched_pick;  // fork/exec placement work
  hw::CpuId hint = -1;
  if (task.device_local_start) {
    // The request was accepted in the device's softirq context; the new
    // process starts near that cpu.
    hint = irq_target(task);
  }
  const hw::CpuId cpu = place_task(task, hint);
  task.vruntime = cores_[static_cast<std::size_t>(cpu)].rq.min_vruntime();
  ensure_housekeeping();
  enqueue_task(task, cpu);
}

bool Kernel::idle_cpu(hw::CpuId cpu) const {
  const auto& core = cores_[static_cast<std::size_t>(cpu)];
  return core.current == nullptr && core.rq.empty();
}

void Kernel::add_observer(SchedObserver& observer) {
  observers_.push_back(&observer);
}

bool Kernel::run_until_quiescent(SimTime horizon) {
  return engine_->run_until([this] { return live_tasks_ == 0; }, horizon);
}

SimDuration Kernel::slice_for(const CoreState& core) const {
  const int runnable = core.rq.size() + (core.current != nullptr ? 1 : 0);
  const SimDuration share =
      params_.sched_latency / std::max(1, runnable);
  return std::max(params_.min_granularity, share);
}

SimDuration Kernel::remaining_cost(const Task& task) const {
  return task.overhead_debt + task.burst_remaining;
}

double Kernel::numa_slowdown(const Task& task, hw::CpuId cpu) const {
  if (task.numa_home == nullptr || *task.numa_home < 0) return 1.0;
  return topology_->socket_of(cpu) == *task.numa_home
             ? 1.0
             : 1.0 + costs_->numa_remote_tax;
}

SimDuration Kernel::remaining_cost_on(const Task& task,
                                      hw::CpuId cpu) const {
  const double slow = numa_slowdown(task, cpu);
  return task.overhead_debt +
         static_cast<SimDuration>(
             std::llround(static_cast<double>(task.burst_remaining) * slow));
}

hw::CpuId Kernel::cpu_of_running(const Task& task) const {
  if (task.state != TaskState::Running) return -1;
  const hw::CpuId cpu = task.last_cpu;
  PINSIM_CHECK(cpu >= 0);
  PINSIM_CHECK(cores_[static_cast<std::size_t>(cpu)].current == &task);
  return cpu;
}

void Kernel::dispatch(hw::CpuId cpu) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  PINSIM_CHECK(core.current == nullptr);
  if (core.rq.empty()) {
    steal_for(cpu);
  }
  // Park throttled-group tasks encountered at dispatch (lazy parking).
  Task* next = nullptr;
  while (!core.rq.empty()) {
    Task& candidate = core.rq.pop_min();
    candidate.queued_cpu = -1;
    if (candidate.cgroup != nullptr && candidate.cgroup->throttled_on(cpu)) {
      candidate.state = TaskState::Throttled;
      candidate.cgroup->park(candidate);
      continue;
    }
    next = &candidate;
    break;
  }
  if (next == nullptr) {
    core.boundary.cancel();
    refresh_cpu_masks(cpu);
    return;  // idle
  }

  Task& task = *next;
  ++stats_.context_switches;
  ++task.stats.context_switches;
  notify([&](SchedObserver& o) { o.on_context_switch(cpu); });
  task.overhead_debt += costs_->context_switch;
  // Usage tracking for grouped tasks runs at every scheduling event
  // (paper §IV-B: each cgroups invocation is a kernel-space transition).
  if (task.cgroup != nullptr) task.overhead_debt += costs_->cgroup_account;

  if (task.last_cpu != cpu) {
    const SimDuration penalty = cache_model_.migration_penalty(
        task.last_cpu, cpu, task.working_set_mb, task.io_active);
    if (task.last_cpu >= 0) {
      ++stats_.migrations;
      ++task.stats.migrations;
      if (topology_->distance(task.last_cpu, cpu) ==
          hw::CpuDistance::CrossSocket) {
        ++stats_.cross_socket_migrations;
      }
      notify([&](SchedObserver& o) {
        o.on_migration(task, task.last_cpu, cpu, penalty);
      });
    }
    task.overhead_debt += penalty;
    stats_.migration_penalty_total += penalty;
  }

  task.stats.wait_time += now() - task.enqueued_at;
  task.last_cpu = cpu;
  // First-touch NUMA: the process's memory home is the socket where its
  // first thread runs.
  if (task.numa_home != nullptr && *task.numa_home < 0) {
    *task.numa_home = topology_->socket_of(cpu);
  }
  task.state = TaskState::Running;
  core.current = &task;
  core.charged_until = now();
  core.slice_started = now();
  core.slice_length = slice_for(core);
  // Masks must be current before advance_actions: the task may post a
  // message whose wakeup placement reads them.
  refresh_cpu_masks(cpu);

  if (remaining_cost(task) == 0) {
    if (!advance_actions(cpu, task)) {
      core.current = nullptr;
      dispatch(cpu);
      return;
    }
  }
  reprogram(cpu);
}

void Kernel::charge_running(hw::CpuId cpu) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  Task* task = core.current;
  if (task == nullptr) {
    core.charged_until = now();
    return;
  }
  const SimDuration elapsed = now() - core.charged_until;
  PINSIM_CHECK(elapsed >= 0);
  if (elapsed == 0) return;
  core.charged_until = now();

  const SimDuration paid = std::min(task->overhead_debt, elapsed);
  task->overhead_debt -= paid;
  task->stats.overhead_paid += paid;
  const SimDuration worked = elapsed - paid;
  if (worked > 0) {
    // On a NUMA-remote socket the same wall time advances the burst more
    // slowly; the shortfall is remote-access stall time.
    const double slow = numa_slowdown(*task, cpu);
    SimDuration effective = static_cast<SimDuration>(
        std::llround(static_cast<double>(worked) / slow));
    effective = std::min(effective, task->burst_remaining);
    task->burst_remaining -= effective;
    task->burst_consumed += effective;
    task->stats.overhead_paid += worked - effective;
    task->stats.work_done = static_cast<SimDuration>(
        std::llround(static_cast<double>(task->burst_consumed) /
                     task->compute_inflation));
  }
  task->stats.cpu_time += elapsed;
  task->vruntime += static_cast<SimDuration>(
      static_cast<double>(elapsed) / task->weight);

  if (task->cgroup != nullptr) {
    const SimDuration accounting = task->cgroup->charge(cpu, elapsed);
    if (accounting > 0) task->overhead_debt += accounting;
    // Throttling is enforced lazily at the next boundary/dispatch.
  }
}

void Kernel::arm_boundary(hw::CpuId cpu, SimDuration delay) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  const SimTime when = now() + delay;
  if (engine_->reschedule(core.boundary, when)) return;
  core.boundary =
      engine_->schedule_tracked_at(when, [this, cpu] { on_boundary(cpu); });
}

void Kernel::reprogram(hw::CpuId cpu) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  Task* task = core.current;
  if (task == nullptr) {
    core.boundary.cancel();
    return;
  }
  const SimDuration until_slice =
      core.slice_started + core.slice_length - now();
  const SimDuration cost = remaining_cost_on(*task, cpu);
  PINSIM_CHECK_MSG(cost > 0, "running task with nothing to do: "
                                 << task->name());
  SimDuration next = cost;
  if (until_slice < next) next = std::max<SimDuration>(until_slice, 1);
  if (task->cgroup != nullptr && task->cgroup->has_quota()) {
    // Quota-governed tasks account at fine granularity and never run past
    // the group's remaining runtime, so bandwidth is enforced exactly.
    next = std::min(next, costs_->cgroup_aggregate_interval);
    const SimDuration horizon = task->cgroup->runtime_horizon(cpu);
    next = std::min(next, std::max<SimDuration>(horizon, 1));
  }
  arm_boundary(cpu, next);
}

void Kernel::on_boundary(hw::CpuId cpu) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  Task* task = core.current;
  PINSIM_CHECK(task != nullptr);
  charge_running(cpu);

  if (task->cgroup != nullptr && task->cgroup->throttled_on(cpu)) {
    notify([&](SchedObserver& o) {
      o.on_slice(*task, cpu, now() - core.slice_started);
    });
    ++stats_.throttle_events;
    notify([&](SchedObserver& o) { o.on_throttle(*task->cgroup); });
    task->state = TaskState::Throttled;
    task->cgroup->park(*task);
    core.current = nullptr;
    dispatch(cpu);
    return;
  }

  if (remaining_cost(*task) == 0) {
    if (!advance_actions(cpu, *task)) {
      core.current = nullptr;
      dispatch(cpu);
      return;
    }
  }

  if (now() >= core.slice_started + core.slice_length) {
    if (!core.rq.empty()) {
      stop_running(cpu, /*requeue=*/true);
      dispatch(cpu);
      return;
    }
    // Alone on the cpu: start a fresh slice window.
    core.slice_started = now();
    core.slice_length = slice_for(core);
  }
  reprogram(cpu);
}

void Kernel::stop_running(hw::CpuId cpu, bool requeue) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  Task* task = core.current;
  PINSIM_CHECK(task != nullptr);
  notify([&](SchedObserver& o) {
    o.on_slice(*task, cpu, now() - core.slice_started);
  });
  ++stats_.preemptions;
  core.current = nullptr;
  if (requeue) {
    task->state = TaskState::Runnable;
    task->enqueued_at = now();
    task->queued_cpu = cpu;
    core.rq.enqueue(*task);
  }
  refresh_cpu_masks(cpu);
}

bool Kernel::advance_actions(hw::CpuId cpu, Task& task) {
  auto& core = cores_[static_cast<std::size_t>(cpu)];
  // Busy-polling receive: burn another poll chunk unless the message
  // arrived, in which case the Recv completes and the driver proceeds.
  if (task.spin_recv) {
    if (task.pending_msgs == 0) {
      task.overhead_debt += costs_->spin_poll_chunk;
      return true;
    }
    task.spin_recv = false;
    --task.pending_msgs;
  }
  for (int guard = 0; guard < 100000; ++guard) {
    const Action action = task.driver().next(task);
    switch (action.kind) {
      case Action::Kind::Compute: {
        if (action.work == 0) continue;
        task.burst_remaining = static_cast<SimDuration>(
            static_cast<double>(action.work) * task.compute_inflation);
        return true;
      }
      case Action::Kind::Post: {
        PINSIM_CHECK(action.target != nullptr);
        deliver(task, *action.target, action.count);
        continue;
      }
      case Action::Kind::Recv: {
        if (task.pending_msgs > 0) {
          --task.pending_msgs;
          continue;
        }
        if (action.spin) {
          task.spin_recv = true;
          task.overhead_debt += costs_->spin_poll_chunk;
          return true;
        }
        task.recv_waiting = true;
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - core.slice_started);
        });
        return false;
      }
      case Action::Kind::Io: {
        submit_io(task, action);
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - core.slice_started);
        });
        return false;
      }
      case Action::Kind::Sleep: {
        Task* woken = &task;
        engine_->schedule_detached(action.duration,
                          [this, woken] { wake_common(*woken, 0); });
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - core.slice_started);
        });
        return false;
      }
      case Action::Kind::Exit: {
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - core.slice_started);
        });
        finish_task(task);
        return false;
      }
    }
  }
  PINSIM_CHECK_MSG(false, "driver for " << task.name()
                                        << " spun 100000 zero-cost actions");
  return false;
}

void Kernel::block_task(Task& task) {
  PINSIM_CHECK(task.state == TaskState::Running);
  task.state = TaskState::Blocked;
  task.blocked_at = now();
}

void Kernel::finish_task(Task& task) {
  PINSIM_CHECK(task.state == TaskState::Running);
  task.state = TaskState::Finished;
  task.stats.finished_at = now();
  --live_tasks_;
  auto& on_exit = on_exit_[static_cast<std::size_t>(task.id())];
  if (on_exit) on_exit(task);
}

void Kernel::deliver(Task& from, Task& to, int count) {
  PINSIM_CHECK(count >= 1);
  from.stats.messages_sent += count;
  // Host-mediated IPC: syscall + wake chain per message, paid by the
  // sender. (The guest kernel overrides this cost for intra-VM messages.)
  from.overhead_debt += costs_->host_ipc * count;
  if (from.cgroup != nullptr && from.cgroup == to.cgroup) {
    // Intra-container traffic crosses the bridge network path and raises
    // a softirq on some host cpu.
    from.overhead_debt += costs_->container_net_msg * count;
    charge_irq(irq_rr_ = (irq_rr_ + 1) % topology_->num_cpus());
  }
  to.pending_msgs += count;
  if (to.state == TaskState::Blocked && to.recv_waiting) {
    to.recv_waiting = false;
    --to.pending_msgs;
    // The wakeup originates on the sender's cpu.
    wake_common(to, 0, from.last_cpu);
  }
}

void Kernel::post_external(Task& task, int count) {
  PINSIM_CHECK(count >= 1);
  task.pending_msgs += count;
  if (task.state == TaskState::Blocked && task.recv_waiting) {
    task.recv_waiting = false;
    --task.pending_msgs;
    // External messages arrive through the NIC: the wake originates on
    // whichever cpu took the interrupt.
    const hw::CpuId irq_cpu = irq_target(task);
    charge_irq(irq_cpu);
    wake_common(task, costs_->kernel_entry, irq_cpu);
  }
}

void Kernel::post_local(Task& task, int count) {
  PINSIM_CHECK(count >= 1);
  task.pending_msgs += count;
  if (task.state == TaskState::Blocked && task.recv_waiting) {
    task.recv_waiting = false;
    --task.pending_msgs;
    wake_common(task, costs_->kernel_entry, task.last_cpu);
  }
}

}  // namespace pinsim::os
