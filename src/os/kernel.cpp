// Core scheduling: dispatch, charging, slice boundaries, action protocol.
#include "os/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace pinsim::os {

Kernel::Kernel(sim::Engine& engine, const hw::Topology& topology,
               const hw::CostModel& costs, Rng rng, SchedParams params,
               std::string name)
    : engine_(&engine),
      topology_(&topology),
      costs_(&costs),
      cache_model_(topology, costs),
      rng_(rng),
      params_(params),
      name_(std::move(name)) {
  PINSIM_CHECK(params_.sched_latency > 0);
  PINSIM_CHECK(params_.min_granularity > 0);
  const auto n = static_cast<std::size_t>(topology.num_cpus());
  current_.resize(n, nullptr);
  rq_.resize(n);
  boundary_.resize(n);
  charged_until_.resize(n, 0);
  slice_started_.resize(n, 0);
  slice_length_.resize(n, 0);
  quiet_.resize(n, 0);
  quiet_b0_.resize(n, 0);
  quiet_land_.resize(n, 0);
  quiet_task_.resize(n, nullptr);
  quiet_burned_.resize(n, 0);
  solo_slice_ = std::max(params_.min_granularity, params_.sched_latency);
  batch_domain_ = engine_->new_batch_domain();
  idle_socket_.resize(static_cast<std::size_t>(topology.sockets()));
  for (int cpu = 0; cpu < topology.num_cpus(); ++cpu) {
    refresh_cpu_masks(cpu);  // everything starts idle
  }
}

void Kernel::refresh_cpu_masks(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  auto& socket_idle =
      idle_socket_[static_cast<std::size_t>(topology_->socket_of(cpu))];
  if (current_[i] != nullptr) {
    busy_.add(cpu);
  } else {
    busy_.remove(cpu);
  }
  if (rq_[i].empty()) {
    queued_.remove(cpu);
  } else {
    queued_.add(cpu);
  }
  if (current_[i] == nullptr && rq_[i].empty()) {
    idle_.add(cpu);
    socket_idle.add(cpu);
  } else {
    idle_.remove(cpu);
    socket_idle.remove(cpu);
  }
}

Kernel::~Kernel() = default;

Cgroup& Kernel::create_cgroup(Cgroup::Config config) {
  if (!config.cpuset.empty()) {
    PINSIM_CHECK_MSG(config.cpuset.subset_of(topology_->all_cpus()),
                     "cgroup cpuset outside host topology");
  }
  cgroups_.push_back(std::make_unique<Cgroup>(std::move(config), *costs_));
  return *cgroups_.back();
}

Task& Kernel::create_task(std::string name,
                          std::unique_ptr<TaskDriver> driver,
                          TaskConfig config) {
  const Task::Id id = static_cast<Task::Id>(tasks_.size());
  tasks_.push_back(
      std::make_unique<Task>(id, std::move(name), std::move(driver)));
  Task& task = *tasks_.back();
  // Every queue could in the worst case hold every task; pre-sizing
  // here keeps Runqueue::enqueue allocation-free on the hot path.
  for (Runqueue& rq : rq_) rq.reserve(tasks_.size());
  task.affinity = config.affinity;
  if (!task.affinity.empty()) {
    PINSIM_CHECK_MSG(!(task.affinity & topology_->all_cpus()).empty(),
                     "task affinity disjoint from host cpus");
  }
  task.weight = config.weight;
  task.working_set_mb = config.working_set_mb;
  task.compute_inflation = config.compute_inflation;
  task.numa_home = config.numa_home;
  task.device_local_start = config.device_local_start;
  if (config.cgroup != nullptr) {
    config.cgroup->add_member(task);
  }
  on_exit_.push_back(std::move(config.on_exit));
  return task;
}

void Kernel::start_task(Task& task) {
  PINSIM_CHECK_MSG(task.state == TaskState::Created,
                   "task " << task.name() << " started twice");
  ++live_tasks_;
  task.stats.started_at = now();
  task.overhead_debt += costs_->sched_pick;  // fork/exec placement work
  hw::CpuId hint = -1;
  if (task.device_local_start) {
    // The request was accepted in the device's softirq context; the new
    // process starts near that cpu.
    hint = irq_target(task);
  }
  const hw::CpuId cpu = place_task(task, hint);
  task.vruntime = rq_[static_cast<std::size_t>(cpu)].min_vruntime();
  ensure_housekeeping();
  enqueue_task(task, cpu);
}

bool Kernel::idle_cpu(hw::CpuId cpu) const {
  const auto i = static_cast<std::size_t>(cpu);
  return current_[i] == nullptr && rq_[i].empty();
}

void Kernel::add_observer(SchedObserver& observer) {
  observers_.push_back(&observer);
}

bool Kernel::run_until_quiescent(SimTime horizon) {
  return engine_->run_until([this] { return live_tasks_ == 0; }, horizon);
}

SimDuration Kernel::slice_for(hw::CpuId cpu) const {
  const auto i = static_cast<std::size_t>(cpu);
  const int runnable = rq_[i].size() + (current_[i] != nullptr ? 1 : 0);
  const SimDuration share =
      params_.sched_latency / std::max(1, runnable);
  return std::max(params_.min_granularity, share);
}

SimDuration Kernel::remaining_cost(const Task& task) const {
  return task.overhead_debt + task.burst_remaining;
}

double Kernel::numa_slowdown(const Task& task, hw::CpuId cpu) const {
  if (task.numa_home == nullptr || *task.numa_home < 0) return 1.0;
  return topology_->socket_of(cpu) == *task.numa_home
             ? 1.0
             : 1.0 + costs_->numa_remote_tax;
}

SimDuration Kernel::remaining_cost_on(const Task& task,
                                      hw::CpuId cpu) const {
  const double slow = numa_slowdown(task, cpu);
  return task.overhead_debt +
         static_cast<SimDuration>(
             std::llround(static_cast<double>(task.burst_remaining) * slow));
}

hw::CpuId Kernel::cpu_of_running(const Task& task) const {
  if (task.state != TaskState::Running) return -1;
  const hw::CpuId cpu = task.last_cpu;
  PINSIM_CHECK(cpu >= 0);
  PINSIM_CHECK(current_[static_cast<std::size_t>(cpu)] == &task);
  return cpu;
}

// A quiet cpu always has a running task, so dispatch (which requires
// current_ == nullptr) can never observe an open quiet window: every
// revocation path exits it before clearing current_.
// pinsim-lint: quiet-mutator
void Kernel::dispatch(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  PINSIM_CHECK(current_[i] == nullptr);
  if (rq_[i].empty()) {
    steal_for(cpu);
  }
  // Park throttled-group tasks encountered at dispatch (lazy parking).
  Task* next = nullptr;
  while (!rq_[i].empty()) {
    Task& candidate = rq_[i].pop_min();
    candidate.queued_cpu = -1;
    if (candidate.cgroup != nullptr && candidate.cgroup->throttled_on(cpu)) {
      candidate.state = TaskState::Throttled;
      candidate.cgroup->park(candidate);
      continue;
    }
    next = &candidate;
    break;
  }
  if (next == nullptr) {
    boundary_[i].cancel();
    refresh_cpu_masks(cpu);
    return;  // idle
  }

  Task& task = *next;
  ++stats_.context_switches;
  ++task.stats.context_switches;
  notify([&](SchedObserver& o) { o.on_context_switch(cpu); });
  task.overhead_debt += costs_->context_switch;
  // Usage tracking for grouped tasks runs at every scheduling event
  // (paper §IV-B: each cgroups invocation is a kernel-space transition).
  if (task.cgroup != nullptr) task.overhead_debt += costs_->cgroup_account;

  if (task.last_cpu != cpu) {
    const SimDuration penalty = cache_model_.migration_penalty(
        task.last_cpu, cpu, task.working_set_mb, task.io_active);
    if (task.last_cpu >= 0) {
      ++stats_.migrations;
      ++task.stats.migrations;
      if (topology_->distance(task.last_cpu, cpu) ==
          hw::CpuDistance::CrossSocket) {
        ++stats_.cross_socket_migrations;
      }
      notify([&](SchedObserver& o) {
        o.on_migration(task, task.last_cpu, cpu, penalty);
      });
    }
    task.overhead_debt += penalty;
    stats_.migration_penalty_total += penalty;
  }

  task.stats.wait_time += now() - task.enqueued_at;
  task.last_cpu = cpu;
  // First-touch NUMA: the process's memory home is the socket where its
  // first thread runs.
  if (task.numa_home != nullptr && *task.numa_home < 0) {
    *task.numa_home = topology_->socket_of(cpu);
  }
  task.state = TaskState::Running;
  current_[i] = &task;
  charged_until_[i] = now();
  slice_started_[i] = now();
  slice_length_[i] = slice_for(cpu);
  // Masks must be current before advance_actions: the task may post a
  // message whose wakeup placement reads them.
  refresh_cpu_masks(cpu);

  if (remaining_cost(task) == 0) {
    if (!advance_actions(cpu, task)) {
      current_[i] = nullptr;
      dispatch(cpu);
      return;
    }
  }
  reprogram(cpu);
}

// Calls the funnel first; everything downstream (charge_up_to) then
// runs with the quiet window closed.
// pinsim-lint: quiet-mutator
void Kernel::charge_running(hw::CpuId cpu) {
  exit_quiet(cpu);
  charge_up_to(cpu, now());
}

void Kernel::charge_up_to(hw::CpuId cpu, SimTime t_end) {
  const auto i = static_cast<std::size_t>(cpu);
  Task* task = current_[i];
  if (task == nullptr) {
    charged_until_[i] = t_end;
    return;
  }
  const SimDuration elapsed = t_end - charged_until_[i];
  PINSIM_CHECK(elapsed >= 0);
  if (elapsed == 0) return;
  charged_until_[i] = t_end;

  const SimDuration paid = std::min(task->overhead_debt, elapsed);
  task->overhead_debt -= paid;
  task->stats.overhead_paid += paid;
  const SimDuration worked = elapsed - paid;
  if (worked > 0) {
    // On a NUMA-remote socket the same wall time advances the burst more
    // slowly; the shortfall is remote-access stall time.
    const double slow = numa_slowdown(*task, cpu);
    SimDuration effective = static_cast<SimDuration>(
        std::llround(static_cast<double>(worked) / slow));
    effective = std::min(effective, task->burst_remaining);
    task->burst_remaining -= effective;
    task->burst_consumed += effective;
    task->stats.overhead_paid += worked - effective;
    task->stats.work_done = static_cast<SimDuration>(
        std::llround(static_cast<double>(task->burst_consumed) /
                     task->compute_inflation));
  }
  task->stats.cpu_time += elapsed;
  task->vruntime += static_cast<SimDuration>(
      static_cast<double>(elapsed) / task->weight);

  if (task->cgroup != nullptr) {
    const SimDuration accounting = task->cgroup->charge(cpu, elapsed);
    if (accounting > 0) task->overhead_debt += accounting;
    // Throttling is enforced lazily at the next boundary/dispatch.
  }
}

void Kernel::exit_quiet(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  if (!quiet_[i]) return;
  quiet_[i] = 0;
  // The invariant behind the fast-forward: nothing that could have
  // changed a scheduling decision happened while the window was open.
  // Every mutation path (wakeup enqueue, balance move, charge) exits
  // the window first, so at exit the core must still be running the
  // entry task, alone, ungrouped.
  Task* task = current_[i];
  PINSIM_CHECK_MSG(task == quiet_task_[i],
                   "quiet core " << cpu << " changed tasks mid-window");
  PINSIM_CHECK_MSG(rq_[i].empty(),
                   "quiet core " << cpu << " acquired queued work");
  PINSIM_CHECK_MSG(task->cgroup == nullptr,
                   "quiet core " << cpu << " running a grouped task");
  const SimTime b0 = quiet_b0_[i];
  const SimDuration L = solo_slice_;
  PINSIM_CHECK(now() <= quiet_land_[i]);
  std::int64_t skipped = 0;
  if (now() > b0) {
    // Replay the skipped pure-restart boundaries b_0..b_k (k the last
    // one strictly before now) as one lump charge — exact because the
    // entry predicate admits only weight-1.0, NUMA-local, ungrouped
    // tasks, for which chunked charging is associative. The slice
    // window is then the one the skip-free path would be in.
    const std::int64_t k = (now() - b0 - 1) / L;
    charge_up_to(cpu, b0 + k * L);
    slice_started_[i] = b0 + k * L;
    slice_length_[i] = L;
    skipped = k + 1;
  }
  quiet_burned_[i] = static_cast<std::uint8_t>(skipped == 0);
  engine_->note_boundaries_skipped(skipped);
  if (!boundary_[i].pending()) {
    // Landing: the parked timer itself fired (we are inside its
    // handle_boundary), which replays as a normal boundary at the last
    // restart instant before the task's real event.
    return;
  }
  // Revocation by a foreign event: put the timer where the skip-free
  // path would have it armed — the first boundary at or after now. The
  // timer currently sits parked at the last boundary before landing,
  // b0 + j_last*L; re-keying it to the instant it is already armed at
  // would burn a sequence number for nothing, so skip the no-op move.
  const std::int64_t j_last = (quiet_land_[i] - b0 - 1) / L;
  const SimTime target = b0 + skipped * L;  // == b0 when now() <= b0
  if (target != b0 + j_last * L) {
    const bool moved = engine_->reschedule(boundary_[i], target);
    PINSIM_CHECK(moved);
  }
}

void Kernel::arm_boundary(hw::CpuId cpu, SimDuration delay) {
  const auto i = static_cast<std::size_t>(cpu);
  const SimTime when = now() + delay;
  if (engine_->reschedule(boundary_[i], when)) return;
  boundary_[i] = engine_->schedule_tracked_at(
      when, (batch_domain_ << 16) | static_cast<std::uint32_t>(cpu),
      [this, cpu] { on_boundary(cpu); });
}

// The quiet-window ENTRY point: reprogram is where quiet_ flips on.
// The CHECK below proves no window is already open when it runs.
// pinsim-lint: quiet-mutator
void Kernel::reprogram(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  PINSIM_CHECK_MSG(!quiet_[i], "reprogram on a quiet core");
  Task* task = current_[i];
  if (task == nullptr) {
    boundary_[i].cancel();
    return;
  }
  const SimDuration until_slice =
      slice_started_[i] + slice_length_[i] - now();
  const SimDuration cost = remaining_cost_on(*task, cpu);
  PINSIM_CHECK_MSG(cost > 0, "running task with nothing to do: "
                                 << task->name());
  SimDuration next = cost;
  if (until_slice < next) next = std::max<SimDuration>(until_slice, 1);
  if (task->cgroup != nullptr && task->cgroup->has_quota()) {
    // Quota-governed tasks account at fine granularity and never run past
    // the group's remaining runtime, so bandwidth is enforced exactly.
    next = std::min(next, costs_->cgroup_aggregate_interval);
    const SimDuration horizon = task->cgroup->runtime_horizon(cpu);
    next = std::min(next, std::max<SimDuration>(horizon, 1));
  } else if (params_.quiet_fast_forward && rq_[i].empty() &&
             !quiet_burned_[i] &&
             cost > until_slice && until_slice >= 1 &&
             task->cgroup == nullptr && task->weight == 1.0 &&
             (task->numa_home == nullptr ||
              *task->numa_home == topology_->socket_of(cpu))) {
    // Quiet-core fast-forward. Alone on the cpu with no group and more
    // work than slice, every boundary until the task's real event is a
    // pure slice restart: charge (exact in one lump for weight-1.0
    // NUMA-local ungrouped tasks), restart the solo slice, re-arm. Any
    // event that could change that — a wakeup enqueue, a balance move,
    // an IRQ charge — funnels through exit_quiet() first. So park the
    // timer at the last boundary before the event in one move and skip
    // the intermediate fires outright.
    const SimDuration L = solo_slice_;
    const std::int64_t j_last = (cost - until_slice - 1) / L;
    if (j_last >= 1) {
      quiet_[i] = 1;
      quiet_b0_[i] = now() + until_slice;
      quiet_land_[i] = now() + cost;
      quiet_task_[i] = task;
      engine_->note_quiet_window();
      arm_boundary(cpu, until_slice + j_last * L);
      return;
    }
  }
  arm_boundary(cpu, next);
}

// The single most-fired callback in the simulator (every slice
// boundary on every cpu lands here), so the whole reachable cone is
// held to the hot-path allocation rules.
// pinsim-lint: hot
void Kernel::on_boundary(hw::CpuId cpu) {
  handle_boundary(cpu);
  // Drain every same-instant peer boundary of this kernel without
  // paying a callback dispatch each: the engine pops matching entries
  // one at a time (so a handler that re-arms or cancels a peer's entry
  // is observed before that peer pops) and hands back the cpu id.
  int peer;
  while ((peer = engine_->pop_batched_peer(batch_domain_)) >= 0) {
    handle_boundary(static_cast<hw::CpuId>(peer));
  }
}

// A real boundary fire means the window already lapsed; charge_running
// (below) exits it before any slice bookkeeping is rewritten. The
// quiet_burned_ reset ahead of that call is the one write that happens
// first, and it only re-enables future quiet entry.
// pinsim-lint: quiet-mutator
void Kernel::handle_boundary(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  Task* task = current_[i];
  PINSIM_CHECK(task != nullptr);
  // A boundary firing for real means the core survived a whole slice
  // since the last revocation, so quiet entry is worth trying again.
  quiet_burned_[i] = 0;
  charge_running(cpu);

  if (task->cgroup != nullptr && task->cgroup->throttled_on(cpu)) {
    notify([&](SchedObserver& o) {
      o.on_slice(*task, cpu, now() - slice_started_[i]);
    });
    ++stats_.throttle_events;
    notify([&](SchedObserver& o) { o.on_throttle(*task->cgroup); });
    task->state = TaskState::Throttled;
    task->cgroup->park(*task);
    current_[i] = nullptr;
    dispatch(cpu);
    return;
  }

  if (remaining_cost(*task) == 0) {
    if (!advance_actions(cpu, *task)) {
      current_[i] = nullptr;
      dispatch(cpu);
      return;
    }
  }

  if (now() >= slice_started_[i] + slice_length_[i]) {
    if (!rq_[i].empty()) {
      stop_running(cpu, /*requeue=*/true);
      dispatch(cpu);
      return;
    }
    // Alone on the cpu: start a fresh slice window.
    slice_started_[i] = now();
    slice_length_[i] = slice_for(cpu);
  }
  reprogram(cpu);
}

void Kernel::stop_running(hw::CpuId cpu, bool requeue) {
  const auto i = static_cast<std::size_t>(cpu);
  Task* task = current_[i];
  PINSIM_CHECK(task != nullptr);
  notify([&](SchedObserver& o) {
    o.on_slice(*task, cpu, now() - slice_started_[i]);
  });
  ++stats_.preemptions;
  current_[i] = nullptr;
  if (requeue) {
    task->state = TaskState::Runnable;
    task->enqueued_at = now();
    task->queued_cpu = cpu;
    rq_[i].enqueue(*task);
  }
  refresh_cpu_masks(cpu);
}

bool Kernel::advance_actions(hw::CpuId cpu, Task& task) {
  const auto i = static_cast<std::size_t>(cpu);
  // Busy-polling receive: burn another poll chunk unless the message
  // arrived, in which case the Recv completes and the driver proceeds.
  if (task.spin_recv) {
    if (task.pending_msgs == 0) {
      task.overhead_debt += costs_->spin_poll_chunk;
      return true;
    }
    task.spin_recv = false;
    --task.pending_msgs;
  }
  for (int guard = 0; guard < 100000; ++guard) {
    const Action action = task.driver().next(task);
    switch (action.kind) {
      case Action::Kind::Compute: {
        if (action.work == 0) continue;
        task.burst_remaining = static_cast<SimDuration>(
            static_cast<double>(action.work) * task.compute_inflation);
        return true;
      }
      case Action::Kind::Post: {
        PINSIM_CHECK(action.target != nullptr);
        deliver(task, *action.target, action.count);
        continue;
      }
      case Action::Kind::Recv: {
        if (task.pending_msgs > 0) {
          --task.pending_msgs;
          continue;
        }
        if (action.spin) {
          task.spin_recv = true;
          task.overhead_debt += costs_->spin_poll_chunk;
          return true;
        }
        task.recv_waiting = true;
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - slice_started_[i]);
        });
        return false;
      }
      case Action::Kind::Io: {
        submit_io(task, action);
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - slice_started_[i]);
        });
        return false;
      }
      case Action::Kind::Sleep: {
        Task* woken = &task;
        engine_->schedule_detached(action.duration,
                          [this, woken] { wake_common(*woken, 0); });
        block_task(task);
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - slice_started_[i]);
        });
        return false;
      }
      case Action::Kind::Exit: {
        notify([&](SchedObserver& o) {
          o.on_slice(task, cpu, now() - slice_started_[i]);
        });
        finish_task(task);
        return false;
      }
    }
  }
  PINSIM_CHECK_MSG(false, "driver for " << task.name()
                                        << " spun 100000 zero-cost actions");
  return false;
}

void Kernel::block_task(Task& task) {
  PINSIM_CHECK(task.state == TaskState::Running);
  task.state = TaskState::Blocked;
  task.blocked_at = now();
}

void Kernel::finish_task(Task& task) {
  PINSIM_CHECK(task.state == TaskState::Running);
  task.state = TaskState::Finished;
  task.stats.finished_at = now();
  --live_tasks_;
  auto& on_exit = on_exit_[static_cast<std::size_t>(task.id())];
  if (on_exit) on_exit(task);
}

void Kernel::deliver(Task& from, Task& to, int count) {
  PINSIM_CHECK(count >= 1);
  from.stats.messages_sent += count;
  // Host-mediated IPC: syscall + wake chain per message, paid by the
  // sender. (The guest kernel overrides this cost for intra-VM messages.)
  from.overhead_debt += costs_->host_ipc * count;
  if (from.cgroup != nullptr && from.cgroup == to.cgroup) {
    // Intra-container traffic crosses the bridge network path and raises
    // a softirq on some host cpu.
    from.overhead_debt += costs_->container_net_msg * count;
    charge_irq(irq_rr_ = (irq_rr_ + 1) % topology_->num_cpus());
  }
  to.pending_msgs += count;
  if (to.state == TaskState::Blocked && to.recv_waiting) {
    to.recv_waiting = false;
    --to.pending_msgs;
    // The wakeup originates on the sender's cpu.
    wake_common(to, 0, from.last_cpu);
  }
}

void Kernel::post_external(Task& task, int count) {
  PINSIM_CHECK(count >= 1);
  task.pending_msgs += count;
  if (task.state == TaskState::Blocked && task.recv_waiting) {
    task.recv_waiting = false;
    --task.pending_msgs;
    // External messages arrive through the NIC: the wake originates on
    // whichever cpu took the interrupt.
    const hw::CpuId irq_cpu = irq_target(task);
    charge_irq(irq_cpu);
    wake_common(task, costs_->kernel_entry, irq_cpu);
  }
}

void Kernel::post_local(Task& task, int count) {
  PINSIM_CHECK(count >= 1);
  task.pending_msgs += count;
  if (task.state == TaskState::Blocked && task.recv_waiting) {
    task.recv_waiting = false;
    --task.pending_msgs;
    wake_common(task, costs_->kernel_entry, task.last_cpu);
  }
}

}  // namespace pinsim::os
