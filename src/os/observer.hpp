// Scheduler observation hooks.
//
// The paper instruments its testbed with BCC kernel tracing (cpudist,
// offcputime) to explain *why* each platform behaves as it does; the
// trace module implements this interface to provide the same views of
// the simulated kernel. Observers are passive: they must not mutate
// tasks or scheduling state.
#pragma once

#include "util/units.hpp"

namespace pinsim::os {

class Task;
class Cgroup;

class SchedObserver {
 public:
  virtual ~SchedObserver() = default;

  /// A task ran on `cpu` for `duration` and was then switched out,
  /// blocked, or finished.
  virtual void on_slice(const Task& task, int cpu, SimDuration duration) {
    (void)task, (void)cpu, (void)duration;
  }

  /// A task that was blocked for `duration` just woke up.
  virtual void off_cpu(const Task& task, SimDuration duration) {
    (void)task, (void)duration;
  }

  /// A task is being dispatched on a cpu other than its previous one.
  virtual void on_migration(const Task& task, int from, int to,
                            SimDuration penalty) {
    (void)task, (void)from, (void)to, (void)penalty;
  }

  virtual void on_context_switch(int cpu) { (void)cpu; }

  virtual void on_irq(int cpu) { (void)cpu; }

  virtual void on_throttle(const Cgroup& group) { (void)group; }

  virtual void on_aggregation(const Cgroup& group, int spread,
                              SimDuration cost) {
    (void)group, (void)spread, (void)cost;
  }
};

}  // namespace pinsim::os
