// Per-cpu run queue ordered by virtual runtime.
//
// The CFS analogue: the task with the smallest (vruntime, id) key runs
// next, so CPU time is shared in proportion to weight. The kernel keeps
// one Runqueue per logical cpu; the guest kernel keeps one per vCPU.
//
// Implemented as an indexed flat binary min-heap: slots live in one
// vector (no per-enqueue node allocation after warmup) and each queued
// Task carries its own slot index, so removal from the middle is
// O(log n) without a search. The (vruntime, id) tie-break order of the
// historical std::set implementation is preserved exactly — keys are
// unique, so pop_min/peek_min are deterministic regardless of the
// heap's internal arrangement.
#pragma once

#include <vector>

#include "os/task.hpp"
#include "util/units.hpp"

namespace pinsim::os {

class Runqueue {
 public:
  void enqueue(Task& task);
  void remove(Task& task);
  bool contains(const Task& task) const;

  /// Pre-size the heap so enqueue never reallocates on the hot path.
  /// The kernel calls this as tasks are created: n = total task count
  /// is a safe upper bound for any single queue.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Task with the smallest vruntime, or nullptr when empty.
  Task* peek_min() const;
  /// Remove and return the minimum-vruntime task; requires non-empty.
  Task& pop_min();

  /// Steal candidate: the task with the *largest* vruntime (it has had
  /// the most service, so moving it is fairest), or nullptr when empty.
  Task* peek_max() const;

  int size() const { return static_cast<int>(heap_.size()); }
  bool empty() const { return heap_.empty(); }

  /// Floor for newly woken tasks so sleepers cannot monopolize the cpu
  /// with an ancient vruntime.
  SimDuration min_vruntime() const { return min_vruntime_; }

  /// Iterate over queued tasks in heap order — NO vruntime ordering.
  /// Order-sensitive callers use max_where / pop_min instead.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : heap_) fn(*slot.task);
  }

  /// The queued task with the largest (vruntime, id) key satisfying
  /// `pred` — the most-serviced eligible task, i.e. the fairest
  /// steal/balance candidate — or nullptr when none qualifies.
  template <typename Pred>
  Task* max_where(Pred&& pred) const {
    const Slot* best = nullptr;
    for (const Slot& slot : heap_) {
      if (!pred(*slot.task)) continue;
      if (best == nullptr || key_less(*best, slot)) best = &slot;
    }
    return best == nullptr ? nullptr : best->task;
  }

 private:
  struct Slot {
    SimDuration vruntime;
    Task::Id id;
    Task* task;
  };

  static bool key_less(const Slot& a, const Slot& b) {
    if (a.vruntime != b.vruntime) return a.vruntime < b.vruntime;
    return a.id < b.id;
  }

  void place(std::size_t index, const Slot& slot);
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Slot> heap_;
  SimDuration min_vruntime_ = 0;
};

}  // namespace pinsim::os
