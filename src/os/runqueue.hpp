// Per-cpu run queue ordered by virtual runtime.
//
// The CFS analogue: the task with the smallest vruntime runs next, so CPU
// time is shared in proportion to weight. The kernel keeps one Runqueue
// per logical cpu; the guest kernel keeps one per vCPU.
#pragma once

#include <set>

#include "os/task.hpp"
#include "util/units.hpp"

namespace pinsim::os {

class Runqueue {
 public:
  void enqueue(Task& task);
  void remove(Task& task);
  bool contains(const Task& task) const;

  /// Task with the smallest vruntime, or nullptr when empty.
  Task* peek_min() const;
  /// Remove and return the minimum-vruntime task; requires non-empty.
  Task& pop_min();

  /// Steal candidate: the task with the *largest* vruntime (it has had
  /// the most service, so moving it is fairest), or nullptr when empty.
  Task* peek_max() const;

  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Floor for newly woken tasks so sleepers cannot monopolize the cpu
  /// with an ancient vruntime.
  SimDuration min_vruntime() const { return min_vruntime_; }

  /// Iterate over queued tasks (order: vruntime ascending).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& entry : entries_) fn(*entry.task);
  }

 private:
  struct Entry {
    SimDuration vruntime;
    Task::Id id;
    Task* task;
    bool operator<(const Entry& other) const {
      if (vruntime != other.vruntime) return vruntime < other.vruntime;
      return id < other.id;
    }
  };

  std::set<Entry> entries_;
  SimDuration min_vruntime_ = 0;
};

}  // namespace pinsim::os
