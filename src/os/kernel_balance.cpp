// Load balancing and periodic housekeeping (cgroup bandwidth periods,
// usage aggregation, periodic rebalance).
#include "os/kernel.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace pinsim::os {

namespace {

/// vruntime renormalization when a task changes runqueue outside the
/// wakeup path (steals / balance moves).
void renormalize(Task& task, const Runqueue& from, const Runqueue& to) {
  task.vruntime = task.vruntime - from.min_vruntime() + to.min_vruntime();
}

}  // namespace

void Kernel::steal_for(hw::CpuId cpu) {
  const auto i = static_cast<std::size_t>(cpu);
  PINSIM_CHECK(rq_[i].empty());

  int best_load = 0;
  hw::CpuId victim = -1;
  Task* candidate = nullptr;
  // Only cpus with queued work can be victims; word-scan the queued
  // mask in ascending cpu order (the historical visitation order, so
  // every tie-break is unchanged) instead of walking all num_cpus()
  // runqueues. This cpu's runqueue is empty, so it is never in the mask.
  // Quiet cores are never victims either — their runqueue is empty by
  // the window invariant, so they are not in the mask.
  queued_.for_each([&](hw::CpuId other) {
    auto& rq = rq_[static_cast<std::size_t>(other)];
    if (rq.size() <= best_load) return;
    // Find the most-serviced task allowed to run here whose group is not
    // throttled (parking them here would just churn).
    Task* found = rq.max_where([&](const Task& task) {
      if (!allowed_cpus(task).contains(cpu)) return false;
      if (task.cgroup != nullptr && task.cgroup->throttled_on(cpu)) {
        return false;
      }
      return true;
    });
    if (found != nullptr) {
      best_load = rq.size();
      victim = other;
      candidate = found;
    }
  });
  if (candidate == nullptr) return;

  auto& victim_rq = rq_[static_cast<std::size_t>(victim)];
  victim_rq.remove(*candidate);
  refresh_cpu_masks(victim);
  renormalize(*candidate, victim_rq, rq_[i]);
  candidate->queued_cpu = cpu;
  rq_[i].enqueue(*candidate);
  refresh_cpu_masks(cpu);
  ++stats_.steals;
}

void Kernel::periodic_balance() {
  // One migration per tick from the most- to the least-loaded cpu keeps
  // long-run fairness without thrashing; new-idle stealing does the
  // latency-critical part.
  int max_load = 0;
  int min_load = INT32_MAX;
  hw::CpuId busiest = -1;
  hw::CpuId idlest = -1;
  // Nonzero load means a current task (busy_) or queued work (queued_);
  // everything else has load 0 and is exactly the idle mask. Scanning
  // the union in ascending order visits the same candidates the full
  // 0..num_cpus() sweep did, minus cpus that can win neither race —
  // except for the load-0 idlest, which is the first idle cpu.
  if (!idle_.empty()) {
    min_load = 0;
    idlest = idle_.first();
  }
  (busy_ | queued_).for_each([&](hw::CpuId cpu) {
    const auto i = static_cast<std::size_t>(cpu);
    const int load = rq_[i].size() + (current_[i] != nullptr ? 1 : 0);
    if (load > max_load) {
      max_load = load;
      busiest = cpu;
    }
    if (load < min_load) {
      min_load = load;
      idlest = cpu;
    }
  });
  // Move when clearly imbalanced; with a persistent 1-task imbalance
  // (e.g. 5 runnable tasks on 4 cpus) CFS still rotates the surplus task
  // so every task gets a fair global share — mirror that by migrating
  // whenever the busiest cpu has queued work and someone is lighter.
  if (busiest < 0 || idlest < 0) return;
  if (max_load - min_load < 2 &&
      !(max_load - min_load == 1 && max_load >= 2)) {
    return;
  }

  auto& from_rq = rq_[static_cast<std::size_t>(busiest)];
  Task* candidate = from_rq.max_where([&](const Task& task) {
    if (!allowed_cpus(task).contains(idlest)) return false;
    if (task.cgroup != nullptr && task.cgroup->throttled_on(idlest)) {
      return false;
    }
    return true;
  });
  if (candidate == nullptr) return;

  auto& to_rq = rq_[static_cast<std::size_t>(idlest)];
  from_rq.remove(*candidate);
  refresh_cpu_masks(busiest);
  renormalize(*candidate, from_rq, to_rq);
  candidate->queued_cpu = idlest;
  // The balance path enqueues directly (no wakeup), and a quiet core —
  // one task, load 1 — can be the idlest target; revoke its window
  // before handing it queued work.
  exit_quiet(idlest);
  to_rq.enqueue(*candidate);
  refresh_cpu_masks(idlest);
  ++stats_.balance_moves;
  if (current_[static_cast<std::size_t>(idlest)] == nullptr) dispatch(idlest);
}

void Kernel::ensure_housekeeping() {
  if (housekeeping_active_) return;
  housekeeping_active_ = true;
  next_balance_ = now() + params_.balance_interval;
  // Catch up cgroup period bookkeeping to the present.
  cgroup_next_period_.resize(cgroups_.size(), now());
  for (auto& next : cgroup_next_period_) {
    next = std::max(next, now());
  }
  PINSIM_INFO("housekeeping armed at t=" << engine_->now());
  arm_housekeeping(costs_->cgroup_aggregate_interval);
}

void Kernel::arm_housekeeping(SimDuration delay) {
  const SimTime when = now() + delay;
  if (engine_->reschedule(housekeeping_, when)) return;
  housekeeping_ =
      engine_->schedule_tracked_at(when, [this] { housekeeping_tick(); });
}

void Kernel::housekeeping_tick() {
  if (live_tasks_ == 0) {
    PINSIM_INFO("housekeeping idle-stop at t=" << engine_->now());
    housekeeping_active_ = false;
    return;
  }
  cgroup_next_period_.resize(cgroups_.size(), now());
  for (std::size_t i = 0; i < cgroups_.size(); ++i) {
    Cgroup& group = *cgroups_[i];
    cgroup_aggregate(group);
    if (group.has_quota() && now() >= cgroup_next_period_[i]) {
      cgroup_period(group);
      cgroup_next_period_[i] = now() + costs_->cfs_period;
    }
  }
  if (now() >= next_balance_) {
    periodic_balance();
    next_balance_ = now() + params_.balance_interval;
  }
  arm_housekeeping(costs_->cgroup_aggregate_interval);
}

void Kernel::cgroup_aggregate(Cgroup& group) {
  const int spread = group.current_spread();
  const SimDuration cost = group.aggregate();
  if (cost == 0) return;
  ++stats_.aggregation_events;
  notify([&](SchedObserver& o) { o.on_aggregation(group, spread, cost); });
  // The aggregation is an atomic kernel-space pass over the per-cpu
  // usage records and the group is suspended while it runs (paper
  // §IV-B: "the container has to be suspended until tracking and
  // aggregating resource usage of the container is complete"): every
  // member currently on a cpu stalls for the duration of the walk,
  // which grows with the group's spread. Only cpus in the busy mask can
  // host a member, so the sweep skips idle cores entirely.
  // Quiet cores are in the busy mask but can never host a member: the
  // quiet predicate requires an ungrouped current task, so the cgroup
  // test below skips them without touching their window.
  busy_.for_each([&](hw::CpuId cpu) {
    const auto i = static_cast<std::size_t>(cpu);
    if (current_[i] != nullptr && current_[i]->cgroup == &group) {
      charge_running(cpu);
      current_[i]->overhead_debt += cost;
      reprogram(cpu);
    }
  });
}

void Kernel::cgroup_period(Cgroup& group) {
  const bool released = group.refill_period();
  if (!released) return;
  ++stats_.unthrottle_events;
  PINSIM_INFO("unthrottle " << group.name() << " at t=" << engine_->now()
                            << " parked=" << group.parked().size());
  // Unthrottle: every parked task re-enters through the wakeup path;
  // vanilla groups scatter again (and repay cache refills), pinned ones
  // return to their cpuset.
  const std::vector<Task*> parked = group.take_parked();
  for (Task* task : parked) {
    PINSIM_CHECK(task->state == TaskState::Throttled);
    task->overhead_debt += costs_->sched_pick;
    const hw::CpuId cpu = place_task(*task);
    enqueue_task(*task, cpu);
  }
}

}  // namespace pinsim::os
