// Control-group CPU controller model (cgroups v1 `cpu` + `cpuset`).
//
// Implements the three mechanisms the paper identifies (§II-C, §IV-B):
//
//  1. *Bandwidth control*: a group holds `cpu_limit × period` of runtime
//     per enforcement period. Runtime is handed out to cpus in slices
//     (kernel: sched_cfs_bandwidth_slice_us); each slice transfer is a
//     kernel-space accounting invocation and costs overhead. When the
//     pool runs dry the whole group is throttled until the next refill.
//
//  2. *Usage tracking*: the controller records which cpus the group has
//     recently consumed time on (its "spread"). Periodically it must
//     atomically aggregate usage across all of those cpus; the group is
//     suspended while this runs and the cost grows with the spread. A
//     small vanilla container smeared across 112 host cores pays ~50×
//     the aggregation of the same container pinned to 2 — the paper's
//     Platform-Size Overhead.
//
//  3. *cpuset*: an optional cpu mask (CPU pinning) restricting where
//     member tasks may run.
//
// The class is clock-agnostic (the caller passes no timestamps; periods
// and aggregation are driven by whichever kernel owns the group), so the
// same implementation serves host containers and guest-side containers
// inside a VM (the VMCN platform).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/cpuset.hpp"
#include "os/task.hpp"
#include "util/units.hpp"

namespace pinsim::os {

class Cgroup {
 public:
  struct Config {
    std::string name = "cgroup";
    /// Quota in units of whole cpus per period (Docker `--cpus`).
    /// 0 means unlimited (no bandwidth control).
    double cpu_limit = 0.0;
    /// Allowed cpus; empty = unrestricted.
    hw::CpuSet cpuset;
  };

  struct Stats {
    SimDuration usage = 0;             // total cpu time charged
    SimDuration accounting_overhead = 0;  // slice-refill + aggregation cost
    std::int64_t slice_refills = 0;
    std::int64_t throttles = 0;
    std::int64_t aggregations = 0;
    std::int64_t spread_samples = 0;   // sum of spreads over aggregations
    int max_spread = 0;                // widest single aggregation window
  };

  Cgroup(Config config, const hw::CostModel& costs);

  const std::string& name() const { return config_.name; }
  const Config& config() const { return config_; }
  bool has_quota() const { return config_.cpu_limit > 0.0; }
  const hw::CpuSet& cpuset() const { return config_.cpuset; }

  bool throttled() const { return throttled_; }

  /// Per-cpu throttle check (CFS throttles runqueues, not the world):
  /// a cpu may keep running group tasks while it still holds local
  /// slice runtime, even after the global pool has drained.
  bool throttled_on(hw::CpuId cpu) const {
    return throttled_ && local_runtime(cpu) == 0;
  }

  /// Charge `amount` of cpu time consumed on `cpu`. Returns the
  /// accounting overhead (slice-refill cost) the charging task must pay
  /// as debt. Sets the throttled flag when the quota pool is exhausted.
  SimDuration charge(hw::CpuId cpu, SimDuration amount);

  /// Period boundary: refill the quota pool and reset per-cpu slices.
  /// Returns true when the group was throttled and is now released.
  bool refill_period();

  /// Atomic usage aggregation: returns the suspension cost for the
  /// current spread and resets the spread window.
  SimDuration aggregate();

  /// Number of distinct cpus with usage since the last aggregation.
  int current_spread() const { return spread_.count(); }

  /// Remaining global runtime in this period (meaningful with quota).
  SimDuration runtime_left() const { return runtime_left_; }

  /// Runtime cached locally on `cpu` (slice already transferred).
  SimDuration local_runtime(hw::CpuId cpu) const;

  /// How much the group may still consume on `cpu` before throttling:
  /// local slice + global pool. The kernel uses this to program the next
  /// accounting boundary so quota is enforced exactly.
  SimDuration runtime_horizon(hw::CpuId cpu) const;

  // --- membership (maintained by the owning kernel) -----------------------
  void add_member(Task& task);
  void remove_member(Task& task);
  const std::vector<Task*>& members() const { return members_; }

  // --- parked tasks (bandwidth throttling) --------------------------------
  /// Park a task dequeued by bandwidth throttling. O(1); the task
  /// records its slot index so a later unpark never scans the list.
  void park(Task& task);
  /// Remove one parked task out of order (swap-and-pop, O(1)).
  void unpark(Task& task);
  bool is_parked(const Task& task) const;
  /// Take the whole parked list for re-enqueueing on period refill;
  /// preserves throttle order and leaves the list empty.
  std::vector<Task*> take_parked();
  /// Tasks parked by bandwidth throttling (read-only; logging/tests).
  const std::vector<Task*>& parked() const { return parked_; }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  const hw::CostModel* costs_;

  SimDuration period_quota_ = 0;   // cpu_limit × cfs_period
  SimDuration runtime_left_ = 0;   // global pool for the current period
  // Per-cpu cached runtime as a flat array indexed by cpu id (sized only
  // for quota groups), plus the set of cpus holding a slice so the
  // period reset walks set bits instead of clearing a map.
  std::vector<SimDuration> local_slice_;
  hw::CpuSet touched_;
  bool throttled_ = false;

  hw::CpuSet spread_;

  std::vector<Task*> members_;
  std::vector<Task*> parked_;
  Stats stats_;
};

}  // namespace pinsim::os
