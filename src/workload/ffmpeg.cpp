#include "workload/ffmpeg.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace pinsim::workload {

namespace {

/// Encoder thread: waits for the coordinator's start signal (codec
/// init done), burns its share of the parallel encode in jittered
/// chunks, then reports back and exits.
class EncoderDriver final : public os::TaskDriver {
 public:
  EncoderDriver(SimDuration total, SimDuration chunk, double jitter,
                os::Task*& coordinator, Rng rng)
      : remaining_(total),
        chunk_(chunk),
        jitter_(jitter),
        coordinator_(&coordinator),
        rng_(rng) {}

  os::Action next(os::Task&) override {
    if (remaining_ > 0) {
      const double jitter = 1.0 + jitter_ * (2.0 * rng_.next_double() - 1.0);
      SimDuration step = static_cast<SimDuration>(
          static_cast<double>(chunk_) * jitter);
      step = std::clamp<SimDuration>(step, 1, remaining_);
      remaining_ -= step;
      return os::Action::compute(step);
    }
    if (!reported_) {
      reported_ = true;
      PINSIM_CHECK(*coordinator_ != nullptr);
      return os::Action::post(**coordinator_);
    }
    return os::Action::exit();
  }

 private:
  SimDuration remaining_;
  SimDuration chunk_;
  double jitter_;
  os::Task** coordinator_;
  bool reported_ = false;
  Rng rng_;
};

/// Coordinator thread: demux/probe/codec-init startup (overlapping the
/// first encode batches), then waits for the encoders and performs the
/// serial bitstream finalization (mux flush) that cannot overlap the
/// encode — the non-parallelizable tail that caps FFmpeg's scaling.
class CoordinatorDriver final : public os::TaskDriver {
 public:
  CoordinatorDriver(SimDuration startup, SimDuration serial,
                    SimDuration chunk, int encoders)
      : startup_(startup),
        remaining_(serial),
        chunk_(chunk),
        waits_(encoders) {}

  os::Action next(os::Task&) override {
    if (startup_ > 0) {
      const SimDuration step = std::min(chunk_, startup_);
      startup_ -= step;
      return os::Action::compute(step);
    }
    if (waits_ > 0) {
      --waits_;
      return os::Action::recv();
    }
    if (remaining_ > 0) {
      const SimDuration step = std::min(chunk_, remaining_);
      remaining_ -= step;
      return os::Action::compute(step);
    }
    return os::Action::exit();
  }

 private:
  SimDuration startup_;
  SimDuration remaining_;
  SimDuration chunk_;
  int waits_;
};

/// The state run() used to keep on its stack, carried between the
/// deploy and collect phases. The coordinator pointers must stay at
/// stable addresses (encoder drivers post through them), so they keep
/// the unique_ptr indirection here too.
class FfmpegDeployment final : public Deployment {
 public:
  FfmpegDeployment(virt::Platform& platform, SimTime horizon)
      : platform_(&platform),
        start_(platform.engine().now()),
        horizon_(horizon),
        completion_(platform.engine()) {}

  Completion& completion() override { return completion_; }
  SimTime horizon() const override { return start_ + horizon_; }

  RunResult collect() override {
    RunResult result;
    result.wall_seconds = to_seconds(platform_->engine().now() - start_);
    // The paper reports the mean execution time of the transcode
    // process(es); for one process this is the makespan.
    result.metric_seconds = result.wall_seconds;
    result.extras["threads"] = threads_;
    result.extras["processes"] = processes_;
    return result;
  }

 private:
  friend class pinsim::workload::Ffmpeg;

  virt::Platform* platform_;
  SimTime start_;
  SimDuration horizon_;
  Completion completion_;
  std::vector<std::unique_ptr<os::Task*>> coordinators_;
  int threads_ = 0;
  int processes_ = 0;
};

}  // namespace

int Ffmpeg::threads_on(const virt::Platform& platform) const {
  return std::clamp(platform.visible_cpus(), 1, config_.max_threads);
}

RunResult Ffmpeg::run(virt::Platform& platform, Rng rng) {
  std::unique_ptr<Deployment> deployment = deploy(platform, std::move(rng));
  run_to_completion(platform, deployment->completion(),
                    deployment->horizon(), "ffmpeg transcode");
  return deployment->collect();
}

std::unique_ptr<Deployment> Ffmpeg::deploy(virt::Platform& platform,
                                           Rng rng) {
  PINSIM_CHECK(config_.processes >= 1);
  auto deployment =
      std::make_unique<FfmpegDeployment>(platform, config_.horizon);
  const SimTime start = deployment->start_;
  Completion& completion = deployment->completion_;

  // Short clips cannot be parallelized as widely (fewer frames in
  // flight): ~1 extra encoder thread per 3 seconds of source.
  const double file_seconds =
      config_.source_seconds / static_cast<double>(config_.processes);
  const int threads =
      std::min(threads_on(platform),
               2 + static_cast<int>(file_seconds / 3.0));
  const double per_process = 1.0 / static_cast<double>(config_.processes);
  const SimDuration startup = sec_f(config_.startup_seconds);
  const SimDuration serial =
      sec_f(config_.serial_seconds * per_process);
  const SimDuration parallel_share = sec_f(
      config_.parallel_seconds * per_process / static_cast<double>(threads));
  const SimDuration chunk = msec_f(config_.chunk_ms);
  const double worker_ws = std::max(
      6.0, config_.working_set_mb / static_cast<double>(threads));

  std::vector<std::unique_ptr<os::Task*>>& coordinators =
      deployment->coordinators_;
  std::vector<os::Task*> to_start;

  for (int p = 0; p < config_.processes; ++p) {
    coordinators.push_back(std::make_unique<os::Task*>(nullptr));
    os::Task*& coordinator = *coordinators.back();
    // All threads of one transcode share frame buffers: one NUMA home.
    auto numa_home = std::make_shared<int>(-1);

    virt::WorkTaskConfig coord_config;
    coord_config.name = "ffmpeg" + std::to_string(p) + "-mux";
    coord_config.working_set_mb = 10.0;
    coord_config.numa_home = numa_home;
    coord_config.on_exit = completion.tracker(start);
    completion.expect(1);
    coordinator = &platform.spawn(
        std::move(coord_config),
        std::make_unique<CoordinatorDriver>(startup, serial, chunk,
                                            threads));
    to_start.push_back(coordinator);

    for (int t = 0; t < threads; ++t) {
      virt::WorkTaskConfig config;
      config.name =
          "ffmpeg" + std::to_string(p) + "-enc" + std::to_string(t);
      config.working_set_mb = worker_ws;
      config.numa_home = numa_home;
      config.on_exit = completion.tracker(start);
      completion.expect(1);
      os::Task& worker = platform.spawn(
          std::move(config),
          std::make_unique<EncoderDriver>(parallel_share, chunk,
                                          config_.jitter, coordinator,
                                          rng.fork()));
      to_start.push_back(&worker);
    }
  }
  for (os::Task* task : to_start) platform.start(*task);

  deployment->threads_ = threads;
  deployment->processes_ = config_.processes;
  return deployment;
}

}  // namespace pinsim::workload
