// WordPress web workload (paper §III-B3, Figure 5).
//
// 1,000 simultaneous web requests fired by a JMeter-style load generator
// running on a separate machine (it consumes no host CPU; only the
// requests do). Each request is a short IO-bound process with at least
// three interrupts, exactly as the paper describes: read the HTTP request
// from the socket, fetch the page (database/file work, served from the
// page cache with some probability), render, and write the response back
// to the socket. The metric is the mean response time over all requests.
#pragma once

#include "workload/workload.hpp"

namespace pinsim::workload {

struct WordPressConfig {
  int requests = 1000;
  /// Arrival window for the "simultaneous" burst.
  double ramp_seconds = 1.0;
  /// PHP request parsing + routing (one-core ms).
  double parse_ms = 8.0;
  /// MySQL query evaluation (one-core ms).
  double db_ms = 8.0;
  /// Template rendering + response assembly (one-core ms).
  double render_ms = 9.0;
  /// Fraction of the hypervisor compute inflation that applies to a
  /// request (most of its path is kernel/IO work).
  double guest_inflation_sensitivity = 0.35;
  /// Non-CPU backend wait per request (database locks, upstream calls,
  /// connection handling) — the response-time floor visible at large
  /// instance sizes where CPU stops being the bottleneck.
  double backend_wait_ms = 250.0;
  /// Probability the page/database working set is in the page cache.
  double page_cache_hit = 0.70;
  /// Response size (transfer cost on the NIC).
  double response_kb = 128.0;
  /// Hot state per request (PHP interpreter + data).
  double working_set_mb = 6.0;
  /// Relative jitter on compute phases.
  double jitter = 0.15;
  /// Safety horizon.
  SimTime horizon = sec(2400);
};

class WordPress final : public Workload {
 public:
  explicit WordPress(WordPressConfig config = {}) : config_(config) {}
  std::string name() const override { return "wordpress"; }

  /// Metric: mean response time (seconds) across all requests.
  RunResult run(virt::Platform& platform, Rng rng) override;

 private:
  WordPressConfig config_;
};

}  // namespace pinsim::workload
