// Workload interface and shared helpers.
//
// A Workload deploys application tasks onto a Platform, drives them to
// completion, and reports the metric the paper plots for it (mean
// execution/response time in seconds). Workloads are written once and run
// unmodified on all seven platform configurations.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "stats/accumulator.hpp"
#include "util/rng.hpp"
#include "virt/platform.hpp"

namespace pinsim::workload {

struct RunResult {
  /// The paper's y-axis value for this run, in seconds (FFmpeg/MPI:
  /// makespan; WordPress/Cassandra: mean per-request response time).
  double metric_seconds = 0.0;
  /// Simulated wall-clock duration of the whole run.
  double wall_seconds = 0.0;
  /// Auxiliary measurements (p99, throughput, overhead counters…).
  std::map<std::string, double> extras;
};

class Completion;

/// A workload deployed onto a platform but not yet driven to
/// completion. Workload::run owns its whole lifecycle (deploy, drive
/// the engine, collect); the sharded fleet runner instead needs the
/// phases apart — deploy one workload per host, advance every host
/// together under one sim::ShardedEngine, then collect each host's
/// result — so workloads that participate split run() into
/// deploy() + run_to_completion + collect() with this object carrying
/// the state between the phases.
class Deployment {
 public:
  virtual ~Deployment() = default;

  /// The latch that reports this deployment finished.
  virtual Completion& completion() = 0;

  /// Absolute safety horizon for the run (same contract as run()'s:
  /// not done by then means the simulation wedged).
  virtual SimTime horizon() const = 0;

  /// Harvest the result. Only valid once completion().done().
  virtual RunResult collect() = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;

  /// Deploy on `platform`, simulate to completion, return the metric.
  /// Throws InvariantViolation if the run does not complete within the
  /// safety horizon (a wedged simulation must not pass silently).
  virtual RunResult run(virt::Platform& platform, Rng rng) = 0;

  /// Deploy without driving the engine (for co-simulation under a
  /// sharded fleet). Returns nullptr when the workload does not support
  /// the split lifecycle; for workloads that do,
  /// run() == deploy() + run_to_completion + collect() event for event.
  virtual std::unique_ptr<Deployment> deploy(virt::Platform& platform,
                                             Rng rng) {
    (void)platform;
    (void)rng;
    return nullptr;
  }
};

/// Completion latch: counts task exits and records per-task response
/// times against their arrival instants.
class Completion {
 public:
  explicit Completion(sim::Engine& engine) : engine_(&engine) {}

  /// An on_exit callback that marks one task finished; `arrived` is the
  /// task's arrival time for response-time accounting.
  std::function<void(os::Task&)> tracker(SimTime arrived);

  void expect(int n) { expected_ += n; }
  bool done() const { return finished_ >= expected_; }
  int finished() const { return finished_; }

  /// Response-time distribution in seconds.
  const stats::Accumulator& response() const { return response_; }

 private:
  sim::Engine* engine_;
  int expected_ = 0;
  int finished_ = 0;
  stats::Accumulator response_;
};

/// Run the platform's engine until `completion.done()`; throws if the
/// horizon passes first.
void run_to_completion(virt::Platform& platform, Completion& completion,
                       SimTime horizon, const std::string& what);

}  // namespace pinsim::workload
