// Workload interface and shared helpers.
//
// A Workload deploys application tasks onto a Platform, drives them to
// completion, and reports the metric the paper plots for it (mean
// execution/response time in seconds). Workloads are written once and run
// unmodified on all seven platform configurations.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "stats/accumulator.hpp"
#include "util/rng.hpp"
#include "virt/platform.hpp"

namespace pinsim::workload {

struct RunResult {
  /// The paper's y-axis value for this run, in seconds (FFmpeg/MPI:
  /// makespan; WordPress/Cassandra: mean per-request response time).
  double metric_seconds = 0.0;
  /// Simulated wall-clock duration of the whole run.
  double wall_seconds = 0.0;
  /// Auxiliary measurements (p99, throughput, overhead counters…).
  std::map<std::string, double> extras;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;

  /// Deploy on `platform`, simulate to completion, return the metric.
  /// Throws InvariantViolation if the run does not complete within the
  /// safety horizon (a wedged simulation must not pass silently).
  virtual RunResult run(virt::Platform& platform, Rng rng) = 0;
};

/// Completion latch: counts task exits and records per-task response
/// times against their arrival instants.
class Completion {
 public:
  explicit Completion(sim::Engine& engine) : engine_(&engine) {}

  /// An on_exit callback that marks one task finished; `arrived` is the
  /// task's arrival time for response-time accounting.
  std::function<void(os::Task&)> tracker(SimTime arrived);

  void expect(int n) { expected_ += n; }
  bool done() const { return finished_ >= expected_; }
  int finished() const { return finished_; }

  /// Response-time distribution in seconds.
  const stats::Accumulator& response() const { return response_; }

 private:
  sim::Engine* engine_;
  int expected_ = 0;
  int finished_ = 0;
  stats::Accumulator response_;
};

/// Run the platform's engine until `completion.done()`; throws if the
/// horizon passes first.
void run_to_completion(virt::Platform& platform, Completion& completion,
                       SimTime horizon, const std::string& what);

}  // namespace pinsim::workload
