#include "workload/wordpress.hpp"

#include <memory>

#include "util/check.hpp"

namespace pinsim::workload {

namespace {

/// One web request: socket read -> parse -> (disk on page-cache miss) ->
/// db -> render -> socket write -> exit. Three to four IRQs per request.
class RequestDriver final : public os::TaskDriver {
 public:
  RequestDriver(const WordPressConfig& config, hw::IoDevice& disk,
                hw::IoDevice& nic, Rng rng)
      : config_(&config), disk_(&disk), nic_(&nic), rng_(rng) {}

  os::Action next(os::Task&) override {
    switch (stage_++) {
      case 0:  // read the request from the socket
        return os::Action::io(*nic_, hw::IoRequest{hw::IoKind::NetRecv, 2.0});
      case 1:
        return os::Action::compute(jittered(config_->parse_ms));
      case 2:
        if (rng_.chance(config_->page_cache_hit)) {
          ++stage_;  // cache hit: skip the disk read
          return os::Action::compute(jittered(config_->db_ms));
        }
        return os::Action::io(*disk_, hw::IoRequest{hw::IoKind::Read, 16.0});
      case 3:
        return os::Action::compute(jittered(config_->db_ms));
      case 4:  // backend wait: db locks / upstream calls (no CPU)
        return os::Action::sleep_for(jittered(config_->backend_wait_ms));
      case 5:
        return os::Action::compute(jittered(config_->render_ms));
      case 6:
        return os::Action::io(
            *nic_, hw::IoRequest{hw::IoKind::NetSend, config_->response_kb});
      default:
        return os::Action::exit();
    }
  }

 private:
  SimDuration jittered(double ms) {
    const double jitter =
        1.0 + config_->jitter * (2.0 * rng_.next_double() - 1.0);
    return std::max<SimDuration>(msec_f(ms * jitter), 1);
  }

  const WordPressConfig* config_;
  hw::IoDevice* disk_;
  hw::IoDevice* nic_;
  int stage_ = 0;
  Rng rng_;
};

}  // namespace

RunResult WordPress::run(virt::Platform& platform, Rng rng) {
  const SimTime start = platform.engine().now();
  Completion completion(platform.engine());
  completion.expect(config_.requests);

  // JMeter fires the burst from a dedicated machine: arrivals are spread
  // over the ramp window; each arrival spawns one request process.
  for (int i = 0; i < config_.requests; ++i) {
    const SimDuration offset =
        static_cast<SimDuration>(rng.next_double() * sec_f(config_.ramp_seconds));
    Rng request_rng = rng.fork();
    auto* platform_ptr = &platform;
    const WordPressConfig* config = &config_;
    Completion* latch = &completion;
    const int id = i;
    platform.engine().schedule_detached(offset, [platform_ptr, config, latch, id,
                                        request_rng]() mutable {
      virt::WorkTaskConfig task_config;
      task_config.name = "req" + std::to_string(id);
      task_config.working_set_mb = config->working_set_mb;
      task_config.guest_inflation_sensitivity =
          config->guest_inflation_sensitivity;
      task_config.network_born = true;
      task_config.on_exit = latch->tracker(platform_ptr->engine().now());
      os::Task& task = platform_ptr->spawn(
          std::move(task_config),
          std::make_unique<RequestDriver>(*config, platform_ptr->disk(),
                                          platform_ptr->nic(), request_rng));
      platform_ptr->start(task);
    });
  }

  run_to_completion(platform, completion, start + config_.horizon,
                    "wordpress burst");

  RunResult result;
  result.wall_seconds = to_seconds(platform.engine().now() - start);
  result.metric_seconds = completion.response().mean();
  result.extras["p_max"] = completion.response().max();
  result.extras["requests"] = config_.requests;
  return result;
}

}  // namespace pinsim::workload
