// MPI parallel-processing workloads (paper §III-B2, Figure 4).
//
// MPI Search (parallel integer search) and Prime MPI (parallel prime
// counting), run with one rank per instance core. Both are iterative:
// each iteration computes a shard of the search space and synchronizes —
// modelled as a gather-to-root + broadcast round, so the communication
// volume grows with the rank count while per-rank compute shrinks. That
// is the regime the paper studies: "the communication part dominates the
// computation part".
//
// Where each message travels is the platform-dependent part: on BM/CN the
// host kernel mediates every wake (plus cgroup accounting for CN); inside
// a VM the hypervisor's shared memory carries it without host
// involvement. The paper's counterintuitive finding — containers are the
// *worst* platform for MPI — falls out of exactly this difference.
#pragma once

#include "workload/workload.hpp"

namespace pinsim::workload {

struct MpiConfig {
  /// Synchronization rounds.
  int iterations = 800;
  /// Total one-core compute seconds, split over ranks and iterations.
  double total_compute_seconds = 8.0;
  /// Relative jitter on per-iteration compute (stragglers).
  double jitter = 0.10;
  /// Per-rank working set (search shard).
  double working_set_mb = 8.0;
  /// Safety horizon.
  SimTime horizon = sec(2400);
};

class MpiSearch final : public Workload {
 public:
  explicit MpiSearch(MpiConfig config = {}) : config_(config) {}
  std::string name() const override { return "mpi-search"; }
  RunResult run(virt::Platform& platform, Rng rng) override;

 private:
  MpiConfig config_;
};

/// Prime MPI: same communication skeleton, compute-heavier shards (the
/// paper reports results "alike" MPI Search; both are provided).
class MpiPrime final : public Workload {
 public:
  explicit MpiPrime(MpiConfig config = prime_defaults());
  std::string name() const override { return "mpi-prime"; }
  RunResult run(virt::Platform& platform, Rng rng) override;

  static MpiConfig prime_defaults();

 private:
  MpiConfig config_;
};

}  // namespace pinsim::workload
