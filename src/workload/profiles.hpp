// Application profiles (paper Table I) and measured characterization.
//
// Table I is the paper's taxonomy: FFmpeg = CPU-bound, Open MPI = HPC,
// WordPress = IO-bound web, Cassandra = Big-Data NoSQL. The measured
// characterization runs each workload model on a bare-metal instance and
// reports where its tasks actually spend time (on-CPU vs blocked vs
// runnable-waiting), verifying that the models have the advertised
// character — the same sanity check the paper performs with BCC tools.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace pinsim::workload {

enum class AppClass { CpuBound, Hpc, IoWeb, IoNoSql };

const char* to_string(AppClass cls);

struct AppSpec {
  std::string name;
  std::string version;         // version used in the paper (Table I)
  std::string characteristic;  // paper's wording
  AppClass cls;
};

/// The four rows of Table I.
const std::vector<AppSpec>& table1_applications();

/// Build the workload model behind a Table I row.
std::unique_ptr<Workload> make_workload(AppClass cls);

struct MeasuredProfile {
  double cpu_fraction = 0.0;    // on-cpu time / total task lifetime
  double block_fraction = 0.0;  // blocked (IO / messages) / lifetime
  double wait_fraction = 0.0;   // runnable-but-waiting / lifetime
  double io_ops_per_second = 0.0;
  double messages_per_second = 0.0;
  double metric_seconds = 0.0;
};

/// Run `workload` on a bare-metal instance of `cores` cores and measure
/// where its tasks spend their lifetimes.
MeasuredProfile measure_profile(Workload& workload, int cores,
                                std::uint64_t seed);

}  // namespace pinsim::workload
