// Apache Cassandra NoSQL workload (paper §III-B4, Figure 6).
//
// A single large IO-heavy server process: 100 worker threads (the
// cassandra-stress client spawns "a set of 100 threads, each one
// simulating one user") serving 1,000 synthesized operations submitted
// within one second, 25% writes / 75% reads. Reads hit the row/page cache
// with some probability and otherwise seek the RAID1 HDD array; writes
// append to the commit log. The metric is the mean response time over
// all operations.
//
// On the paper's Large instance the system thrashes and the result is
// "out of range" — the figure bench reproduces that by skipping Large.
#pragma once

#include "workload/workload.hpp"

namespace pinsim::workload {

struct CassandraConfig {
  int operations = 1000;
  int server_threads = 100;
  /// Ops are submitted uniformly within this window.
  double submit_seconds = 1.0;
  double write_fraction = 0.25;
  /// Per-op CPU work (deserialize, row merge, memtable update, GC and
  /// compaction share) — one-core ms, log-normal jittered.
  double op_compute_ms = 60.0;
  double op_compute_jitter_ms = 20.0;
  /// Hot dataset size. The read cache-hit probability is
  /// min(instance memory / dataset, cache_hit_cap): small instances
  /// (Table II scales memory with cores) miss constantly and hammer the
  /// RAID1 HDDs; at 8x/16xLarge the dataset is fully cached, IO
  /// vanishes, and CPU time dominates — which is why the paper sees
  /// VM overhead grow at large sizes and the pinning benefit vanish.
  double dataset_gb = 64.0;
  double cache_hit_cap = 0.98;
  double read_kb = 16.0;
  double commitlog_kb = 32.0;
  /// Hot heap slice per server thread.
  double working_set_mb = 24.0;
  /// Fraction of the hypervisor compute inflation that applies (the op
  /// path is IO- and kernel-heavy).
  double guest_inflation_sensitivity = 0.30;
  /// Safety horizon.
  SimTime horizon = sec(4800);
};

class Cassandra final : public Workload {
 public:
  explicit Cassandra(CassandraConfig config = {}) : config_(config) {}
  std::string name() const override { return "cassandra"; }

  /// Metric: mean response time (seconds) across all operations.
  RunResult run(virt::Platform& platform, Rng rng) override;

 private:
  CassandraConfig config_;
};

}  // namespace pinsim::workload
