// Request-granularity serving: the open-ended half of the Deployment
// split.
//
// A workload::Deployment (PR 5) runs a fixed batch to completion; a
// RequestSource is its serving-side counterpart. Deployed once onto a
// platform, it accepts externally injected requests one at a time and
// reports each completion through a callback — the unit of work is the
// request, and the *caller* owns arrival timing, routing, and latency
// measurement (cluster::Fleet does all three from its front end). The
// source owns only how a request executes on its platform, reusing the
// calibrated fig-5/fig-6 service recipes.
//
// Two serving models cover the paper's request-serving applications:
//
//   WordPress  one task per request (Apache process-per-request):
//              inject() spawns a network-born task running the fig-5
//              socket/parse/db/render recipe and the task's exit is the
//              completion;
//   Cassandra  a resident server-thread pool spawned at deployment:
//              inject() round-robins the op to a worker's queue and
//              posts a message; the worker loops recv -> parse ->
//              commit-log/SSTable IO -> respond forever (fig-6 recipe
//              without the fixed op budget).
//
// Determinism: a source derives each request's service randomness by
// forking its own Rng at inject() time. Injections reach a host in a
// deterministic order (the fleet posts them through the sharded
// engine's canonical mailbox merge), so a (config, seed) pair replays
// the same per-request service times for any thread or shard count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "util/rng.hpp"
#include "workload/cassandra.hpp"
#include "workload/profiles.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::virt {
class Platform;
}  // namespace pinsim::virt

namespace pinsim::workload {

class RequestSource {
 public:
  using Done = std::function<void()>;

  virtual ~RequestSource() = default;

  virtual const char* name() const = 0;

  /// Begin serving one request now. Must be called at a simulated
  /// instant on the platform's engine (the fleet posts the call to the
  /// host's shard); `done` runs at the instant the request completes.
  virtual void inject(Done done) = 0;

  /// Requests accepted and not yet completed.
  virtual int outstanding() const = 0;

  /// Requests completed since deployment.
  virtual std::int64_t served() const = 0;
};

/// The source must not outlive `platform`. Config knobs keep their
/// fig-5/fig-6 meanings; batch-only fields (requests, operations,
/// ramp/submit windows, horizon) are ignored.
std::unique_ptr<RequestSource> make_wordpress_source(
    virt::Platform& platform, const WordPressConfig& config, Rng rng);
std::unique_ptr<RequestSource> make_cassandra_source(
    virt::Platform& platform, const CassandraConfig& config, Rng rng);

/// Serving source for an application class with default tuning. Only
/// the request-serving classes are supported (IoWeb -> WordPress,
/// IoNoSql -> Cassandra); others CHECK-fail.
std::unique_ptr<RequestSource> make_request_source(AppClass cls,
                                                   virt::Platform& platform,
                                                   Rng rng);

}  // namespace pinsim::workload
