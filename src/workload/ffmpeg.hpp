// FFmpeg video-transcoding workload (paper §III-B1, Figures 3, 7, 8).
//
// Changing the codec of a 30 MB HD video from AVC (H.264) to HEVC
// (H.265) — the most CPU-intensive transcoding operation, with a small
// (~50 MB) memory footprint. Modelled as one process per input video:
// a coordinator thread doing the serial bitstream work plus N encoder
// threads splitting the parallelizable encode, N sized from the cpus the
// platform makes *visible* (like x265's thread-pool autosizing — inside a
// vanilla container that is the whole host, which is how small vanilla
// containers end up over-threaded) and capped at 16, the paper's stated
// FFmpeg scaling limit.
#pragma once

#include "workload/workload.hpp"

namespace pinsim::workload {

struct FfmpegConfig {
  /// Serial (non-parallelizable) bitstream/mux work, one-core seconds.
  double serial_seconds = 6.0;
  /// Parallelizable encode work, one-core seconds.
  double parallel_seconds = 50.0;
  /// Effective encoder parallelism cap. The paper states FFmpeg can
  /// utilize up to 16 cores; on an HD source, x265's wavefront
  /// parallelism saturates earlier — a cap of 10 reproduces the paper's
  /// measured flattening between 2xLarge and 4xLarge.
  int max_threads = 10;
  /// Per-process startup work: demux/probe, codec init, file IO
  /// (one-core seconds; paid once per input file).
  double startup_seconds = 1.0;
  /// Source duration; splitting it into many files (Fig. 8) leaves each
  /// file too short to parallelize well.
  double source_seconds = 30.0;
  /// Work is produced in chunks of this size (scheduler interaction
  /// granularity — a frame batch).
  double chunk_ms = 40.0;
  /// Relative jitter on chunk sizes.
  double jitter = 0.08;
  /// Total hot working set of the encode (paper: ~50 MB).
  double working_set_mb = 50.0;
  /// Number of independent transcode processes (Fig. 8 multitasking
  /// experiment: 1 large video vs 30 small ones). Total work is split
  /// evenly across processes.
  int processes = 1;
  /// Safety horizon.
  SimTime horizon = sec(1200);
};

class Ffmpeg final : public Workload {
 public:
  explicit Ffmpeg(FfmpegConfig config = {}) : config_(config) {}

  std::string name() const override { return "ffmpeg"; }

  /// Metric: mean execution time of the transcode processes (= makespan
  /// for a single process).
  RunResult run(virt::Platform& platform, Rng rng) override;

  /// Split lifecycle for fleet co-simulation; run() is exactly
  /// deploy() + run_to_completion + collect().
  std::unique_ptr<Deployment> deploy(virt::Platform& platform,
                                     Rng rng) override;

  /// Encoder threads a process spawns on `platform`.
  int threads_on(const virt::Platform& platform) const;

 private:
  FfmpegConfig config_;
};

}  // namespace pinsim::workload
