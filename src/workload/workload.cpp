#include "workload/workload.hpp"

#include "util/check.hpp"

namespace pinsim::workload {

std::function<void(os::Task&)> Completion::tracker(SimTime arrived) {
  return [this, arrived](os::Task&) {
    ++finished_;
    response_.add(to_seconds(engine_->now() - arrived));
  };
}

void run_to_completion(virt::Platform& platform, Completion& completion,
                       SimTime horizon, const std::string& what) {
  const bool finished = platform.engine().run_until(
      [&completion] { return completion.done(); }, horizon);
  PINSIM_CHECK_MSG(finished, what << " on " << platform.spec().label()
                                  << " did not finish ("
                                  << completion.finished() << " tasks done)");
}

}  // namespace pinsim::workload
