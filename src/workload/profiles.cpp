#include "workload/profiles.hpp"

#include "util/check.hpp"
#include "virt/factory.hpp"
#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/mpi.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::workload {

const char* to_string(AppClass cls) {
  switch (cls) {
    case AppClass::CpuBound:
      return "CPU-bound";
    case AppClass::Hpc:
      return "HPC";
    case AppClass::IoWeb:
      return "IO-bound web";
    case AppClass::IoNoSql:
      return "Big Data (NoSQL)";
  }
  return "unknown";
}

const std::vector<AppSpec>& table1_applications() {
  static const std::vector<AppSpec> kTable = {
      {"FFmpeg", "3.4.6", "CPU-bound workload", AppClass::CpuBound},
      {"Open MPI", "2.1.1", "HPC workload", AppClass::Hpc},
      {"WordPress", "5.3.2", "IO-bound web-based workload", AppClass::IoWeb},
      {"Cassandra", "2.2", "Big Data (NoSQL) workload", AppClass::IoNoSql},
  };
  return kTable;
}

std::unique_ptr<Workload> make_workload(AppClass cls) {
  switch (cls) {
    case AppClass::CpuBound:
      return std::make_unique<Ffmpeg>();
    case AppClass::Hpc:
      return std::make_unique<MpiSearch>();
    case AppClass::IoWeb:
      return std::make_unique<WordPress>();
    case AppClass::IoNoSql:
      return std::make_unique<Cassandra>();
  }
  PINSIM_CHECK_MSG(false, "unknown app class");
  return nullptr;
}

MeasuredProfile measure_profile(Workload& workload, int cores,
                                std::uint64_t seed) {
  const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_cores(cores)};
  virt::Host host(
      virt::host_topology_for(spec, hw::Topology::dell_r830()),
      hw::CostModel{}, seed);
  auto platform = virt::make_platform(host, spec);
  const RunResult result = workload.run(*platform, Rng(seed));

  MeasuredProfile profile;
  profile.metric_seconds = result.metric_seconds;
  double lifetime = 0.0;
  double cpu = 0.0;
  double blocked = 0.0;
  double waiting = 0.0;
  double io_ops = 0.0;
  double messages = 0.0;
  for (const auto& task : host.kernel().tasks()) {
    const auto& s = task->stats;
    if (s.started_at < 0 || s.finished_at < 0) continue;
    lifetime += to_seconds(s.finished_at - s.started_at);
    cpu += to_seconds(s.cpu_time);
    blocked += to_seconds(s.block_time);
    waiting += to_seconds(s.wait_time);
    io_ops += static_cast<double>(s.io_ops);
    messages += static_cast<double>(s.messages_sent);
  }
  PINSIM_CHECK(lifetime > 0.0);
  profile.cpu_fraction = cpu / lifetime;
  profile.block_fraction = blocked / lifetime;
  profile.wait_fraction = waiting / lifetime;
  profile.io_ops_per_second = io_ops / result.wall_seconds;
  profile.messages_per_second = messages / result.wall_seconds;
  return profile;
}

}  // namespace pinsim::workload
