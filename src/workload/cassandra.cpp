#include "workload/cassandra.hpp"

#include <deque>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace pinsim::workload {

namespace {

/// Work queue shared between the stress generator and one server thread.
struct OpQueue {
  std::deque<SimTime> submit_times;
  int assigned = 0;  // total ops this thread will ever receive
};

/// Read cache-hit probability given the instance's memory (first-order
/// page/row-cache model: hit ratio ~ cached fraction of the hot set).
double cache_hit_for(const CassandraConfig& config, int memory_gb) {
  const double fraction =
      static_cast<double>(memory_gb) / config.dataset_gb;
  return std::min(config.cache_hit_cap, std::max(0.0, fraction));
}

/// One server thread: waits for an op, executes its compute/IO recipe,
/// records the response time, and exits after serving its share.
class ServerThreadDriver final : public os::TaskDriver {
 public:
  ServerThreadDriver(const CassandraConfig& config, double cache_hit,
                     std::shared_ptr<OpQueue> queue,
                     stats::Accumulator& responses, sim::Engine& engine,
                     hw::IoDevice& disk, Rng rng)
      : config_(&config),
        cache_hit_(cache_hit),
        queue_(std::move(queue)),
        responses_(&responses),
        engine_(&engine),
        disk_(&disk),
        rng_(rng) {}

  os::Action next(os::Task&) override {
    switch (stage_) {
      case Stage::Idle: {
        if (served_ >= queue_->assigned) return os::Action::exit();
        stage_ = Stage::Parse;
        return os::Action::recv();
      }
      case Stage::Parse: {
        // The op is now in hand; front of the queue is its submit time.
        PINSIM_CHECK(!queue_->submit_times.empty());
        op_submitted_ = queue_->submit_times.front();
        queue_->submit_times.pop_front();
        is_write_ = rng_.chance(config_->write_fraction);
        stage_ = Stage::MaybeIo;
        return os::Action::compute(compute_slice(0.6));
      }
      case Stage::MaybeIo: {
        stage_ = Stage::Finish;
        if (is_write_) {
          // Commit-log append (the write path always touches the log).
          return os::Action::io(
              *disk_, hw::IoRequest{hw::IoKind::Write, config_->commitlog_kb});
        }
        if (!rng_.chance(cache_hit_)) {
          return os::Action::io(
              *disk_, hw::IoRequest{hw::IoKind::Read, config_->read_kb});
        }
        // Cache hit: straight to the response.
        return os::Action::compute(compute_slice(0.4));
      }
      case Stage::Finish: {
        stage_ = Stage::Record;
        return os::Action::compute(compute_slice(0.4));
      }
      case Stage::Record: {
        responses_->add(to_seconds(engine_->now() - op_submitted_));
        ++served_;
        stage_ = Stage::Idle;
        // Loop back without a scheduling artifact.
        return os::Action::compute(0);
      }
    }
    return os::Action::exit();
  }

 private:
  enum class Stage { Idle, Parse, MaybeIo, Finish, Record };

  SimDuration compute_slice(double share) {
    const double ms = rng_.lognormal_from_moments(
        config_->op_compute_ms * share,
        config_->op_compute_jitter_ms * share);
    return std::max<SimDuration>(msec_f(ms), 1);
  }

  const CassandraConfig* config_;
  double cache_hit_;
  std::shared_ptr<OpQueue> queue_;
  stats::Accumulator* responses_;
  sim::Engine* engine_;
  hw::IoDevice* disk_;
  Rng rng_;

  Stage stage_ = Stage::Idle;
  bool is_write_ = false;
  SimTime op_submitted_ = 0;
  int served_ = 0;
};

}  // namespace

RunResult Cassandra::run(virt::Platform& platform, Rng rng) {
  const SimTime start = platform.engine().now();
  Completion completion(platform.engine());
  auto responses = std::make_shared<stats::Accumulator>();

  // Spawn the server's thread pool. One process, one JVM heap: all
  // threads share a NUMA home.
  auto numa_home = std::make_shared<int>(-1);
  std::vector<std::shared_ptr<OpQueue>> queues;
  std::vector<os::Task*> threads;
  for (int t = 0; t < config_.server_threads; ++t) {
    auto queue = std::make_shared<OpQueue>();
    queue->assigned = config_.operations / config_.server_threads +
                      (t < config_.operations % config_.server_threads ? 1 : 0);
    queues.push_back(queue);
    virt::WorkTaskConfig task_config;
    task_config.name = "cass-worker" + std::to_string(t);
    task_config.working_set_mb = config_.working_set_mb;
    task_config.numa_home = numa_home;
    task_config.guest_inflation_sensitivity =
        config_.guest_inflation_sensitivity;
    task_config.on_exit = completion.tracker(start);
    completion.expect(1);
    os::Task& task = platform.spawn(
        std::move(task_config),
        std::make_unique<ServerThreadDriver>(
            config_, cache_hit_for(config_, platform.spec().instance.memory_gb),
            queue, *responses, platform.engine(), platform.disk(),
            rng.fork()));
    threads.push_back(&task);
  }
  for (os::Task* thread : threads) platform.start(*thread);

  // cassandra-stress: 1,000 ops within one second, round-robin over the
  // "user" threads (each stress thread drives one connection).
  for (int op = 0; op < config_.operations; ++op) {
    const auto offset = static_cast<SimDuration>(
        rng.next_double() * sec_f(config_.submit_seconds));
    const int target = op % config_.server_threads;
    auto* platform_ptr = &platform;
    os::Task* task = threads[static_cast<std::size_t>(target)];
    auto queue = queues[static_cast<std::size_t>(target)];
    platform.engine().schedule_detached(offset, [platform_ptr, task, queue] {
      queue->submit_times.push_back(platform_ptr->engine().now());
      platform_ptr->post(*task, 1);
    });
  }

  run_to_completion(platform, completion, start + config_.horizon,
                    "cassandra stress");

  RunResult result;
  result.wall_seconds = to_seconds(platform.engine().now() - start);
  result.metric_seconds = responses->mean();
  result.extras["ops"] = responses->count();
  result.extras["max_response"] = responses->max();
  return result;
}

}  // namespace pinsim::workload
