#include "workload/mpi.hpp"

#include <memory>
#include <vector>

#include "util/check.hpp"

namespace pinsim::workload {

namespace {

/// Shared rank table so every rank can address its peers.
struct RankTable {
  std::vector<os::Task*> ranks;
};

/// One MPI rank. Per iteration:
///   root (rank 0):  compute, gather (recv from every peer), then
///                   broadcast (post to every peer);
///   others:         compute, post partial result to root, wait for the
///                   broadcast.
class RankDriver final : public os::TaskDriver {
 public:
  RankDriver(std::shared_ptr<RankTable> table, int rank, int nranks,
             int iterations, SimDuration compute_per_iter, double jitter,
             Rng rng)
      : table_(std::move(table)),
        rank_(rank),
        nranks_(nranks),
        iterations_(iterations),
        compute_per_iter_(compute_per_iter),
        jitter_(jitter),
        rng_(rng) {}

  os::Action next(os::Task&) override {
    if (iteration_ >= iterations_) return os::Action::exit();
    switch (phase_) {
      case Phase::Compute: {
        const double jitter =
            1.0 + jitter_ * (2.0 * rng_.next_double() - 1.0);
        const auto step = static_cast<SimDuration>(
            static_cast<double>(compute_per_iter_) * jitter);
        phase_ = rank_ == 0 ? Phase::Gather : Phase::Send;
        peer_ = 1;
        return os::Action::compute(std::max<SimDuration>(step, 1));
      }
      case Phase::Send: {  // non-root: send partial result to root
        phase_ = Phase::WaitBroadcast;
        return os::Action::post(*table_->ranks[0]);
      }
      case Phase::WaitBroadcast: {  // non-root: wait for the broadcast
        advance_iteration();
        return os::Action::recv_spin();
      }
      case Phase::Gather: {  // root: collect nranks-1 partials
        if (peer_ < nranks_) {
          ++peer_;
          return os::Action::recv_spin();
        }
        phase_ = Phase::Broadcast;
        peer_ = 1;
        [[fallthrough]];
      }
      case Phase::Broadcast: {  // root: notify every peer
        if (peer_ < nranks_) {
          os::Task& target = *table_->ranks[static_cast<std::size_t>(peer_)];
          ++peer_;
          return os::Action::post(target);
        }
        advance_iteration();
        return next_action_after_iteration();
      }
    }
    return os::Action::exit();
  }

 private:
  enum class Phase { Compute, Send, WaitBroadcast, Gather, Broadcast };

  void advance_iteration() {
    ++iteration_;
    phase_ = Phase::Compute;
  }
  os::Action next_action_after_iteration() {
    if (iteration_ >= iterations_) return os::Action::exit();
    return next_compute();
  }
  os::Action next_compute() {
    const double jitter = 1.0 + jitter_ * (2.0 * rng_.next_double() - 1.0);
    const auto step = static_cast<SimDuration>(
        static_cast<double>(compute_per_iter_) * jitter);
    phase_ = rank_ == 0 ? Phase::Gather : Phase::Send;
    peer_ = 1;
    return os::Action::compute(std::max<SimDuration>(step, 1));
  }

  std::shared_ptr<RankTable> table_;
  int rank_;
  int nranks_;
  int iterations_;
  SimDuration compute_per_iter_;
  double jitter_;
  Rng rng_;

  Phase phase_ = Phase::Compute;
  int iteration_ = 0;
  int peer_ = 1;
};

RunResult run_mpi(const MpiConfig& config, const std::string& label,
                  virt::Platform& platform, Rng& rng) {
  const int nranks = platform.spec().instance.cores;
  PINSIM_CHECK(nranks >= 1);
  const SimTime start = platform.engine().now();
  Completion completion(platform.engine());

  const auto compute_per_iter = static_cast<SimDuration>(
      sec_f(config.total_compute_seconds) /
      (static_cast<double>(nranks) * config.iterations));

  auto table = std::make_shared<RankTable>();
  for (int rank = 0; rank < nranks; ++rank) {
    // Each rank is a separate process with its own (first-touch) memory;
    // the platform allocates a private NUMA home per rank.
    virt::WorkTaskConfig task_config;
    task_config.name = label + "-rank" + std::to_string(rank);
    task_config.working_set_mb = config.working_set_mb;
    task_config.on_exit = completion.tracker(start);
    completion.expect(1);
    os::Task& task = platform.spawn(
        std::move(task_config),
        std::make_unique<RankDriver>(table, rank, nranks, config.iterations,
                                     compute_per_iter, config.jitter,
                                     rng.fork()));
    table->ranks.push_back(&task);
  }
  for (os::Task* rank : table->ranks) platform.start(*rank);

  run_to_completion(platform, completion, start + config.horizon, label);

  RunResult result;
  result.wall_seconds = to_seconds(platform.engine().now() - start);
  result.metric_seconds = result.wall_seconds;
  result.extras["ranks"] = nranks;
  result.extras["iterations"] = config.iterations;
  return result;
}

}  // namespace

RunResult MpiSearch::run(virt::Platform& platform, Rng rng) {
  return run_mpi(config_, "search", platform, rng);
}

MpiConfig MpiPrime::prime_defaults() {
  MpiConfig config;
  // Prime counting: fewer synchronization rounds, heavier shards.
  config.iterations = 200;
  config.total_compute_seconds = 16.0;
  return config;
}

MpiPrime::MpiPrime(MpiConfig config) : config_(config) {}

RunResult MpiPrime::run(virt::Platform& platform, Rng rng) {
  return run_mpi(config_, "prime", platform, rng);
}

}  // namespace pinsim::workload
