#include "workload/request_source.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "virt/platform.hpp"

namespace pinsim::workload {

namespace {

// --- WordPress -------------------------------------------------------------

/// One served web request: the fig-5 RequestDriver recipe (socket read
/// -> parse -> disk on page-cache miss -> db -> backend wait -> render
/// -> socket write), re-stated here for the serving path so the batch
/// figure's driver stays untouched.
class ServeRequestDriver final : public os::TaskDriver {
 public:
  ServeRequestDriver(const WordPressConfig& config, hw::IoDevice& disk,
                     hw::IoDevice& nic, Rng rng)
      : config_(&config), disk_(&disk), nic_(&nic), rng_(rng) {}

  os::Action next(os::Task&) override {
    switch (stage_++) {
      case 0:  // read the request from the socket
        return os::Action::io(*nic_, hw::IoRequest{hw::IoKind::NetRecv, 2.0});
      case 1:
        return os::Action::compute(jittered(config_->parse_ms));
      case 2:
        if (rng_.chance(config_->page_cache_hit)) {
          ++stage_;  // cache hit: skip the disk read
          return os::Action::compute(jittered(config_->db_ms));
        }
        return os::Action::io(*disk_, hw::IoRequest{hw::IoKind::Read, 16.0});
      case 3:
        return os::Action::compute(jittered(config_->db_ms));
      case 4:  // backend wait: db locks / upstream calls (no CPU)
        return os::Action::sleep_for(jittered(config_->backend_wait_ms));
      case 5:
        return os::Action::compute(jittered(config_->render_ms));
      case 6:
        return os::Action::io(
            *nic_, hw::IoRequest{hw::IoKind::NetSend, config_->response_kb});
      default:
        return os::Action::exit();
    }
  }

 private:
  SimDuration jittered(double ms) {
    const double jitter =
        1.0 + config_->jitter * (2.0 * rng_.next_double() - 1.0);
    return std::max<SimDuration>(msec_f(ms * jitter), 1);
  }

  const WordPressConfig* config_;
  hw::IoDevice* disk_;
  hw::IoDevice* nic_;
  int stage_ = 0;
  Rng rng_;
};

class WordPressSource final : public RequestSource {
 public:
  WordPressSource(virt::Platform& platform, WordPressConfig config, Rng rng)
      : platform_(&platform), config_(std::move(config)), rng_(rng) {}

  const char* name() const override { return "wordpress-serve"; }

  void inject(Done done) override {
    ++outstanding_;
    virt::WorkTaskConfig task_config;
    task_config.name = "req" + std::to_string(next_id_++);
    task_config.working_set_mb = config_.working_set_mb;
    task_config.guest_inflation_sensitivity =
        config_.guest_inflation_sensitivity;
    task_config.network_born = true;
    task_config.on_exit = [this, done = std::move(done)](os::Task&) {
      --outstanding_;
      ++served_;
      if (done) done();
    };
    os::Task& task = platform_->spawn(
        std::move(task_config),
        std::make_unique<ServeRequestDriver>(config_, platform_->disk(),
                                             platform_->nic(), rng_.fork()));
    platform_->start(task);
  }

  int outstanding() const override { return outstanding_; }
  std::int64_t served() const override { return served_; }

 private:
  virt::Platform* platform_;
  WordPressConfig config_;
  Rng rng_;
  std::int64_t next_id_ = 0;
  int outstanding_ = 0;
  std::int64_t served_ = 0;
};

// --- Cassandra -------------------------------------------------------------

/// Completion callbacks queued between inject() and one server thread;
/// the front of the queue belongs to the op the thread is serving (the
/// fig-6 OpQueue pattern, carrying callbacks instead of submit times —
/// latency is the caller's business in the serving split).
struct ServeQueue {
  std::deque<RequestSource::Done> pending;
};

/// One resident server thread: recv an op, execute the fig-6
/// parse/IO/respond recipe, fire the completion callback, loop forever.
class ServeThreadDriver final : public os::TaskDriver {
 public:
  ServeThreadDriver(const CassandraConfig& config, double cache_hit,
                    std::shared_ptr<ServeQueue> queue, hw::IoDevice& disk,
                    Rng rng)
      : config_(&config),
        cache_hit_(cache_hit),
        queue_(std::move(queue)),
        disk_(&disk),
        rng_(rng) {}

  os::Action next(os::Task&) override {
    switch (stage_) {
      case Stage::Idle:
        stage_ = Stage::Parse;
        return os::Action::recv();
      case Stage::Parse: {
        PINSIM_CHECK(!queue_->pending.empty());
        done_ = std::move(queue_->pending.front());
        queue_->pending.pop_front();
        is_write_ = rng_.chance(config_->write_fraction);
        stage_ = Stage::MaybeIo;
        return os::Action::compute(compute_slice(0.6));
      }
      case Stage::MaybeIo: {
        stage_ = Stage::Finish;
        if (is_write_) {
          // Commit-log append (the write path always touches the log).
          return os::Action::io(
              *disk_, hw::IoRequest{hw::IoKind::Write, config_->commitlog_kb});
        }
        if (!rng_.chance(cache_hit_)) {
          return os::Action::io(
              *disk_, hw::IoRequest{hw::IoKind::Read, config_->read_kb});
        }
        // Cache hit: straight to the response.
        return os::Action::compute(compute_slice(0.4));
      }
      case Stage::Finish:
        stage_ = Stage::Record;
        return os::Action::compute(compute_slice(0.4));
      case Stage::Record: {
        if (done_) done_();
        done_ = nullptr;
        stage_ = Stage::Idle;
        // Loop back without a scheduling artifact.
        return os::Action::compute(0);
      }
    }
    return os::Action::exit();
  }

 private:
  enum class Stage { Idle, Parse, MaybeIo, Finish, Record };

  SimDuration compute_slice(double share) {
    const double ms = rng_.lognormal_from_moments(
        config_->op_compute_ms * share, config_->op_compute_jitter_ms * share);
    return std::max<SimDuration>(msec_f(ms), 1);
  }

  const CassandraConfig* config_;
  double cache_hit_;
  std::shared_ptr<ServeQueue> queue_;
  hw::IoDevice* disk_;
  Rng rng_;

  Stage stage_ = Stage::Idle;
  bool is_write_ = false;
  RequestSource::Done done_;
};

class CassandraSource final : public RequestSource {
 public:
  CassandraSource(virt::Platform& platform, CassandraConfig config, Rng rng)
      : platform_(&platform), config_(std::move(config)), rng_(rng) {
    // First-order page/row-cache model, as in the fig-6 batch run.
    const double fraction =
        static_cast<double>(platform.spec().instance.memory_gb) /
        config_.dataset_gb;
    const double cache_hit =
        std::min(config_.cache_hit_cap, std::max(0.0, fraction));
    // Spawn the resident server pool. One process, one JVM heap: all
    // threads share a NUMA home.
    auto numa_home = std::make_shared<int>(-1);
    for (int t = 0; t < config_.server_threads; ++t) {
      queues_.push_back(std::make_shared<ServeQueue>());
      virt::WorkTaskConfig task_config;
      task_config.name = "cass-serve" + std::to_string(t);
      task_config.working_set_mb = config_.working_set_mb;
      task_config.numa_home = numa_home;
      task_config.guest_inflation_sensitivity =
          config_.guest_inflation_sensitivity;
      os::Task& task = platform.spawn(
          std::move(task_config),
          std::make_unique<ServeThreadDriver>(config_, cache_hit,
                                              queues_.back(), platform.disk(),
                                              rng_.fork()));
      workers_.push_back(&task);
    }
    for (os::Task* worker : workers_) platform.start(*worker);
  }

  const char* name() const override { return "cassandra-serve"; }

  void inject(Done done) override {
    ++outstanding_;
    const std::size_t target =
        static_cast<std::size_t>(next_id_++) % workers_.size();
    queues_[target]->pending.push_back(
        [this, done = std::move(done)] {
          --outstanding_;
          ++served_;
          if (done) done();
        });
    platform_->post(*workers_[target], 1);
  }

  int outstanding() const override { return outstanding_; }
  std::int64_t served() const override { return served_; }

 private:
  virt::Platform* platform_;
  CassandraConfig config_;
  Rng rng_;
  std::vector<std::shared_ptr<ServeQueue>> queues_;
  std::vector<os::Task*> workers_;
  std::int64_t next_id_ = 0;
  int outstanding_ = 0;
  std::int64_t served_ = 0;
};

}  // namespace

std::unique_ptr<RequestSource> make_wordpress_source(
    virt::Platform& platform, const WordPressConfig& config, Rng rng) {
  return std::make_unique<WordPressSource>(platform, config, rng);
}

std::unique_ptr<RequestSource> make_cassandra_source(
    virt::Platform& platform, const CassandraConfig& config, Rng rng) {
  PINSIM_CHECK_MSG(config.server_threads >= 1,
                   "cassandra serving needs >= 1 server thread");
  return std::make_unique<CassandraSource>(platform, config, rng);
}

std::unique_ptr<RequestSource> make_request_source(AppClass cls,
                                                   virt::Platform& platform,
                                                   Rng rng) {
  switch (cls) {
    case AppClass::IoWeb:
      return make_wordpress_source(platform, WordPressConfig{}, rng);
    case AppClass::IoNoSql:
      return make_cassandra_source(platform, CassandraConfig{}, rng);
    case AppClass::CpuBound:
    case AppClass::Hpc:
      break;
  }
  PINSIM_CHECK_MSG(false, "no request-serving model for this application "
                          "class (batch workloads use Deployment)");
  return nullptr;
}

}  // namespace pinsim::workload
