#include "virt/pinning.hpp"

namespace pinsim::virt {

hw::CpuSet pinned_cpuset(const hw::Topology& topology, int cores) {
  return topology.compact_set(cores);
}

std::vector<hw::CpuId> pinned_vcpu_map(const hw::Topology& topology,
                                       int vcpus) {
  return topology.compact_set(vcpus).to_vector();
}

}  // namespace pinsim::virt
