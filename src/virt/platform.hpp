// Execution platforms (paper Table III / Figure 2).
//
// A Platform deploys workload tasks onto a Host in one of the four
// configurations the paper evaluates — bare-metal (BM), KVM virtual
// machine (VM), Docker-style container (CN), container inside a VM
// (VMCN) — in either the vanilla (host-scheduled) or pinned (cpuset)
// CPU-provisioning mode. Workloads are written once against this
// interface and run unmodified on every platform; what differs is what
// each action costs, which is the paper's subject.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "hw/cost_model.hpp"
#include "hw/disk.hpp"
#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "virt/instance_type.hpp"

namespace pinsim::sim {
class ShardedEngine;
}  // namespace pinsim::sim

namespace pinsim::virt {

enum class PlatformKind { BareMetal, Vm, Container, VmContainer };
enum class CpuMode { Vanilla, Pinned };

const char* to_string(PlatformKind kind);
const char* to_string(CpuMode mode);

struct PlatformSpec {
  PlatformKind kind = PlatformKind::BareMetal;
  CpuMode mode = CpuMode::Vanilla;
  InstanceType instance;

  /// "Pinned CN", "Vanilla VMCN", "Vanilla BM" — the series labels used
  /// throughout the paper's figures.
  std::string label() const;
};

/// A physical machine for one simulation run: engine, topology, host
/// kernel, and the shared devices (RAID1 disk, NIC).
class Host {
 public:
  /// Solo-engine host: owns a private sim::Engine (shard 0 of nothing).
  Host(hw::Topology topology, hw::CostModel costs, std::uint64_t seed);

  /// Shard-resident host: every event of this machine (kernel, guest
  /// kernels, devices) runs on shard `shard`'s private engine inside
  /// `sharded`. Interactions with machines on other shards must go
  /// through ShardedEngine::post with at least the lookahead delay —
  /// core::ShardedFleet is the layer that does so.
  Host(sim::ShardedEngine& sharded, int shard, hw::Topology topology,
       hw::CostModel costs, std::uint64_t seed);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Engine& engine() { return *engine_; }
  os::Kernel& kernel() { return kernel_; }
  const hw::Topology& topology() const { return topology_; }
  const hw::CostModel& costs() const { return costs_; }
  hw::IoDevice& disk() { return disk_; }
  hw::IoDevice& nic() { return nic_; }
  Rng fork_rng() { return rng_.fork(); }

  /// Event shard this host lives on (0 for a solo-engine host).
  int shard() const { return shard_; }
  /// The coordinator when shard-resident, nullptr for a solo host.
  sim::ShardedEngine* sharded_engine() { return sharded_; }

 private:
  hw::Topology topology_;
  hw::CostModel costs_;
  /// Solo hosts own their engine; shard-resident hosts borrow the
  /// shard's. `engine_` points at whichever applies and is what every
  /// accessor and member initializer uses. Declared before kernel_ and
  /// the devices, which capture the engine at construction.
  std::unique_ptr<sim::Engine> owned_engine_;
  sim::Engine* engine_;
  sim::ShardedEngine* sharded_ = nullptr;
  int shard_ = 0;
  Rng rng_;
  os::Kernel kernel_;
  hw::IoDevice disk_;
  hw::IoDevice nic_;
};

/// Parameters for a workload task spawned onto a platform.
struct WorkTaskConfig {
  std::string name = "task";
  double working_set_mb = 5.0;
  double weight = 1.0;
  std::function<void(os::Task&)> on_exit;
  /// First-touch NUMA home shared between sibling threads of one
  /// process. Leave null for a private per-task home; host platforms
  /// allocate one automatically. (Guest tasks are NUMA-exempt: the
  /// hypervisor calibration covers guest memory placement.)
  std::shared_ptr<int> numa_home;
  /// How strongly the hypervisor's compute inflation applies to this
  /// task (1 = fully, e.g. the memory-intensive FFmpeg encode the paper
  /// measures at ~2x; smaller for workloads whose service time is
  /// dominated by IO paths rather than user-space compute).
  double guest_inflation_sensitivity = 1.0;
  /// Network-born request tasks start where the device interrupt ran.
  bool network_born = false;
};

class Platform {
 public:
  explicit Platform(Host& host, PlatformSpec spec)
      : host_(&host), spec_(std::move(spec)) {}
  virtual ~Platform() = default;

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Create a task governed by this platform's executor (host kernel or
  /// guest kernel) and resource controls (cgroup, affinity, pinning).
  virtual os::Task& spawn(WorkTaskConfig config,
                          std::unique_ptr<os::TaskDriver> driver) = 0;

  /// Make a spawned task runnable now (workload arrival).
  virtual void start(os::Task& task) = 0;

  /// Deliver `count` external messages to a task (load generators).
  virtual void post(os::Task& task, int count = 1) = 0;

  /// Number of cpus the application sees on this platform.
  virtual int visible_cpus() const = 0;

  // Devices as named by workloads. On VM platforms the access path goes
  // through virtio (the executor charges it); the devices themselves are
  // the host's.
  hw::IoDevice& disk() { return host_->disk(); }
  hw::IoDevice& nic() { return host_->nic(); }

  Host& host() { return *host_; }
  sim::Engine& engine() { return host_->engine(); }
  const PlatformSpec& spec() const { return spec_; }

 protected:
  Host* host_;
  PlatformSpec spec_;
};

}  // namespace pinsim::virt
