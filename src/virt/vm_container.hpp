// Container inside a VM (VMCN).
//
// The composition the paper highlights as under-studied: a Docker-style
// cgroup *inside* the guest kernel of a KVM-style VM. Workload tasks pay
// both the hypervisor's platform-type overhead and the guest-side cgroup
// accounting. Pinned VMCN pins on both levels: vCPUs to host cpus (via
// the base VmPlatform) and container tasks to vCPUs (guest cpuset +
// sticky wakeups).
#pragma once

#include "os/cgroup.hpp"
#include "virt/vm.hpp"

namespace pinsim::virt {

class VmContainerPlatform final : public VmPlatform {
 public:
  VmContainerPlatform(Host& host, PlatformSpec spec, VmConfig vm_config = {});

  os::Task& spawn(WorkTaskConfig config,
                  std::unique_ptr<os::TaskDriver> driver) override;

  const os::Cgroup& guest_cgroup() const { return *guest_cgroup_; }

 protected:
  os::TaskConfig guest_task_config(const WorkTaskConfig& config) override;

 private:
  os::Cgroup* guest_cgroup_;
};

}  // namespace pinsim::virt
