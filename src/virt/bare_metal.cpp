#include "virt/bare_metal.hpp"

#include "util/check.hpp"

namespace pinsim::virt {

BareMetalPlatform::BareMetalPlatform(Host& host, PlatformSpec spec)
    : Platform(host, std::move(spec)) {
  PINSIM_CHECK(spec_.kind == PlatformKind::BareMetal);
  PINSIM_CHECK_MSG(
      host.topology().num_cpus() == spec_.instance.cores,
      "bare-metal host must be GRUB-limited to the instance size ("
          << host.topology().num_cpus() << " cpus vs "
          << spec_.instance.cores << " cores)");
}

os::Task& BareMetalPlatform::spawn(WorkTaskConfig config,
                                   std::unique_ptr<os::TaskDriver> driver) {
  os::TaskConfig task_config;
  task_config.working_set_mb = config.working_set_mb;
  task_config.weight = config.weight;
  task_config.on_exit = std::move(config.on_exit);
  task_config.numa_home = config.numa_home != nullptr
                              ? config.numa_home
                              : std::make_shared<int>(-1);
  task_config.device_local_start = config.network_born;
  return host_->kernel().create_task(std::move(config.name),
                                     std::move(driver), task_config);
}

void BareMetalPlatform::start(os::Task& task) {
  host_->kernel().start_task(task);
}

void BareMetalPlatform::post(os::Task& task, int count) {
  host_->kernel().post_external(task, count);
}

int BareMetalPlatform::visible_cpus() const { return spec_.instance.cores; }

}  // namespace pinsim::virt
