// Bare-metal execution platform.
//
// The paper models a bare-metal "instance" by booting the host with a
// limited number of cores (GRUB maxcpus); here the Host is simply built
// from `Topology::limited_to(cores)`. Tasks run directly on the host
// kernel with no cgroup and full affinity.
#pragma once

#include "virt/platform.hpp"

namespace pinsim::virt {

class BareMetalPlatform final : public Platform {
 public:
  /// `host` must already be sized to the instance (limited topology);
  /// the constructor checks this.
  BareMetalPlatform(Host& host, PlatformSpec spec);

  os::Task& spawn(WorkTaskConfig config,
                  std::unique_ptr<os::TaskDriver> driver) override;
  void start(os::Task& task) override;
  void post(os::Task& task, int count) override;
  int visible_cpus() const override;
};

}  // namespace pinsim::virt
