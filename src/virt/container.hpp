// Docker-style container platform (CN).
//
// Per the paper (§II-C): a container is the coupling of a namespace and a
// cgroup; its tasks are native host tasks. The platform therefore spawns
// workload tasks directly into the host kernel, wrapped in a cgroup whose
// quota is `cores × period` (docker --cpus). In vanilla mode the tasks
// float over all host cpus; in pinned mode the cgroup carries a compact
// cpuset (docker --cpuset-cpus) and tasks wake sticky.
#pragma once

#include "os/cgroup.hpp"
#include "virt/platform.hpp"

namespace pinsim::virt {

class ContainerPlatform final : public Platform {
 public:
  ContainerPlatform(Host& host, PlatformSpec spec);

  os::Task& spawn(WorkTaskConfig config,
                  std::unique_ptr<os::TaskDriver> driver) override;
  void start(os::Task& task) override;
  void post(os::Task& task, int count) override;
  int visible_cpus() const override;

  const os::Cgroup& cgroup() const { return *cgroup_; }

 private:
  os::Cgroup* cgroup_;
};

}  // namespace pinsim::virt
