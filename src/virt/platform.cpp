#include "virt/platform.hpp"

#include "sim/sharded_engine.hpp"

namespace pinsim::virt {

const char* to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::BareMetal:
      return "BM";
    case PlatformKind::Vm:
      return "VM";
    case PlatformKind::Container:
      return "CN";
    case PlatformKind::VmContainer:
      return "VMCN";
  }
  return "unknown";
}

const char* to_string(CpuMode mode) {
  switch (mode) {
    case CpuMode::Vanilla:
      return "Vanilla";
    case CpuMode::Pinned:
      return "Pinned";
  }
  return "unknown";
}

std::string PlatformSpec::label() const {
  return std::string(to_string(mode)) + " " + to_string(kind);
}

Host::Host(hw::Topology topology, hw::CostModel costs, std::uint64_t seed)
    : topology_(topology),
      costs_(costs),
      owned_engine_(std::make_unique<sim::Engine>()),
      engine_(owned_engine_.get()),
      rng_(seed),
      kernel_(*engine_, topology_, costs_, rng_.fork()),
      disk_(hw::IoDevice::raid1_hdd(*engine_, rng_.fork())),
      nic_(hw::IoDevice::gigabit_nic(*engine_, rng_.fork())) {}

Host::Host(sim::ShardedEngine& sharded, int shard, hw::Topology topology,
           hw::CostModel costs, std::uint64_t seed)
    : topology_(topology),
      costs_(costs),
      engine_(&sharded.shard(shard)),
      sharded_(&sharded),
      shard_(shard),
      rng_(seed),
      kernel_(*engine_, topology_, costs_, rng_.fork()),
      disk_(hw::IoDevice::raid1_hdd(*engine_, rng_.fork())),
      nic_(hw::IoDevice::gigabit_nic(*engine_, rng_.fork())) {
  kernel_.bind_shard(shard);
}

}  // namespace pinsim::virt
