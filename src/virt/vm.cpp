#include "virt/vm.hpp"

#include "util/check.hpp"
#include "virt/pinning.hpp"

namespace pinsim::virt {

namespace {

/// Host-task driver backing one vCPU: runs guest bursts while the guest
/// core has work, halts (blocks) otherwise until kicked.
class VcpuDriver final : public os::TaskDriver {
 public:
  VcpuDriver(GuestKernel& guest, int vcpu, const hw::CostModel& costs)
      : guest_(&guest), vcpu_(vcpu), costs_(&costs) {}

  os::Action next(os::Task& task) override {
    if (outstanding_) {
      outstanding_ = false;
      guest_->complete_burst(vcpu_);
    }
    const auto burst = guest_->next_burst(vcpu_);
    if (!burst.has_value()) {
      // HLT: one exit, then wait for a kick.
      task.overhead_debt += costs_->vmexit;
      return os::Action::recv();
    }
    outstanding_ = true;
    return os::Action::compute(*burst);
  }

 private:
  GuestKernel* guest_;
  int vcpu_;
  const hw::CostModel* costs_;
  bool outstanding_ = false;
};

GuestKernel::Config guest_config(const Host& host, const PlatformSpec& spec,
                                 const VmConfig& vm_config) {
  GuestKernel::Config config;
  config.vcpus = spec.instance.cores;
  config.compute_inflation = host.costs().guest_compute_inflation;
  config.params = vm_config.guest_params;
  return config;
}

}  // namespace

VmPlatform::VmPlatform(Host& host, PlatformSpec spec, VmConfig vm_config)
    : Platform(host, std::move(spec)),
      guest_(host, guest_config(host, spec_, vm_config)) {
  PINSIM_CHECK(spec_.kind == PlatformKind::Vm ||
               spec_.kind == PlatformKind::VmContainer);
  PINSIM_CHECK_MSG(spec_.instance.cores <= host.topology().num_cpus(),
                   "VM has more vCPUs than the host has cpus");

  const std::vector<hw::CpuId> pin_map =
      spec_.mode == CpuMode::Pinned
          ? pinned_vcpu_map(host.topology(), spec_.instance.cores)
          : std::vector<hw::CpuId>{};

  for (int vcpu = 0; vcpu < spec_.instance.cores; ++vcpu) {
    os::TaskConfig config;
    config.working_set_mb = vm_config.vcpu_working_set_mb;
    if (spec_.mode == CpuMode::Pinned) {
      config.affinity =
          hw::CpuSet::of({pin_map[static_cast<std::size_t>(vcpu)]});
    }
    os::Task& task = host.kernel().create_task(
        "vcpu" + std::to_string(vcpu),
        std::make_unique<VcpuDriver>(guest_, vcpu, host.costs()), config);
    guest_.attach_vcpu_task(vcpu, task);
    vcpu_tasks_.push_back(&task);
    host.kernel().start_task(task);
  }
}

os::TaskConfig VmPlatform::guest_task_config(const WorkTaskConfig& config) {
  os::TaskConfig task_config;
  task_config.working_set_mb = config.working_set_mb;
  task_config.weight = config.weight;
  // The hypervisor's measured compute inflation, scaled by how much of
  // this task's time is really user-space compute.
  task_config.compute_inflation =
      1.0 + (host_->costs().guest_compute_inflation - 1.0) *
                config.guest_inflation_sensitivity;
  return task_config;
}

os::Task& VmPlatform::spawn(WorkTaskConfig config,
                            std::unique_ptr<os::TaskDriver> driver) {
  os::TaskConfig task_config = guest_task_config(config);
  task_config.on_exit = std::move(config.on_exit);
  return guest_.create_task(std::move(config.name), std::move(driver),
                            std::move(task_config));
}

void VmPlatform::start(os::Task& task) { guest_.start_task(task); }

void VmPlatform::post(os::Task& task, int count) {
  guest_.post_external(task, count);
}

int VmPlatform::visible_cpus() const { return spec_.instance.cores; }

}  // namespace pinsim::virt
