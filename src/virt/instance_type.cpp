#include "virt/instance_type.hpp"

#include "util/check.hpp"

namespace pinsim::virt {

const std::vector<InstanceType>& instance_catalog() {
  static const std::vector<InstanceType> kCatalog = {
      {"Large", 2, 8},      {"xLarge", 4, 16},    {"2xLarge", 8, 32},
      {"4xLarge", 16, 64},  {"8xLarge", 32, 128}, {"16xLarge", 64, 256},
  };
  return kCatalog;
}

const InstanceType& instance_by_name(const std::string& name) {
  for (const auto& type : instance_catalog()) {
    if (type.name == name) return type;
  }
  PINSIM_CHECK_MSG(false, "unknown instance type '" << name << "'");
  return instance_catalog().front();  // unreachable
}

const InstanceType& instance_by_cores(int cores) {
  for (const auto& type : instance_catalog()) {
    if (type.cores == cores) return type;
  }
  PINSIM_CHECK_MSG(false, "no instance type with " << cores << " cores");
  return instance_catalog().front();  // unreachable
}

const InstanceType& largest_instance_within(int cores) {
  const InstanceType* best = nullptr;
  for (const auto& type : instance_catalog()) {
    if (type.cores <= cores && (best == nullptr || type.cores > best->cores)) {
      best = &type;
    }
  }
  PINSIM_CHECK_MSG(best != nullptr,
                   "no instance type fits within " << cores << " cores");
  return *best;
}

}  // namespace pinsim::virt
