#include "virt/guest.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "virt/platform.hpp"

namespace pinsim::virt {

GuestKernel::GuestKernel(Host& host, Config config)
    : host_(&host),
      config_(config),
      rng_(host.fork_rng()),
      vcpus_(static_cast<std::size_t>(config.vcpus)) {
  PINSIM_CHECK(config.vcpus >= 1);
  PINSIM_CHECK(config.vcpus <= hw::CpuSet::kMaxCpus);
  PINSIM_CHECK(config.compute_inflation >= 1.0);
  PINSIM_CHECK(config.burst_cap > 0);
}

int GuestKernel::shard() const { return host_->shard(); }

void GuestKernel::attach_vcpu_task(int vcpu, os::Task& host_task) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  PINSIM_CHECK(v.host_task == nullptr);
  v.host_task = &host_task;
}

os::Cgroup& GuestKernel::create_cgroup(os::Cgroup::Config config) {
  // A cgroup makes future ticks do aggregation work; revoke while the
  // group list is still empty so the replayed ticks stay no-ops.
  exit_guest_quiet();
  if (!config.cpuset.empty()) {
    PINSIM_CHECK_MSG(config.cpuset.subset_of(hw::CpuSet::first_n(vcpus())),
                     "guest cgroup cpuset outside vCPU range");
  }
  cgroups_.push_back(
      std::make_unique<os::Cgroup>(std::move(config), host_->costs()));
  return *cgroups_.back();
}

os::Task& GuestKernel::create_task(std::string name,
                                   std::unique_ptr<os::TaskDriver> driver,
                                   os::TaskConfig config) {
  const os::Task::Id id = static_cast<os::Task::Id>(tasks_.size());
  tasks_.push_back(
      std::make_unique<os::Task>(id, std::move(name), std::move(driver)));
  os::Task& task = *tasks_.back();
  task.affinity = config.affinity;  // over vCPU ids
  if (!task.affinity.empty()) {
    PINSIM_CHECK_MSG(
        !(task.affinity & hw::CpuSet::first_n(vcpus())).empty(),
        "guest task affinity disjoint from vCPUs");
  }
  task.weight = config.weight;
  task.working_set_mb = config.working_set_mb;
  // The platform layer folds the hypervisor's inflation into the task
  // configuration (scaled by workload sensitivity).
  task.compute_inflation = config.compute_inflation;
  if (config.cgroup != nullptr) {
    config.cgroup->add_member(task);
  }
  on_exit_.push_back(std::move(config.on_exit));
  return task;
}

void GuestKernel::start_task(os::Task& task) {
  PINSIM_CHECK(task.state == os::TaskState::Created);
  ++live_tasks_;
  task.stats.started_at = host_->engine().now();
  task.overhead_debt += host_->costs().sched_pick;
  ensure_housekeeping();
  const int vcpu = place_task(task);
  task.vruntime = vcpus_[static_cast<std::size_t>(vcpu)].rq.min_vruntime();
  enqueue_task(task, vcpu);
}

void GuestKernel::post_external(os::Task& task, int count) {
  PINSIM_CHECK(count >= 1);
  task.pending_msgs += count;
  if (task.state == os::TaskState::Blocked && task.recv_waiting) {
    task.recv_waiting = false;
    --task.pending_msgs;
    // Network packet into the guest: one injection (vmexit path) plus
    // the guest-side wake chain.
    wake(task, host_->costs().kernel_entry);
  }
}

void GuestKernel::wake(os::Task& task, SimDuration extra_debt) {
  PINSIM_CHECK_MSG(task.state == os::TaskState::Blocked,
                   "guest wake of non-blocked task " << task.name());
  const SimTime now = host_->engine().now();
  task.stats.block_time += now - task.blocked_at;
  ++task.stats.wakeups;
  task.overhead_debt +=
      host_->costs().sched_pick + host_->costs().kernel_entry + extra_debt;
  const int vcpu = place_task(task);
  if (config_.params.sleeper_credit) {
    task.vruntime =
        std::max(task.vruntime,
                 vcpus_[static_cast<std::size_t>(vcpu)].rq.min_vruntime() -
                     config_.params.sched_latency);
  }
  enqueue_task(task, vcpu);
}

// --- scheduling --------------------------------------------------------------

hw::CpuSet GuestKernel::allowed_vcpus(const os::Task& task) const {
  hw::CpuSet allowed = hw::CpuSet::first_n(vcpus());
  if (!task.affinity.empty()) allowed = allowed & task.affinity;
  if (task.cgroup != nullptr && !task.cgroup->cpuset().empty()) {
    allowed = allowed & task.cgroup->cpuset();
  }
  PINSIM_CHECK(!allowed.empty());
  return allowed;
}

int GuestKernel::place_task(os::Task& task) {
  const hw::CpuSet allowed = allowed_vcpus(task);
  const int prev = task.last_cpu;

  if (task.sticky_wakeup && prev >= 0 && allowed.contains(prev)) {
    return prev;
  }
  auto is_idle = [this](int vcpu) {
    const auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
    return v.current == nullptr && v.rq.empty();
  };
  if (prev >= 0 && allowed.contains(prev) && is_idle(prev)) return prev;

  // Count-then-select over `allowed`'s set bits: same candidates in the
  // same ascending order (and the same single RNG draw) as the old
  // vector-building code, without the per-wakeup allocations.
  int idle_count = 0;
  allowed.for_each([&](hw::CpuId vcpu) {
    if (is_idle(vcpu)) ++idle_count;
  });
  if (idle_count > 0) {
    std::int64_t pick = rng_.uniform_int(0, idle_count - 1);
    for (hw::CpuId vcpu = allowed.first_set_after(-1); vcpu >= 0;
         vcpu = allowed.first_set_after(vcpu)) {
      if (is_idle(vcpu) && pick-- == 0) return vcpu;
    }
  }
  auto load_of = [this](int vcpu) {
    const auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
    return v.rq.size() + (v.current != nullptr ? 1 : 0);
  };
  int best_load = INT32_MAX;
  int ties = 0;
  allowed.for_each([&](hw::CpuId vcpu) {
    const int load = load_of(vcpu);
    if (load < best_load) {
      best_load = load;
      ties = 0;
    }
    if (load == best_load) ++ties;
  });
  std::int64_t pick = rng_.uniform_int(0, ties - 1);
  for (hw::CpuId vcpu = allowed.first_set_after(-1); vcpu >= 0;
       vcpu = allowed.first_set_after(vcpu)) {
    if (load_of(vcpu) == best_load && pick-- == 0) return vcpu;
  }
  PINSIM_CHECK_MSG(false, "guest tie pick fell off the allowed set");
  return allowed.first();
}

void GuestKernel::enqueue_task(os::Task& task, int vcpu) {
  if (task.cgroup != nullptr && task.cgroup->throttled_on(vcpu)) {
    task.state = os::TaskState::Throttled;
    task.cgroup->park(task);
    return;
  }
  // Queued work ends the quiet window: the next tick would no longer be
  // a no-op (idle-vCPU balance can act on a non-empty runqueue). Revoke
  // before the enqueue so the replayed ticks still see empty queues.
  exit_guest_quiet();
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  task.state = os::TaskState::Runnable;
  task.enqueued_at = host_->engine().now();
  task.queued_cpu = vcpu;
  v.rq.enqueue(task);
  if (v.halted) kick(vcpu);
}

void GuestKernel::kick(int vcpu) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  PINSIM_CHECK(v.host_task != nullptr);
  ++stats_.kicks;
  if (kick_via_irq_) {
    // vhost completion: the host device interrupt lands on a steered
    // (pinned) or round-robin (vanilla) cpu and pulls the vCPU there.
    host_->kernel().post_external(*v.host_task);
  } else {
    // kvm_vcpu_kick: the IPI targets the pCPU the vCPU last ran on.
    host_->kernel().post_local(*v.host_task);
  }
}

os::Task* GuestKernel::pick_next(int vcpu) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  auto pop_usable = [this, vcpu](os::Runqueue& rq) -> os::Task* {
    while (!rq.empty()) {
      os::Task& candidate = rq.pop_min();
      candidate.queued_cpu = -1;
      if (candidate.cgroup != nullptr &&
          candidate.cgroup->throttled_on(vcpu)) {
        candidate.state = os::TaskState::Throttled;
        candidate.cgroup->park(candidate);
        continue;
      }
      return &candidate;
    }
    return nullptr;
  };
  if (os::Task* task = pop_usable(v.rq)) return task;

  // Guest new-idle balance: steal the most-serviced compatible task from
  // the busiest sibling vCPU.
  int best_load = 0;
  int victim = -1;
  os::Task* candidate = nullptr;
  for (int other = 0; other < vcpus(); ++other) {
    if (other == vcpu) continue;
    auto& rq = vcpus_[static_cast<std::size_t>(other)].rq;
    if (rq.size() <= best_load) continue;
    os::Task* found = rq.max_where([&](const os::Task& task) {
      if (!allowed_vcpus(task).contains(vcpu)) return false;
      if (task.cgroup != nullptr && task.cgroup->throttled_on(vcpu)) {
        return false;
      }
      return true;
    });
    if (found != nullptr) {
      best_load = rq.size();
      victim = other;
      candidate = found;
    }
  }
  if (candidate == nullptr) return nullptr;
  auto& victim_rq = vcpus_[static_cast<std::size_t>(victim)].rq;
  victim_rq.remove(*candidate);
  candidate->vruntime = candidate->vruntime - victim_rq.min_vruntime() +
                        v.rq.min_vruntime();
  candidate->queued_cpu = -1;
  return candidate;
}

SimDuration GuestKernel::slice_for(const VcpuState& v) const {
  const int runnable = v.rq.size() + 1;
  return std::max(config_.params.min_granularity,
                  config_.params.sched_latency / runnable);
}

SimDuration GuestKernel::remaining_cost(const os::Task& task) const {
  return task.overhead_debt + task.burst_remaining;
}

std::optional<SimDuration> GuestKernel::next_burst(int vcpu) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  PINSIM_CHECK_MSG(v.pending_guest == 0 && v.poll_pending == 0,
                   "next_burst with grant outstanding on vcpu " << vcpu);
  const auto& costs = host_->costs();

  for (int guard = 0; guard < 100000; ++guard) {
    if (v.current == nullptr) {
      os::Task* next = pick_next(vcpu);
      if (next == nullptr) {
        // Idle: burn the halt-poll budget (host cpu, no guest progress)
        // before actually halting, like KVM's halt_poll_ns. Wakeups that
        // land within the window are picked up at the next poll chunk
        // without a kick.
        if (v.poll_left > 0) {
          const SimDuration chunk =
              std::min(v.poll_left, costs.halt_poll_chunk);
          v.poll_left -= chunk;
          v.poll_pending = chunk;
          return chunk;
        }
        v.halted = true;
        ++stats_.halts;
        return std::nullopt;
      }
      v.halted = false;
      v.poll_left = costs.halt_poll;  // reset for the next idle episode
      ++stats_.dispatches;
      ++next->stats.context_switches;
      next->overhead_debt +=
          costs.context_switch + costs.guest_context_switch_extra;
      if (next->last_cpu >= 0 && next->last_cpu != vcpu) {
        ++stats_.guest_migrations;
        ++next->stats.migrations;
        // Moving between vCPUs refills the private cache of whatever
        // host cpu backs them; charged at the flat guest rate.
        next->overhead_debt += costs.guest_ipc;
      }
      next->stats.wait_time += host_->engine().now() - next->enqueued_at;
      next->last_cpu = vcpu;
      next->state = os::TaskState::Running;
      v.current = next;
      v.slice_used = 0;
      v.slice_length = slice_for(v);
    }
    v.halted = false;

    os::Task& task = *v.current;
    if (remaining_cost(task) == 0) {
      if (!advance_actions(vcpu, task)) {
        v.current = nullptr;
        continue;
      }
    }
    if (v.slice_used >= v.slice_length) {
      if (!v.rq.empty()) {
        // Guest slice expired: preempt within the guest.
        task.state = os::TaskState::Runnable;
        task.enqueued_at = host_->engine().now();
        task.queued_cpu = vcpu;
        v.rq.enqueue(task);
        v.current = nullptr;
        continue;
      }
      v.slice_used = 0;
      v.slice_length = slice_for(v);
    }

    SimDuration len = remaining_cost(task);
    len = std::min(len, v.slice_length - v.slice_used);
    len = std::min(len, config_.burst_cap);
    if (task.cgroup != nullptr && task.cgroup->has_quota()) {
      len = std::min(len, costs.cgroup_aggregate_interval);
      len = std::min(len, task.cgroup->runtime_horizon(vcpu));
    }
    len = std::max<SimDuration>(len, 1);
    v.pending_guest = len;
    ++stats_.bursts;
    // Timer-tick VM exits tax the grant proportionally.
    const SimDuration tax = static_cast<SimDuration>(
        static_cast<double>(len) * static_cast<double>(costs.vmexit) /
        static_cast<double>(costs.guest_tick_period));
    return len + tax;
  }
  PINSIM_CHECK_MSG(false, "guest scheduler spun on vcpu " << vcpu);
  return std::nullopt;
}

void GuestKernel::complete_burst(int vcpu) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  if (v.poll_pending > 0) {
    // A halt-poll chunk finished: host time passed, no guest progress.
    v.poll_pending = 0;
    return;
  }
  PINSIM_CHECK(v.pending_guest > 0);
  os::Task* task = v.current;
  PINSIM_CHECK(task != nullptr);
  const SimDuration elapsed = v.pending_guest;
  v.pending_guest = 0;
  stats_.granted += elapsed;

  const SimDuration paid = std::min(task->overhead_debt, elapsed);
  task->overhead_debt -= paid;
  task->stats.overhead_paid += paid;
  const SimDuration worked = elapsed - paid;
  if (worked > 0) {
    PINSIM_CHECK_MSG(worked <= task->burst_remaining,
                     "guest charged past burst end for " << task->name());
    task->burst_remaining -= worked;
    task->burst_consumed += worked;
    task->stats.work_done = static_cast<SimDuration>(
        std::llround(static_cast<double>(task->burst_consumed) /
                     task->compute_inflation));
  }
  task->stats.cpu_time += elapsed;
  task->vruntime += static_cast<SimDuration>(
      static_cast<double>(elapsed) / task->weight);
  v.slice_used += elapsed;

  if (task->cgroup != nullptr) {
    const SimDuration accounting = task->cgroup->charge(vcpu, elapsed);
    if (accounting > 0) task->overhead_debt += accounting;
    if (task->cgroup->throttled_on(vcpu)) {
      ++stats_.throttle_events;
      park(*task);
      v.current = nullptr;
    }
  }
}

void GuestKernel::park(os::Task& task) {
  task.state = os::TaskState::Throttled;
  PINSIM_CHECK(task.cgroup != nullptr);
  task.cgroup->park(task);
}

// --- action protocol ----------------------------------------------------------

bool GuestKernel::advance_actions(int vcpu, os::Task& task) {
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  const auto& costs = host_->costs();
  // Busy-polling receive (see os::Kernel::advance_actions).
  if (task.spin_recv) {
    if (task.pending_msgs == 0) {
      task.overhead_debt += costs.spin_poll_chunk;
      return true;
    }
    task.spin_recv = false;
    --task.pending_msgs;
  }
  for (int guard = 0; guard < 100000; ++guard) {
    const os::Action action = task.driver().next(task);
    switch (action.kind) {
      case os::Action::Kind::Compute: {
        if (action.work == 0) continue;
        task.burst_remaining = static_cast<SimDuration>(
            static_cast<double>(action.work) * task.compute_inflation);
        return true;
      }
      case os::Action::Kind::Post: {
        PINSIM_CHECK(action.target != nullptr);
        deliver(task, *action.target, action.count);
        continue;
      }
      case os::Action::Kind::Recv: {
        if (task.pending_msgs > 0) {
          --task.pending_msgs;
          continue;
        }
        if (action.spin) {
          task.spin_recv = true;
          task.overhead_debt += costs.spin_poll_chunk;
          return true;
        }
        task.recv_waiting = true;
        block_task(task);
        return false;
      }
      case os::Action::Kind::Io: {
        submit_io(task, action);
        block_task(task);
        return false;
      }
      case os::Action::Kind::Sleep: {
        os::Task* sleeper = &task;
        host_->engine().schedule_detached(action.duration,
                                 [this, sleeper] { wake(*sleeper, 0); });
        block_task(task);
        return false;
      }
      case os::Action::Kind::Exit: {
        finish_task(task);
        return false;
      }
    }
  }
  PINSIM_CHECK_MSG(false, "guest driver for " << task.name() << " spun");
  (void)v;
  (void)costs;
  return false;
}

void GuestKernel::block_task(os::Task& task) {
  PINSIM_CHECK(task.state == os::TaskState::Running);
  task.state = os::TaskState::Blocked;
  task.blocked_at = host_->engine().now();
}

void GuestKernel::finish_task(os::Task& task) {
  PINSIM_CHECK(task.state == os::TaskState::Running);
  task.state = os::TaskState::Finished;
  task.stats.finished_at = host_->engine().now();
  --live_tasks_;
  // Record (don't revoke): the old path's next tick would idle-stop
  // here, but a task starting before it would keep the cadence alive —
  // exit_guest_quiet resolves which happened when the window ends.
  if (guest_quiet_ && live_tasks_ == 0) {
    guest_quiet_idle_at_ = host_->engine().now();
  }
  auto& on_exit = on_exit_[static_cast<std::size_t>(task.id())];
  if (on_exit) on_exit(task);
}

void GuestKernel::deliver(os::Task& from, os::Task& to, int count) {
  PINSIM_CHECK(count >= 1);
  from.stats.messages_sent += count;
  // Intra-VM message: hypervisor shared memory, no host kernel on the
  // path (paper §III-B2). An IPI exit is only needed when the target
  // vCPU is halted.
  from.overhead_debt += host_->costs().guest_ipc * count;
  if (from.cgroup != nullptr && from.cgroup == to.cgroup) {
    // Container-in-VM: the bridge path exists too, but entirely inside
    // the guest (its softirq lands on the sender's own vCPU).
    from.overhead_debt += host_->costs().container_net_msg * count;
  }
  to.pending_msgs += count;
  if (to.state == os::TaskState::Blocked && to.recv_waiting) {
    const int target = to.last_cpu >= 0 ? to.last_cpu : 0;
    const bool target_halted =
        vcpus_[static_cast<std::size_t>(target)].halted;
    if (target_halted) from.overhead_debt += host_->costs().vmexit;
    to.recv_waiting = false;
    --to.pending_msgs;
    wake(to, 0);
  }
}

void GuestKernel::submit_io(os::Task& task, const os::Action& action) {
  PINSIM_CHECK(action.device != nullptr);
  task.io_active = true;
  ++task.stats.io_ops;
  ++stats_.io_exits;
  // The IO exit runs on this vCPU: charge the hypervisor's exit cost to
  // the vCPU's host task (paid out of its next host slice).
  const int vcpu = task.last_cpu >= 0 ? task.last_cpu : 0;
  auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
  if (v.host_task != nullptr) {
    v.host_task->overhead_debt += host_->costs().vmexit;
  }
  os::Task* waiter = &task;
  action.device->submit(action.request,
                        [this, waiter] { io_complete(*waiter); },
                        host_->costs().virtio_io_overhead);
}

void GuestKernel::io_complete(os::Task& task) {
  // Virtio completion: host-side vhost interrupt (kick follows the IRQ
  // path), then the injected guest interrupt and bottom half charged to
  // the waking task.
  kick_via_irq_ = true;
  wake(task, host_->costs().irq_service + host_->costs().kernel_entry);
  kick_via_irq_ = false;
}

// --- housekeeping (guest cgroups) ---------------------------------------------

void GuestKernel::ensure_housekeeping() {
  if (housekeeping_active_) return;
  housekeeping_active_ = true;
  cgroup_next_period_.resize(cgroups_.size(), host_->engine().now());
  for (auto& next : cgroup_next_period_) {
    next = std::max(next, host_->engine().now());
  }
  arm_housekeeping(host_->costs().cgroup_aggregate_interval);
}

void GuestKernel::arm_housekeeping(SimDuration delay) {
  sim::Engine& engine = host_->engine();
  const SimTime when = engine.now() + delay;
  if (engine.reschedule(housekeeping_, when)) return;
  housekeeping_ =
      engine.schedule_tracked_at(when, [this] { housekeeping_tick(); });
}

void GuestKernel::balance_idle_vcpus() {
  for (int vcpu = 0; vcpu < vcpus(); ++vcpu) {
    auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
    if (!v.halted || !v.rq.empty()) continue;
    // Busiest sibling runqueue with a stealable task.
    int best_load = 1;  // steal only from vCPUs with waiting tasks
    int victim = -1;
    os::Task* candidate = nullptr;
    for (int other = 0; other < vcpus(); ++other) {
      if (other == vcpu) continue;
      auto& rq = vcpus_[static_cast<std::size_t>(other)].rq;
      if (rq.size() < best_load) continue;
      os::Task* found = rq.max_where([&](const os::Task& task) {
        if (!allowed_vcpus(task).contains(vcpu)) return false;
        if (task.cgroup != nullptr && task.cgroup->throttled_on(vcpu)) {
          return false;
        }
        return true;
      });
      if (found != nullptr) {
        best_load = rq.size() + 1;
        victim = other;
        candidate = found;
      }
    }
    if (candidate == nullptr) continue;
    auto& victim_rq = vcpus_[static_cast<std::size_t>(victim)].rq;
    victim_rq.remove(*candidate);
    candidate->vruntime = candidate->vruntime - victim_rq.min_vruntime() +
                          v.rq.min_vruntime();
    candidate->queued_cpu = vcpu;
    ++stats_.guest_migrations;
    candidate->overhead_debt += host_->costs().guest_ipc;
    v.rq.enqueue(*candidate);
    kick(vcpu);
  }
}

void GuestKernel::rotate_surplus_task() {
  int max_load = 0;
  int min_load = INT32_MAX;
  int busiest = -1;
  int idlest = -1;
  for (int vcpu = 0; vcpu < vcpus(); ++vcpu) {
    const auto& v = vcpus_[static_cast<std::size_t>(vcpu)];
    const int load = v.rq.size() + (v.current != nullptr ? 1 : 0);
    if (load > max_load) {
      max_load = load;
      busiest = vcpu;
    }
    if (load < min_load) {
      min_load = load;
      idlest = vcpu;
    }
  }
  if (busiest < 0 || idlest < 0 || max_load - min_load < 1) return;
  auto& from = vcpus_[static_cast<std::size_t>(busiest)];
  if (from.rq.empty()) return;
  os::Task* candidate = from.rq.max_where([&](const os::Task& task) {
    if (!allowed_vcpus(task).contains(idlest)) return false;
    if (task.cgroup != nullptr && task.cgroup->throttled_on(idlest)) {
      return false;
    }
    return true;
  });
  if (candidate == nullptr) return;
  auto& to = vcpus_[static_cast<std::size_t>(idlest)];
  from.rq.remove(*candidate);
  candidate->vruntime = candidate->vruntime - from.rq.min_vruntime() +
                        to.rq.min_vruntime();
  candidate->queued_cpu = idlest;
  candidate->overhead_debt += host_->costs().guest_ipc;
  ++stats_.guest_migrations;
  to.rq.enqueue(*candidate);
  if (to.halted) kick(idlest);
}

void GuestKernel::housekeeping_tick() {
  if (live_tasks_ == 0) {
    housekeeping_active_ = false;
    return;
  }
  balance_idle_vcpus();
  if (++housekeeping_ticks_ % 8 == 0) rotate_surplus_task();
  const auto& costs = host_->costs();
  cgroup_next_period_.resize(cgroups_.size(), host_->engine().now());
  for (std::size_t i = 0; i < cgroups_.size(); ++i) {
    os::Cgroup& group = *cgroups_[i];
    const SimDuration cost = group.aggregate();
    if (cost > 0) {
      // Charge the (inflated) kernel-space walk to the first running
      // member; the whole group stalls behind the shared quota pool.
      for (auto& v : vcpus_) {
        if (v.current != nullptr && v.current->cgroup == &group) {
          v.current->overhead_debt += static_cast<SimDuration>(
              static_cast<double>(cost) * config_.compute_inflation);
          break;
        }
      }
    }
    if (group.has_quota() && host_->engine().now() >= cgroup_next_period_[i]) {
      const bool released = group.refill_period();
      cgroup_next_period_[i] = host_->engine().now() + costs.cfs_period;
      if (released) {
        ++stats_.unthrottle_events;
        const std::vector<os::Task*> parked = group.take_parked();
        for (os::Task* task : parked) {
          PINSIM_CHECK(task->state == os::TaskState::Throttled);
          task->overhead_debt += costs.sched_pick;
          enqueue_task(*task, place_task(*task));
        }
      }
    }
  }
  if (config_.params.quiet_fast_forward && cgroups_.empty() &&
      all_runqueues_empty()) {
    // Quiet guest: every vCPU is either halted or running its only
    // task, so each following tick is a pure no-op — balance and the
    // surplus rotation both need a non-empty runqueue and there are no
    // cgroups to aggregate. Skip them: leave the timer dead and replay
    // the tick counter on revocation.
    guest_quiet_ = true;
    guest_quiet_entered_ = host_->engine().now();
    guest_quiet_idle_at_ = -1;
    host_->engine().note_quiet_window();
    return;
  }
  arm_housekeeping(costs.cgroup_aggregate_interval);
}

bool GuestKernel::all_runqueues_empty() const {
  for (const auto& v : vcpus_) {
    if (!v.rq.empty()) return false;
  }
  return true;
}

void GuestKernel::exit_guest_quiet() {
  if (!guest_quiet_) return;
  guest_quiet_ = false;
  sim::Engine& engine = host_->engine();
  PINSIM_CHECK_MSG(cgroups_.empty(), "quiet guest grew a cgroup");
  PINSIM_CHECK_MSG(all_runqueues_empty(), "quiet guest acquired queued work");
  const SimDuration interval = host_->costs().cgroup_aggregate_interval;
  // Ticks strictly before t on the suspended cadence; each was a no-op
  // whose only effect was ++housekeeping_ticks_ (the %8 rotation phase
  // must stay aligned).
  auto ticks_before = [&](SimTime t) -> std::int64_t {
    const SimDuration d = t - guest_quiet_entered_;
    return d == 0 ? 0 : (d - 1) / interval;
  };
  if (guest_quiet_idle_at_ >= 0) {
    // The fleet drained mid-window. The first tick after that instant
    // would have found live_tasks_ == 0 and idle-stopped; if it lies in
    // the past, emulate the stop so a starting task re-arms from
    // scratch through ensure_housekeeping (fresh cadence, as the old
    // path would).
    const SimTime stop_tick =
        guest_quiet_entered_ +
        (ticks_before(guest_quiet_idle_at_) + 1) * interval;
    guest_quiet_idle_at_ = -1;
    if (stop_tick <= engine.now()) {
      const std::int64_t skipped = ticks_before(stop_tick);
      housekeeping_ticks_ += skipped;
      engine.note_boundaries_skipped(skipped);
      housekeeping_active_ = false;
      if (live_tasks_ > 0) ensure_housekeeping();
      return;
    }
  }
  const std::int64_t skipped = ticks_before(engine.now());
  housekeeping_ticks_ += skipped;
  engine.note_boundaries_skipped(skipped);
  arm_housekeeping(guest_quiet_entered_ + (skipped + 1) * interval -
                   engine.now());
}

}  // namespace pinsim::virt
