// Platform factory: the entry point experiments use.
#pragma once

#include <memory>

#include "virt/platform.hpp"

namespace pinsim::virt {

/// The host topology a run of `spec` needs: virtualized platforms run on
/// the full host; a bare-metal instance is the host GRUB-limited to the
/// instance's cores.
hw::Topology host_topology_for(const PlatformSpec& spec,
                               const hw::Topology& full_host);

/// Instantiate the platform described by `spec` on `host` (whose
/// topology must match host_topology_for).
std::unique_ptr<Platform> make_platform(Host& host, const PlatformSpec& spec);

/// The seven series of the paper's figures, in legend order:
/// Vanilla/Pinned VM, Vanilla/Pinned VMCN, Vanilla/Pinned CN, Vanilla BM.
std::vector<PlatformSpec> paper_series(const InstanceType& instance);

}  // namespace pinsim::virt
