#include "virt/factory.hpp"

#include "util/check.hpp"
#include "virt/bare_metal.hpp"
#include "virt/container.hpp"
#include "virt/vm.hpp"
#include "virt/vm_container.hpp"

namespace pinsim::virt {

hw::Topology host_topology_for(const PlatformSpec& spec,
                               const hw::Topology& full_host) {
  if (spec.kind == PlatformKind::BareMetal) {
    return full_host.limited_to(spec.instance.cores);
  }
  return full_host;
}

std::unique_ptr<Platform> make_platform(Host& host,
                                        const PlatformSpec& spec) {
  switch (spec.kind) {
    case PlatformKind::BareMetal:
      return std::make_unique<BareMetalPlatform>(host, spec);
    case PlatformKind::Container:
      return std::make_unique<ContainerPlatform>(host, spec);
    case PlatformKind::Vm:
      return std::make_unique<VmPlatform>(host, spec);
    case PlatformKind::VmContainer:
      return std::make_unique<VmContainerPlatform>(host, spec);
  }
  PINSIM_CHECK_MSG(false, "unknown platform kind");
  return nullptr;
}

std::vector<PlatformSpec> paper_series(const InstanceType& instance) {
  return {
      {PlatformKind::Vm, CpuMode::Vanilla, instance},
      {PlatformKind::Vm, CpuMode::Pinned, instance},
      {PlatformKind::VmContainer, CpuMode::Vanilla, instance},
      {PlatformKind::VmContainer, CpuMode::Pinned, instance},
      {PlatformKind::Container, CpuMode::Vanilla, instance},
      {PlatformKind::Container, CpuMode::Pinned, instance},
      {PlatformKind::BareMetal, CpuMode::Vanilla, instance},
  };
}

}  // namespace pinsim::virt
