// Pinning plans.
//
// How the pinned variants of each platform bind to host cpus. The paper's
// pinning scripts allocate compact cpusets — whole physical cores, socket
// by socket — so a pinned platform keeps its LLC locality, which is a
// large part of why pinning helps.
#pragma once

#include "hw/cpuset.hpp"
#include "hw/topology.hpp"

namespace pinsim::virt {

/// The cpuset a pinned container of `cores` cpus gets on `topology`.
hw::CpuSet pinned_cpuset(const hw::Topology& topology, int cores);

/// The 1:1 host-cpu assignment for the vCPUs of a pinned VM.
std::vector<hw::CpuId> pinned_vcpu_map(const hw::Topology& topology,
                                       int vcpus);

}  // namespace pinsim::virt
