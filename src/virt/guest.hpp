// The guest kernel inside a simulated KVM virtual machine.
//
// A VM really is a set of host tasks (one per vCPU) from the host's point
// of view — the paper leans on this repeatedly. GuestKernel is the other
// half: a CFS-like scheduler over the guest's vCPUs whose cpu time only
// advances when the host grants the corresponding vCPU task a slice.
//
// Execution protocol (driven by virt::Vm's vCPU task drivers):
//   1. next_burst(vcpu) picks the next guest task for that vCPU and
//      returns how long the vCPU should execute on the host — the guest
//      mini-burst (bounded by the guest scheduling slice, the task's
//      remaining action cost, and the guest cgroup's runtime horizon)
//      plus the timer-tick VM-exit tax.
//   2. The host schedules the vCPU task for that long (possibly
//      preempted and resumed — the guest is simply frozen meanwhile).
//   3. complete_burst(vcpu) charges the guest task, advances its action
//      protocol (guest IO goes out through virtio; intra-guest messages
//      are hypervisor-shared-memory cheap), and the cycle repeats. When
//      no guest task is runnable the vCPU halts (HLT → host task blocks)
//      until a wakeup kicks it.
//
// Guest wall-clock time equals host time (kvm-clock), so cgroup periods
// and aggregation inside the guest run on host-engine events; only CPU
// *progress* is grant-driven.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "os/cgroup.hpp"
#include "os/kernel.hpp"
#include "os/runqueue.hpp"
#include "os/task.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::virt {

class Host;

struct GuestStats {
  std::int64_t dispatches = 0;
  std::int64_t guest_migrations = 0;
  std::int64_t bursts = 0;
  std::int64_t io_exits = 0;
  std::int64_t kicks = 0;
  std::int64_t halts = 0;
  std::int64_t throttle_events = 0;
  std::int64_t unthrottle_events = 0;
  SimDuration granted = 0;  // host cpu time granted to guest work
};

class GuestKernel {
 public:
  struct Config {
    int vcpus = 1;
    /// Multiplier applied to guest user-mode compute (PTO).
    double compute_inflation = 1.95;
    /// Guest scheduler parameters.
    os::SchedParams params;
    /// Upper bound on one execution grant; keeps guest IO latency and
    /// intra-guest wakeup latency at sub-slice granularity.
    SimDuration burst_cap = msec(4);
  };

  GuestKernel(Host& host, Config config);

  GuestKernel(const GuestKernel&) = delete;
  GuestKernel& operator=(const GuestKernel&) = delete;

  // --- vCPU driver interface ------------------------------------------------
  /// Host task that backs vCPU `vcpu`; must be attached before tasks run.
  void attach_vcpu_task(int vcpu, os::Task& host_task);

  /// Host-cpu duration of the next grant, or nullopt to halt (HLT).
  std::optional<SimDuration> next_burst(int vcpu);

  /// Apply the grant returned by the previous next_burst on this vcpu.
  void complete_burst(int vcpu);

  // --- guest task management ------------------------------------------------
  os::Cgroup& create_cgroup(os::Cgroup::Config config);

  os::Task& create_task(std::string name,
                        std::unique_ptr<os::TaskDriver> driver,
                        os::TaskConfig config = {});

  void start_task(os::Task& task);

  /// External message into the guest (load generator via virtual NIC).
  void post_external(os::Task& task, int count = 1);

  /// Wake a blocked guest task (IO completion injection, sleeps).
  void wake(os::Task& task, SimDuration extra_debt = 0);

  int vcpus() const { return static_cast<int>(vcpus_.size()); }
  int live_tasks() const { return live_tasks_; }
  /// Event shard of the host machine this guest runs inside. A guest
  /// never spans shards — all its vCPU tasks live on its host.
  int shard() const;
  const GuestStats& stats() const { return stats_; }
  const std::vector<std::unique_ptr<os::Task>>& tasks() const {
    return tasks_;
  }

 private:
  struct VcpuState {
    os::Runqueue rq;
    os::Task* current = nullptr;
    os::Task* host_task = nullptr;
    bool halted = true;
    SimDuration slice_used = 0;
    SimDuration slice_length = 0;
    /// Guest-time length of the outstanding grant (0 = none).
    SimDuration pending_guest = 0;
    /// Remaining halt-poll budget for the current idle episode.
    SimDuration poll_left = 0;
    /// Outstanding poll chunk (host time burning, no guest progress).
    SimDuration poll_pending = 0;
  };

  bool advance_actions(int vcpu, os::Task& task);
  void finish_task(os::Task& task);
  void block_task(os::Task& task);
  void deliver(os::Task& from, os::Task& to, int count);
  void submit_io(os::Task& task, const os::Action& action);
  void io_complete(os::Task& task);

  os::Task* pick_next(int vcpu);
  int place_task(os::Task& task);
  void enqueue_task(os::Task& task, int vcpu);
  void park(os::Task& task);
  void kick(int vcpu);
  /// True while the current wakeup originates from a host-side device
  /// interrupt (vhost): the vCPU kick then follows the host IRQ path
  /// (round-robin on vanilla VMs, steered on pinned ones).
  bool kick_via_irq_ = false;

  SimDuration slice_for(const VcpuState& v) const;
  SimDuration remaining_cost(const os::Task& task) const;
  hw::CpuSet allowed_vcpus(const os::Task& task) const;

  void ensure_housekeeping();
  void housekeeping_tick();
  /// Arm the guest's persistent housekeeping timer for now+delay via
  /// sim::Engine::reschedule (one fresh push right after a tick fired,
  /// an in-place move otherwise — same mechanism as the host kernel's
  /// boundary timers).
  void arm_housekeeping(SimDuration delay);
  /// Revoke a quiet housekeeping window: replay the skipped no-op ticks
  /// (counter only — each would have found empty runqueues and no
  /// cgroups) and re-arm the timer on the original cadence, or emulate
  /// the idle-stop if the fleet drained mid-window.
  void exit_guest_quiet();
  bool all_runqueues_empty() const;
  /// Guest periodic load balance: push queued work to halted vCPUs (the
  /// guest's timer-tick balancing; without it an HLT'd vCPU would sleep
  /// through imbalance forever).
  void balance_idle_vcpus();
  /// Fairness rotation: with a persistent 1-task surplus, migrate the
  /// surplus periodically so every task gets a fair global share (what
  /// CFS's load balancer achieves on real hardware).
  void rotate_surplus_task();

  Host* host_;
  Config config_;
  Rng rng_;
  std::vector<VcpuState> vcpus_;
  std::vector<std::unique_ptr<os::Task>> tasks_;
  std::vector<std::function<void(os::Task&)>> on_exit_;
  std::vector<std::unique_ptr<os::Cgroup>> cgroups_;
  std::vector<SimTime> cgroup_next_period_;
  bool housekeeping_active_ = false;
  sim::EventHandle housekeeping_;
  std::int64_t housekeeping_ticks_ = 0;
  /// Quiet housekeeping window: set when a tick found no queued work and
  /// no cgroups (so every following tick is a pure no-op) and declined
  /// to re-arm. The guest stays AoS per-vCPU — unlike the host there is
  /// no same-instant multi-core boundary sweep to batch, only the single
  /// shared housekeeping timer to fast-forward.
  bool guest_quiet_ = false;
  SimTime guest_quiet_entered_ = 0;
  /// When live_tasks_ hit 0 inside a quiet window (-1 otherwise); the
  /// old path's next tick would have idle-stopped there.
  SimTime guest_quiet_idle_at_ = -1;
  int live_tasks_ = 0;
  GuestStats stats_;
};

}  // namespace pinsim::virt
