#include "virt/container.hpp"

#include "util/check.hpp"
#include "virt/pinning.hpp"

namespace pinsim::virt {

ContainerPlatform::ContainerPlatform(Host& host, PlatformSpec spec)
    : Platform(host, std::move(spec)) {
  PINSIM_CHECK(spec_.kind == PlatformKind::Container);
  os::Cgroup::Config config;
  config.name = "cn-" + spec_.instance.name;
  config.cpu_limit = static_cast<double>(spec_.instance.cores);
  if (spec_.mode == CpuMode::Pinned) {
    config.cpuset = pinned_cpuset(host.topology(), spec_.instance.cores);
  }
  cgroup_ = &host.kernel().create_cgroup(std::move(config));
}

os::Task& ContainerPlatform::spawn(WorkTaskConfig config,
                                   std::unique_ptr<os::TaskDriver> driver) {
  os::TaskConfig task_config;
  task_config.working_set_mb = config.working_set_mb;
  task_config.weight = config.weight;
  task_config.cgroup = cgroup_;
  task_config.on_exit = std::move(config.on_exit);
  task_config.numa_home = config.numa_home != nullptr
                              ? config.numa_home
                              : std::make_shared<int>(-1);
  task_config.device_local_start = config.network_born;
  os::Task& task = host_->kernel().create_task(std::move(config.name),
                                               std::move(driver),
                                               task_config);
  task.sticky_wakeup = spec_.mode == CpuMode::Pinned;
  return task;
}

void ContainerPlatform::start(os::Task& task) {
  host_->kernel().start_task(task);
}

void ContainerPlatform::post(os::Task& task, int count) {
  host_->kernel().post_external(task, count);
}

int ContainerPlatform::visible_cpus() const {
  // A vanilla container sees every host cpu (`nproc` inside Docker
  // reports the host's cpus unless a cpuset is configured) — which is
  // why applications that size their thread pools from the visible cpu
  // count over-thread inside small vanilla containers. A pinned
  // container sees exactly its cpuset.
  if (spec_.mode == CpuMode::Pinned) return spec_.instance.cores;
  return host_->topology().num_cpus();
}

}  // namespace pinsim::virt
