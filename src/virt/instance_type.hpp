// Instance-type catalog (paper Table II).
//
// Every execution platform can be instantiated at any of these sizes; the
// figures sweep them on the x axis.
#pragma once

#include <string>
#include <vector>

namespace pinsim::virt {

struct InstanceType {
  std::string name;
  int cores = 0;
  int memory_gb = 0;
};

/// Table II: Large (2 cores / 8 GB) through 16xLarge (64 cores / 256 GB).
const std::vector<InstanceType>& instance_catalog();

/// Lookup by name ("Large", "xLarge", "2xLarge", ...). Throws on unknown.
const InstanceType& instance_by_name(const std::string& name);

/// Lookup by core count. Throws on unknown.
const InstanceType& instance_by_cores(int cores);

/// Largest catalog instance with at most `cores` cores — the fallback
/// sizing when no instance lands in a recommended CHR band. Throws when
/// even the smallest instance does not fit.
const InstanceType& largest_instance_within(int cores);

}  // namespace pinsim::virt
