// KVM-style virtual machine platform (VM).
//
// The VM's vCPUs are ordinary host tasks (QEMU vCPU threads); the guest
// workload runs under a GuestKernel whose CPU time advances only when the
// host schedules those tasks. Vanilla VMs let the vCPU threads float over
// the host; pinned VMs bind each vCPU 1:1 to a compact host cpuset (the
// libvirt <vcpupin> configuration the paper uses).
#pragma once

#include <memory>
#include <vector>

#include "virt/guest.hpp"
#include "virt/platform.hpp"

namespace pinsim::virt {

struct VmConfig {
  /// Hot guest state a vCPU thread drags along when the host migrates
  /// it (guest kernel + the share of the app working set it runs).
  double vcpu_working_set_mb = 16.0;
  /// Guest scheduler parameters (tests toggle quiet_fast_forward here
  /// to run the guest's skip-free path against the fast-forward one).
  os::SchedParams guest_params;
};

class VmPlatform : public Platform {
 public:
  VmPlatform(Host& host, PlatformSpec spec, VmConfig vm_config = {});

  os::Task& spawn(WorkTaskConfig config,
                  std::unique_ptr<os::TaskDriver> driver) override;
  void start(os::Task& task) override;
  void post(os::Task& task, int count) override;
  int visible_cpus() const override;

  GuestKernel& guest() { return guest_; }
  const std::vector<os::Task*>& vcpu_tasks() const { return vcpu_tasks_; }

 protected:
  /// Guest-side task configuration hook; VmContainerPlatform adds the
  /// guest cgroup and sticky wakeups here.
  virtual os::TaskConfig guest_task_config(const WorkTaskConfig& config);

  GuestKernel guest_;
  std::vector<os::Task*> vcpu_tasks_;
};

}  // namespace pinsim::virt
