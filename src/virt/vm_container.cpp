#include "virt/vm_container.hpp"

#include "util/check.hpp"

namespace pinsim::virt {

VmContainerPlatform::VmContainerPlatform(Host& host, PlatformSpec spec,
                                         VmConfig vm_config)
    : VmPlatform(host, std::move(spec), vm_config) {
  PINSIM_CHECK(spec_.kind == PlatformKind::VmContainer);
  os::Cgroup::Config config;
  config.name = "vmcn-" + spec_.instance.name;
  // docker --cpus=<instance cores> inside the guest.
  config.cpu_limit = static_cast<double>(spec_.instance.cores);
  if (spec_.mode == CpuMode::Pinned) {
    // --cpuset-cpus over the guest's vCPUs.
    config.cpuset = hw::CpuSet::first_n(spec_.instance.cores);
  }
  guest_cgroup_ = &guest_.create_cgroup(std::move(config));
}

os::TaskConfig VmContainerPlatform::guest_task_config(
    const WorkTaskConfig& config) {
  os::TaskConfig task_config = VmPlatform::guest_task_config(config);
  task_config.cgroup = guest_cgroup_;
  return task_config;
}

os::Task& VmContainerPlatform::spawn(WorkTaskConfig config,
                                     std::unique_ptr<os::TaskDriver> driver) {
  os::Task& task = VmPlatform::spawn(std::move(config), std::move(driver));
  task.sticky_wakeup = spec_.mode == CpuMode::Pinned;
  return task;
}

}  // namespace pinsim::virt
