// Experiment runner: the measurement harness behind every figure.
//
// Runs a workload on a platform configuration for N repetitions (fresh
// host, fresh platform, fresh workload, per-repetition seed) and reports
// mean + 95% confidence interval, exactly the protocol of the paper
// (20 repetitions for FFmpeg/MPI/Cassandra, 6 for WordPress).
//
// Sweeps are embarrassingly parallel: every (cell, repetition) pair
// builds its own Host/platform/workload from its own seed, so
// measure_all() fans cells across a util::ThreadPool and still produces
// results bit-identical to the serial path — samples are gathered into
// each cell's Accumulator in deterministic (cell, repetition) order
// regardless of completion order.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/series.hpp"
#include "virt/factory.hpp"
#include "workload/workload.hpp"

namespace pinsim::core {

struct ExperimentConfig {
  int repetitions = 20;
  std::uint64_t base_seed = 42;
  hw::Topology full_host = hw::Topology::dell_r830();
  hw::CostModel costs;
  /// Event shards per repetition (--shards). 1 = the historical solo
  /// engine, byte-identical to every published output. N > 1 puts the
  /// repetition's host on shard 0 of a sim::ShardedEngine and, for
  /// workloads with the split deploy/collect lifecycle, drives it
  /// through the conservative round loop — the same events fire in the
  /// same order (one machine is one synchronization domain), but the
  /// run stops at a window boundary, so wall-clock-derived metrics can
  /// sit up to one lookahead window above the --shards 1 value.
  /// Deterministic for every value and every host-thread count. The
  /// scenario that genuinely spreads work across shards (and where the
  /// wall-clock win is measured) is core::ShardedFleet / bench/micro_shard.
  int shards = 1;
};

/// Builds a fresh workload instance per repetition. Factories used with
/// measure_all(jobs > 1) are invoked concurrently from worker threads and
/// must not touch shared mutable state.
using WorkloadFactory =
    std::function<std::unique_ptr<workload::Workload>()>;

struct Measurement {
  virt::PlatformSpec spec;
  stats::Accumulator samples;  // metric_seconds per repetition

  stats::Interval interval() const {
    return stats::confidence_95(samples);
  }
};

/// One cell of a sweep: a platform spec plus the workload it runs.
/// `full_host` overrides the runner's host topology when set (Figure 7
/// runs the same container on hosts of different sizes).
struct SweepCell {
  virt::PlatformSpec spec;
  WorkloadFactory factory;
  std::optional<hw::Topology> full_host;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config = {})
      : config_(std::move(config)) {}

  const ExperimentConfig& config() const { return config_; }

  /// One platform configuration, `repetitions` independent runs.
  Measurement measure(const virt::PlatformSpec& spec,
                      const WorkloadFactory& factory) const;

  /// A whole sweep, fanned across `jobs` worker threads (jobs <= 1 runs
  /// inline). Returns one Measurement per cell, in cell order, with
  /// samples bit-identical to calling measure() per cell.
  std::vector<Measurement> measure_all(const std::vector<SweepCell>& cells,
                                       int jobs) const;

  /// Convenience: the same workload factory for every spec.
  std::vector<Measurement> measure_all(
      const std::vector<virt::PlatformSpec>& specs,
      const WorkloadFactory& factory, int jobs) const;

  /// One repetition (exposed for tests and custom sweeps).
  workload::RunResult run_once(const virt::PlatformSpec& spec,
                               const WorkloadFactory& factory,
                               std::uint64_t seed) const;

  /// One repetition on an explicit host topology (Figure 7 sweeps hosts).
  workload::RunResult run_once(const virt::PlatformSpec& spec,
                               const WorkloadFactory& factory,
                               std::uint64_t seed,
                               const hw::Topology& full_host) const;

  /// The seed measure()/measure_all() use for repetition `rep`.
  std::uint64_t seed_for(int rep) const {
    return config_.base_seed + 1000003ull * static_cast<std::uint64_t>(rep);
  }

 private:
  ExperimentConfig config_;
};

}  // namespace pinsim::core
