// Experiment runner: the measurement harness behind every figure.
//
// Runs a workload on a platform configuration for N repetitions (fresh
// host, fresh platform, fresh workload, per-repetition seed) and reports
// mean + 95% confidence interval, exactly the protocol of the paper
// (20 repetitions for FFmpeg/MPI/Cassandra, 6 for WordPress).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stats/series.hpp"
#include "virt/factory.hpp"
#include "workload/workload.hpp"

namespace pinsim::core {

struct ExperimentConfig {
  int repetitions = 20;
  std::uint64_t base_seed = 42;
  hw::Topology full_host = hw::Topology::dell_r830();
  hw::CostModel costs;
};

/// Builds a fresh workload instance per repetition.
using WorkloadFactory =
    std::function<std::unique_ptr<workload::Workload>()>;

struct Measurement {
  virt::PlatformSpec spec;
  stats::Accumulator samples;  // metric_seconds per repetition

  stats::Interval interval() const {
    return stats::confidence_95(samples);
  }
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig config = {})
      : config_(std::move(config)) {}

  const ExperimentConfig& config() const { return config_; }

  /// One platform configuration, `repetitions` independent runs.
  Measurement measure(const virt::PlatformSpec& spec,
                      const WorkloadFactory& factory) const;

  /// One repetition (exposed for tests and custom sweeps).
  workload::RunResult run_once(const virt::PlatformSpec& spec,
                               const WorkloadFactory& factory,
                               std::uint64_t seed) const;

 private:
  ExperimentConfig config_;
};

}  // namespace pinsim::core
