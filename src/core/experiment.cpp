#include "core/experiment.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace pinsim::core {

workload::RunResult ExperimentRunner::run_once(
    const virt::PlatformSpec& spec, const WorkloadFactory& factory,
    std::uint64_t seed) const {
  virt::Host host(virt::host_topology_for(spec, config_.full_host),
                  config_.costs, seed);
  auto platform = virt::make_platform(host, spec);
  auto workload = factory();
  PINSIM_CHECK(workload != nullptr);
  return workload->run(*platform, Rng(seed ^ 0x517cc1b727220a95ull));
}

Measurement ExperimentRunner::measure(const virt::PlatformSpec& spec,
                                      const WorkloadFactory& factory) const {
  PINSIM_CHECK(config_.repetitions >= 1);
  Measurement measurement;
  measurement.spec = spec;
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    const std::uint64_t seed =
        config_.base_seed + 1000003ull * static_cast<std::uint64_t>(rep);
    const workload::RunResult result = run_once(spec, factory, seed);
    measurement.samples.add(result.metric_seconds);
    PINSIM_DEBUG(spec.label() << " " << spec.instance.name << " rep " << rep
                              << ": " << result.metric_seconds << " s");
  }
  return measurement;
}

}  // namespace pinsim::core
