#include "core/experiment.hpp"

#include <future>
#include <utility>

#include "sim/sharded_engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace pinsim::core {

namespace {

void debug_sample(const virt::PlatformSpec& spec, int rep, double seconds) {
  PINSIM_DEBUG(spec.label() << " " << spec.instance.name << " rep " << rep
                            << ": " << seconds << " s");
}

}  // namespace

workload::RunResult ExperimentRunner::run_once(
    const virt::PlatformSpec& spec, const WorkloadFactory& factory,
    std::uint64_t seed) const {
  return run_once(spec, factory, seed, config_.full_host);
}

workload::RunResult ExperimentRunner::run_once(
    const virt::PlatformSpec& spec, const WorkloadFactory& factory,
    std::uint64_t seed, const hw::Topology& full_host) const {
  auto workload = factory();
  PINSIM_CHECK(workload != nullptr);
  const Rng workload_rng(seed ^ 0x517cc1b727220a95ull);
  if (config_.shards <= 1) {
    virt::Host host(virt::host_topology_for(spec, full_host), config_.costs,
                    seed);
    auto platform = virt::make_platform(host, spec);
    return workload->run(*platform, workload_rng);
  }
  // --shards N: same machine, same seed, same events — but resident on
  // shard 0 of a sharded engine and driven through the conservative
  // round loop (see ExperimentConfig::shards for the semantics).
  sim::ShardedEngine sharded(sim::ShardedEngineConfig{
      config_.shards, config_.costs.min_cross_shard_latency(), 1});
  virt::Host host(sharded, 0, virt::host_topology_for(spec, full_host),
                  config_.costs, seed);
  auto platform = virt::make_platform(host, spec);
  auto deployment = workload->deploy(*platform, workload_rng);
  if (deployment == nullptr) {
    // No split lifecycle: the workload drives its own (shard-0) engine
    // directly and the round loop never engages. Still byte-identical.
    return workload->run(*platform, workload_rng);
  }
  const bool finished = sharded.run_until(
      [&deployment] { return deployment->completion().done(); },
      deployment->horizon());
  PINSIM_CHECK_MSG(finished, workload->name()
                                 << " on " << spec.label() << " (--shards "
                                 << config_.shards << ") did not finish");
  return deployment->collect();
}

Measurement ExperimentRunner::measure(const virt::PlatformSpec& spec,
                                      const WorkloadFactory& factory) const {
  PINSIM_CHECK(config_.repetitions >= 1);
  Measurement measurement;
  measurement.spec = spec;
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    const workload::RunResult result =
        run_once(spec, factory, seed_for(rep));
    measurement.samples.add(result.metric_seconds);
    debug_sample(spec, rep, result.metric_seconds);
  }
  return measurement;
}

std::vector<Measurement> ExperimentRunner::measure_all(
    const std::vector<SweepCell>& cells, int jobs) const {
  PINSIM_CHECK(config_.repetitions >= 1);
  const int reps = config_.repetitions;
  const std::size_t cell_count = cells.size();

  // Samples indexed [cell][rep]; each worker writes its own slot, so the
  // only synchronization needed is the futures' completion.
  std::vector<std::vector<double>> samples(
      cell_count, std::vector<double>(static_cast<std::size_t>(reps), 0.0));

  if (jobs <= 1) {
    for (std::size_t c = 0; c < cell_count; ++c) {
      for (int rep = 0; rep < reps; ++rep) {
        samples[c][static_cast<std::size_t>(rep)] =
            run_once(cells[c].spec, cells[c].factory, seed_for(rep),
                     cells[c].full_host.value_or(config_.full_host))
                .metric_seconds;
      }
    }
  } else {
    util::ThreadPool pool(jobs);
    std::vector<std::future<double>> futures;
    futures.reserve(cell_count * static_cast<std::size_t>(reps));
    for (std::size_t c = 0; c < cell_count; ++c) {
      const SweepCell& cell = cells[c];
      const hw::Topology full_host =
          cell.full_host.value_or(config_.full_host);
      for (int rep = 0; rep < reps; ++rep) {
        futures.push_back(pool.submit([this, &cell, full_host, rep] {
          return run_once(cell.spec, cell.factory, seed_for(rep), full_host)
              .metric_seconds;
        }));
      }
    }
    std::size_t next = 0;
    for (std::size_t c = 0; c < cell_count; ++c) {
      for (int rep = 0; rep < reps; ++rep) {
        samples[c][static_cast<std::size_t>(rep)] = futures[next++].get();
      }
    }
  }

  // Accumulate in (cell, rep) order — the exact order measure() adds
  // samples — so means/CIs are bit-identical to the serial path.
  std::vector<Measurement> measurements(cell_count);
  for (std::size_t c = 0; c < cell_count; ++c) {
    measurements[c].spec = cells[c].spec;
    for (int rep = 0; rep < reps; ++rep) {
      const double seconds = samples[c][static_cast<std::size_t>(rep)];
      measurements[c].samples.add(seconds);
      debug_sample(cells[c].spec, rep, seconds);
    }
  }
  return measurements;
}

std::vector<Measurement> ExperimentRunner::measure_all(
    const std::vector<virt::PlatformSpec>& specs,
    const WorkloadFactory& factory, int jobs) const {
  std::vector<SweepCell> cells;
  cells.reserve(specs.size());
  for (const virt::PlatformSpec& spec : specs) {
    cells.push_back(SweepCell{spec, factory, std::nullopt});
  }
  return measure_all(cells, jobs);
}

}  // namespace pinsim::core
