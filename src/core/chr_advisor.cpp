#include "core/chr_advisor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::core {

double chr_of(const virt::InstanceType& instance,
              const hw::Topology& host) {
  PINSIM_CHECK(host.num_cpus() > 0);
  return static_cast<double>(instance.cores) /
         static_cast<double>(host.num_cpus());
}

ChrRange paper_chr_range(workload::AppClass cls) {
  switch (cls) {
    case workload::AppClass::CpuBound:
    case workload::AppClass::Hpc:
      return {0.07, 0.14};
    case workload::AppClass::IoWeb:
      return {0.14, 0.28};
    case workload::AppClass::IoNoSql:
      return {0.28, 0.57};
  }
  PINSIM_CHECK_MSG(false, "unknown app class");
  return {};
}

std::optional<ChrRange> derive_chr_range(const std::vector<ChrPoint>& points,
                                         double acceptable) {
  PINSIM_CHECK(std::is_sorted(points.begin(), points.end(),
                              [](const ChrPoint& a, const ChrPoint& b) {
                                return a.chr < b.chr;
                              }));
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].overhead_ratio <= acceptable) {
      // PSO has vanished by this point; the transition happened within
      // (previous point, this point].
      const double low = i == 0 ? 0.0 : points[i - 1].chr;
      return ChrRange{low, points[i].chr};
    }
  }
  return std::nullopt;
}

std::optional<virt::InstanceType> recommend_instance(
    workload::AppClass cls, const hw::Topology& host) {
  const ChrRange range = paper_chr_range(cls);
  for (const auto& instance : virt::instance_catalog()) {
    if (instance.cores > host.num_cpus()) break;
    if (range.contains(chr_of(instance, host))) return instance;
  }
  return std::nullopt;
}

}  // namespace pinsim::core
