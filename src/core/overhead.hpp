// Overhead analysis (paper §IV).
//
// The paper defines the *overhead ratio* of a virtualized platform as its
// mean execution time divided by bare-metal's, and distinguishes two
// overhead families:
//
//  - Platform-Type Overhead (PTO): constant ratio across instance sizes,
//    caused by the platform's abstraction layers (e.g. the VM's ~2x for
//    CPU-bound work). Pinning cannot remove it.
//  - Platform-Size Overhead (PSO): shrinks as the instance grows,
//    specific to vanilla containers (cgroups accounting, scatter,
//    throttle bursts). Pinning removes most of it.
//
// This module computes ratios from a measured Figure and decomposes each
// series into the two families.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stats/series.hpp"

namespace pinsim::core {

inline constexpr const char* kBaselineSeries = "Vanilla BM";

struct SeriesOverhead {
  std::string series;
  /// Ratio to bare-metal per x position (nullopt where a cell is absent).
  std::vector<std::optional<double>> ratios;
  /// Platform-Type Overhead: the ratio the series settles to at the
  /// largest measured instance (the paper reads PTO off the big end,
  /// where PSO has vanished).
  double pto = 1.0;
  /// Platform-Size Overhead per x position: ratio − PTO (>= 0 clamped).
  std::vector<std::optional<double>> pso;
  /// True when the ratio declines materially with size (PSO present).
  bool has_pso = false;
  /// True when the ratio is roughly flat and above 1 (pure PTO).
  bool pto_dominated = false;
};

struct OverheadAnalysis {
  std::vector<SeriesOverhead> series;

  const SeriesOverhead* find(const std::string& name) const;
};

/// Compute ratios + PTO/PSO decomposition for every series of `figure`
/// against the bare-metal baseline. `pso_threshold` is the minimum
/// ratio decline (first→last x) that counts as PSO.
OverheadAnalysis analyze_overhead(const stats::Figure& figure,
                                  double pso_threshold = 0.25);

/// Convenience: the ratio of one series at one x position.
std::optional<double> overhead_ratio(const stats::Figure& figure,
                                     const std::string& series,
                                     std::size_t x);

}  // namespace pinsim::core
