#include "core/best_practices.hpp"

#include <sstream>

#include "util/check.hpp"

namespace pinsim::core {

std::string Recommendation::label() const {
  return std::string(virt::to_string(mode)) + " " + virt::to_string(kind);
}

const std::vector<std::string>& practice_texts() {
  static const std::vector<std::string> kTexts = {
      "1. Avoid instantiating small vanilla containers (with one or two "
      "cores) for any type of application.",
      "2. For CPU intensive applications (e.g. FFmpeg), pinned containers "
      "impose the least overhead.",
      "3. If VMs are being utilized for CPU-bound applications, do not "
      "bother pinning them: it neither improves performance nor decreases "
      "cost.",
      "4. For IO intensive applications, if a pinned container is not a "
      "viable option, use a container within a VM (VMCN): it imposes a "
      "lower overhead than a VM or a vanilla container.",
      "5. To minimize container overhead, configure CPU intensive "
      "applications with 0.07 < CHR < 0.14, IO intensive ones with "
      "0.14 < CHR < 0.28, and ultra IO intensive ones (e.g. Cassandra) "
      "with 0.28 < CHR < 0.57.",
  };
  return kTexts;
}

std::vector<Recommendation> recommend(const DeploymentQuery& query) {
  std::vector<Recommendation> ranked;
  const bool io_bound = query.app == workload::AppClass::IoWeb ||
                        query.app == workload::AppClass::IoNoSql;

  auto add = [&ranked](virt::PlatformKind kind, virt::CpuMode mode,
                       std::vector<int> practices,
                       const std::string& rationale) {
    Recommendation rec;
    rec.kind = kind;
    rec.mode = mode;
    rec.practices = std::move(practices);
    rec.rationale = rationale;
    ranked.push_back(std::move(rec));
  };

  if (!query.require_vm_isolation) {
    if (query.pinning_allowed) {
      add(virt::PlatformKind::Container, virt::CpuMode::Pinned, {2},
          io_bound ? "pinned containers avoid cgroup scatter and keep IO "
                     "affinity; for heavy IO they can even beat bare-metal"
                   : "pinned containers impose the least overhead for "
                     "CPU-bound work");
    }
    if (io_bound) {
      add(virt::PlatformKind::VmContainer, virt::CpuMode::Vanilla, {4},
          "without pinning, a container inside a VM shields IO work from "
          "host-level cgroup scatter, beating both a plain VM and a "
          "vanilla container");
    }
  } else {
    // VM isolation required.
    if (io_bound) {
      add(virt::PlatformKind::VmContainer,
          query.pinning_allowed ? virt::CpuMode::Pinned
                                : virt::CpuMode::Vanilla,
          {4}, "VMCN imposes a lower overhead than a plain VM for IO "
               "intensive applications");
    }
    add(virt::PlatformKind::Vm, virt::CpuMode::Vanilla, {3},
        "for CPU-bound work inside VMs, pinning does not pay: the "
        "hypervisor's platform-type overhead dominates");
  }

  if (ranked.empty() || ranked.back().kind != virt::PlatformKind::Vm) {
    add(virt::PlatformKind::Vm, virt::CpuMode::Vanilla, {3},
        "fallback: an unpinned VM — pinning VMs does not improve "
        "CPU-bound performance");
  }

  // Never recommend a small vanilla container (practice 1): append an
  // explicit anti-recommendation note to the last entry's rationale.
  std::ostringstream warning;
  warning << " (avoid small vanilla containers — practice 1)";
  ranked.back().rationale += warning.str();
  return ranked;
}

namespace {

/// Mean overhead ratio of a series across all x positions with data.
double mean_ratio(const OverheadAnalysis& analysis,
                  const std::string& series) {
  const SeriesOverhead* overhead = analysis.find(series);
  PINSIM_CHECK_MSG(overhead != nullptr, "missing series " << series);
  double sum = 0.0;
  int n = 0;
  for (const auto& ratio : overhead->ratios) {
    if (ratio.has_value()) {
      sum += *ratio;
      ++n;
    }
  }
  PINSIM_CHECK(n > 0);
  return sum / n;
}

/// Ratio at the smallest measured instance.
double small_end_ratio(const OverheadAnalysis& analysis,
                       const std::string& series) {
  const SeriesOverhead* overhead = analysis.find(series);
  PINSIM_CHECK(overhead != nullptr);
  for (const auto& ratio : overhead->ratios) {
    if (ratio.has_value()) return *ratio;
  }
  PINSIM_CHECK(false);
  return 0.0;
}

}  // namespace

std::vector<PracticeCheck> verify_practices(const stats::Figure& cpu_figure,
                                            const stats::Figure& io_figure) {
  const OverheadAnalysis cpu = analyze_overhead(cpu_figure);
  const OverheadAnalysis io = analyze_overhead(io_figure);
  std::vector<PracticeCheck> checks;

  {  // 1. Small vanilla containers are bad for IO (and never best).
    PracticeCheck check;
    check.practice = 1;
    const double vanilla_small = small_end_ratio(io, "Vanilla CN");
    const double pinned_small = small_end_ratio(io, "Pinned CN");
    check.holds = vanilla_small > 1.3 && vanilla_small > 1.3 * pinned_small;
    std::ostringstream os;
    os << "vanilla CN at the smallest IO instance: " << vanilla_small
       << "x BM vs pinned CN " << pinned_small << "x";
    check.evidence = os.str();
    checks.push_back(check);
  }
  {  // 2. Pinned CN minimal for CPU-bound.
    PracticeCheck check;
    check.practice = 2;
    const double pinned_cn = mean_ratio(cpu, "Pinned CN");
    bool minimal = true;
    for (const char* other :
         {"Vanilla CN", "Vanilla VM", "Pinned VM", "Vanilla VMCN",
          "Pinned VMCN"}) {
      if (mean_ratio(cpu, other) < pinned_cn - 0.02) minimal = false;
    }
    check.holds = minimal;
    std::ostringstream os;
    os << "pinned CN mean ratio " << pinned_cn
       << "x is the lowest among virtualized platforms";
    check.evidence = os.str();
    checks.push_back(check);
  }
  {  // 3. Pinning does not rescue VMs for CPU-bound work.
    PracticeCheck check;
    check.practice = 3;
    const double vanilla_vm = mean_ratio(cpu, "Vanilla VM");
    const double pinned_vm = mean_ratio(cpu, "Pinned VM");
    check.holds = pinned_vm > 0.9 * vanilla_vm && pinned_vm > 1.5;
    std::ostringstream os;
    os << "CPU-bound VM ratios: vanilla " << vanilla_vm << "x, pinned "
       << pinned_vm << "x — pinning does not help";
    check.evidence = os.str();
    checks.push_back(check);
  }
  {  // 4. VMCN beats VM and vanilla CN for IO work.
    PracticeCheck check;
    check.practice = 4;
    const double vmcn = mean_ratio(io, "Vanilla VMCN");
    const double vm = mean_ratio(io, "Vanilla VM");
    const double vanilla_cn = mean_ratio(io, "Vanilla CN");
    check.holds = vmcn <= vm * 1.05 && vmcn < vanilla_cn;
    std::ostringstream os;
    os << "IO ratios: VMCN " << vmcn << "x vs VM " << vm
       << "x vs vanilla CN " << vanilla_cn << "x";
    check.evidence = os.str();
    checks.push_back(check);
  }
  return checks;
}

}  // namespace pinsim::core
