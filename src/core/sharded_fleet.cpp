#include "core/sharded_fleet.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.hpp"
#include "virt/platform.hpp"

namespace pinsim::core {

FleetHosts build_fleet_hosts(
    sim::ShardedEngine& sharded, const std::vector<int>& shards,
    const std::vector<virt::PlatformSpec>& specs, const hw::Topology& full_host,
    const hw::CostModel& costs, std::uint64_t base_seed,
    const std::function<void(int host, virt::Platform& platform, Rng rng)>&
        attach) {
  PINSIM_CHECK_MSG(shards.size() == specs.size(),
                   "one shard assignment per host spec");
  const int n = static_cast<int>(specs.size());
  FleetHosts out;
  out.hosts.reserve(specs.size());
  out.platforms.reserve(specs.size());
  for (int h = 0; h < n; ++h) {
    const std::size_t i = static_cast<std::size_t>(h);
    const std::uint64_t seed =
        base_seed + 1000003ull * static_cast<std::uint64_t>(h);
    const virt::PlatformSpec& spec = specs[i];
    out.hosts.push_back(std::make_unique<virt::Host>(
        sharded, shards[i], virt::host_topology_for(spec, full_host), costs,
        seed));
    out.platforms.push_back(virt::make_platform(*out.hosts.back(), spec));
    if (attach) {
      attach(h, *out.platforms.back(), Rng(seed ^ 0x517cc1b727220a95ull));
    }
  }
  return out;
}

ShardedFleet::ShardedFleet(ShardedFleetConfig config)
    : config_(std::move(config)) {
  PINSIM_CHECK_MSG(config_.hosts >= 1,
                   "fleet needs >= 1 host (got " << config_.hosts << ")");
  PINSIM_CHECK_MSG(config_.shards >= 1,
                   "fleet needs >= 1 shard (got " << config_.shards << ")");
  PINSIM_CHECK_MSG(config_.heartbeat_period > 0, "heartbeat period must be > 0");
  shard_of_.reserve(static_cast<std::size_t>(config_.hosts));
  for (int h = 0; h < config_.hosts; ++h) {
    shard_of_.push_back(h % config_.shards);
  }
}

int ShardedFleet::shard_of(int host) const {
  PINSIM_CHECK_MSG(host >= 0 && host < config_.hosts,
                   "host " << host << " out of range");
  return shard_of_[static_cast<std::size_t>(host)];
}

ShardedFleetResult ShardedFleet::run(workload::Workload& workload) {
  const int n = config_.hosts;
  const SimDuration lookahead = config_.costs.min_cross_shard_latency();
  PINSIM_CHECK_MSG(
      config_.heartbeat_latency >= lookahead,
      "heartbeat latency " << config_.heartbeat_latency
                           << " below the cross-shard lookahead "
                           << lookahead);

  sim::ShardedEngine sharded(sim::ShardedEngineConfig{
      config_.shards, lookahead, config_.threads});
  sharded.seed_rngs(Rng(config_.base_seed));

  // Build and deploy every host through the shared fleet builder (seed
  // spacing and construction interleaving are its contract).
  std::vector<std::unique_ptr<workload::Deployment>> deployments;
  deployments.reserve(static_cast<std::size_t>(n));
  const std::vector<virt::PlatformSpec> specs(static_cast<std::size_t>(n),
                                              config_.spec);
  const FleetHosts built = build_fleet_hosts(
      sharded, shard_of_, specs, config_.full_host, config_.costs,
      config_.base_seed,
      [&workload, &deployments](int, virt::Platform& platform, Rng rng) {
        auto deployment = workload.deploy(platform, rng);
        PINSIM_CHECK_MSG(deployment != nullptr,
                         workload.name()
                             << " does not support the split deploy/collect "
                                "lifecycle needed for fleet co-simulation");
        deployments.push_back(std::move(deployment));
      });

  // Heartbeat ring: host h pings host h+1 every heartbeat_period. The
  // send side runs on h's shard (self-rescheduling event); the receive
  // side crosses shards through the mailbox and increments one counter
  // — element d of `delivered` is written only by host d's shard
  // executor, element h of `sent` only by host h's, so the ring is
  // lock-free and leaves every host's own simulation untouched.
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> delivered(static_cast<std::size_t>(n), 0);
  std::vector<std::function<void()>> beats(static_cast<std::size_t>(n));
  for (int h = 0; h < n; ++h) {
    const std::size_t i = static_cast<std::size_t>(h);
    beats[i] = [this, &sharded, &sent, &delivered, &beats, h, i] {
      ++sent[i];
      const int next = (h + 1) % config_.hosts;
      std::int64_t* counter = &delivered[static_cast<std::size_t>(next)];
      sharded.post(shard_of(h), shard_of(next), config_.heartbeat_latency,
                   [counter] { ++*counter; });
      sharded.shard(shard_of(h))
          .schedule_detached(config_.heartbeat_period, [&beats, i] {
            beats[i]();
          });
    };
    sharded.shard(shard_of(h))
        .schedule_detached(config_.heartbeat_period, [&beats, i] {
          beats[i]();
        });
  }

  // Drive everything together. The heartbeats never drain the heaps, so
  // the run ends on the predicate (or trips the wedge check).
  SimTime horizon = 0;
  for (const auto& deployment : deployments) {
    horizon = std::max(horizon, deployment->horizon());
  }
  const auto all_done = [&deployments] {
    for (const auto& deployment : deployments) {
      if (!deployment->completion().done()) return false;
    }
    return true;
  };
  const bool finished = sharded.run_until(all_done, horizon);
  PINSIM_CHECK_MSG(finished, "sharded fleet (" << workload.name() << " x " << n
                                               << ") did not finish");

  ShardedFleetResult out;
  out.hosts.reserve(static_cast<std::size_t>(n));
  for (auto& deployment : deployments) {
    const workload::Completion& completion = deployment->completion();
    FleetHostResult host;
    host.tasks_finished = completion.finished();
    host.makespan_seconds = completion.response().max();
    host.mean_response_seconds = completion.response().mean();
    host.raw = deployment->collect();
    out.hosts.push_back(std::move(host));
  }
  for (const std::int64_t s : sent) {
    out.heartbeats_sent += s;
  }
  for (const std::int64_t d : delivered) {
    out.heartbeats_delivered += d;
  }
  out.shard_stats = sharded.stats();
  out.engine_stats = sharded.engine_stats();
  out.events_fired = out.engine_stats.fired;
  return out;
}

ShardedFleetResult run_sharded_fleet(const ShardedFleetConfig& config,
                                     workload::Workload& workload) {
  ShardedFleet fleet(config);
  return fleet.run(workload);
}

}  // namespace pinsim::core
