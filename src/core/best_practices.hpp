// Best-practice rule engine (paper §VI).
//
// The paper distils its measurements into five deployment practices.
// This module encodes them as queryable rules — a solution architect
// describes the application (class, whether pinning is operationally
// acceptable) and receives a ranked platform recommendation with the
// paper's rationale — and provides a verification routine that re-derives
// each practice from fresh simulated figure data (used by the
// best_practices bench as an end-to-end consistency check).
#pragma once

#include <string>
#include <vector>

#include "core/overhead.hpp"
#include "virt/platform.hpp"
#include "workload/profiles.hpp"

namespace pinsim::core {

struct DeploymentQuery {
  workload::AppClass app = workload::AppClass::CpuBound;
  /// Pinning complicates host management; architects may forbid it.
  bool pinning_allowed = true;
  /// Hard requirement for hardware-level isolation (forces VM layers).
  bool require_vm_isolation = false;
};

struct Recommendation {
  virt::PlatformKind kind = virt::PlatformKind::Container;
  virt::CpuMode mode = virt::CpuMode::Pinned;
  /// Which of the paper's best practices (1-5) justify this choice.
  std::vector<int> practices;
  std::string rationale;

  std::string label() const;
};

/// Ranked recommendations (best first) for a deployment query.
std::vector<Recommendation> recommend(const DeploymentQuery& query);

/// The five practices, verbatim summaries (for reports and --help text).
const std::vector<std::string>& practice_texts();

/// Verification of one practice against measured data.
struct PracticeCheck {
  int practice = 0;
  bool holds = false;
  std::string evidence;
};

/// Re-derive practices 1-4 from measured figures (practice 5, the CHR
/// table, is verified by the chr_ranges bench):
///  1. vanilla containers with few cores are the worst choice somewhere;
///  2. pinned CN has the lowest overhead for CPU-bound work;
///  3. pinning a VM does not materially improve CPU-bound work;
///  4. for IO work, VMCN beats plain VM and vanilla CN.
std::vector<PracticeCheck> verify_practices(
    const stats::Figure& cpu_figure, const stats::Figure& io_figure);

}  // namespace pinsim::core
