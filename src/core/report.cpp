#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "stats/text_table.hpp"

namespace pinsim::core {

void print_header(std::ostream& out, const std::string& artifact,
                  const std::string& description) {
  out << std::string(72, '=') << '\n'
      << artifact << " — " << description << '\n'
      << "(The Art of CPU-Pinning, GhatrehSamani et al., ICPP 2020 — "
         "pinsim reproduction)\n"
      << std::string(72, '=') << '\n';
}

void print_ratio_table(std::ostream& out, const stats::Figure& figure,
                       int precision) {
  const OverheadAnalysis analysis = analyze_overhead(figure);
  std::vector<std::string> header;
  header.push_back("overhead ratio vs BM");
  for (const auto& label : figure.x_labels()) header.push_back(label);
  header.push_back("class");
  stats::TextTable table(std::move(header));
  for (const auto& series : analysis.series) {
    std::vector<std::string> row;
    row.push_back(series.series);
    for (const auto& ratio : series.ratios) {
      if (!ratio.has_value()) {
        row.push_back("-");
        continue;
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(precision) << *ratio << "x";
      row.push_back(cell.str());
    }
    row.push_back(series.has_pso ? "PSO"
                                 : (series.pto_dominated ? "PTO" : "~1"));
    table.add_row(std::move(row));
  }
  out << table.render();
}

void print_figure_report(std::ostream& out, const stats::Figure& figure,
                         const ReportOptions& options) {
  out << figure.title() << "\nMean execution time in seconds (± 95% CI):\n"
      << stats::figure_table(figure, options.precision).render() << '\n';
  if (options.bars) {
    out << stats::figure_bars(figure) << '\n';
  }
  if (options.ratios) {
    print_ratio_table(out, figure, options.precision);
    out << '\n';
  }
  if (options.csv) {
    out << "CSV:\n"
        << stats::figure_table(figure, options.precision).render_csv()
        << '\n';
  }
}

std::string json_escape(const std::string& text) {
  std::ostringstream os;
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

namespace {

void write_figure_json(std::ostream& out, const stats::Figure& figure) {
  out << "    {\n      \"title\": \"" << json_escape(figure.title())
      << "\",\n      \"x_labels\": [";
  for (std::size_t i = 0; i < figure.x_labels().size(); ++i) {
    if (i > 0) out << ", ";
    out << '"' << json_escape(figure.x_labels()[i]) << '"';
  }
  out << "],\n      \"series\": [\n";
  const auto& all = figure.series();
  for (std::size_t s = 0; s < all.size(); ++s) {
    out << "        {\"name\": \"" << json_escape(all[s].name())
        << "\", \"points\": [";
    for (std::size_t x = 0; x < figure.x_labels().size(); ++x) {
      if (x > 0) out << ", ";
      const auto point = all[s].at(x);
      if (point.has_value()) {
        out << "{\"mean\": " << point->mean
            << ", \"half_width\": " << point->half_width << "}";
      } else {
        out << "null";
      }
    }
    out << "]}" << (s + 1 < all.size() ? "," : "") << '\n';
  }
  out << "      ]\n    }";
}

}  // namespace

void write_bench_json(std::ostream& out, const BenchRunMeta& meta,
                      const std::vector<const stats::Figure*>& figures) {
  out << std::setprecision(17);
  out << "{\n  \"artifact\": \"" << json_escape(meta.artifact)
      << "\",\n  \"repetitions\": " << meta.repetitions
      << ",\n  \"jobs\": " << meta.jobs
      << ",\n  \"shards\": " << meta.shards
      << ",\n  \"wall_seconds\": " << meta.wall_seconds
      << ",\n  \"figures\": [\n";
  for (std::size_t i = 0; i < figures.size(); ++i) {
    write_figure_json(out, *figures[i]);
    out << (i + 1 < figures.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace pinsim::core
