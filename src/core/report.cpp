#include "core/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "stats/text_table.hpp"

namespace pinsim::core {

void print_header(std::ostream& out, const std::string& artifact,
                  const std::string& description) {
  out << std::string(72, '=') << '\n'
      << artifact << " — " << description << '\n'
      << "(The Art of CPU-Pinning, GhatrehSamani et al., ICPP 2020 — "
         "pinsim reproduction)\n"
      << std::string(72, '=') << '\n';
}

void print_ratio_table(std::ostream& out, const stats::Figure& figure,
                       int precision) {
  const OverheadAnalysis analysis = analyze_overhead(figure);
  std::vector<std::string> header;
  header.push_back("overhead ratio vs BM");
  for (const auto& label : figure.x_labels()) header.push_back(label);
  header.push_back("class");
  stats::TextTable table(std::move(header));
  for (const auto& series : analysis.series) {
    std::vector<std::string> row;
    row.push_back(series.series);
    for (const auto& ratio : series.ratios) {
      if (!ratio.has_value()) {
        row.push_back("-");
        continue;
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(precision) << *ratio << "x";
      row.push_back(cell.str());
    }
    row.push_back(series.has_pso ? "PSO"
                                 : (series.pto_dominated ? "PTO" : "~1"));
    table.add_row(std::move(row));
  }
  out << table.render();
}

void print_figure_report(std::ostream& out, const stats::Figure& figure,
                         const ReportOptions& options) {
  out << figure.title() << "\nMean execution time in seconds (± 95% CI):\n"
      << stats::figure_table(figure, options.precision).render() << '\n';
  if (options.bars) {
    out << stats::figure_bars(figure) << '\n';
  }
  if (options.ratios) {
    print_ratio_table(out, figure, options.precision);
    out << '\n';
  }
  if (options.csv) {
    out << "CSV:\n"
        << stats::figure_table(figure, options.precision).render_csv()
        << '\n';
  }
}

}  // namespace pinsim::core
