// Report rendering shared by the bench binaries.
//
// Every bench prints the same structure: the figure as an aligned table
// (mean ± 95% CI), a CSV block for machine extraction, an ASCII bar
// rendering of the shape, and the overhead-ratio table against
// bare-metal with the PTO/PSO classification.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/overhead.hpp"
#include "stats/series.hpp"

namespace pinsim::core {

struct ReportOptions {
  bool bars = true;
  bool csv = true;
  bool ratios = true;
  int precision = 2;
};

/// Run metadata recorded alongside machine-readable bench output.
struct BenchRunMeta {
  std::string artifact;     // e.g. "Figure 3"
  int repetitions = 0;      // effective repetitions per cell
  int jobs = 1;             // worker threads used for the sweep
  int shards = 1;           // event shards per repetition
  double wall_seconds = 0;  // bench wall-clock time
};

/// Render the full report for a measured figure.
void print_figure_report(std::ostream& out, const stats::Figure& figure,
                         const ReportOptions& options = {});

/// Render only the overhead-ratio table.
void print_ratio_table(std::ostream& out, const stats::Figure& figure,
                       int precision = 2);

/// A standard header naming the paper artifact being reproduced.
void print_header(std::ostream& out, const std::string& artifact,
                  const std::string& description);

/// Escape a string for embedding in a JSON document.
std::string json_escape(const std::string& text);

/// Machine-readable bench output: run metadata plus every figure's
/// series as {mean, half_width} points (null for omitted cells). The
/// bench binaries write this when invoked with `--json <path>`.
void write_bench_json(std::ostream& out, const BenchRunMeta& meta,
                      const std::vector<const stats::Figure*>& figures);

}  // namespace pinsim::core
