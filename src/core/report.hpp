// Report rendering shared by the bench binaries.
//
// Every bench prints the same structure: the figure as an aligned table
// (mean ± 95% CI), a CSV block for machine extraction, an ASCII bar
// rendering of the shape, and the overhead-ratio table against
// bare-metal with the PTO/PSO classification.
#pragma once

#include <iosfwd>
#include <string>

#include "core/overhead.hpp"
#include "stats/series.hpp"

namespace pinsim::core {

struct ReportOptions {
  bool bars = true;
  bool csv = true;
  bool ratios = true;
  int precision = 2;
};

/// Render the full report for a measured figure.
void print_figure_report(std::ostream& out, const stats::Figure& figure,
                         const ReportOptions& options = {});

/// Render only the overhead-ratio table.
void print_ratio_table(std::ostream& out, const stats::Figure& figure,
                       int precision = 2);

/// A standard header naming the paper artifact being reproduced.
void print_header(std::ostream& out, const std::string& artifact,
                  const std::string& description);

}  // namespace pinsim::core
