#include "core/figure.hpp"

#include "util/check.hpp"

namespace pinsim::core {

stats::Figure build_figure(const ExperimentRunner& runner,
                           const FigureSpec& spec,
                           const std::function<WorkloadFactory(
                               const virt::InstanceType&)>& factory_for) {
  PINSIM_CHECK(!spec.instances.empty());
  stats::Figure figure(spec.title, spec.instances);

  // Create the series in legend order first.
  const auto template_series =
      virt::paper_series(virt::instance_by_name(spec.instances.front()));
  for (const auto& platform_spec : template_series) {
    figure.add_series(platform_spec.label());
  }

  // Flatten the sweep into cells, then fan out across workers. The cell
  // list (and therefore the result order) is deterministic; only the
  // execution order varies with jobs.
  std::vector<SweepCell> cells;
  std::vector<std::size_t> cell_x;
  for (std::size_t x = 0; x < spec.instances.size(); ++x) {
    const virt::InstanceType& instance =
        virt::instance_by_name(spec.instances[x]);
    const WorkloadFactory factory = factory_for(instance);
    for (const auto& platform_spec : virt::paper_series(instance)) {
      if (spec.skip && spec.skip(platform_spec)) continue;
      cells.push_back(SweepCell{platform_spec, factory, std::nullopt});
      cell_x.push_back(x);
    }
  }

  const std::vector<Measurement> measurements =
      runner.measure_all(cells, spec.jobs);
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& measurement = measurements[i];
    const stats::Interval interval = measurement.interval();
    stats::Series* series = figure.mutable_series(measurement.spec.label());
    PINSIM_CHECK(series != nullptr);
    series->set(cell_x[i], interval);
    if (spec.on_point) spec.on_point(measurement.spec, interval);
  }
  return figure;
}

std::vector<std::string> fig3_instances() {
  return {"Large", "xLarge", "2xLarge", "4xLarge"};
}

std::vector<std::string> fig456_instances() {
  return {"xLarge", "2xLarge", "4xLarge", "8xLarge", "16xLarge"};
}

}  // namespace pinsim::core
