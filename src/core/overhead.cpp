#include "core/overhead.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pinsim::core {

const SeriesOverhead* OverheadAnalysis::find(const std::string& name) const {
  for (const auto& s : series) {
    if (s.series == name) return &s;
  }
  return nullptr;
}

std::optional<double> overhead_ratio(const stats::Figure& figure,
                                     const std::string& series,
                                     std::size_t x) {
  const stats::Series* baseline = figure.find_series(kBaselineSeries);
  const stats::Series* target = figure.find_series(series);
  if (baseline == nullptr || target == nullptr) return std::nullopt;
  const auto base = baseline->at(x);
  const auto value = target->at(x);
  if (!base.has_value() || !value.has_value() || base->mean <= 0.0) {
    return std::nullopt;
  }
  return value->mean / base->mean;
}

OverheadAnalysis analyze_overhead(const stats::Figure& figure,
                                  double pso_threshold) {
  PINSIM_CHECK_MSG(figure.find_series(kBaselineSeries) != nullptr,
                   "figure has no bare-metal baseline series");
  OverheadAnalysis analysis;
  const std::size_t n = figure.x_labels().size();

  for (const auto& series : figure.series()) {
    if (series.name() == kBaselineSeries) continue;
    SeriesOverhead overhead;
    overhead.series = series.name();
    overhead.ratios.resize(n);
    overhead.pso.resize(n);
    for (std::size_t x = 0; x < n; ++x) {
      overhead.ratios[x] = overhead_ratio(figure, series.name(), x);
    }
    // PTO: the settled ratio at the largest instance with data.
    std::optional<double> last;
    std::optional<double> first;
    for (std::size_t x = 0; x < n; ++x) {
      if (overhead.ratios[x].has_value()) {
        if (!first.has_value()) first = overhead.ratios[x];
        last = overhead.ratios[x];
      }
    }
    overhead.pto = last.value_or(1.0);
    for (std::size_t x = 0; x < n; ++x) {
      if (overhead.ratios[x].has_value()) {
        overhead.pso[x] =
            std::max(0.0, *overhead.ratios[x] - overhead.pto);
      }
    }
    if (first.has_value() && last.has_value()) {
      overhead.has_pso = (*first - *last) >= pso_threshold;
      overhead.pto_dominated =
          !overhead.has_pso && overhead.pto >= 1.1;
    }
    analysis.series.push_back(std::move(overhead));
  }
  return analysis;
}

}  // namespace pinsim::core
