// Container-to-Host core Ratio analysis (paper §IV-A).
//
// CHR = container cores / host cores. The paper's finding: the *lower*
// the CHR, the higher the vanilla container's Platform-Size Overhead, and
// each application class has a CHR range above which the PSO vanishes:
//
//   CPU intensive (FFmpeg):        0.07 < CHR < 0.14
//   IO intensive (WordPress):      0.14 < CHR < 0.28
//   Ultra IO intensive (Cassandra): 0.28 < CHR < 0.57
//
// This module provides both the paper's published ranges and a derivation
// routine that recovers such a range from measured (CHR, overhead-ratio)
// points — used by the chr_ranges bench to re-derive the table from fresh
// simulation data.
#pragma once

#include <optional>
#include <vector>

#include "hw/topology.hpp"
#include "virt/instance_type.hpp"
#include "workload/profiles.hpp"

namespace pinsim::core {

struct ChrRange {
  double low = 0.0;
  double high = 1.0;

  bool contains(double chr) const { return chr > low && chr <= high; }
};

/// CHR of an instance on a host.
double chr_of(const virt::InstanceType& instance,
              const hw::Topology& host);

/// The paper's recommended CHR range for an application class (§VI,
/// best practice 5).
ChrRange paper_chr_range(workload::AppClass cls);

/// One measured point on the CHR curve.
struct ChrPoint {
  double chr = 0.0;
  double overhead_ratio = 1.0;  // vanilla CN vs bare-metal
};

/// Derive the CHR range where PSO "starts to vanish": the span between
/// the last point whose ratio is still above `acceptable` and the first
/// point at/below it (points must be sorted by ascending CHR). Returns
/// nullopt when the overhead never settles below the threshold.
std::optional<ChrRange> derive_chr_range(const std::vector<ChrPoint>& points,
                                         double acceptable = 1.2);

/// Smallest catalog instance whose CHR on `host` falls inside the
/// recommended range for `cls` — the advisor's sizing answer.
std::optional<virt::InstanceType> recommend_instance(
    workload::AppClass cls, const hw::Topology& host);

}  // namespace pinsim::core
