// Fleet co-simulation on the sharded engine.
//
// One ShardedFleet run simulates K hosts — each a full virt::Host with
// its own kernel, devices, platform, and workload deployment — inside a
// single sim::ShardedEngine, host h on shard h % shards. The hosts are
// coupled by a cross-host heartbeat ring (host h pings host h+1 every
// heartbeat_period over the simulated network), so the shards genuinely
// exchange mailbox traffic every window instead of free-running; the
// heartbeat receive handler touches nothing but counters, which is what
// keeps each host's simulation byte-identical whether its neighbours
// share its shard or not.
//
// This is the cluster-scale scenario ROADMAP item 2 needs (fleets
// serving the arXiv:2401.07539-style matrices) in miniature, and the
// multi-shard workload the sharding benchmarks measure: per-host event
// streams are independent except for the mailbox ring, so wall-clock
// scales with shards wherever the host machine has cores to offer.
//
// Determinism contract (tests/sim/sharded_fleet_test.cpp):
//  - fixed config + seed => identical FleetHostResults, for any
//    `threads`, across repeated runs;
//  - per-host makespan / response stats / task counts are identical
//    across shard counts too (1, 2, K), because those are recorded at
//    exact event instants. Only raw.wall_seconds is round-granular
//    under shards > 1 (the engine stops at a window boundary, not at
//    the final exit event) — compare makespan_seconds, not raw wall.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "util/units.hpp"
#include "virt/factory.hpp"
#include "workload/workload.hpp"

namespace pinsim::core {

/// Hosts and platforms of one co-simulated fleet, host h shard-resident
/// on the shard the builder was given for it.
struct FleetHosts {
  std::vector<std::unique_ptr<virt::Host>> hosts;
  std::vector<std::unique_ptr<virt::Platform>> platforms;
};

/// Build `specs.size()` shard-resident hosts (host h on `shards[h]`,
/// running `specs[h]`) with the experiment runner's per-repetition seed
/// spacing, so host h matches repetition h of a solo-engine run of the
/// same spec. `attach` is invoked right after each host's platform is
/// built — construction stays interleaved, so host h's initial kernel
/// events and whatever attach() schedules keep their relative order no
/// matter which hosts share a shard; the Rng handed to attach is the
/// per-host deployment stream ShardedFleet has always used. Shared by
/// ShardedFleet (batch deployments) and cluster::Fleet (serving
/// sources).
FleetHosts build_fleet_hosts(
    sim::ShardedEngine& sharded, const std::vector<int>& shards,
    const std::vector<virt::PlatformSpec>& specs, const hw::Topology& full_host,
    const hw::CostModel& costs, std::uint64_t base_seed,
    const std::function<void(int host, virt::Platform& platform, Rng rng)>&
        attach);

struct ShardedFleetConfig {
  /// Machines in the fleet (>= 1), all running `spec`.
  int hosts = 4;
  /// Event shards; host h lives on shard h % shards. shards == 1 is
  /// the serial baseline (single engine, no windows, no barriers).
  int shards = 1;
  /// Host threads for the round loop (ShardedEngineConfig::threads).
  int threads = 1;
  /// Platform each host runs (fig7's Vanilla CN cell by default).
  virt::PlatformSpec spec;
  hw::Topology full_host = hw::Topology::dell_r830();
  hw::CostModel costs;
  std::uint64_t base_seed = 42;
  /// Cross-host heartbeat cadence and simulated network latency. The
  /// latency must be >= the cost model's lookahead (checked) — it rides
  /// the NIC, which is far slower than any intra-host mechanism.
  SimDuration heartbeat_period = msec(5);
  SimDuration heartbeat_latency = usec(200);
};

struct FleetHostResult {
  /// Last task exit minus deploy instant — recorded at exact event
  /// instants, so identical across shard and thread counts.
  double makespan_seconds = 0.0;
  double mean_response_seconds = 0.0;
  std::int64_t tasks_finished = 0;
  /// Deployment::collect() output. Under shards > 1 its wall_seconds
  /// reads the round-boundary clock (see the determinism contract).
  workload::RunResult raw;
};

struct ShardedFleetResult {
  std::vector<FleetHostResult> hosts;
  std::int64_t heartbeats_sent = 0;
  std::int64_t heartbeats_delivered = 0;
  std::int64_t events_fired = 0;
  sim::ShardedEngineStats shard_stats;
  sim::EngineStats engine_stats;
};

class ShardedFleet {
 public:
  explicit ShardedFleet(ShardedFleetConfig config);

  const ShardedFleetConfig& config() const { return config_; }

  /// Shard hosting host `h` (checked accessor for the shard_of_ map).
  int shard_of(int host) const;

  /// Build the fleet, deploy `workload` on every host (it must support
  /// the split deploy/collect lifecycle), co-simulate to completion.
  ShardedFleetResult run(workload::Workload& workload);

 private:
  ShardedFleetConfig config_;
  /// host -> shard back-pointer map, fixed at construction.
  std::vector<int> shard_of_;
};

/// Convenience one-shot wrapper.
ShardedFleetResult run_sharded_fleet(const ShardedFleetConfig& config,
                                     workload::Workload& workload);

}  // namespace pinsim::core
