// Figure assembly: sweep the paper's seven platform series across
// instance types and collect a stats::Figure ready for rendering.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "stats/series.hpp"

namespace pinsim::core {

struct FigureSpec {
  std::string title;
  /// Instance types on the x axis (subset of the Table II catalog).
  std::vector<std::string> instances;
  /// Skip a (series, instance) cell — e.g. Cassandra/Large thrashes and
  /// the paper omits it.
  std::function<bool(const virt::PlatformSpec&)> skip;
  /// Optional progress callback (bench binaries print dots). Always
  /// invoked in deterministic sweep order, even with jobs > 1.
  std::function<void(const virt::PlatformSpec&, const stats::Interval&)>
      on_point;
  /// Worker threads for the sweep; 1 = serial. Results are identical
  /// regardless of the value (see ExperimentRunner::measure_all).
  int jobs = 1;
};

/// Run the full sweep: every paper series at every instance in the spec.
/// Cells fan out across `spec.jobs` workers via measure_all().
stats::Figure build_figure(const ExperimentRunner& runner,
                           const FigureSpec& spec,
                           const std::function<WorkloadFactory(
                               const virt::InstanceType&)>& factory_for);

/// The instance lists the paper uses per figure.
std::vector<std::string> fig3_instances();  // Large..4xLarge (FFmpeg <=16)
std::vector<std::string> fig456_instances();  // xLarge..16xLarge

}  // namespace pinsim::core
