#include "trace/tracer.hpp"

#include <sstream>

namespace pinsim::trace {

TraceSession::TraceSession(os::Kernel& kernel)
    : sched_(kernel.topology()) {
  kernel.add_observer(cpudist_);
  kernel.add_observer(offcputime_);
  kernel.add_observer(sched_);
}

std::string TraceSession::report() const {
  std::ostringstream os;
  os << "== cpudist (on-cpu slices) ==\n"
     << cpudist_.render() << "mean slice: " << cpudist_.mean_slice_us()
     << " us\n\n"
     << "== offcputime (blocked) ==\n"
     << offcputime_.render() << "total blocked: "
     << offcputime_.total_blocked_seconds() << " s\n\n"
     << "== sched counters ==\n"
     << sched_.summary() << '\n';
  return os.str();
}

}  // namespace pinsim::trace
