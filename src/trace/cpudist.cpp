#include "trace/cpudist.hpp"

namespace pinsim::trace {

void CpuDist::on_slice(const os::Task&, int, SimDuration duration) {
  const auto us = static_cast<std::uint64_t>(duration / 1000);
  histogram_.add(us);
  total_us_ += static_cast<std::int64_t>(us);
}

double CpuDist::mean_slice_us() const {
  if (histogram_.count() == 0) return 0.0;
  return static_cast<double>(total_us_) /
         static_cast<double>(histogram_.count());
}

}  // namespace pinsim::trace
