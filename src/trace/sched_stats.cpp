#include "trace/sched_stats.hpp"

#include <algorithm>
#include <sstream>

namespace pinsim::trace {

void SchedStats::on_migration(const os::Task&, int from, int to,
                              SimDuration penalty) {
  switch (topology_->distance(from, to)) {
    case hw::CpuDistance::SameCpu:
      break;
    case hw::CpuDistance::SmtSibling:
      ++migrations_smt_;
      break;
    case hw::CpuDistance::SameSocket:
      ++migrations_same_socket_;
      break;
    case hw::CpuDistance::CrossSocket:
      ++migrations_cross_socket_;
      break;
  }
  penalty_seconds_ += to_seconds(penalty);
}

void SchedStats::on_context_switch(int) { ++context_switches_; }

void SchedStats::on_irq(int) { ++irqs_; }

void SchedStats::on_throttle(const os::Cgroup&) { ++throttles_; }

void SchedStats::on_aggregation(const os::Cgroup&, int spread,
                                SimDuration cost) {
  ++aggregations_;
  aggregation_seconds_ += to_seconds(cost);
  max_spread_ = std::max(max_spread_, spread);
}

std::string SchedStats::summary() const {
  std::ostringstream os;
  os << "context switches: " << context_switches_
     << ", irqs: " << irqs_ << ", migrations (smt/socket/cross): "
     << migrations_smt_ << "/" << migrations_same_socket_ << "/"
     << migrations_cross_socket_ << " (penalty " << penalty_seconds_
     << " s), throttles: " << throttles_
     << ", aggregations: " << aggregations_ << " (cost "
     << aggregation_seconds_ << " s, max spread " << max_spread_ << ")";
  return os.str();
}

}  // namespace pinsim::trace
