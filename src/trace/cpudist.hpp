// cpudist — on-CPU slice distribution, after the BCC tool of the same
// name the paper used ("we used cpudist and offcputime to monitor and
// profile the instantaneous status of the processes in the OS
// scheduler"). Attach to a kernel as a SchedObserver; render the familiar
// power-of-two microsecond histogram.
#pragma once

#include <string>

#include "os/observer.hpp"
#include "stats/histogram.hpp"

namespace pinsim::trace {

class CpuDist final : public os::SchedObserver {
 public:
  void on_slice(const os::Task& task, int cpu,
                SimDuration duration) override;

  const stats::Log2Histogram& histogram() const { return histogram_; }
  std::string render() const { return histogram_.render("usecs"); }
  double mean_slice_us() const;

 private:
  stats::Log2Histogram histogram_;
  std::int64_t total_us_ = 0;
};

}  // namespace pinsim::trace
