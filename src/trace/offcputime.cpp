#include "trace/offcputime.hpp"

namespace pinsim::trace {

void OffCpuTime::off_cpu(const os::Task&, SimDuration blocked) {
  histogram_.add(static_cast<std::uint64_t>(blocked / 1000));
  total_seconds_ += to_seconds(blocked);
}

}  // namespace pinsim::trace
