// offcputime — blocked-time distribution, after the BCC tool the paper
// used to see where processes wait (IO, messages, throttling).
#pragma once

#include <string>

#include "os/observer.hpp"
#include "stats/histogram.hpp"

namespace pinsim::trace {

class OffCpuTime final : public os::SchedObserver {
 public:
  void off_cpu(const os::Task& task, SimDuration blocked) override;

  const stats::Log2Histogram& histogram() const { return histogram_; }
  std::string render() const { return histogram_.render("usecs"); }
  double total_blocked_seconds() const { return total_seconds_; }

 private:
  stats::Log2Histogram histogram_;
  double total_seconds_ = 0.0;
};

}  // namespace pinsim::trace
