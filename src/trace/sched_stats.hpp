// Scheduler event counters with topology-aware migration breakdown —
// the perf-style counters the cross-application analysis (paper §IV)
// reasons about: migrations by distance, context switches, IRQs,
// throttles, and aggregation stalls.
#pragma once

#include <cstdint>
#include <string>

#include "hw/topology.hpp"
#include "os/observer.hpp"

namespace pinsim::trace {

class SchedStats final : public os::SchedObserver {
 public:
  explicit SchedStats(const hw::Topology& topology)
      : topology_(&topology) {}

  void on_migration(const os::Task& task, int from, int to,
                    SimDuration penalty) override;
  void on_context_switch(int cpu) override;
  void on_irq(int cpu) override;
  void on_throttle(const os::Cgroup& group) override;
  void on_aggregation(const os::Cgroup& group, int spread,
                      SimDuration cost) override;

  std::int64_t context_switches() const { return context_switches_; }
  std::int64_t irqs() const { return irqs_; }
  std::int64_t throttles() const { return throttles_; }
  std::int64_t aggregations() const { return aggregations_; }
  std::int64_t migrations_smt() const { return migrations_smt_; }
  std::int64_t migrations_same_socket() const {
    return migrations_same_socket_;
  }
  std::int64_t migrations_cross_socket() const {
    return migrations_cross_socket_;
  }
  double migration_penalty_seconds() const { return penalty_seconds_; }
  double aggregation_cost_seconds() const { return aggregation_seconds_; }
  int max_aggregation_spread() const { return max_spread_; }

  std::string summary() const;

 private:
  const hw::Topology* topology_;
  std::int64_t context_switches_ = 0;
  std::int64_t irqs_ = 0;
  std::int64_t throttles_ = 0;
  std::int64_t aggregations_ = 0;
  std::int64_t migrations_smt_ = 0;
  std::int64_t migrations_same_socket_ = 0;
  std::int64_t migrations_cross_socket_ = 0;
  double penalty_seconds_ = 0.0;
  double aggregation_seconds_ = 0.0;
  int max_spread_ = 0;
};

}  // namespace pinsim::trace
