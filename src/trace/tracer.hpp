// TraceSession: one-call attachment of the full BCC-style tool set
// (cpudist, offcputime, sched counters) to a simulated kernel.
#pragma once

#include <string>

#include "os/kernel.hpp"
#include "trace/cpudist.hpp"
#include "trace/offcputime.hpp"
#include "trace/sched_stats.hpp"

namespace pinsim::trace {

class TraceSession {
 public:
  /// Attaches all observers; the session must outlive the kernel's runs.
  explicit TraceSession(os::Kernel& kernel);

  const CpuDist& cpudist() const { return cpudist_; }
  const OffCpuTime& offcputime() const { return offcputime_; }
  const SchedStats& sched() const { return sched_; }

  /// Render a full profiling report.
  std::string report() const;

 private:
  CpuDist cpudist_;
  OffCpuTime offcputime_;
  SchedStats sched_;
};

}  // namespace pinsim::trace
