// Ablation A3: sweep the VM-exit and guest-compute-inflation costs to
// show which VM conclusions depend on which hypervisor constant:
// the FFmpeg 2x is inflation-driven (paper's PTO), while the IO
// workloads respond to the exit/virtio path.
#include "bench_common.hpp"
#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"

namespace {

using namespace pinsim;

double mean_metric(virt::PlatformKind kind, workload::Workload& workload,
                   const hw::CostModel& costs, int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    const virt::PlatformSpec spec{kind, virt::CpuMode::Vanilla,
                                  virt::instance_by_name("xLarge")};
    virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                    costs, seed);
    auto platform = virt::make_platform(host, spec);
    samples.add(
        workload.run(*platform, Rng(seed ^ 0x9e37ull)).metric_seconds);
  }
  return samples.mean();
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Ablation A3",
                     "hypervisor constants vs VM overhead (xLarge)");

  const int reps = bench::repetitions_or(3);
  stats::TextTable table({"inflation", "vmexit (us)",
                          "ffmpeg VM/BM", "cassandra VM/BM"});
  struct Point {
    double inflation;
    int vmexit_us;
  };
  for (const Point point : {Point{1.0, 0}, Point{1.0, 8}, Point{1.5, 8},
                            Point{1.95, 8}, Point{1.95, 40}}) {
    hw::CostModel costs;
    costs.guest_compute_inflation = point.inflation;
    costs.vmexit = usec(point.vmexit_us);
    workload::Ffmpeg ffmpeg;
    workload::Cassandra cassandra;
    const double ffmpeg_vm =
        mean_metric(virt::PlatformKind::Vm, ffmpeg, costs, reps);
    const double ffmpeg_bm =
        mean_metric(virt::PlatformKind::BareMetal, ffmpeg, costs, reps);
    const double cass_vm =
        mean_metric(virt::PlatformKind::Vm, cassandra, costs, reps);
    const double cass_bm =
        mean_metric(virt::PlatformKind::BareMetal, cassandra, costs, reps);
    auto num = [](double x) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << x << "x";
      return os.str();
    };
    std::ostringstream inflation_os;
    inflation_os << std::fixed << std::setprecision(2) << point.inflation;
    table.add_row({inflation_os.str(), std::to_string(point.vmexit_us),
                   num(ffmpeg_vm / ffmpeg_bm), num(cass_vm / cass_bm)});
  }
  std::cout << table.render()
            << "\nReading: the FFmpeg VM ratio tracks the compute "
               "inflation (the paper's platform-type overhead); the IO "
               "workload is far less sensitive to it.\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
