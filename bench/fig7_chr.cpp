// Figure 7: the impact of the Container-to-Host core Ratio (CHR).
//
// The same 4xLarge (16-core) container runs on two homogeneous hosts:
// a 16-core host (CHR = 1) and the 112-core testbed (CHR = 0.14), in
// vanilla and pinned mode, plus bare-metal with 16 cores as the
// reference. Paper shape: the identical container is slower on the
// larger host — lower CHR means higher Platform-Size Overhead.
#include "bench_common.hpp"
#include "core/chr_advisor.hpp"
#include "workload/ffmpeg.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 7",
                     "CHR: one 4xLarge container on 16- vs 112-core hosts");

  const core::ExperimentRunner runner = bench::make_runner(20, options);
  const hw::Topology small = hw::Topology::small_host_16();
  const hw::Topology big = hw::Topology::dell_r830();
  const core::WorkloadFactory ffmpeg = [] {
    return std::make_unique<workload::Ffmpeg>();
  };
  const auto& instance = virt::instance_by_name("4xLarge");
  auto cell = [&](virt::PlatformKind kind, virt::CpuMode mode,
                  const hw::Topology& host) {
    return core::SweepCell{virt::PlatformSpec{kind, mode, instance}, ffmpeg,
                           host};
  };

  // Cell order mirrors the figure: the 16-core host's three bars, then
  // the 112-core host's two (no BM reference there).
  const std::vector<core::SweepCell> cells = {
      cell(virt::PlatformKind::Container, virt::CpuMode::Vanilla, small),
      cell(virt::PlatformKind::Container, virt::CpuMode::Pinned, small),
      cell(virt::PlatformKind::BareMetal, virt::CpuMode::Vanilla, small),
      cell(virt::PlatformKind::Container, virt::CpuMode::Vanilla, big),
      cell(virt::PlatformKind::Container, virt::CpuMode::Pinned, big),
  };
  const std::vector<core::Measurement> results =
      runner.measure_all(cells, options.jobs);

  stats::Figure figure("Figure 7 — FFmpeg on a 4xLarge container, by host",
                       {"16 cores (CHR=1)", "112 cores (CHR=0.14)"});
  figure.add_series("Vanilla CN");
  figure.add_series("Pinned CN");
  figure.add_series("Vanilla BM");
  figure.mutable_series("Vanilla CN")->set(0, results[0].interval());
  figure.mutable_series("Pinned CN")->set(0, results[1].interval());
  figure.mutable_series("Vanilla BM")->set(0, results[2].interval());
  figure.mutable_series("Vanilla CN")->set(1, results[3].interval());
  figure.mutable_series("Pinned CN")->set(1, results[4].interval());

  core::ReportOptions report_options;
  report_options.ratios = false;  // BM baseline only exists for 16 cores
  core::print_figure_report(std::cout, figure, report_options);

  const auto chr_small = core::chr_of(instance, small);
  const auto chr_big = core::chr_of(instance, big);
  std::cout << "CHR on 16-core host: " << chr_small
            << ", on 112-core host: " << chr_big << "\n"
            << "Finding: the same container imposes a higher overhead at "
               "the lower CHR (paper §IV-A).\n";
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 7",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
