// Figure 7: the impact of the Container-to-Host core Ratio (CHR).
//
// The same 4xLarge (16-core) container runs on two homogeneous hosts:
// a 16-core host (CHR = 1) and the 112-core testbed (CHR = 0.14), in
// vanilla and pinned mode, plus bare-metal with 16 cores as the
// reference. Paper shape: the identical container is slower on the
// larger host — lower CHR means higher Platform-Size Overhead.
#include "bench_common.hpp"
#include "core/chr_advisor.hpp"
#include "workload/ffmpeg.hpp"

namespace {

using namespace pinsim;

stats::Interval measure(const hw::Topology& host_topology,
                        virt::PlatformKind kind, virt::CpuMode mode,
                        int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    const virt::PlatformSpec spec{kind, mode,
                                  virt::instance_by_name("4xLarge")};
    virt::Host host(virt::host_topology_for(spec, host_topology),
                    hw::CostModel{}, seed);
    auto platform = virt::make_platform(host, spec);
    workload::Ffmpeg ffmpeg;
    samples.add(
        ffmpeg.run(*platform, Rng(seed ^ 0x9e3779b97f4a7c15ull))
            .metric_seconds);
  }
  return stats::confidence_95(samples);
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 7",
                     "CHR: one 4xLarge container on 16- vs 112-core hosts");

  const int reps = bench::repetitions_or(20);
  const hw::Topology small = hw::Topology::small_host_16();
  const hw::Topology big = hw::Topology::dell_r830();

  stats::Figure figure("Figure 7 — FFmpeg on a 4xLarge container, by host",
                       {"16 cores (CHR=1)", "112 cores (CHR=0.14)"});
  figure.add_series("Vanilla CN");
  figure.add_series("Pinned CN");
  figure.add_series("Vanilla BM");
  auto& vanilla = *figure.mutable_series("Vanilla CN");
  auto& pinned = *figure.mutable_series("Pinned CN");
  auto& bm = *figure.mutable_series("Vanilla BM");

  vanilla.set(0, measure(small, virt::PlatformKind::Container,
                         virt::CpuMode::Vanilla, reps));
  pinned.set(0, measure(small, virt::PlatformKind::Container,
                        virt::CpuMode::Pinned, reps));
  bm.set(0, measure(small, virt::PlatformKind::BareMetal,
                    virt::CpuMode::Vanilla, reps));
  vanilla.set(1, measure(big, virt::PlatformKind::Container,
                         virt::CpuMode::Vanilla, reps));
  pinned.set(1, measure(big, virt::PlatformKind::Container,
                        virt::CpuMode::Pinned, reps));

  core::ReportOptions options;
  options.ratios = false;  // the BM baseline only exists for the 16-core host
  core::print_figure_report(std::cout, figure, options);

  const auto chr_small =
      core::chr_of(virt::instance_by_name("4xLarge"), small);
  const auto chr_big = core::chr_of(virt::instance_by_name("4xLarge"), big);
  std::cout << "CHR on 16-core host: " << chr_small
            << ", on 112-core host: " << chr_big << "\n"
            << "Finding: the same container imposes a higher overhead at "
               "the lower CHR (paper §IV-A).\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
