// Shared scaffolding for the figure/table bench binaries.
//
// Each bench reproduces one paper artifact and prints mean ± 95% CI
// tables, ASCII bars, overhead ratios, and CSV. Repetition counts default
// to the paper's protocol; set PINSIM_REPS to override (e.g. PINSIM_REPS=3
// for a quick pass) — the output notes any override.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/figure.hpp"
#include "core/report.hpp"
#include "stats/text_table.hpp"

namespace pinsim::bench {

inline int repetitions_or(int paper_default) {
  if (const char* env = std::getenv("PINSIM_REPS")) {
    const int reps = std::atoi(env);
    if (reps >= 1) return reps;
  }
  return paper_default;
}

inline core::ExperimentRunner make_runner(int paper_reps) {
  core::ExperimentConfig config;
  config.repetitions = repetitions_or(paper_reps);
  if (config.repetitions != paper_reps) {
    std::cout << "[note] PINSIM_REPS override: " << config.repetitions
              << " repetitions (paper protocol: " << paper_reps << ")\n";
  }
  return core::ExperimentRunner(config);
}

/// Progress dots so long sweeps show life on the console.
inline void progress_point(const virt::PlatformSpec& spec,
                           const stats::Interval& interval) {
  std::cout << "  [" << spec.instance.name << "] " << spec.label() << ": "
            << stats::format_interval(interval) << " s\n"
            << std::flush;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pinsim::bench
