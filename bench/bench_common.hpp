// Shared scaffolding for the figure/table bench binaries.
//
// Each bench reproduces one paper artifact and prints mean ± 95% CI
// tables, ASCII bars, overhead ratios, and CSV. Repetition counts default
// to the paper's protocol; set PINSIM_REPS to override (e.g. PINSIM_REPS=3
// for a quick pass) — the output notes any override.
//
// Common CLI (parse with bench::parse_cli):
//   --jobs N    fan the sweep across N worker threads (default: 1, or
//               PINSIM_JOBS). Results are bit-identical to --jobs 1.
//   --shards N  event shards per repetition (default: 1, or PINSIM_SHARDS).
//               --shards 1 is byte-identical to the historical output;
//               N > 1 is deterministic but window-rounded (see
//               core::ExperimentConfig::shards)
//   --reps N    override the paper's repetition count (same as PINSIM_REPS)
//   --json P    also write machine-readable results + timing to file P
//   --stats     print aggregated sim::Engine counters (events fired,
//               tombstone pops, deferred re-arms, peak heap) after the run
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/figure.hpp"
#include "core/report.hpp"
#include "sim/engine.hpp"
#include "stats/text_table.hpp"

namespace pinsim::bench {

struct BenchOptions {
  int jobs = 1;
  int shards = 1;  // event shards per repetition (PINSIM_SHARDS)
  int reps_override = 0;  // 0 = keep the paper protocol / PINSIM_REPS
  std::string json_path;  // empty = no JSON output
  bool engine_stats = false;  // print aggregated engine counters at exit
};

inline int env_int_or(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int value = std::atoi(env);
    if (value >= 1) return value;
  }
  return fallback;
}

/// Parse the common bench flags; exits with a usage message on errors so
/// every bench binary behaves the same.
inline BenchOptions parse_cli(int argc, char** argv) {
  BenchOptions options;
  options.jobs = env_int_or("PINSIM_JOBS", 1);
  options.shards = env_int_or("PINSIM_SHARDS", 1);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = std::atoi(value("--jobs"));
    } else if (arg == "--shards") {
      options.shards = std::atoi(value("--shards"));
    } else if (arg == "--reps") {
      options.reps_override = std::atoi(value("--reps"));
    } else if (arg == "--json") {
      options.json_path = value("--json");
    } else if (arg == "--stats") {
      options.engine_stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--jobs N] [--shards N] [--reps N] [--json PATH] "
                   "[--stats]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  if (options.jobs < 1) {
    std::cerr << "--jobs must be >= 1\n";
    std::exit(2);
  }
  if (options.shards < 1) {
    std::cerr << "--shards must be >= 1\n";
    std::exit(2);
  }
  if (options.reps_override < 0) {
    std::cerr << "--reps must be >= 1\n";
    std::exit(2);
  }
  return options;
}

inline int repetitions_or(int paper_default) {
  return env_int_or("PINSIM_REPS", paper_default);
}

inline core::ExperimentRunner make_runner(int paper_reps,
                                          const BenchOptions& options = {}) {
  core::ExperimentConfig config;
  config.repetitions = options.reps_override > 0 ? options.reps_override
                                                 : repetitions_or(paper_reps);
  if (config.repetitions != paper_reps) {
    std::cout << "[note] repetition override: " << config.repetitions
              << " repetitions (paper protocol: " << paper_reps << ")\n";
  }
  if (options.jobs > 1) {
    std::cout << "[note] sweeping with " << options.jobs
              << " worker threads (results identical to --jobs 1)\n";
  }
  config.shards = options.shards;
  if (options.shards > 1) {
    std::cout << "[note] --shards " << options.shards
              << ": repetitions run under the sharded round loop "
                 "(deterministic; wall-clock metrics round to window "
                 "boundaries — see ExperimentConfig::shards)\n";
  }
  return core::ExperimentRunner(config);
}

/// Progress dots so long sweeps show life on the console.
inline void progress_point(const virt::PlatformSpec& spec,
                           const stats::Interval& interval) {
  std::cout << "  [" << spec.instance.name << "] " << spec.label() << ": "
            << stats::format_interval(interval) << " s\n"
            << std::flush;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Write the machine-readable report when --json was given.
inline void maybe_write_json(const BenchOptions& options,
                             const std::string& artifact, int repetitions,
                             double wall_seconds,
                             const std::vector<const stats::Figure*>& figures) {
  if (options.json_path.empty()) return;
  std::ofstream out(options.json_path);
  if (!out) {
    std::cerr << "cannot open " << options.json_path << " for writing\n";
    std::exit(1);
  }
  core::BenchRunMeta meta;
  meta.artifact = artifact;
  meta.repetitions = repetitions;
  meta.jobs = options.jobs;
  meta.shards = options.shards;
  meta.wall_seconds = wall_seconds;
  core::write_bench_json(out, meta, figures);
  std::cout << "json written to " << options.json_path << "\n";
}

/// Print the process-wide engine counters when --stats was given. Call
/// last in main — the totals fold in as each simulation's Engine is
/// destroyed, and a sweep builds one engine per (cell, repetition).
inline void maybe_print_engine_stats(const BenchOptions& options) {
  if (!options.engine_stats) return;
  const sim::EngineStats stats = sim::aggregate_engine_stats();
  const double tombstone_ratio =
      stats.fired > 0 ? static_cast<double>(stats.tombstone_pops) /
                            static_cast<double>(stats.fired)
                      : 0.0;
  const double skipped_ratio =
      stats.fired + stats.boundaries_skipped > 0
          ? static_cast<double>(stats.boundaries_skipped) /
                static_cast<double>(stats.fired + stats.boundaries_skipped)
          : 0.0;
  std::cout << "engine stats: fired=" << stats.fired
            << " scheduled=" << stats.scheduled
            << " tombstone_pops=" << stats.tombstone_pops
            << " (ratio " << std::setprecision(4) << tombstone_ratio
            << ") deferred_rearms=" << stats.deferred_rearms
            << " reschedules=" << stats.reschedules
            << " peak_heap=" << stats.peak_heap
            << " boundaries_batched=" << stats.boundaries_batched
            << " boundaries_skipped=" << stats.boundaries_skipped
            << " (ratio " << std::setprecision(4) << skipped_ratio
            << ") quiet_windows=" << stats.quiet_windows << "\n";
}

}  // namespace pinsim::bench
