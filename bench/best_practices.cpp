// §VI: the best-practice rule engine, plus an end-to-end verification
// that re-derives practices 1-4 from freshly simulated CPU-bound
// (FFmpeg) and IO-bound (WordPress) figures.
#include "bench_common.hpp"
#include "core/best_practices.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/wordpress.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Best practices (paper §VI)",
                     "rule engine + verification against simulated data");

  std::cout << "The paper's five practices:\n";
  for (const auto& text : core::practice_texts()) {
    std::cout << "  " << text << '\n';
  }

  std::cout << "\nAdvisor examples:\n";
  struct Example {
    const char* description;
    core::DeploymentQuery query;
  };
  const Example examples[] = {
      {"CPU-bound app, pinning allowed",
       {workload::AppClass::CpuBound, true, false}},
      {"NoSQL app, pinning not allowed",
       {workload::AppClass::IoNoSql, false, false}},
      {"web app, VM isolation required",
       {workload::AppClass::IoWeb, true, true}},
  };
  for (const Example& example : examples) {
    const auto recs = core::recommend(example.query);
    std::cout << "  " << example.description << " -> "
              << recs.front().label() << " (" << recs.front().rationale
              << ")\n";
  }

  std::cout << "\nVerifying practices 1-4 against fresh simulation data...\n";
  const core::ExperimentRunner runner = bench::make_runner(5, options);

  core::FigureSpec cpu_spec;
  cpu_spec.title = "cpu";
  cpu_spec.instances = {"Large", "xLarge", "2xLarge"};
  cpu_spec.jobs = options.jobs;
  const stats::Figure cpu_figure = core::build_figure(
      runner, cpu_spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::Ffmpeg>(); };
      });

  core::FigureSpec io_spec;
  io_spec.title = "io";
  io_spec.instances = {"xLarge", "2xLarge"};
  io_spec.jobs = options.jobs;
  const stats::Figure io_figure = core::build_figure(
      runner, io_spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::WordPress>(); };
      });

  bool all_hold = true;
  for (const auto& check : core::verify_practices(cpu_figure, io_figure)) {
    std::cout << "  practice " << check.practice << ": "
              << (check.holds ? "HOLDS" : "DOES NOT HOLD") << " — "
              << check.evidence << '\n';
    all_hold = all_hold && check.holds;
  }
  std::cout << (all_hold ? "All verified practices hold.\n"
                         : "Some practices did not verify; see above.\n");
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Best practices",
                          runner.config().repetitions, wall,
                          {&cpu_figure, &io_figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
