// Micro-benchmarks for the cluster serving layer's hot paths.
//
// The front end runs one Arrivals::next() and one LoadBalancer::pick()
// per request plus an SloTracker::record() per completion, so at fleet
// request rates these are the per-event costs that bound scenario
// throughput; BM_ClusterFleet times the full dispatch/serve/notify loop
// end to end on a small fleet.
#include <benchmark/benchmark.h>

#include "cluster/arrivals.hpp"
#include "cluster/fleet.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/slo.hpp"
#include "util/rng.hpp"

namespace {

using namespace pinsim;

cluster::ArrivalConfig arrival_config(cluster::ArrivalKind kind) {
  cluster::ArrivalConfig config;
  config.kind = kind;
  config.rate_per_second = 1000.0;
  config.burst_seconds = 0.5;
  config.quiet_seconds = 2.0;
  config.diurnal_period_seconds = 60.0;
  return config;
}

void BM_ArrivalsPoisson(benchmark::State& state) {
  cluster::Arrivals arrivals(arrival_config(cluster::ArrivalKind::Poisson),
                             Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arrivals.next());
  }
}
BENCHMARK(BM_ArrivalsPoisson);

void BM_ArrivalsBurst(benchmark::State& state) {
  cluster::Arrivals arrivals(arrival_config(cluster::ArrivalKind::Burst),
                             Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arrivals.next());
  }
}
BENCHMARK(BM_ArrivalsBurst);

void BM_ArrivalsDiurnal(benchmark::State& state) {
  cluster::Arrivals arrivals(arrival_config(cluster::ArrivalKind::Diurnal),
                             Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arrivals.next());
  }
}
BENCHMARK(BM_ArrivalsDiurnal);

/// pick() + outstanding bookkeeping over `backends` instances, with the
/// count periodically drained so the scan never degenerates.
void balancer_loop(benchmark::State& state, cluster::BalancerPolicy policy) {
  const int backends = static_cast<int>(state.range(0));
  cluster::LoadBalancer lb(policy, backends);
  for (int b = 0; b < backends; b += 3) {
    lb.set_chr_in_range(b, false);
  }
  for (auto _ : state) {
    const int pick = lb.pick();
    lb.add_outstanding(pick, 1);
    if (lb.outstanding(pick) >= 8) lb.add_outstanding(pick, -8);
    benchmark::DoNotOptimize(pick);
  }
}

void BM_BalancerRoundRobin(benchmark::State& state) {
  balancer_loop(state, cluster::BalancerPolicy::RoundRobin);
}
BENCHMARK(BM_BalancerRoundRobin)->Arg(8)->Arg(64);

void BM_BalancerLeastOutstanding(benchmark::State& state) {
  balancer_loop(state, cluster::BalancerPolicy::LeastOutstanding);
}
BENCHMARK(BM_BalancerLeastOutstanding)->Arg(8)->Arg(64);

void BM_BalancerChrAware(benchmark::State& state) {
  balancer_loop(state, cluster::BalancerPolicy::ChrAware);
}
BENCHMARK(BM_BalancerChrAware)->Arg(8)->Arg(64);

void BM_SloRecord(benchmark::State& state) {
  cluster::SloTracker tracker{cluster::SloConfig{}};
  Rng rng(3);
  double latency = 0.0;
  for (auto _ : state) {
    latency = 0.2 + 0.6 * rng.next_double();
    tracker.record(latency);
  }
  benchmark::DoNotOptimize(tracker.summary());
}
BENCHMARK(BM_SloRecord);

/// End-to-end: a small WordPress fleet serving one second of open-loop
/// traffic through dispatch, execution, and completion notification.
void BM_ClusterFleet(benchmark::State& state) {
  cluster::FleetConfig config;
  config.hosts = 4;
  config.shards = static_cast<int>(state.range(0));
  config.threads = 1;
  config.arrivals.rate_per_second = 100.0;
  config.traffic_seconds = 1.0;
  config.drain_seconds = 60.0;
  std::int64_t requests = 0;
  for (auto _ : state) {
    const cluster::ClusterResult result = cluster::run_cluster(config);
    requests += result.completed;
    benchmark::DoNotOptimize(result.slo.p99_seconds);
  }
  state.counters["requests"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterFleet)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
