// Table III: the four execution platforms, their stack specification
// (as in the paper), and a measured one-task smoke run per platform
// showing the layer cost each adds over bare-metal for a fixed
// CPU-bound task.
#include "bench_common.hpp"
#include "workload/ffmpeg.hpp"

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Table III",
                     "Execution platforms and their layer costs");

  struct Row {
    const char* abbr;
    const char* platform;
    const char* specification;
    virt::PlatformKind kind;
  };
  const Row rows[] = {
      {"BM", "Bare-Metal", "host kernel only (GRUB-limited cores)",
       virt::PlatformKind::BareMetal},
      {"VM", "Virtual Machine",
       "KVM-style hypervisor, vCPU host tasks, guest kernel, virtio IO",
       virt::PlatformKind::Vm},
      {"CN", "Container on Bare-Metal",
       "namespace + cgroup (quota = cores x period) on the host kernel",
       virt::PlatformKind::Container},
      {"VMCN", "Container on VM", "guest-side cgroup inside the VM above",
       virt::PlatformKind::VmContainer},
  };

  const auto& instance = virt::instance_by_name("xLarge");
  const int reps = bench::repetitions_or(5);

  double bm_mean = 0.0;
  stats::TextTable table(
      {"Abbr.", "Platform", "Specification", "FFmpeg xLarge (s)",
       "vs BM"});
  for (const Row& row : rows) {
    stats::Accumulator samples;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 7 + 1000003ull * static_cast<unsigned>(rep);
      const virt::PlatformSpec spec{row.kind, virt::CpuMode::Vanilla,
                                    instance};
      virt::Host host(
          virt::host_topology_for(spec, hw::Topology::dell_r830()),
          hw::CostModel{}, seed);
      auto platform = virt::make_platform(host, spec);
      workload::Ffmpeg ffmpeg;
      samples.add(ffmpeg.run(*platform, Rng(seed)).metric_seconds);
    }
    const double mean = samples.mean();
    if (row.kind == virt::PlatformKind::BareMetal) bm_mean = mean;
    std::ostringstream mean_os, ratio_os;
    mean_os << std::fixed << std::setprecision(2) << mean;
    ratio_os << std::fixed << std::setprecision(2)
             << (bm_mean > 0 ? mean / bm_mean : 1.0) << "x";
    table.add_row({row.abbr, row.platform, row.specification, mean_os.str(),
                   ratio_os.str()});
  }
  std::cout << table.render()
            << "\n(Software stack as in the paper: Ubuntu 18.04.3 / kernel "
               "5.4.5, QEMU 2.11.1 + Libvirt 4, Docker 19.03.6 — modelled "
               "by the simulator's cost constants.)\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
