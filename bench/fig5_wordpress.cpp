// Figure 5: WordPress mean response time over 1,000 simultaneous web
// requests, xLarge through 16xLarge, 6 repetitions (the paper's protocol
// for this workload).
//
// Paper shape to reproduce:
//  - vanilla CN is the worst platform at small sizes (about twice BM at
//    the small end) and converges toward BM as cores grow;
//  - pinned CN imposes the lowest overhead;
//  - VMCN is slightly cheaper than the plain VM;
//  - pinned VM consistently beats vanilla VM.
#include "bench_common.hpp"
#include "workload/wordpress.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 5",
                     "WordPress mean response time (1,000 requests)");

  const core::ExperimentRunner runner = bench::make_runner(6, options);
  core::FigureSpec spec;
  spec.title = "Figure 5 — WordPress (1,000 simultaneous requests)";
  spec.instances = core::fig456_instances();
  spec.on_point = bench::progress_point;
  spec.jobs = options.jobs;

  const stats::Figure figure = core::build_figure(
      runner, spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::WordPress>(); };
      });

  std::cout << '\n';
  core::print_figure_report(std::cout, figure, [] {
    core::ReportOptions report_options;
    report_options.precision = 3;  // sub-second response times
    return report_options;
  }());
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 5",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
