// Table I: the four application types — paper specification plus the
// measured characterization of our workload models (where their tasks
// actually spend time on a bare-metal instance), verifying each model
// has the advertised character.
#include "bench_common.hpp"
#include "workload/profiles.hpp"

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Table I",
                     "Application types and measured characterization");

  stats::TextTable table({"Type", "Version", "Characteristic (paper)",
                          "cpu%", "blocked%", "io/s", "msg/s",
                          "metric (s)"});
  for (const auto& app : workload::table1_applications()) {
    auto model = workload::make_workload(app.cls);
    const workload::MeasuredProfile profile =
        workload::measure_profile(*model, 16, 42);
    auto pct = [](double x) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(0) << 100.0 * x << "%";
      return os.str();
    };
    auto num = [](double x, int precision = 1) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(precision) << x;
      return os.str();
    };
    table.add_row({app.name, app.version, app.characteristic,
                   pct(profile.cpu_fraction), pct(profile.block_fraction),
                   num(profile.io_ops_per_second),
                   num(profile.messages_per_second),
                   num(profile.metric_seconds, 2)});
  }
  std::cout << table.render() << '\n'
            << "(measured on a Vanilla BM 4xLarge instance; cpu%/blocked% "
               "are fractions of summed task lifetimes)\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
