// Sharded-engine micro-benchmarks (google-benchmark).
//
// Measures the machinery DESIGN.md §7 adds on top of the solo engine:
// the conservative round loop (window scan + advance + park), the
// seq-stamped mailbox exchange, the thread fan-out, and the end-to-end
// fleet co-simulation that is the sharding win's target scenario.
// Emits BENCH_shard_latest.json from scripts/verify.sh; the committed
// BENCH_shard.json snapshot is the reference for hot-path PRs.
//
// Reading the numbers: on a multi-core host, BM_FleetCosim at
// shards=N/threads=N divides wall clock by up to N relative to
// shards=1. On a single-core container (CI), the threaded rows cost a
// barrier round-trip per window and shards>1 shows only the round-loop
// overhead — compare items_per_second, which normalizes by events.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "core/sharded_fleet.hpp"
#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "util/units.hpp"
#include "virt/instance_type.hpp"
#include "virt/platform.hpp"
#include "workload/ffmpeg.hpp"

namespace {

using namespace pinsim;

constexpr SimDuration kLookahead = usec(2);

sim::ShardedEngineConfig shard_config(int shards, int threads) {
  sim::ShardedEngineConfig config;
  config.shards = shards;
  config.lookahead = kLookahead;
  config.threads = threads;
  return config;
}

/// Local timer chains on every shard, one cross-shard post per eight
/// local events: the round loop dominates, the mailbox stays warm.
void BM_ShardRoundAdvance(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    sim::ShardedEngine sharded(shard_config(shards, 1));
    std::vector<std::function<void(int)>> chain(
        static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      chain[static_cast<std::size_t>(s)] = [&sharded, &chain, s](int step) {
        if (step >= 2000) return;
        sharded.shard(s).schedule_detached(usec(3), [&chain, s, step] {
          chain[static_cast<std::size_t>(s)](step + 1);
        });
        if (step % 8 == 0) {
          sharded.post(s, (s + 1) % sharded.shards(), kLookahead, [] {});
        }
      };
      sharded.shard(s).schedule_detached(usec(1), [&chain, s] {
        chain[static_cast<std::size_t>(s)](0);
      });
    }
    events += sharded.run();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ShardRoundAdvance)->Arg(1)->Arg(2)->Arg(4);

/// Every delivery immediately posts onward around the shard ring: the
/// exchange path (flatten, sort, re-schedule) is the whole workload.
void BM_MailboxExchange(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::int64_t posts = 0;
  for (auto _ : state) {
    sim::ShardedEngine sharded(shard_config(shards, 1));
    // 32 tokens circulate the ring concurrently.
    std::function<void(int)> forward = [&sharded, &forward](int src) {
      sharded.post(src, (src + 1) % sharded.shards(), kLookahead,
                   [&forward, src, &sharded] {
                     forward((src + 1) % sharded.shards());
                   });
    };
    for (int token = 0; token < 32; ++token) {
      const int src = token % shards;
      sharded.shard(src).schedule_detached(usec(1 + token), [&forward, src] {
        forward(src);
      });
    }
    sharded.run(msec(2));
    posts += sharded.stats().cross_posts;
  }
  state.SetItemsProcessed(posts);
}
BENCHMARK(BM_MailboxExchange)->Arg(2)->Arg(4);

/// The same four-shard mesh under 1, 2, and 4 worker threads: isolates
/// what the barrier handshake costs (single-core hosts) or buys back
/// (multi-core hosts).
void BM_ShardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    sim::ShardedEngine sharded(shard_config(4, threads));
    std::vector<std::function<void(int)>> chain(4);
    for (int s = 0; s < 4; ++s) {
      chain[static_cast<std::size_t>(s)] = [&sharded, &chain, s](int step) {
        if (step >= 1000) return;
        sharded.shard(s).schedule_detached(usec(3), [&chain, s, step] {
          chain[static_cast<std::size_t>(s)](step + 1);
        });
      };
      sharded.shard(s).schedule_detached(usec(1), [&chain, s] {
        chain[static_cast<std::size_t>(s)](0);
      });
    }
    events += sharded.run();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ShardThreads)->Arg(1)->Arg(2)->Arg(4);

/// End to end: a four-host fleet (fig7's Vanilla CN cell on xLarge,
/// scaled-down transcode) co-simulated at (shards, threads). This is
/// the scenario the sharding work targets — per-host event streams are
/// independent apart from the heartbeat ring, so on an N-core host the
/// shards=N/threads=N row approaches a 1/N wall clock.
void BM_FleetCosim(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  workload::FfmpegConfig transcode;
  transcode.serial_seconds = 0.3;
  transcode.parallel_seconds = 1.5;
  transcode.startup_seconds = 0.1;
  transcode.source_seconds = 5.0;
  std::int64_t events = 0;
  for (auto _ : state) {
    core::ShardedFleetConfig config;
    config.hosts = 4;
    config.shards = shards;
    config.threads = threads;
    config.spec = virt::PlatformSpec{virt::PlatformKind::Container,
                                     virt::CpuMode::Vanilla,
                                     virt::instance_by_name("xLarge")};
    config.full_host = hw::Topology::small_host_16();
    workload::Ffmpeg ffmpeg(transcode);
    const core::ShardedFleetResult result =
        core::run_sharded_fleet(config, ffmpeg);
    events += result.events_fired;
    benchmark::DoNotOptimize(result.hosts.front().makespan_seconds);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_FleetCosim)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
