// Figure 8: the impact of multitasking on container overhead.
//
// The same total transcode work on a 4xLarge container: one 30-second
// video versus 30 one-second videos processed in parallel. Paper shape:
// the 30-process variant imposes a higher overhead on the vanilla
// container (more processes = more OS-scheduler and cgroups work), and
// pinning closes most of the gap.
#include "bench_common.hpp"
#include "workload/ffmpeg.hpp"

namespace {

using namespace pinsim;

stats::Interval measure(virt::CpuMode mode, int processes, int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    const virt::PlatformSpec spec{virt::PlatformKind::Container, mode,
                                  virt::instance_by_name("4xLarge")};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, seed);
    auto platform = virt::make_platform(host, spec);
    workload::FfmpegConfig config;
    config.processes = processes;
    workload::Ffmpeg ffmpeg(config);
    samples.add(
        ffmpeg.run(*platform, Rng(seed ^ 0x9e3779b97f4a7c15ull))
            .metric_seconds);
  }
  return stats::confidence_95(samples);
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 8",
                     "Multitasking: 1 large vs 30 small transcodes (4xLarge CN)");

  const int reps = bench::repetitions_or(20);
  stats::Figure figure(
      "Figure 8 — FFmpeg multitasking on a 4xLarge container",
      {"1 Large Task", "30 Small Tasks"});
  figure.add_series("Vanilla CN");
  figure.add_series("Pinned CN");
  auto& vanilla = *figure.mutable_series("Vanilla CN");
  auto& pinned = *figure.mutable_series("Pinned CN");
  vanilla.set(0, measure(virt::CpuMode::Vanilla, 1, reps));
  vanilla.set(1, measure(virt::CpuMode::Vanilla, 30, reps));
  pinned.set(0, measure(virt::CpuMode::Pinned, 1, reps));
  pinned.set(1, measure(virt::CpuMode::Pinned, 30, reps));

  core::ReportOptions options;
  options.ratios = false;  // no BM series in this figure (as in the paper)
  core::print_figure_report(std::cout, figure, options);

  const double gap_one = vanilla.at(0)->mean / pinned.at(0)->mean;
  const double gap_thirty = vanilla.at(1)->mean / pinned.at(1)->mean;
  std::cout << "vanilla/pinned overhead gap: 1 task " << gap_one
            << "x, 30 tasks " << gap_thirty << "x\n"
            << "Finding: a higher degree of multitasking increases the "
               "vanilla container's scheduler/cgroups overhead — the gap "
               "pinning closes grows with the process count (paper "
               "§IV-D). (Unlike the paper's testbed, the simulated "
               "30-file split also gains parallelism, so absolute "
               "makespans shrink; the PSO comparison is the meaningful "
               "signal here — see EXPERIMENTS.md.)\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
