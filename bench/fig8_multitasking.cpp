// Figure 8: the impact of multitasking on container overhead.
//
// The same total transcode work on a 4xLarge container: one 30-second
// video versus 30 one-second videos processed in parallel. Paper shape:
// the 30-process variant imposes a higher overhead on the vanilla
// container (more processes = more OS-scheduler and cgroups work), and
// pinning closes most of the gap.
#include "bench_common.hpp"
#include "workload/ffmpeg.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 8",
                     "Multitasking: 1 large vs 30 small transcodes (4xLarge CN)");

  const core::ExperimentRunner runner = bench::make_runner(20, options);
  const auto& instance = virt::instance_by_name("4xLarge");
  auto cell = [&](virt::CpuMode mode, int processes) {
    return core::SweepCell{
        virt::PlatformSpec{virt::PlatformKind::Container, mode, instance},
        [processes] {
          workload::FfmpegConfig config;
          config.processes = processes;
          return std::make_unique<workload::Ffmpeg>(config);
        },
        std::nullopt};
  };
  const std::vector<core::SweepCell> cells = {
      cell(virt::CpuMode::Vanilla, 1),
      cell(virt::CpuMode::Vanilla, 30),
      cell(virt::CpuMode::Pinned, 1),
      cell(virt::CpuMode::Pinned, 30),
  };
  const std::vector<core::Measurement> results =
      runner.measure_all(cells, options.jobs);

  stats::Figure figure(
      "Figure 8 — FFmpeg multitasking on a 4xLarge container",
      {"1 Large Task", "30 Small Tasks"});
  figure.add_series("Vanilla CN");
  figure.add_series("Pinned CN");
  auto& vanilla = *figure.mutable_series("Vanilla CN");
  auto& pinned = *figure.mutable_series("Pinned CN");
  vanilla.set(0, results[0].interval());
  vanilla.set(1, results[1].interval());
  pinned.set(0, results[2].interval());
  pinned.set(1, results[3].interval());

  core::ReportOptions report_options;
  report_options.ratios = false;  // no BM series in this figure (as in paper)
  core::print_figure_report(std::cout, figure, report_options);

  const double gap_one = vanilla.at(0)->mean / pinned.at(0)->mean;
  const double gap_thirty = vanilla.at(1)->mean / pinned.at(1)->mean;
  std::cout << "vanilla/pinned overhead gap: 1 task " << gap_one
            << "x, 30 tasks " << gap_thirty << "x\n"
            << "Finding: a higher degree of multitasking increases the "
               "vanilla container's scheduler/cgroups overhead — the gap "
               "pinning closes grows with the process count (paper "
               "§IV-D). (Unlike the paper's testbed, the simulated "
               "30-file split also gains parallelism, so absolute "
               "makespans shrink; the PSO comparison is the meaningful "
               "signal here — see EXPERIMENTS.md.)\n";
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 8",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
