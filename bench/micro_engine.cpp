// Engine and substrate micro-benchmarks (google-benchmark).
//
// Measures the raw throughput of the building blocks: event scheduling,
// RNG draws, scheduler dispatch cycles, cgroup charging, and a full
// platform construction — so regressions in simulation speed are caught
// before they make the figure benches crawl.
#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "virt/factory.hpp"

namespace {

using namespace pinsim;

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule(i, [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineScheduleDetached(benchmark::State& state) {
  // The fire-and-forget path: no cancellation slot at all. Most of the
  // simulator's events (wakeups, IO completions, housekeeping ticks)
  // go through here.
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_detached(i, [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDetached);

void BM_EngineScheduleCancelHalf(benchmark::State& state) {
  // Handle-carrying events with a realistic cancellation mix — the
  // kernel retracts roughly half its quantum-expiry events.
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(engine.schedule(i, [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) {
      handles[i].cancel();
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleCancelHalf);

void BM_EngineReschedule(benchmark::State& state) {
  // In-place deadline moves on one pending event, alternating later
  // (lazy deferral: two stores) and back (re-key + sift). This is the
  // per-reprogram cost of the kernel's persistent boundary timers.
  sim::Engine engine;
  sim::EventHandle handle = engine.schedule_tracked(1000, [] {});
  SimTime when = 1000;
  for (auto _ : state) {
    when = when == 1000 ? 2000 : 1000;
    benchmark::DoNotOptimize(engine.reschedule(handle, when));
  }
  handle.cancel();
  engine.run();
}
BENCHMARK(BM_EngineReschedule);

// The boundary-timer churn pair: 112 cores each re-arm their quantum
// timer every simulated 50us to a deadline ~100us out, so re-arms
// almost always land before the previous deadline fires — the paper's
// quota-governed sweep in miniature. CancelPush is the historical
// tombstone pattern; Reschedule is the in-place path that replaced it.
constexpr int kChurnCores = 112;
constexpr int kChurnRounds = 200;

SimTime churn_deadline(SimTime now, int round, int core) {
  return now + 100 + ((round + core) % 7) * 10;
}

void BM_BoundaryChurnCancelPush(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventHandle> boundary(kChurnCores);
    SimTime t = 0;
    for (int round = 0; round < kChurnRounds; ++round) {
      t += 50;
      for (int core = 0; core < kChurnCores; ++core) {
        boundary[core].cancel();
        boundary[core] =
            engine.schedule_at(churn_deadline(t, round, core), [] {});
      }
      engine.run(t);
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * kChurnRounds * kChurnCores);
}
BENCHMARK(BM_BoundaryChurnCancelPush);

void BM_BoundaryChurnReschedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventHandle> boundary(kChurnCores);
    SimTime t = 0;
    for (int round = 0; round < kChurnRounds; ++round) {
      t += 50;
      for (int core = 0; core < kChurnCores; ++core) {
        const SimTime when = churn_deadline(t, round, core);
        if (!engine.reschedule(boundary[core], when)) {
          boundary[core] = engine.schedule_tracked_at(when, [] {});
        }
      }
      engine.run(t);
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * kChurnRounds * kChurnCores);
}
BENCHMARK(BM_BoundaryChurnReschedule);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Round-trip cost of fanning trivial cells through the experiment
  // pool: submit N tasks, gather N futures in order.
  const int jobs = static_cast<int>(state.range(0));
  util::ThreadPool pool(jobs);
  for (auto _ : state) {
    std::vector<std::future<int>> futures;
    futures.reserve(256);
    for (int i = 0; i < 256; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    int sum = 0;
    for (auto& future : futures) sum += future.get();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

void BM_RngDraws(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngDraws);

void BM_RngLognormal(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal_from_moments(8.0, 3.0));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_SchedulerComputeSliceCycle(benchmark::State& state) {
  // Cost of simulating one second of a fully loaded host of N cpus.
  const int cpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const hw::Topology topo(1, cpus, 1, 16.0);
    hw::CostModel costs;
    os::Kernel kernel(engine, topo, costs, Rng(1));
    for (int i = 0; i < 2 * cpus; ++i) {
      auto done = std::make_shared<bool>(false);
      os::Task& task = kernel.create_task(
          "t" + std::to_string(i),
          std::make_unique<os::LambdaDriver>([done](os::Task&) {
            if (*done) return os::Action::exit();
            *done = true;
            return os::Action::compute(msec(500));
          }));
      kernel.start_task(task);
    }
    state.ResumeTiming();
    kernel.run_until_quiescent();
  }
}
BENCHMARK(BM_SchedulerComputeSliceCycle)->Arg(4)->Arg(16)->Arg(64);

void BM_CgroupCharge(benchmark::State& state) {
  hw::CostModel costs;
  os::Cgroup group({"bench", 4.0, {}}, costs);
  int cpu = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.charge(cpu, usec(100)));
    cpu = (cpu + 1) % 16;
    if (group.throttled()) group.refill_period();
  }
}
BENCHMARK(BM_CgroupCharge);

void BM_PlatformConstruction(benchmark::State& state) {
  const auto& instance = virt::instance_by_name("4xLarge");
  for (auto _ : state) {
    const virt::PlatformSpec spec{virt::PlatformKind::VmContainer,
                                  virt::CpuMode::Pinned, instance};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 1);
    auto platform = virt::make_platform(host, spec);
    benchmark::DoNotOptimize(platform->visible_cpus());
  }
}
BENCHMARK(BM_PlatformConstruction);

}  // namespace

BENCHMARK_MAIN();
