// Scheduler hot-loop micro-benchmarks (google-benchmark): quiet-core
// fast-forward and quantum-boundary batching.
//
// Each family runs the same end-to-end workload with the optimization
// toggled via SchedParams::quiet_fast_forward (Arg 0 = off, Arg 1 = on),
// so the before/after delta comes out of one binary; the aligned-sweep
// family characterizes the same-instant boundary drain, which has no
// toggle. Recorded numbers live in BENCH_hotloop.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "virt/factory.hpp"
#include "virt/vm.hpp"

namespace {

using namespace pinsim;

/// Long compute bursts separated by short naps: one task per core makes
/// every burst a quiet window (5+ skipped boundaries at the 12ms solo
/// slice), and every nap end re-enters through the wakeup path.
std::unique_ptr<os::TaskDriver> solo_burst_loop(SimDuration work,
                                                int cycles) {
  auto n = std::make_shared<int>(cycles);
  auto sleeping = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([n, sleeping, work](os::Task&) {
    if (*n <= 0) return os::Action::exit();
    if (!*sleeping) {
      *sleeping = true;
      return os::Action::compute(work);
    }
    *sleeping = false;
    --*n;
    return os::Action::sleep_for(usec(200));
  });
}

void BM_QuietSoloCores(benchmark::State& state) {
  // The fast-forward sweet spot: a mostly-solo host (one long-running
  // task per core, the paper's pinned bare-metal shape). Off: every core
  // fires a boundary every 12ms for a pure slice restart. On: one parked
  // timer per burst.
  const bool quiet = state.range(0) != 0;
  os::SchedParams params;
  params.quiet_fast_forward = quiet;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const hw::Topology topo = hw::Topology::dell_r830();
    const hw::CostModel costs;
    os::Kernel kernel(engine, topo, costs, Rng(3), params);
    for (int i = 0; i < topo.num_cpus(); ++i) {
      kernel.start_task(kernel.create_task("solo" + std::to_string(i),
                                           solo_burst_loop(msec(120), 3)));
    }
    state.ResumeTiming();
    kernel.run_until_quiescent();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuietSoloCores)->Arg(0)->Arg(1);

void BM_QuietRevocationChurn(benchmark::State& state) {
  // Worst case for the optimization: windows open but sibling sleepers
  // keep waking onto the quiet cores, so nearly every window is revoked
  // early and its skipped boundaries replayed. Measures revocation
  // overhead, not the skip win — off vs on should be near parity.
  const bool quiet = state.range(0) != 0;
  os::SchedParams params;
  params.quiet_fast_forward = quiet;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const hw::Topology topo(2, 8, 1, 16.0);
    const hw::CostModel costs;
    os::Kernel kernel(engine, topo, costs, Rng(9), params);
    // 16 long computes own the cores; 16 nappers wake every ~3ms and
    // land on them, revoking whatever window just opened.
    for (int i = 0; i < topo.num_cpus(); ++i) {
      kernel.start_task(kernel.create_task("own" + std::to_string(i),
                                           solo_burst_loop(msec(60), 2)));
    }
    for (int i = 0; i < topo.num_cpus(); ++i) {
      auto n = std::make_shared<int>(40);
      auto sleeping = std::make_shared<bool>(true);
      kernel.start_task(kernel.create_task(
          "nap" + std::to_string(i),
          std::make_unique<os::LambdaDriver>([n, sleeping](os::Task&) {
            if (*n <= 0) return os::Action::exit();
            if (*sleeping) {
              *sleeping = false;
              return os::Action::compute(usec(100));
            }
            *sleeping = true;
            --*n;
            return os::Action::sleep_for(msec(3));
          })));
    }
    state.ResumeTiming();
    kernel.run_until_quiescent();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuietRevocationChurn)->Arg(0)->Arg(1);

void BM_BoundarySweepAligned(benchmark::State& state) {
  // Same-instant boundary coalescing: every core carries `depth` equal
  // tasks started together, so quantum boundaries land on the same
  // nanosecond across all cores and drain through one batched sweep
  // instead of one heap pop per core. No toggle — the SoA sweep is
  // structural — so this is a characterization number.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const hw::Topology topo = hw::Topology::dell_r830();
    const hw::CostModel costs;
    os::Kernel kernel(engine, topo, costs, Rng(5));
    for (int cpu = 0; cpu < topo.num_cpus(); ++cpu) {
      for (int k = 0; k < depth; ++k) {
        os::TaskConfig config;
        config.affinity = hw::CpuSet::of({cpu});
        auto once = std::make_shared<bool>(false);
        kernel.start_task(kernel.create_task(
            "p" + std::to_string(cpu) + "_" + std::to_string(k),
            std::make_unique<os::LambdaDriver>([once](os::Task&) {
              if (*once) return os::Action::exit();
              *once = true;
              return os::Action::compute(msec(50));
            }),
            config));
      }
    }
    state.ResumeTiming();
    kernel.run_until_quiescent();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundarySweepAligned)->Arg(2)->Arg(4);

void BM_GuestHousekeepingQuiet(benchmark::State& state) {
  // One level down: a pinned VM whose guest runqueues are empty (one
  // task per vCPU) fast-forwards its housekeeping timer instead of
  // ticking every aggregation interval.
  const bool quiet = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    virt::PlatformSpec spec{virt::PlatformKind::Vm, virt::CpuMode::Pinned,
                            virt::instance_by_name("2xLarge")};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 7);
    virt::VmConfig vm_config;
    vm_config.guest_params.quiet_fast_forward = quiet;
    virt::VmPlatform platform(host, spec, vm_config);
    int done = 0;
    const int tasks = platform.guest().vcpus();
    for (int i = 0; i < tasks; ++i) {
      virt::WorkTaskConfig config;
      config.name = "g" + std::to_string(i);
      config.on_exit = [&done](os::Task&) { ++done; };
      platform.start(
          platform.spawn(std::move(config), solo_burst_loop(msec(80), 2)));
    }
    state.ResumeTiming();
    host.engine().run_until([&] { return done == tasks; }, sec(60));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestHousekeepingQuiet)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
