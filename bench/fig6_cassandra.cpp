// Figure 6: Cassandra mean operation response time (1,000 ops, 100
// stress threads, 25% writes), xLarge through 16xLarge, 20 repetitions.
// The Large instance thrashes and is excluded, exactly as in the paper.
//
// Paper shape to reproduce:
//  - vanilla CN imposes the largest overhead (3.5x+ BM at the small
//    end), diminishing with more cores;
//  - pinned CN imposes the lowest overhead and can even beat BM at
//    xLarge..4xLarge (the BM scheduler is IO-affinity-oblivious);
//  - the pinning benefit vanishes at 8xLarge/16xLarge;
//  - VM-based platforms show increased overhead at 8xLarge and beyond.
#include "bench_common.hpp"
#include "workload/cassandra.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 6",
                     "Cassandra mean response time (1,000 ops, 100 threads)");

  const core::ExperimentRunner runner = bench::make_runner(20, options);
  core::FigureSpec spec;
  spec.title = "Figure 6 — Cassandra (cassandra-stress, 25% writes)";
  spec.instances = core::fig456_instances();
  spec.on_point = bench::progress_point;
  spec.jobs = options.jobs;

  const stats::Figure figure = core::build_figure(
      runner, spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::Cassandra>(); };
      });

  std::cout << '\n';
  core::print_figure_report(std::cout, figure, [] {
    core::ReportOptions report_options;
    report_options.precision = 3;
    return report_options;
  }());
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 6",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
