// Ablation A1: sweep the cgroup usage-aggregation cost.
//
// DESIGN.md calls out the aggregation suspension as the model's PSO
// mechanism (paper §IV-B). This ablation sweeps the per-core walk cost
// from zero upward and shows that the vanilla-container penalty (and
// the pinning benefit) scales with it — i.e. the conclusion "pinning
// mitigates PSO" is driven by this mechanism, not by an accident of
// other constants.
#include "bench_common.hpp"
#include "workload/wordpress.hpp"

namespace {

using namespace pinsim;

double mean_metric(virt::CpuMode mode, const hw::CostModel& costs,
                   int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    const virt::PlatformSpec spec{virt::PlatformKind::Container, mode,
                                  virt::instance_by_name("2xLarge")};
    virt::Host host(hw::Topology::dell_r830(), costs, seed);
    auto platform = virt::make_platform(host, spec);
    workload::WordPress wp;
    samples.add(wp.run(*platform, Rng(seed ^ 0x9e37ull)).metric_seconds);
  }
  return samples.mean();
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Ablation A1",
                     "cgroup aggregation cost vs container overhead");

  const int reps = bench::repetitions_or(3);
  stats::TextTable table({"aggregate cost/core (us)", "vanilla CN (s)",
                          "pinned CN (s)", "vanilla/pinned"});
  for (const int per_core_us : {0, 2, 4, 8, 16}) {
    std::cout << "  sweeping per-core cost " << per_core_us << " us...\n"
              << std::flush;
    hw::CostModel costs;
    costs.cgroup_aggregate_per_core = usec(per_core_us);
    if (per_core_us == 0) costs.cgroup_aggregate_base = 0;
    const double vanilla =
        mean_metric(virt::CpuMode::Vanilla, costs, reps);
    const double pinned = mean_metric(virt::CpuMode::Pinned, costs, reps);
    auto num = [](double x) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << x;
      return os.str();
    };
    table.add_row({std::to_string(per_core_us), num(vanilla), num(pinned),
                   num(vanilla / pinned) + "x"});
  }
  std::cout << table.render()
            << "\nReading: with the aggregation cost at zero the vanilla "
               "container loses most of its penalty; the pinning benefit "
               "for IO workloads scales with this mechanism.\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
