// Cluster scenario: 10M daily users across a 50-host fleet — pinning
// and CHR-aware autoscaling at the tail.
//
// The paper benchmarks one platform on one host with closed request
// bursts; this scenario composes those calibrated service recipes into
// the system the paper's §VI best practices are written for: a fleet of
// hosts behind a front end, open-loop traffic with a diurnal (WordPress)
// or bursty (Cassandra) rate profile, and tail-latency SLOs. Three
// operating points per fleet:
//
//   vanilla     the default deployment (vanilla containers,
//               round-robin routing), every host always on;
//   pinned      the paper's headline fix (pinned containers,
//               least-outstanding routing), every host always on;
//   chr-scaled  the §VI controller: instances sized+pinned by the CHR
//               advisor, CHR-aware routing, watermark autoscaling that
//               pays a provisioning delay per scale-out.
//
// The WordPress day is compressed to 60 simulated seconds at the mean
// rate of 10M requests/day (116/s); Cassandra sees flash-crowd bursts.
// Output is derived exclusively from per-request latency records, so
// stdout is byte-identical for any --jobs and --shards value (wall
// time and parallelism notes go to stderr).
#include <future>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"
#include "stats/accumulator.hpp"
#include "stats/confidence.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pinsim;

struct Cell {
  std::string name;
  cluster::FleetConfig config;
};

cluster::FleetConfig wordpress_base(const bench::BenchOptions& options) {
  cluster::FleetConfig config;
  config.hosts = 50;
  config.shards = options.shards;
  config.threads = options.shards;
  config.app = workload::AppClass::IoWeb;
  config.arrivals.kind = cluster::ArrivalKind::Diurnal;
  // 10M daily users at ~20 page views each; the peak hour runs the
  // pinned fleet at ~65% utilization, where queueing shows in the tail.
  config.arrivals.rate_per_second = 2320.0;
  config.arrivals.diurnal_amplitude = 0.8;
  config.arrivals.diurnal_period_seconds = 30.0;  // one compressed day
  config.traffic_seconds = 30.0;
  config.drain_seconds = 120.0;
  // Just above the pinned fleet's p99.9, so misses stay in the
  // 0.01%–1% band where the cells differ.
  config.slo.target_seconds = 0.35;
  return config;
}

cluster::FleetConfig cassandra_base(const bench::BenchOptions& options) {
  cluster::FleetConfig config;
  config.hosts = 10;
  config.shards = options.shards;
  config.threads = options.shards;
  config.app = workload::AppClass::IoNoSql;
  config.cassandra.server_threads = 8;
  config.arrivals.kind = cluster::ArrivalKind::Burst;
  config.arrivals.rate_per_second = 200.0;
  config.arrivals.burst_multiplier = 4.0;
  // Bursts outlast the provisioning delay, so reactive scaling can win.
  config.arrivals.burst_seconds = 5.0;
  config.arrivals.quiet_seconds = 10.0;
  config.traffic_seconds = 30.0;
  config.drain_seconds = 120.0;
  config.slo.target_seconds = 0.25;  // ops are far faster than web pages
  return config;
}

void make_cells(const cluster::FleetConfig& base, int min_instances,
                int step, std::vector<Cell>& cells) {
  Cell vanilla{"vanilla", base};
  vanilla.config.spec.mode = virt::CpuMode::Vanilla;
  vanilla.config.balancer = cluster::BalancerPolicy::RoundRobin;
  cells.push_back(std::move(vanilla));

  Cell pinned{"pinned", base};
  pinned.config.spec.mode = virt::CpuMode::Pinned;
  pinned.config.balancer = cluster::BalancerPolicy::LeastOutstanding;
  cells.push_back(std::move(pinned));

  Cell scaled{"chr-scaled", base};
  scaled.config.pinning = cluster::PinningPolicy::ChrAdvisor;
  scaled.config.balancer = cluster::BalancerPolicy::ChrAware;
  scaled.config.autoscale = true;
  scaled.config.autoscaler.min_instances = min_instances;
  // Outstanding includes requests parked in backend waits, so the
  // watermarks are per-instance concurrency targets, not queue depths.
  scaled.config.autoscaler.high_watermark = 8.0;
  scaled.config.autoscaler.low_watermark = 4.0;
  scaled.config.autoscaler.step = step;
  scaled.config.autoscaler.cooldown = sec(1);
  scaled.config.autoscaler.provisioning_delay = sec(1);
  cells.push_back(std::move(scaled));
}

std::string join(const std::vector<std::int64_t>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ',';
    os << values[i];
  }
  return os.str();
}

/// Measure every (cell, rep) of one fleet figure, fanning across the
/// pool; results are gathered in index order, so the figure and the
/// per-cell counter lines never depend on completion order.
stats::Figure measure(const std::string& title, const std::vector<Cell>& cells,
                      int reps, util::ThreadPool& pool) {
  std::vector<std::vector<std::future<cluster::ClusterResult>>> futures;
  futures.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (int rep = 0; rep < reps; ++rep) {
      cluster::FleetConfig config = cells[c].config;
      config.base_seed = 42 + 1000003ull * static_cast<std::uint64_t>(rep);
      futures[c].push_back(
          pool.submit([config] { return cluster::run_cluster(config); }));
    }
  }

  stats::Figure figure(title, {"p50 (s)", "p99 (s)", "p99.9 (s)",
                               "SLO miss frac"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    stats::Accumulator p50;
    stats::Accumulator p99;
    stats::Accumulator p999;
    stats::Accumulator miss;
    std::vector<std::int64_t> dispatched;
    std::vector<std::int64_t> scale_ups;
    std::vector<std::int64_t> peak_active;
    for (int rep = 0; rep < reps; ++rep) {
      const cluster::ClusterResult result =
          futures[c][static_cast<std::size_t>(rep)].get();
      p50.add(result.slo.p50_seconds);
      p99.add(result.slo.p99_seconds);
      p999.add(result.slo.p999_seconds);
      miss.add(result.slo.violation_fraction);
      dispatched.push_back(result.dispatched);
      scale_ups.push_back(result.scale_ups);
      peak_active.push_back(result.peak_active);
    }
    stats::Series& series = figure.add_series(cells[c].name);
    series.set(0, stats::confidence_95(p50));
    series.set(1, stats::confidence_95(p99));
    series.set(2, stats::confidence_95(p999));
    series.set(3, stats::confidence_95(miss));
    std::cout << "  [" << cells[c].name << "] requests=" << join(dispatched)
              << " scale_ups=" << join(scale_ups)
              << " peak_active=" << join(peak_active) << "\n";
  }
  return figure;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Cluster",
                     "50-host serving fleet: open-loop traffic, tail-latency "
                     "SLOs, CHR-aware autoscaling");

  const int reps = options.reps_override > 0 ? options.reps_override
                                             : bench::repetitions_or(3);
  if (options.jobs > 1) {
    std::cerr << "[note] sweeping with " << options.jobs
              << " worker threads (results identical to --jobs 1)\n";
  }
  util::ThreadPool pool(options.jobs);

  std::vector<Cell> wordpress_cells;
  make_cells(wordpress_base(options), 10, 4, wordpress_cells);
  std::cout << "\nWordPress fleet (50 hosts, compressed diurnal day, "
            << reps << " reps):\n";
  const stats::Figure wordpress =
      measure("Cluster — WordPress fleet (50 hosts, 100M req/day, SLO 0.35 s)",
              wordpress_cells, reps, pool);

  std::vector<Cell> cassandra_cells;
  make_cells(cassandra_base(options), 4, 3, cassandra_cells);
  std::cout << "\nCassandra fleet (10 hosts, flash-crowd bursts, " << reps
            << " reps):\n";
  const stats::Figure cassandra =
      measure("Cluster — Cassandra fleet (10 hosts, bursts, SLO 0.25 s)",
              cassandra_cells, reps, pool);

  core::ReportOptions report_options;
  report_options.precision = 4;  // tail fractions need the digits
  report_options.ratios = false;  // no bare-metal baseline in this sweep
  std::cout << '\n';
  core::print_figure_report(std::cout, wordpress, report_options);
  std::cout << '\n';
  core::print_figure_report(std::cout, cassandra, report_options);

  const double wall = stopwatch.seconds();
  std::cerr << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Cluster", reps, wall,
                          {&wordpress, &cassandra});
  bench::maybe_print_engine_stats(options);
  return 0;
}
