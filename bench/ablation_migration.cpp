// Ablation A2: sweep the cross-socket cache-refill penalty (and with it
// the NUMA remote tax held constant) to show how much of the vanilla
// container's FFmpeg overhead is cache/NUMA locality — the paper's
// §IV-C argument that pinning works by preserving cache and IO
// channels.
#include "bench_common.hpp"
#include "workload/ffmpeg.hpp"

namespace {

using namespace pinsim;

double mean_metric(virt::CpuMode mode, const hw::CostModel& costs,
                   int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    const virt::PlatformSpec spec{virt::PlatformKind::Container, mode,
                                  virt::instance_by_name("Large")};
    virt::Host host(hw::Topology::dell_r830(), costs, seed);
    auto platform = virt::make_platform(host, spec);
    workload::Ffmpeg ffmpeg;
    samples.add(
        ffmpeg.run(*platform, Rng(seed ^ 0x9e37ull)).metric_seconds);
  }
  return samples.mean();
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(
      std::cout, "Ablation A2",
      "cache-refill / NUMA locality vs container overhead (FFmpeg, Large)");

  const int reps = bench::repetitions_or(3);
  stats::TextTable table({"cross-socket refill (us/MB)", "numa tax",
                          "vanilla CN (s)", "pinned CN (s)",
                          "vanilla/pinned"});
  struct Point {
    int refill_us;
    double numa_tax;
  };
  for (const Point point :
       {Point{0, 0.0}, Point{50, 0.2}, Point{100, 0.4}, Point{200, 0.8}}) {
    hw::CostModel costs;
    costs.refill_per_mb_cross = usec(point.refill_us);
    costs.numa_remote_tax = point.numa_tax;
    const double vanilla =
        mean_metric(virt::CpuMode::Vanilla, costs, reps);
    const double pinned = mean_metric(virt::CpuMode::Pinned, costs, reps);
    auto num = [](double x) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << x;
      return os.str();
    };
    table.add_row({std::to_string(point.refill_us), num(point.numa_tax),
                   num(vanilla), num(pinned), num(vanilla / pinned) + "x"});
  }
  std::cout << table.render()
            << "\nReading: the vanilla/pinned gap for CPU-bound work grows "
               "with locality costs; with them at zero, pinning stops "
               "mattering for compute.\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
