// Table II: the instance-type catalog, with the CHR each size yields on
// the paper's 112-core host and a live verification that every platform
// honours the instance's core count.
#include "bench_common.hpp"
#include "core/chr_advisor.hpp"
#include "virt/container.hpp"
#include "virt/vm.hpp"

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Table II",
                     "Instance types used for evaluation");

  const hw::Topology host_topology = hw::Topology::dell_r830();
  stats::TextTable table({"Instance Type", "No. of Cores", "Memory (GB)",
                          "CHR on 112-core host", "verified"});
  for (const auto& instance : virt::instance_catalog()) {
    // Verify: a VM exposes exactly `cores` vCPUs and a pinned container
    // exactly `cores` cpuset cpus.
    virt::Host host(host_topology, hw::CostModel{}, 1);
    virt::VmPlatform vm(host,
                        {virt::PlatformKind::Vm, virt::CpuMode::Vanilla,
                         instance});
    virt::Host host2(host_topology, hw::CostModel{}, 1);
    virt::ContainerPlatform cn(
        host2,
        {virt::PlatformKind::Container, virt::CpuMode::Pinned, instance});
    const bool ok = vm.guest().vcpus() == instance.cores &&
                    cn.cgroup().cpuset().count() == instance.cores;
    std::ostringstream chr;
    chr << std::fixed << std::setprecision(3)
        << core::chr_of(instance, host_topology);
    table.add_row({instance.name, std::to_string(instance.cores),
                   std::to_string(instance.memory_gb), chr.str(),
                   ok ? "yes" : "NO"});
  }
  std::cout << table.render();
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
