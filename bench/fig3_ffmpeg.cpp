// Figure 3: FFmpeg execution time on all execution platforms, Large
// through 4xLarge (FFmpeg utilizes at most 16 cores), 20 repetitions.
//
// Paper shape to reproduce:
//  - VM (vanilla and pinned) >= 2x BM at every size; pinning a VM does
//    not help.
//  - VMCN is the worst platform at Large and converges toward VM by
//    4xLarge.
//  - pinned CN tracks BM closely; vanilla CN's overhead shrinks as the
//    instance grows (PSO).
#include "bench_common.hpp"
#include "workload/ffmpeg.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 3",
                     "FFmpeg transcode execution time by platform");

  const core::ExperimentRunner runner = bench::make_runner(20, options);
  core::FigureSpec spec;
  spec.title = "Figure 3 — FFmpeg (AVC->HEVC, 30 MB HD source)";
  spec.instances = core::fig3_instances();
  spec.on_point = bench::progress_point;
  spec.jobs = options.jobs;

  const stats::Figure figure = core::build_figure(
      runner, spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::Ffmpeg>(); };
      });

  std::cout << '\n';
  core::print_figure_report(std::cout, figure);
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 3",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
