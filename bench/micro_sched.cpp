// Scheduler hot-path micro-benchmarks (google-benchmark).
//
// Targets the three structures the figure sweeps hammer on every
// simulated scheduling event: wakeup placement (idle scan + random
// pick), the per-cpu runqueue (enqueue / pick / remove), and the cgroup
// usage accounting (charge, period refill, aggregation). Before/after
// numbers for the word-scan CpuSet + idle-mask + flat-heap overhaul are
// recorded in BENCH_sched.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "os/cgroup.hpp"
#include "os/kernel.hpp"
#include "os/runqueue.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace pinsim::os {

// Bench-only access to the kernel's private wakeup placement so the
// micro measures exactly the placement decision, not a whole wake/block
// round trip. Also used by the scheduler tests to validate the idle
// masks against a recompute.
struct SchedBenchAccess {
  static hw::CpuId place(Kernel& kernel, Task& task, hw::CpuId hint) {
    return kernel.place_task(task, hint);
  }
};

}  // namespace pinsim::os

namespace {

using namespace pinsim;

std::unique_ptr<os::Task> bench_task(os::Task::Id id, SimDuration vruntime) {
  auto task = std::make_unique<os::Task>(
      id, "t" + std::to_string(id),
      std::make_unique<os::LambdaDriver>(
          [](os::Task&) { return os::Action::exit(); }));
  task->vruntime = vruntime;
  return task;
}

void BM_WakeupPlacementIdleHost(benchmark::State& state) {
  // The vanilla-container wakeup on the paper's 112-cpu testbed: no
  // usable previous cpu, an IRQ locality hint, and an (almost) entirely
  // idle host — the placement must scan the allowed set for idle cpus
  // near the hint's socket and pick one at random.
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  const hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(7));
  os::Task& wakee = kernel.create_task(
      "wakee", std::make_unique<os::LambdaDriver>(
                   [](os::Task&) { return os::Action::exit(); }));
  const hw::CpuId hint = topo.socket_cpus(1).first();
  for (auto _ : state) {
    benchmark::DoNotOptimize(os::SchedBenchAccess::place(kernel, wakee, hint));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WakeupPlacementIdleHost);

void BM_WakeupPlacementPinned(benchmark::State& state) {
  // Pinned-container wakeup: a small cpuset, no hint — the idle scan
  // covers only the 4 allowed cpus.
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  const hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(7));
  os::TaskConfig config;
  config.affinity = topo.compact_set(4);
  os::Task& wakee = kernel.create_task(
      "wakee",
      std::make_unique<os::LambdaDriver>(
          [](os::Task&) { return os::Action::exit(); }),
      config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(os::SchedBenchAccess::place(kernel, wakee, -1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WakeupPlacementPinned);

void BM_RunqueueEnqueuePop(benchmark::State& state) {
  // Fill-then-drain cycle at the given queue depth; dominated by the
  // queue's node management (std::set allocation vs. flat heap).
  const int depth = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<std::unique_ptr<os::Task>> tasks;
  tasks.reserve(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    tasks.push_back(bench_task(i, static_cast<SimDuration>(
                                      rng.uniform_int(0, msec(20)))));
  }
  os::Runqueue rq;
  for (auto _ : state) {
    for (auto& task : tasks) rq.enqueue(*task);
    while (!rq.empty()) benchmark::DoNotOptimize(&rq.pop_min());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_RunqueueEnqueuePop)->Arg(4)->Arg(16)->Arg(64);

void BM_RunqueueChurn(benchmark::State& state) {
  // Steady-state mix: remove a random queued task and re-enqueue it with
  // a new vruntime — the steal / balance / requeue pattern.
  const int depth = 32;
  Rng rng(13);
  std::vector<std::unique_ptr<os::Task>> tasks;
  os::Runqueue rq;
  for (int i = 0; i < depth; ++i) {
    tasks.push_back(bench_task(i, static_cast<SimDuration>(
                                      rng.uniform_int(0, msec(20)))));
    rq.enqueue(*tasks.back());
  }
  for (auto _ : state) {
    os::Task& task =
        *tasks[static_cast<std::size_t>(rng.uniform_int(0, depth - 1))];
    rq.remove(task);
    task.vruntime = static_cast<SimDuration>(rng.uniform_int(0, msec(20)));
    rq.enqueue(task);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunqueueChurn);

void BM_CgroupChargeSpread(benchmark::State& state) {
  // A quota group smeared across many cpus: every charge touches a
  // different per-cpu slice record (the PSO mechanism's data).
  const int spread = static_cast<int>(state.range(0));
  const hw::CostModel costs;
  os::Cgroup group({"bench", 64.0, {}}, costs);
  int cpu = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.charge(cpu, usec(50)));
    cpu = (cpu + 1) % spread;
    if (group.throttled()) group.refill_period();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CgroupChargeSpread)->Arg(2)->Arg(16)->Arg(112);

void BM_CgroupPeriodRefill(benchmark::State& state) {
  // Period boundary for a wide group: reset every touched per-cpu slice
  // plus the usage-aggregation walk over the spread.
  const int spread = static_cast<int>(state.range(0));
  const hw::CostModel costs;
  os::Cgroup group({"bench", 64.0, {}}, costs);
  for (auto _ : state) {
    for (int cpu = 0; cpu < spread; ++cpu) {
      benchmark::DoNotOptimize(group.charge(cpu, usec(50)));
    }
    benchmark::DoNotOptimize(group.aggregate());
    group.refill_period();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CgroupPeriodRefill)->Arg(16)->Arg(112);

void BM_WakeSleepCycle(benchmark::State& state) {
  // End-to-end public-API path: tasks ping-ponging between sleep and a
  // tiny compute burst on the 112-cpu host — every cycle runs the full
  // wake → place → enqueue → dispatch chain.
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    const hw::Topology topo = hw::Topology::dell_r830();
    const hw::CostModel costs;
    os::Kernel kernel(engine, topo, costs, Rng(3));
    for (int i = 0; i < tasks; ++i) {
      auto cycles = std::make_shared<int>(200);
      os::Task& task = kernel.create_task(
          "t" + std::to_string(i),
          std::make_unique<os::LambdaDriver>([cycles](os::Task&) {
            if (--*cycles < 0) return os::Action::exit();
            return *cycles % 2 == 0 ? os::Action::sleep_for(usec(50))
                                    : os::Action::compute(usec(5));
          }));
      kernel.start_task(task);
    }
    state.ResumeTiming();
    kernel.run_until_quiescent();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_WakeSleepCycle)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
