// Figure 4: MPI Search execution time on all execution platforms,
// xLarge through 16xLarge (one rank per instance core), 20 repetitions.
//
// Paper shape to reproduce:
//  - execution time declines with instance size on every platform;
//  - VM overhead is significant at small instances (computation-bound)
//    and fades toward bare-metal as communication dominates — the
//    hypervisor carries intra-VM messages without host involvement;
//  - containerized platforms (vanilla and pinned) are the worst at
//    scale: their messages cross the host kernel and the bridge path,
//    plus cgroup accounting on every scheduling event.
#include "bench_common.hpp"
#include "workload/mpi.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "Figure 4",
                     "MPI Search execution time by platform");

  const core::ExperimentRunner runner = bench::make_runner(20, options);
  core::FigureSpec spec;
  spec.title = "Figure 4 — MPI Search (ranks = instance cores)";
  spec.instances = core::fig456_instances();
  spec.on_point = bench::progress_point;
  spec.jobs = options.jobs;

  const stats::Figure figure = core::build_figure(
      runner, spec, [](const virt::InstanceType&) {
        return [] { return std::make_unique<workload::MpiSearch>(); };
      });

  std::cout << '\n';
  core::print_figure_report(std::cout, figure);
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "Figure 4",
                          runner.config().repetitions, wall, {&figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
