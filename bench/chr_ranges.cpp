// §IV-A / best practice 5: derive the recommended CHR ranges from fresh
// simulation data. For each application class, sweep the vanilla
// container across instance sizes on the 112-core host, compute the
// overhead ratio against bare-metal, and find where the PSO vanishes.
#include "bench_common.hpp"
#include "core/chr_advisor.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace pinsim;

double mean_metric(const virt::PlatformSpec& spec, workload::AppClass cls,
                   int repetitions) {
  stats::Accumulator samples;
  for (int rep = 0; rep < repetitions; ++rep) {
    const std::uint64_t seed = 42 + 1000003ull * static_cast<unsigned>(rep);
    virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                    hw::CostModel{}, seed);
    auto platform = virt::make_platform(host, spec);
    auto model = workload::make_workload(cls);
    samples.add(model->run(*platform, Rng(seed ^ 0x9e37ull)).metric_seconds);
  }
  return samples.mean();
}

}  // namespace

int main() {
  using namespace pinsim;
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "CHR ranges (best practice 5)",
                     "re-deriving the recommended CHR per application class");

  const int reps = bench::repetitions_or(5);
  const hw::Topology host_topology = hw::Topology::dell_r830();

  stats::TextTable table({"app class", "paper range", "derived range",
                          "points (CHR:ratio)"});
  for (const auto& app : workload::table1_applications()) {
    std::vector<core::ChrPoint> points;
    std::ostringstream point_text;
    for (const auto& instance : virt::instance_catalog()) {
      // FFmpeg tops out at 16 cores; skip sizes the paper does not run.
      if (app.cls == workload::AppClass::CpuBound && instance.cores > 16) {
        continue;
      }
      if (app.cls != workload::AppClass::CpuBound && instance.cores < 4) {
        continue;  // Large thrashes for the server workloads
      }
      const virt::PlatformSpec cn{virt::PlatformKind::Container,
                                  virt::CpuMode::Vanilla, instance};
      const virt::PlatformSpec bm{virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, instance};
      const double cn_mean = mean_metric(cn, app.cls, reps);
      const double bm_mean = mean_metric(bm, app.cls, reps);
      core::ChrPoint point;
      point.chr = core::chr_of(instance, host_topology);
      point.overhead_ratio = cn_mean / bm_mean;
      points.push_back(point);
      point_text << std::fixed << std::setprecision(2) << point.chr << ":"
                 << point.overhead_ratio << " ";
    }
    const auto derived = core::derive_chr_range(points, 1.2);
    const core::ChrRange paper = core::paper_chr_range(app.cls);
    std::ostringstream paper_os, derived_os;
    paper_os << paper.low << " < CHR < " << paper.high;
    if (derived.has_value()) {
      derived_os << std::fixed << std::setprecision(2) << derived->low
                 << " < CHR < " << derived->high;
    } else {
      derived_os << "(overhead never settles below 1.2x)";
    }
    table.add_row({app.name, paper_os.str(), derived_os.str(),
                   point_text.str()});
  }
  std::cout << table.render()
            << "\nFinding: IO-intensive applications need a higher CHR than "
               "CPU-intensive ones (paper §IV-A).\n";
  std::cout << "bench wall time: " << stopwatch.seconds() << " s\n";
  return 0;
}
