// §IV-A / best practice 5: derive the recommended CHR ranges from fresh
// simulation data. For each application class, sweep the vanilla
// container across instance sizes on the 112-core host, compute the
// overhead ratio against bare-metal, and find where the PSO vanishes.
#include <algorithm>

#include "bench_common.hpp"
#include "core/chr_advisor.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace pinsim;

bool instance_in_sweep(workload::AppClass cls,
                       const virt::InstanceType& instance) {
  // FFmpeg tops out at 16 cores; skip sizes the paper does not run.
  if (cls == workload::AppClass::CpuBound && instance.cores > 16) {
    return false;
  }
  // Large thrashes for the server workloads.
  if (cls != workload::AppClass::CpuBound && instance.cores < 4) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pinsim;
  const bench::BenchOptions options = bench::parse_cli(argc, argv);
  bench::Stopwatch stopwatch;
  core::print_header(std::cout, "CHR ranges (best practice 5)",
                     "re-deriving the recommended CHR per application class");

  const core::ExperimentRunner runner = bench::make_runner(5, options);
  const hw::Topology host_topology = hw::Topology::dell_r830();

  // One flat cell list across apps × instances × {CN, BM}, fanned out in
  // a single measure_all sweep.
  const auto apps = workload::table1_applications();
  std::vector<core::SweepCell> cells;
  struct CellKey {
    std::size_t app;
    const virt::InstanceType* instance;
  };
  std::vector<CellKey> keys;  // one per CN/BM cell pair
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const workload::AppClass cls = apps[a].cls;
    const core::WorkloadFactory factory = [cls] {
      return workload::make_workload(cls);
    };
    for (const auto& instance : virt::instance_catalog()) {
      if (!instance_in_sweep(cls, instance)) continue;
      cells.push_back(core::SweepCell{
          virt::PlatformSpec{virt::PlatformKind::Container,
                             virt::CpuMode::Vanilla, instance},
          factory, std::nullopt});
      cells.push_back(core::SweepCell{
          virt::PlatformSpec{virt::PlatformKind::BareMetal,
                             virt::CpuMode::Vanilla, instance},
          factory, std::nullopt});
      keys.push_back(CellKey{a, &instance});
    }
  }
  const std::vector<core::Measurement> results =
      runner.measure_all(cells, options.jobs);

  // The derived points double as a machine-readable figure: one series
  // per app class, x = instance, y = CN/BM overhead ratio.
  std::vector<std::string> x_labels;
  for (const auto& instance : virt::instance_catalog()) {
    x_labels.push_back(instance.name);
  }
  stats::Figure ratio_figure("CHR sweep — vanilla CN / BM overhead ratio",
                             x_labels);
  for (const auto& app : apps) ratio_figure.add_series(app.name);

  stats::TextTable table({"app class", "paper range", "derived range",
                          "points (CHR:ratio)"});
  std::vector<std::vector<core::ChrPoint>> app_points(apps.size());
  std::vector<std::ostringstream> app_text(apps.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const CellKey& key = keys[i];
    const double cn_mean = results[2 * i].samples.mean();
    const double bm_mean = results[2 * i + 1].samples.mean();
    core::ChrPoint point;
    point.chr = core::chr_of(*key.instance, host_topology);
    point.overhead_ratio = cn_mean / bm_mean;
    app_points[key.app].push_back(point);
    app_text[key.app] << std::fixed << std::setprecision(2) << point.chr
                      << ":" << point.overhead_ratio << " ";
    const auto x = static_cast<std::size_t>(
        std::find(x_labels.begin(), x_labels.end(), key.instance->name) -
        x_labels.begin());
    ratio_figure.mutable_series(apps[key.app].name)
        ->set(x, stats::Interval{point.overhead_ratio, 0.0});
  }

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const auto derived = core::derive_chr_range(app_points[a], 1.2);
    const core::ChrRange paper = core::paper_chr_range(apps[a].cls);
    std::ostringstream paper_os, derived_os;
    paper_os << paper.low << " < CHR < " << paper.high;
    if (derived.has_value()) {
      derived_os << std::fixed << std::setprecision(2) << derived->low
                 << " < CHR < " << derived->high;
    } else {
      derived_os << "(overhead never settles below 1.2x)";
    }
    table.add_row({apps[a].name, paper_os.str(), derived_os.str(),
                   app_text[a].str()});
  }
  std::cout << table.render()
            << "\nFinding: IO-intensive applications need a higher CHR than "
               "CPU-intensive ones (paper §IV-A).\n";
  const double wall = stopwatch.seconds();
  std::cout << "bench wall time: " << wall << " s\n";
  bench::maybe_write_json(options, "CHR ranges",
                          runner.config().repetitions, wall, {&ratio_figure});
  bench::maybe_print_engine_stats(options);
  return 0;
}
