// Web capacity planning scenario: find the smallest instance whose mean
// response time meets an SLA for a WordPress burst, per platform — the
// kind of sizing decision the paper's Figure 5 and CHR analysis inform.
#include <iomanip>
#include <iostream>
#include <sstream>
#include <optional>

#include "core/experiment.hpp"
#include "stats/text_table.hpp"
#include "workload/wordpress.hpp"

int main() {
  using namespace pinsim;

  constexpr double kSlaSeconds = 1.0;  // mean response-time target
  core::ExperimentConfig config;
  config.repetitions = 3;
  const core::ExperimentRunner runner(config);

  const core::WorkloadFactory burst = [] {
    return std::make_unique<workload::WordPress>();
  };

  std::cout << "WordPress burst (1,000 requests), SLA: mean response <= "
            << kSlaSeconds << " s\n\n";
  stats::TextTable table(
      {"platform", "smallest instance meeting SLA", "mean response (s)"});

  const virt::PlatformSpec probes[] = {
      {virt::PlatformKind::Container, virt::CpuMode::Pinned, {}},
      {virt::PlatformKind::Container, virt::CpuMode::Vanilla, {}},
      {virt::PlatformKind::VmContainer, virt::CpuMode::Vanilla, {}},
      {virt::PlatformKind::Vm, virt::CpuMode::Vanilla, {}},
      {virt::PlatformKind::BareMetal, virt::CpuMode::Vanilla, {}},
  };
  for (virt::PlatformSpec spec : probes) {
    std::optional<std::pair<std::string, double>> found;
    for (const auto& instance : virt::instance_catalog()) {
      if (instance.cores < 4) continue;  // Large thrashes under the burst
      spec.instance = instance;
      const core::Measurement measurement = runner.measure(spec, burst);
      if (measurement.interval().mean <= kSlaSeconds) {
        found = {instance.name, measurement.interval().mean};
        break;
      }
    }
    std::ostringstream mean_os;
    if (found.has_value()) {
      mean_os << std::fixed << std::setprecision(3) << found->second;
      table.add_row({spec.label(), found->first, mean_os.str()});
    } else {
      table.add_row({spec.label(), "(none in catalog)", "-"});
    }
  }
  std::cout << table.render()
            << "\nPinned containers typically reach the SLA on a smaller "
               "(cheaper) instance\nthan any other virtualized platform — "
               "the operational payoff of the paper's findings.\n";
  return 0;
}
