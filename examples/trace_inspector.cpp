// Trace inspector: the BCC-style view of *why* a platform behaves as it
// does — attach cpudist/offcputime/sched counters to the host kernel and
// compare a vanilla vs a pinned container under the Cassandra workload,
// reproducing the paper's profiling methodology (§III-A).
#include <iostream>

#include "trace/tracer.hpp"
#include "virt/factory.hpp"
#include "workload/cassandra.hpp"

int main() {
  using namespace pinsim;

  for (const auto mode : {virt::CpuMode::Vanilla, virt::CpuMode::Pinned}) {
    const virt::PlatformSpec spec{virt::PlatformKind::Container, mode,
                                  virt::instance_by_name("xLarge")};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 7);
    auto platform = virt::make_platform(host, spec);
    trace::TraceSession trace(host.kernel());

    workload::CassandraConfig config;
    config.operations = 400;
    config.server_threads = 50;
    workload::Cassandra cassandra(config);
    const auto result = cassandra.run(*platform, Rng(7));

    std::cout << "==== " << spec.label()
              << " — mean op response: " << result.metric_seconds
              << " s ====\n"
              << trace.report() << '\n';
  }
  std::cout << "Compare the migration counts and aggregation stalls: the "
               "pinned container\navoids exactly the scheduler work the "
               "paper blames for the vanilla overhead.\n";
  return 0;
}
