// Quickstart: measure one workload on two platforms and compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The public API in five steps:
//   1. pick a platform configuration  (virt::PlatformSpec)
//   2. build a host                   (virt::Host)
//   3. instantiate the platform       (virt::make_platform)
//   4. run a workload on it           (workload::Ffmpeg{}.run(...))
//   5. compare metrics                (core::ExperimentRunner for sweeps)
#include <iostream>

#include "virt/factory.hpp"
#include "workload/ffmpeg.hpp"

int main() {
  using namespace pinsim;

  const virt::InstanceType& instance = virt::instance_by_name("xLarge");

  // Bare-metal baseline: the host booted with just the instance's cores.
  const virt::PlatformSpec bm_spec{virt::PlatformKind::BareMetal,
                                   virt::CpuMode::Vanilla, instance};
  virt::Host bm_host(virt::host_topology_for(bm_spec, hw::Topology::dell_r830()),
                     hw::CostModel{}, /*seed=*/1);
  auto bm = virt::make_platform(bm_host, bm_spec);

  // A pinned container on the full 112-core host.
  const virt::PlatformSpec cn_spec{virt::PlatformKind::Container,
                                   virt::CpuMode::Pinned, instance};
  virt::Host cn_host(hw::Topology::dell_r830(), hw::CostModel{}, /*seed=*/1);
  auto cn = virt::make_platform(cn_host, cn_spec);

  workload::Ffmpeg transcode;  // the paper's AVC->HEVC workload
  const double bm_seconds = transcode.run(*bm, Rng(1)).metric_seconds;
  const double cn_seconds = transcode.run(*cn, Rng(1)).metric_seconds;

  std::cout << "FFmpeg transcode on " << instance.name << ":\n"
            << "  " << bm_spec.label() << ": " << bm_seconds << " s\n"
            << "  " << cn_spec.label() << ": " << cn_seconds << " s\n"
            << "  overhead ratio: " << cn_seconds / bm_seconds << "x\n\n"
            << "A pinned container tracks bare-metal closely for CPU-bound "
               "work\n(the paper's best practice 2).\n";
  return 0;
}
