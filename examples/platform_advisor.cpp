// Platform advisor: the paper's §VI best practices as a tool.
//
// Usage: ./build/examples/platform_advisor [cpu|hpc|web|nosql]
//                                          [--no-pinning] [--vm-isolation]
//
// Prints the ranked platform recommendation for the application class,
// with the paper's rationale, plus the CHR-based instance sizing for the
// 112-core reference host.
#include <cstring>
#include <iostream>

#include "core/best_practices.hpp"
#include "core/chr_advisor.hpp"

int main(int argc, char** argv) {
  using namespace pinsim;

  core::DeploymentQuery query;
  query.app = workload::AppClass::CpuBound;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "cpu") == 0) {
      query.app = workload::AppClass::CpuBound;
    } else if (std::strcmp(argv[i], "hpc") == 0) {
      query.app = workload::AppClass::Hpc;
    } else if (std::strcmp(argv[i], "web") == 0) {
      query.app = workload::AppClass::IoWeb;
    } else if (std::strcmp(argv[i], "nosql") == 0) {
      query.app = workload::AppClass::IoNoSql;
    } else if (std::strcmp(argv[i], "--no-pinning") == 0) {
      query.pinning_allowed = false;
    } else if (std::strcmp(argv[i], "--vm-isolation") == 0) {
      query.require_vm_isolation = true;
    } else {
      std::cerr << "usage: platform_advisor [cpu|hpc|web|nosql] "
                   "[--no-pinning] [--vm-isolation]\n";
      return 1;
    }
  }

  std::cout << "Application class: " << workload::to_string(query.app)
            << "\npinning " << (query.pinning_allowed ? "allowed" : "forbidden")
            << ", VM isolation "
            << (query.require_vm_isolation ? "required" : "not required")
            << "\n\nRecommended platforms (best first):\n";
  int rank = 1;
  for (const auto& rec : core::recommend(query)) {
    std::cout << "  " << rank++ << ". " << rec.label() << " — "
              << rec.rationale << " [practice";
    for (int p : rec.practices) std::cout << ' ' << p;
    std::cout << "]\n";
  }

  const hw::Topology host = hw::Topology::dell_r830();
  const core::ChrRange range = core::paper_chr_range(query.app);
  std::cout << "\nCHR sizing on a " << host.num_cpus() << "-core host "
            << "(recommended " << range.low << " < CHR < " << range.high
            << "):\n";
  if (const auto instance = core::recommend_instance(query.app, host)) {
    std::cout << "  smallest fitting instance: " << instance->name << " ("
              << instance->cores << " cores, CHR "
              << core::chr_of(*instance, host) << ")\n";
  } else {
    std::cout << "  no catalog instance fits the recommended CHR range\n";
  }
  return 0;
}
