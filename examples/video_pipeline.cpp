// Video pipeline scenario: a transcoding farm operator deciding how to
// deploy a nightly batch of video segments (the paper's introduction
// motivates exactly this workload).
//
// Compares the batch makespan across all seven platform configurations
// at one instance size and reports the winner and the money ordering —
// the end-to-end decision the paper's Figure 3 supports.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/experiment.hpp"
#include "stats/text_table.hpp"
#include "workload/ffmpeg.hpp"

int main() {
  using namespace pinsim;

  const virt::InstanceType& instance = virt::instance_by_name("2xLarge");
  core::ExperimentConfig config;
  config.repetitions = 3;
  const core::ExperimentRunner runner(config);

  // The nightly batch: 8 segments transcoded in parallel.
  const core::WorkloadFactory batch = [] {
    workload::FfmpegConfig ffmpeg;
    ffmpeg.processes = 8;
    return std::make_unique<workload::Ffmpeg>(ffmpeg);
  };

  std::cout << "Transcoding batch (8 segments) on " << instance.name
            << " — makespan by platform:\n\n";
  stats::TextTable table({"platform", "makespan (s)", "95% CI"});
  std::string best_label;
  double best = 0.0;
  for (const auto& spec : virt::paper_series(instance)) {
    const core::Measurement measurement = runner.measure(spec, batch);
    const stats::Interval interval = measurement.interval();
    std::ostringstream mean_os, ci_os;
    mean_os << std::fixed << std::setprecision(2) << interval.mean;
    ci_os << "±" << std::fixed << std::setprecision(2)
          << interval.half_width;
    table.add_row({spec.label(), mean_os.str(), ci_os.str()});
    if (best_label.empty() || interval.mean < best) {
      best = interval.mean;
      best_label = spec.label();
    }
  }
  std::cout << table.render() << "\nBest platform for this batch: "
            << best_label << " (" << best << " s)\n";
  return 0;
}
