// pinsim-lint lexer: a flat token stream with 1-based line numbers.
//
// Comments and string/char literals are consumed (their contents never
// reach the rule passes), preprocessor directives are collapsed into
// one token per logical line. Two comment-borne side channels are
// collected while lexing:
//
//   * `// pinsim-lint: allow(a, b)` suppressions, recorded into a
//     per-line allow map (the line of the comment, plus the next line
//     when the comment stands alone — the annotation-above form).
//   * symbol annotations for the cross-file index: `hot`,
//     `quiet-mutator`, and `shard-owner(<n>)`, recorded into a per-line
//     annotation map with the same attachment rules. Unknown words
//     after the marker are ignored so prose that merely mentions
//     "pinsim-lint:" cannot annotate code by accident.
//
// Line accounting is exact for the constructs that span physical
// lines: backslash-continued `//` comments cover every continued line
// (and an annotation-above form attaches past the last continuation),
// multi-line raw strings produce their token on the line the literal
// STARTS on, and code following the closer of a multi-line raw string
// or block comment still counts as code for the standalone-comment
// test.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pinsim::lint {

struct Token {
  enum Kind { kIdent, kPunct, kNumber, kLiteral, kDirective };
  Kind kind;
  std::string text;
  int line;
};

struct LexResult {
  std::vector<Token> tokens;
  /// line -> rules allowed on that line ("all" allows everything).
  std::map<int, std::set<std::string>> allows;
  /// line -> index annotations attached to that line ("hot",
  /// "quiet-mutator", "shard-owner(0)", ...).
  std::map<int, std::set<std::string>> annotations;
};

LexResult lex(std::string_view src);

}  // namespace pinsim::lint
