// Fixture: raw [] use of the guarded back-pointer fields outside the
// owning files. Analyzed as if at src/os/fixture_index_safety_bad.cpp
// (not an owner) and at src/os/runqueue.cpp (the rq_index owner, where
// the same code is legal).
#include <vector>

namespace fixture {

struct Task {
  int rq_index = -1;
  int park_index = -1;
};

struct Poker {
  std::vector<Task*> heap_;
  std::vector<unsigned> slot_of_;
  std::vector<Task*> parked_;

  Task* peek(const Task& t) {
    return heap_[t.rq_index];  // expect: index-safety
  }
  unsigned slot(int node) {
    return slot_of_[node];  // expect: index-safety
  }
  Task* parked(Task* t) {
    return parked_[t->park_index];  // expect: index-safety
  }
};

// The sharded-engine mailbox rows and the fleet's host->shard map are
// guarded the same way (owners: sharded_engine.*, sharded_fleet.*).
struct ShardPoker {
  std::vector<int> outbox_;
  std::vector<int> shard_of_;

  int box(int src) {
    return outbox_[src];  // expect: index-safety
  }
  int home(int host) {
    return shard_of_[host];  // expect: index-safety
  }
};

}  // namespace fixture
