// Quiet-funnel fixture: an entry-point function writes quiet-window
// state without passing through exit_quiet(), and a stale
// quiet-mutator annotation (no writes, no funnel call) is itself a
// finding. The helper reachable ONLY through the funnel stays clean.
namespace fixture {

struct Kernel {
  int quiet_[4] = {};
  int charged_until_[4] = {};
  int slice_started_[4] = {};

  void exit_quiet(int cpu) {
    quiet_[cpu] = 0;  // the funnel writes freely
    settle(cpu);
  }

  void settle(int cpu) {
    charged_until_[cpu] = 1;  // only reachable through the funnel: clean
  }

  void tick(int cpu) {
    quiet_[cpu] = 1;  // expect: quiet-funnel
    exit_quiet(cpu);
    slice_started_[cpu] += 2;  // expect: quiet-funnel
  }

  // pinsim-lint: quiet-mutator
  void bystander(int cpu) {  // expect: quiet-funnel
    (void)cpu;
  }
};

}  // namespace fixture
