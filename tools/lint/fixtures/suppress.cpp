// Fixture: suppression-annotation behaviour, analyzed as if under
// src/os/. A whole-line `// pinsim-lint: allow(...)` comment covers
// the next line; allow(all) covers every rule; an allow() naming a
// different rule suppresses nothing.
#include <ctime>

namespace fixture {

inline long deliberate_wall_clock() {
  // pinsim-lint: allow(determinism)
  return time(nullptr);
}

inline long deliberate_everything() {
  // pinsim-lint: allow(all)
  return time(nullptr);
}

inline long wrong_rule_still_fires() {
  // pinsim-lint: allow(ordering)
  return time(nullptr);  // expect: determinism
}

}  // namespace fixture
