// Hot-path fixture, clean tree: reserved containers, pool draws, cold
// helpers that are never called from the hot cone, and an explicitly
// allow()ed amortized growth site.
#include <memory>
#include <vector>

namespace fixture {

struct Pool {
  std::vector<int> slab_;
  std::vector<int> free_;

  void grow() {
    // Amortized cold growth, sanctioned:
    // pinsim-lint: allow(hot-path)
    slab_.push_back(0);
    free_.reserve(slab_.size());
  }

  // pinsim-lint: hot
  int draw() {
    if (free_.empty()) grow();
    const int id = free_.back();
    free_.pop_back();
    return id;
  }

  // pinsim-lint: hot
  void put(int id) {
    free_.push_back(id);  // reserve()d in grow(): exempt
  }
};

// Allocates, but nothing hot reaches it.
std::unique_ptr<int> make_config() { return std::make_unique<int>(1); }

}  // namespace fixture
