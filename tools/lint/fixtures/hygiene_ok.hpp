#pragma once
// Fixture: a header satisfying every hygiene rule. Analyzed as if at
// src/core/fixture_hygiene_ok.hpp.
#include <string>

namespace fixture {

inline std::string label(int value) {
  // Function-local using-directives do not leak into includers.
  using namespace std::string_literals;
  return "v"s + std::to_string(value);
}

}  // namespace fixture
