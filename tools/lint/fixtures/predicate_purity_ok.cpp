// Fixture: run_until uses the predicate-purity rule must NOT flag.
// Analyzed as if at src/core/fixture_predicate_purity_ok.cpp.
namespace fixture {

int g_done_count = 0;

struct Engine {
  template <typename P>
  bool run_until(P&& p, long horizon) {
    return p() || horizon > 0;
  }
};

struct Completion {
  int finished = 0;
  bool done() const { return finished > 3; }
};

// Predicates over captured simulation state are the sanctioned shape.
bool drive(Engine& engine, const Completion& completion) {
  return engine.run_until([&completion] { return completion.done(); }, 100);
}

// Globals outside a run_until argument list are someone else's problem
// (the determinism pass owns general global hygiene).
int read_elsewhere() { return g_done_count; }

// Annotated use is a deliberate, reviewed exception.
bool drive_annotated(Engine& engine) {
  return engine.run_until(
      [] { return g_done_count > 3; },  // pinsim-lint: allow(predicate-purity)
      100);
}

}  // namespace fixture
