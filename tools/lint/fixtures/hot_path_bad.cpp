// Hot-path fixture: every allocation-risk site reachable from the hot
// entry is flagged — in the entry itself, in a same-class callee, and
// in an out-of-class definition two hops down. The reserve()d
// container is exempt; the never-reserved one is not.
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

void log_stats();

struct Queue {
  std::vector<int> heap_;
  std::vector<int> scratch_;

  void warm() { heap_.reserve(64); }

  // pinsim-lint: hot
  int pop() {
    heap_.push_back(1);     // reserve()d in warm(): exempt
    scratch_.push_back(2);  // expect: hot-path
    refill();
    return helper();
  }

  void refill() {
    int* leak = new int(3);  // expect: hot-path
    delete leak;
  }

  int helper();
};

int Queue::helper() {
  auto owned = std::make_unique<int>(4);  // expect: hot-path
  std::function<void()> deferred;         // expect: hot-path
  log_stats();
  return *owned;
}

void log_stats() {
  PINSIM_INFO("queue stats");  // expect: hot-path
}

// Not reachable from the hot entry: no findings here.
void rebuild_cold(Queue& q) {
  q.scratch_.push_back(9);
  int* scratch = new int(5);
  delete scratch;
}

}  // namespace fixture
