// Fixture: arming or moving the kernel's quantum-boundary timer outside
// its owner (os/kernel.cpp's arm_boundary helper and batched sweep).
// Analyzed as if at src/virt/fixture_boundary_timer_bad.cpp (not an
// owner) and at src/os/kernel.cpp (the owner, where the same code is
// legal). Uses reschedule()+schedule_tracked_at() only, so the
// engine-api bare-schedule rule stays silent.
#include <cstdint>

namespace fixture {

struct Engine {
  bool reschedule(int& handle, long when);
  int schedule_tracked_at(long when, std::uint32_t cookie, void (*fn)());
};

struct Poker {
  Engine* engine_;
  int boundary_;

  void move(long when) {
    engine_->reschedule(boundary_, when);  // expect: index-safety
  }
  void arm(long when) {
    boundary_ = engine_->schedule_tracked_at(  // expect: index-safety
        when, 7u, nullptr);
  }
};

}  // namespace fixture
