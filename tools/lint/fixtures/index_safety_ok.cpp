// Fixture: uses of the guarded names the index-safety rule must NOT
// flag outside the owning files. Analyzed as if under src/os/.
#include <vector>

namespace fixture {

struct Task {
  int rq_index = -1;
};

struct Reader {
  std::vector<Task*> heap_;

  // Plain reads/writes (no subscript) are fine anywhere — the rule
  // only guards raw indexing.
  bool queued(const Task& t) const { return t.rq_index >= 0; }
  void clear(Task& t) { t.rq_index = -1; }

  // A lambda capture is a bracket but not a subscript.
  auto reader() {
    return [this](const Task& t) { return t.rq_index >= 0; };
  }

  // Annotated raw access is allowed (deliberate, reviewed exception).
  Task* raw(const Task& t) {
    return heap_[t.rq_index];  // pinsim-lint: allow(index-safety)
  }
};

}  // namespace fixture
