// Fixture: every determinism violation the analyzer must catch.
// lint_test.cpp analyzes this file as if it lived under src/os/ (where
// the determinism rule applies) and under src/core/ (where it does
// not). An expect marker names the exact line a finding must land on.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Sim {
  std::unordered_map<int, int> table;
  std::unordered_set<int> members;

  long bad_clock() {
    auto t = std::chrono::steady_clock::now();  // expect: determinism
    long base = time(nullptr);                  // expect: determinism
    return base + t.time_since_epoch().count();
  }

  int bad_rng() {
    std::random_device dev;  // expect: determinism
    return rand() + dev();   // expect: determinism
  }

  const char* bad_env() {
    return getenv("PINSIM_MODE");  // expect: determinism
  }

  int bad_iteration() const {
    int sum = 0;
    for (const auto& kv : table) {  // expect: determinism
      sum += kv.second;
    }
    for (auto it = members.begin(); it != members.end(); ++it) {  // expect: determinism
      sum += *it;
    }
    return sum;
  }
};

}  // namespace fixture
