// Quiet-funnel fixture, clean tree: the funnel and its downstream
// helper write freely, and an audited quiet-mutator (which calls the
// funnel before writing) is accepted without being stale.
namespace fixture {

struct Kernel {
  int quiet_[4] = {};
  int slice_length_[4] = {};

  void exit_quiet(int cpu) {
    quiet_[cpu] = 0;
    charge(cpu);
  }

  void charge(int cpu) {
    slice_length_[cpu] = 1;  // downstream of the funnel only
  }

  // pinsim-lint: quiet-mutator
  void wake(int cpu) {
    exit_quiet(cpu);
    quiet_[cpu] = 2;  // audited: the window was closed just above
  }

  void outside(int cpu) { wake(cpu); }
};

}  // namespace fixture
