// Fixture: pointer-keyed ordered containers the ordering rule must
// catch, analyzed as if under src/virt/ (rule applies) and tests/
// (rule does not).
#include <functional>
#include <map>
#include <set>

namespace fixture {

struct Task;

struct Bad {
  std::map<Task*, int> weight_by_task;      // expect: ordering
  std::set<const Task*> members;            // expect: ordering
  std::set<Task*, std::less<Task*>> explicit_less;  // expect: ordering ordering
};

}  // namespace fixture
