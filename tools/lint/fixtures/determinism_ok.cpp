// Fixture: constructs the determinism rule must NOT flag, analyzed as
// if under src/os/.
#include <chrono>
#include <map>
#include <unordered_map>

namespace fixture {

struct Clock {
  long time() const { return 0; }
  long rand() const { return 0; }
};

struct Ok {
  std::map<int, int> ordered;
  std::unordered_map<int, int> cache;
  Clock clock_;

  // Ordered iteration is deterministic and fine.
  int sum() const {
    int total = 0;
    for (const auto& kv : ordered) total += kv.second;
    return total;
  }

  // Point lookups (no iteration) into an unordered container are fine.
  int lookup(int key) const { return cache.at(key); }

  // Member calls merely *named* time()/rand() are not the libc calls.
  long stamp() const { return clock_.time() + clock_.rand(); }

  // A deliberate, annotated wall-clock read is allowed.
  long wall() const {
    return std::chrono::steady_clock::now()  // pinsim-lint: allow(determinism)
        .time_since_epoch()
        .count();
  }
};

}  // namespace fixture
