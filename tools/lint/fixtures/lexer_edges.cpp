// Fixture: lexer corners that must NOT produce findings, analyzed as
// if under src/os/ (every rule group armed). Banned tokens appear only
// inside comments, string/char/raw-string literals, and preprocessor
// directives — all stripped before the rule passes run.
#include <string>  // rand() time() getenv() in an include-line comment

/* block comment spanning lines:
   std::chrono::steady_clock::now();
   for (auto& kv : some_unordered_map) {}
*/

namespace fixture {

inline std::string banned_tokens_in_literals() {
  const char* a = "time(nullptr) rand() getenv(\"HOME\")";
  const char* b = R"lint(std::random_device dev; slot_of_[i])lint";
  const char c = '"';  // a quote char must not open a string
  std::string out = a;
  out += b;
  out += c;
  return out;
}

// Digit separators and exponents lex as single number tokens.
inline double numbers() { return 1'000'000 * 1.5e-3; }

#define FIXTURE_MACRO(x) time(x)  // directives are consumed whole

}  // namespace fixture
