// expect: hygiene
// ^ line 1 carries the missing-#pragma-once finding for this header.
// Analyzed as if at src/core/fixture_hygiene_bad.hpp.
#include <cstdio>
#include <iostream>

namespace fixture {

using namespace std;  // expect: hygiene

inline void report(int value) {
  std::cout << value << "\n";  // expect: hygiene
  printf("%d\n", value);       // expect: hygiene
}

}  // namespace fixture
