// A backslash-continued line comment swallows its continuation: \
   time(nullptr) and rand() on this physical line are commentary.
long f() { return 1; }
// pinsim-lint: allow(determinism) \
   (the whole-line allow must attach past the continuation)
long g() { return time(nullptr); }
long h() { return time(nullptr); }  // expect: determinism
