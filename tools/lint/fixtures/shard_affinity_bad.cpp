// Shard-affinity fixture: a lambda posted to a non-zero shard touches
// shard-0-owned state both directly (a bound variable of an owned
// type, and a resolved call into an owned method) and transitively
// (a reached function whose body touches an owned member).
namespace fixture {

// pinsim-lint: shard-owner(0)
struct Balancer {
  int outstanding = 0;
  void add(int delta) { outstanding += delta; }
};

struct Net {
  template <typename Fn>
  void post(int src, int dst, int delay, Fn&& fn);
};

struct Fleet {
  Balancer balancer_;
  Net net_;

  void record() {
    balancer_.add(1);  // expect: shard-affinity
  }

  void run() {
    Balancer* lb = &balancer_;
    net_.post(0, 3, 1, [lb, this] {
      lb->add(1);  // expect: shard-affinity
      record();
    });
  }
};

}  // namespace fixture
