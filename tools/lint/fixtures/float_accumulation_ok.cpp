// Fixture: reductions the float-accumulation rule must ignore —
// integer accumulators, float reductions over ordered containers,
// fresh per-iteration locals, comparisons, and an annotated line.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

std::int64_t count_heavy(const std::unordered_map<int, double>& weights) {
  std::int64_t heavy = 0;
  for (const auto& [id, w] : weights) {
    if (w > 1.0) heavy += 1;  // integer adds commute exactly
  }
  return heavy;
}

double ordered_total(const std::map<int, double>& calibrated) {
  double sum = 0.0;
  for (const auto& [id, w] : calibrated) {
    sum += w;  // std::map iterates in key order — deterministic
  }
  return sum;
}

double vector_total(const std::vector<double>& samples) {
  double total = 0.0;
  for (double v : samples) total += v;
  return total;
}

double fresh_locals_and_compares(
    const std::unordered_map<int, double>& weights, double limit) {
  double matches = 0.0;
  for (const auto& [id, w] : weights) {
    double scaled = w * 2.0;  // fresh local, not an accumulation
    if (scaled == limit) matches = limit;  // plain (re)assignment
  }
  return matches;
}

double annotated(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [id, w] : weights) {
    sum += w;  // pinsim-lint: allow(float-accumulation)
  }
  return sum;
}

}  // namespace fixture
