// Fixture: run_until predicates that read g_-prefixed mutable globals.
// Analyzed as if at src/core/fixture_predicate_purity_bad.cpp.
namespace fixture {

int g_done_count = 0;
bool g_abort = false;

struct Engine {
  template <typename P>
  bool run_until(P&& p, long horizon) {
    return p() || horizon > 0;
  }
};

bool drive(Engine& engine) {
  return engine.run_until([] { return g_done_count > 3; },  // expect: predicate-purity
                          100);
}

bool drive_multi(Engine& engine) {
  return engine.run_until(
      [] {
        if (g_abort) return true;     // expect: predicate-purity
        return g_done_count >= 10;    // expect: predicate-purity
      },
      100);
}

}  // namespace fixture
