// Fixture: uses of the guarded timer name the rule must NOT flag
// outside the owning file. Analyzed as if under src/virt/.
#include <cstdint>

namespace fixture {

struct Engine {
  bool reschedule(int& handle, long when);
  int schedule_tracked_at(long when, std::uint32_t cookie, void (*fn)());
};

struct Reader {
  Engine* engine_;
  int boundary_;
  int other_timer_;

  // Reads of the handle (no arming) are fine anywhere.
  bool armed() const { return boundary_ >= 0; }

  // Scheduling unrelated timers is fine.
  void arm_other(long when) {
    other_timer_ = engine_->schedule_tracked_at(when, 3u, nullptr);
    engine_->reschedule(other_timer_, when);
  }

  // Annotated direct arming is allowed (deliberate, reviewed exception).
  void blessed(long when) {
    engine_->reschedule(  // pinsim-lint: allow(index-safety)
        boundary_, when);
  }
};

}  // namespace fixture
