// Fixture: ordered-container uses the ordering rule must NOT flag,
// analyzed as if under src/virt/.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Task;

struct Ok {
  // Pointer *values* behind a stable integer key are fine — only the
  // key drives iteration order.
  std::map<int, Task*> by_id;
  std::set<std::string> names;
  // An annotated, deliberate pointer key is allowed.
  std::map<Task*, int> legacy;  // pinsim-lint: allow(ordering)
};

// A domain type that happens to be named `map` is not std::map.
struct map_view {};
template <typename T>
struct set {};

inline set<map_view*> views;  // unqualified: not flagged

}  // namespace fixture
