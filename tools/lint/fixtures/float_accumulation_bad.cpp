// Fixture: floating-point reductions in unordered iteration order.
// Each marked line accumulates a float/double while range-for'ing an
// unordered container: bucket order varies across runs and float
// arithmetic is not associative, so the reduction is nondeterministic.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double total_weight(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [id, w] : weights) {
    sum += w;  // expect: float-accumulation
  }
  return sum;
}

float scale_product(const std::unordered_set<float>& factors) {
  float product = 1.0f;
  for (float f : factors) product *= f;  // expect: float-accumulation
  return product;
}

double spelled_out(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const auto& [id, w] : weights) {
    acc = acc + w;  // expect: float-accumulation
  }
  return acc;
}

}  // namespace fixture
