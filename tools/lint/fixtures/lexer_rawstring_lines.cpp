// Multi-line raw strings: the literal's token anchors on its start
// line, and the closing line still counts as code — so a trailing
// comment there is same-line only, not a whole-line suppression that
// would leak onto the next line.
const char* banner = R"(line one
line two)";  // pinsim-lint: allow(determinism)
long leak() { return time(nullptr); }  // expect: determinism
