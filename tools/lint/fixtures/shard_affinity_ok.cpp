// Shard-affinity fixture, clean tree: a post whose destination is the
// literal 0 runs ON shard 0 and may touch owned state; a cross-shard
// lambda may reach owned state by posting back through the mailbox
// (the nested post span is the sanctioned hop); unowned types are
// free to travel.
namespace fixture {

// pinsim-lint: shard-owner(0)
struct Balancer {
  int outstanding = 0;
  void add(int delta) { outstanding += delta; }
};

struct Meter {
  int count = 0;
  void bump() { ++count; }
};

struct Net {
  template <typename Fn>
  void post(int src, int dst, int delay, Fn&& fn);
};

struct Fleet {
  Balancer balancer_;
  Meter meter_;
  Net net_;

  void run() {
    Balancer* lb = &balancer_;
    Meter* meter = &meter_;
    Net* net = &net_;
    // Destination is the literal 0: the callback runs on shard 0.
    net->post(3, 0, 1, [lb] { lb->add(1); });
    // Cross-shard, but the owned touch happens inside a nested
    // post-back to shard 0 — the sanctioned mailbox hop.
    net->post(0, 3, 1, [net, lb, meter] {
      meter->bump();
      net->post(3, 0, 1, [lb] { lb->add(-1); });
    });
  }
};

}  // namespace fixture
