// Fixture: schedule uses the engine-api rule must NOT flag, analyzed
// as if under src/os/.
namespace fixture {

struct Core {
  sim::EventHandle boundary;
};

// The re-arm path arms with the tracked variant: fine.
inline void rearm(sim::Engine& engine, Core& core, long when) {
  if (engine.reschedule(core.boundary, when)) return;
  core.boundary = engine.schedule_tracked_at(when, [] {});
}

// A deliberate one-shot next to the re-arm path, annotated:
inline void one_shot(sim::Engine& engine, long delay) {
  engine.schedule(delay, [] {});  // pinsim-lint: allow(engine-api)
}

}  // namespace fixture
