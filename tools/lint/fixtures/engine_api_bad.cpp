// Fixture: a persistent timer re-armed through reschedule() but
// originally armed with bare schedule() — the exact bug
// schedule_tracked() exists to prevent (reschedule() CHECK-fails on an
// untracked handle). Analyzed as if under src/os/ and under tests/
// (where the engine-api rule does not apply).
namespace fixture {

struct Core {
  sim::EventHandle boundary;
};

inline void rearm(sim::Engine& engine, Core& core, long when) {
  if (engine.reschedule(core.boundary, when)) return;
  core.boundary = engine.schedule(when, [] {});  // expect: engine-api
}

}  // namespace fixture
