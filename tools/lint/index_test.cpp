// Tests for pinsim-lint pass 1/2: the per-file summarizer (function /
// class / call / risk / mailbox extraction), the merged SymbolIndex
// and its conservative call resolution, the three reachability rule
// groups (exact (rule, line) fixture assertions, triggering and
// clean), and the serial-vs-parallel whole-tree scan equivalence.
#include "index.hpp"

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.hpp"

namespace pinsim::lint {
namespace {

#ifndef PINSIM_LINT_FIXTURES
#error "PINSIM_LINT_FIXTURES must point at tools/lint/fixtures"
#endif
#ifndef PINSIM_LINT_REPO_ROOT
#error "PINSIM_LINT_REPO_ROOT must point at the repo root"
#endif

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PINSIM_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

using RuleLine = std::pair<std::string, int>;  // (rule, 1-based line)

/// Collect the `// expect: rule [rule...]` markers from fixture text.
std::multiset<RuleLine> markers(const std::string& contents) {
  std::multiset<RuleLine> expected;
  std::istringstream lines(contents);
  std::string text;
  int line = 0;
  while (std::getline(lines, text)) {
    ++line;
    const std::size_t at = text.find("// expect:");
    if (at == std::string::npos) continue;
    std::istringstream rules(
        text.substr(at + std::string("// expect:").size()));
    std::string rule;
    while (rules >> rule) expected.insert({rule, line});
  }
  return expected;
}

std::string print(const std::multiset<RuleLine>& set) {
  std::ostringstream out;
  for (const auto& [rule, line] : set) out << rule << "@" << line << " ";
  return out.str();
}

/// Run ONLY the cross-file pass over a fixture pretending to live at
/// `pretend_path` (rule applicability is path-driven).
std::multiset<RuleLine> analyze_indexed(const std::string& fixture,
                                        const std::string& pretend_path) {
  const std::string contents = read_fixture(fixture);
  std::vector<FileSummary> summaries;
  summaries.push_back(summarize_file(pretend_path, contents));
  const SymbolIndex index = SymbolIndex::build(std::move(summaries));
  std::vector<Diagnostic> diags;
  run_index_rules(default_config(), index, &diags);
  std::multiset<RuleLine> got;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, pretend_path);
    got.insert({d.rule, d.line});
  }
  return got;
}

void expect_index_markers(const std::string& fixture,
                          const std::string& pretend_path) {
  const std::multiset<RuleLine> expected = markers(read_fixture(fixture));
  ASSERT_FALSE(expected.empty()) << fixture << " has no expect markers";
  const std::multiset<RuleLine> got = analyze_indexed(fixture, pretend_path);
  EXPECT_EQ(got, expected) << fixture << " as " << pretend_path
                           << "\n  expected: " << print(expected)
                           << "\n  got:      " << print(got);
}

void expect_index_clean(const std::string& fixture,
                        const std::string& pretend_path) {
  const std::multiset<RuleLine> got = analyze_indexed(fixture, pretend_path);
  EXPECT_TRUE(got.empty()) << fixture << " as " << pretend_path
                           << "\n  got: " << print(got);
}

FileSummary summarize(const std::string& source,
                      const std::string& path = "src/a.cpp") {
  return summarize_file(path, source);
}

const FunctionDef* find_fn(const FileSummary& summary,
                           const std::string& name,
                           const std::string& klass = "") {
  for (const FunctionDef& fn : summary.functions) {
    if (fn.name == name && (klass.empty() || fn.klass == klass)) return &fn;
  }
  return nullptr;
}

bool calls_name(const FunctionDef& fn, const std::string& name) {
  for (const CallSite& call : fn.calls) {
    if (call.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Summarizer: definitions, annotations, bindings, reserves.
// ---------------------------------------------------------------------------

TEST(IndexSummary, ExtractsDefinitionShapes) {
  const FileSummary s = summarize(R"(
int free_fn(int x) { return x; }
struct Queue {
  Queue() : size_(0) { free_fn(1); }
  int pop() { return 0; }
  int helper();        // declaration: not a definition
  void gone() = delete;
  int size_;
};
int Queue::helper() { return pop(); }
)");
  ASSERT_NE(find_fn(s, "free_fn"), nullptr);
  EXPECT_EQ(find_fn(s, "free_fn")->klass, "");
  ASSERT_NE(find_fn(s, "Queue", "Queue"), nullptr);  // constructor
  ASSERT_NE(find_fn(s, "pop", "Queue"), nullptr);
  ASSERT_NE(find_fn(s, "helper", "Queue"), nullptr);  // out-of-class def
  EXPECT_EQ(find_fn(s, "helper", "Queue")->file, "src/a.cpp");
  EXPECT_EQ(find_fn(s, "gone", "Queue"), nullptr);
  // The ctor records the call made from its body; the init list itself
  // contributes no definition.
  EXPECT_TRUE(calls_name(*find_fn(s, "Queue", "Queue"), "free_fn"));
}

TEST(IndexSummary, AnnotationsAttachToDefinitions) {
  const FileSummary s = summarize(R"(
// pinsim-lint: hot
void spin() {}
void relax() {}  // pinsim-lint: quiet-mutator
// pinsim-lint: shard-owner(0)
struct Front {};
// A comment merely TALKING about pinsim-lint: hot loops in prose must
// not annotate anything.
void cold() {}
)");
  EXPECT_EQ(find_fn(s, "spin")->annotations, std::set<std::string>{"hot"});
  EXPECT_EQ(find_fn(s, "relax")->annotations,
            std::set<std::string>{"quiet-mutator"});
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_EQ(s.classes[0].name, "Front");
  EXPECT_EQ(s.classes[0].annotations,
            std::set<std::string>{"shard-owner(0)"});
}

TEST(IndexSummary, BindingsAndReserves) {
  const FileSummary s = summarize(R"(
struct Balancer { void add(int); };
struct Pool {
  std::vector<int> heap_;
  void warm() { heap_.reserve(64); }
};
void use() {
  Balancer* lb = nullptr;
  lb->add(1);
}
)");
  const auto lb = s.bindings.find("lb");
  ASSERT_NE(lb, s.bindings.end());
  EXPECT_EQ(lb->second, "Balancer");
  EXPECT_EQ(s.reserved.count({"Pool", "heap_"}), 1u);
  const FunctionDef* use = find_fn(s, "use");
  ASSERT_NE(use, nullptr);
  ASSERT_EQ(use->touches.size(), 1u);
  EXPECT_EQ(use->touches[0].var, "lb");
  EXPECT_EQ(use->touches[0].type, "Balancer");
}

TEST(IndexSummary, CallbackRegistrationFoldsIntoEnclosing) {
  // A lambda handed to a registration call contributes its calls to
  // the enclosing function — the callback edge the reachability rules
  // traverse (Kernel::arm_boundary -> on_boundary is the real case).
  const FileSummary s = summarize(R"(
struct Kernel {
  void arm() { schedule(5, [this] { tick(); }); }
  void tick() {}
  void schedule(int when, void* fn);
};
)");
  const FunctionDef* arm = find_fn(s, "arm", "Kernel");
  ASSERT_NE(arm, nullptr);
  EXPECT_TRUE(calls_name(*arm, "schedule"));
  EXPECT_TRUE(calls_name(*arm, "tick"));
}

TEST(IndexSummary, MailboxExtraction) {
  const FileSummary s = summarize(R"(
struct Net {
  template <typename Fn> void post(int, int, int, Fn&&);
};
struct Fleet {
  Net net_;
  void run() {
    net_.post(0, 3, 1, [this] {
      work();
      net_.post(3, 0, 1, [this] { settle(); });
    });
    net_.post(3, 0, 1, [this] { settle(); });
  }
  void work();
  void settle();
};
)");
  // Only the cross-shard post is a mailbox lambda; the two dst==0
  // posts are the sanctioned hop back and are not recorded. The
  // nested post's body is excluded from the recorded lambda.
  ASSERT_EQ(s.mailbox.size(), 1u);
  const MailboxLambda& ml = s.mailbox[0];
  EXPECT_EQ(ml.enclosing, "run");
  bool saw_work = false;
  bool saw_settle = false;
  for (const CallSite& call : ml.calls) {
    saw_work = saw_work || call.name == "work";
    saw_settle = saw_settle || call.name == "settle";
  }
  EXPECT_TRUE(saw_work);
  EXPECT_FALSE(saw_settle) << "nested post-back body must be excluded";
}

// ---------------------------------------------------------------------------
// SymbolIndex: conservative resolution.
// ---------------------------------------------------------------------------

SymbolIndex build_one(const std::string& source,
                      const std::string& path = "src/a.cpp") {
  std::vector<FileSummary> summaries;
  summaries.push_back(summarize_file(path, source));
  return SymbolIndex::build(std::move(summaries));
}

const CallSite* call_named(const SymbolIndex& index, const std::string& from,
                           const std::string& name) {
  for (const FunctionDef* fn : index.functions) {
    if (fn->name != from) continue;
    for (const CallSite& call : fn->calls) {
      if (call.name == name) return &call;
    }
  }
  return nullptr;
}

TEST(IndexResolve, GlobalUniqueAndOverloadSets) {
  const SymbolIndex index = build_one(R"(
void unique_target() {}
void twice(int) {}
void twice(double) {}
void caller() { unique_target(); twice(1); }
)");
  const CallSite* unique = call_named(index, "caller", "unique_target");
  ASSERT_NE(unique, nullptr);
  const int id = index.resolve(*unique, "src/a.cpp", "");
  ASSERT_GE(id, 0);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(id)]->name,
            "unique_target");
  // Overload set: two definitions, no unique answer -> no edge.
  const CallSite* ambiguous = call_named(index, "caller", "twice");
  ASSERT_NE(ambiguous, nullptr);
  EXPECT_EQ(index.resolve(*ambiguous, "src/a.cpp", ""), -1);
}

TEST(IndexResolve, QualifierReceiverAndSameClass) {
  const SymbolIndex index = build_one(R"(
struct Host { void reset() {} };
struct Guest { void reset() {} };
void reset() {}
struct Driver {
  void reset() {}
  void drive() {
    reset();
    Host::reset();
  }
};
void outside() {
  Guest* g = nullptr;
  g->reset();
}
)");
  // Same-class preference: Driver::drive's unqualified reset() is
  // Driver::reset, despite three other candidates.
  const CallSite* bare = call_named(index, "drive", "reset");
  ASSERT_NE(bare, nullptr);
  EXPECT_FALSE(bare->member);
  int id = index.resolve(*bare, "src/a.cpp", "Driver");
  ASSERT_GE(id, 0);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(id)]->klass, "Driver");
  // Explicit qualifier wins.
  bool checked_qualified = false;
  for (const FunctionDef* fn : index.functions) {
    if (fn->name != "drive") continue;
    for (const CallSite& call : fn->calls) {
      if (call.qualifier != "Host") continue;
      id = index.resolve(call, "src/a.cpp", "Driver");
      ASSERT_GE(id, 0);
      EXPECT_EQ(index.functions[static_cast<std::size_t>(id)]->klass, "Host");
      checked_qualified = true;
    }
  }
  EXPECT_TRUE(checked_qualified);
  // Receiver binding: g is declared Guest*, so g->reset() is
  // Guest::reset even from a free function.
  const CallSite* via_receiver = call_named(index, "outside", "reset");
  ASSERT_NE(via_receiver, nullptr);
  EXPECT_TRUE(via_receiver->member);
  id = index.resolve(*via_receiver, "src/a.cpp", "");
  ASSERT_GE(id, 0);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(id)]->klass, "Guest");
}

TEST(IndexRules, CallGraphCycleTerminates) {
  // a -> b -> a with a risk inside the cycle: BFS must terminate and
  // still flag the reachable site exactly once.
  std::vector<FileSummary> summaries;
  summaries.push_back(summarize_file("src/os/cycle.cpp", R"(
// pinsim-lint: hot
void ping(int n) { pong(n); }
void pong(int n) {
  int* p = new int(n);
  delete p;
  ping(n - 1);
}
)"));
  const SymbolIndex index = SymbolIndex::build(std::move(summaries));
  std::vector<Diagnostic> diags;
  run_index_rules(default_config(), index, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path");
  EXPECT_EQ(diags[0].line, 5);
}

// ---------------------------------------------------------------------------
// Rule fixtures: exact (rule, line) in triggering files, silence in
// clean ones.
// ---------------------------------------------------------------------------

TEST(IndexRules, HotPathBad) {
  expect_index_markers("hot_path_bad.cpp", "src/os/hot.cpp");
}
TEST(IndexRules, HotPathOk) {
  expect_index_clean("hot_path_ok.cpp", "src/os/hot.cpp");
}
TEST(IndexRules, QuietFunnelBad) {
  expect_index_markers("quiet_funnel_bad.cpp", "src/os/kernel_x.cpp");
}
TEST(IndexRules, QuietFunnelOk) {
  expect_index_clean("quiet_funnel_ok.cpp", "src/os/kernel_x.cpp");
}
TEST(IndexRules, ShardAffinityBad) {
  expect_index_markers("shard_affinity_bad.cpp", "src/cluster/fleet_x.cpp");
}
TEST(IndexRules, ShardAffinityOk) {
  expect_index_clean("shard_affinity_ok.cpp", "src/cluster/fleet_x.cpp");
}

TEST(IndexRules, QuietFunnelScopedToConfiguredDirs) {
  // The same writers outside config.quiet_funnel.dirs are silent.
  expect_index_clean("quiet_funnel_bad.cpp", "src/sim/elsewhere.cpp");
}
TEST(IndexRules, ShardAffinityScopedToConfiguredDirs) {
  expect_index_clean("shard_affinity_bad.cpp", "src/sim/elsewhere.cpp");
}

// ---------------------------------------------------------------------------
// Lexer: token line accounting observable through lex() directly.
// ---------------------------------------------------------------------------

TEST(LexerLines, RawStringTokenAnchorsOnStartLine) {
  const LexResult r = lex("int x = R\"(a\nb)\";\nint y;\n");
  bool saw_literal = false;
  for (const Token& t : r.tokens) {
    if (t.kind != Token::kLiteral) continue;
    saw_literal = true;
    EXPECT_EQ(t.line, 1);
  }
  EXPECT_TRUE(saw_literal);
}

TEST(LexerLines, ContinuedCommentSwallowsNextLine) {
  const LexResult r = lex("// swallowed \\\nint not_code;\nint code;\n");
  for (const Token& t : r.tokens) {
    EXPECT_NE(t.text, "not_code");
  }
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[0].line, 3);
}

// ---------------------------------------------------------------------------
// Whole-tree scan: serial and parallel runs are byte-identical, and
// the parallel scan of the full tree stays under the 2 s budget.
// ---------------------------------------------------------------------------

TEST(TreeScan, SerialAndParallelAreIdentical) {
  const Config config = default_config();
  TreeScanOptions options;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    options.paths.push_back(dir);
  }

  options.jobs = 1;
  TreeScanResult serial;
  std::string error;
  ASSERT_TRUE(
      scan_tree(config, PINSIM_LINT_REPO_ROOT, options, &serial, &error))
      << error;
  ASSERT_GT(serial.files.size(), 100u) << "tree scan found too few files";

  options.jobs = 8;
  TreeScanResult parallel;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      scan_tree(config, PINSIM_LINT_REPO_ROOT, options, &parallel, &error))
      << error;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  EXPECT_EQ(serial.files, parallel.files);
  EXPECT_EQ(serial.indexed, parallel.indexed);
  ASSERT_EQ(serial.diags.size(), parallel.diags.size());
  for (std::size_t i = 0; i < serial.diags.size(); ++i) {
    EXPECT_EQ(serial.diags[i].file, parallel.diags[i].file);
    EXPECT_EQ(serial.diags[i].line, parallel.diags[i].line);
    EXPECT_EQ(serial.diags[i].rule, parallel.diags[i].rule);
    EXPECT_EQ(serial.diags[i].message, parallel.diags[i].message);
  }
  EXPECT_LT(ms, 2000.0) << "parallel full-tree scan blew the 2 s budget";
}

}  // namespace
}  // namespace pinsim::lint
