#include "lexer.hpp"

#include <cctype>

namespace pinsim::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool mark_word_char(char c) { return ident_char(c) || c == '-'; }

/// Parse everything after "pinsim-lint:" in a comment body: allow(a, b)
/// suppressions and the index annotations (hot / quiet-mutator /
/// shard-owner(n)). `line` is where the comment starts, `end_line`
/// where it ends (they differ for block comments and backslash-
/// continued line comments); the annotation-above form attaches one
/// line past the END, so a continued comment still covers the line of
/// code that follows it.
void record_marks(std::string_view comment, int line, int end_line,
                  bool whole_line, LexResult* out) {
  const std::string_view marker = "pinsim-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string_view::npos) return;

  const auto attach = [&](std::map<int, std::set<std::string>>* map,
                          const std::string& value) {
    (*map)[line].insert(value);
    if (whole_line) (*map)[end_line + 1].insert(value);
  };
  // The argument list of the word starting at `i`, or npos when there
  // is none; advances `i` past the close paren on success.
  const auto paren_arg = [&](std::size_t* i) -> std::string_view {
    std::size_t open = *i;
    while (open < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[open])) != 0) {
      ++open;
    }
    if (open >= comment.size() || comment[open] != '(') return {};
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) return {};
    *i = close + 1;
    return comment.substr(open + 1, close - open - 1);
  };

  std::size_t i = at + marker.size();
  while (i < comment.size()) {
    if (!mark_word_char(comment[i])) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < comment.size() && mark_word_char(comment[i])) ++i;
    const std::string_view word = comment.substr(start, i - start);
    if (word == "allow") {
      std::string_view names = paren_arg(&i);
      std::size_t p = 0;
      while (p < names.size()) {
        if (!mark_word_char(names[p])) {
          ++p;
          continue;
        }
        const std::size_t s = p;
        while (p < names.size() && mark_word_char(names[p])) ++p;
        attach(&out->allows, std::string(names.substr(s, p - s)));
      }
    } else if (word == "hot" || word == "quiet-mutator") {
      attach(&out->annotations, std::string(word));
    } else if (word == "shard-owner") {
      std::string_view arg = paren_arg(&i);
      std::string owner;
      for (const char c : arg) {
        if (std::isspace(static_cast<unsigned char>(c)) == 0) owner += c;
      }
      attach(&out->annotations, "shard-owner(" + owner + ")");
    }
    // Any other word after the marker is prose; ignore it.
  }
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool line_has_code = false;  // any token before this point on `line`

  auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment. A backslash immediately before the newline splices
    // the next physical line into the comment, so the whole logical
    // comment is consumed here and every continued line stays
    // invisible to the rule passes.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      const int start_line = line;
      const bool whole_line = !line_has_code;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          newline();
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      record_marks(src.substr(start, i - start), start_line, line, whole_line,
                   &out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool whole_line = !line_has_code;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      record_marks(src.substr(start, i - start), start_line, line, whole_line,
                   &out);
      continue;
    }
    // Preprocessor directive: consume the logical line (with
    // continuations) so include paths and macro bodies never leak into
    // the token stream as ordinary tokens.
    if (c == '#' && !line_has_code) {
      std::string text;
      const int start_line = line;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          i += 2;
          newline();
          continue;
        }
        text += src[i++];
      }
      out.tokens.push_back(Token{Token::kDirective, text, start_line});
      line_has_code = true;
      continue;
    }
    line_has_code = true;
    // Raw string literal. The token carries the line the literal
    // STARTS on (findings anchor there), and the closer's line counts
    // as having code so a trailing `//` comment is not mistaken for a
    // standalone one.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const int start_line = line;
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, p);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') newline();
      }
      out.tokens.push_back(Token{Token::kLiteral, "", start_line});
      line_has_code = true;
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') newline();  // unterminated; stay sane
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back(Token{Token::kLiteral, "", line});
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          Token{Token::kIdent, std::string(src.substr(start, i - start)),
                line});
      continue;
    }
    // Number (digit separators, exponents, hex floats).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back(
          Token{Token::kNumber, std::string(src.substr(start, i - start)),
                line});
      continue;
    }
    // Punctuation: '::' and '->' are folded into one token, everything
    // else is a single character.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back(Token{Token::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back(Token{Token::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{Token::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace pinsim::lint
