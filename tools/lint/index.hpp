// pinsim-lint pass 1/2: the cross-file symbol index and the
// reachability rules that run over it.
//
// Pass 1 (`summarize_file`) extracts a per-file summary from the token
// stream: function/method definitions (with a scope walk over
// namespace/class braces, out-of-class `Ret Class::name(...)`
// definitions, constructors with member-init lists, and lambdas folded
// into their enclosing function), every call site inside each body,
// subscript writes, allocation-risk sites for the hot-path rule,
// `Type [*|&] var` declaration bindings, `.reserve()` sites, and the
// cross-shard mailbox `post(...)` lambdas. Summaries are cheap,
// independent per file, and therefore parallelize over a
// util::ThreadPool; `scan_tree` merges them in path-sorted order so
// serial and parallel runs are byte-identical.
//
// Pass 2 (`run_index_rules`) merges the summaries into a SymbolIndex
// (flat definition list + name multimap) and walks an approximate call
// graph. Edges are deliberately conservative: a call contributes an
// edge only when the callee name resolves to exactly ONE definition —
// via an explicit `Class::name` qualifier, via the receiver's declared
// type (`LoadBalancer* lb; lb->admit(...)`), via same-class preference
// for unqualified calls inside a method, or via global uniqueness.
// Overload sets and virtual hooks with multiple definitions produce no
// edge (no false paths), which the rules compensate for with explicit
// annotations on the entry points they care about.
//
// The three rule groups:
//
//   shard-affinity  lambdas passed to a member `post(...)` whose
//                   destination argument is not the literal 0 run on a
//                   non-zero shard: neither they nor anything they
//                   reach may touch symbols annotated
//                   `// pinsim-lint: shard-owner(0)` — except inside a
//                   nested post() (the sanctioned mailbox hop back).
//   hot-path        forward reachability from `// pinsim-lint: hot`
//                   functions; allocation / std::function / log-sink /
//                   unreserved-push_back sites on any reached function
//                   are findings.
//   quiet-funnel    writers of the configured quiet-window SoA arrays
//                   must be the funnel function itself, reachable only
//                   through it, or annotated `quiet-mutator`.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace pinsim::lint {

/// One call site inside a function body (lambdas included).
struct CallSite {
  std::string name;
  std::string qualifier;  // "Kernel" for Kernel::tick(...), else ""
  std::string receiver;   // identifier before . or -> for member calls
  bool member = false;
  bool in_post = false;  // inside the argument list of a member post()
  int line = 0;
};

/// A `name[...] =` / `name[...] op=` subscript write.
struct SubscriptWrite {
  std::string name;
  int line = 0;
};

/// A site the hot-path rule cares about.
struct RiskSite {
  enum Kind { kNew, kMakeUnique, kMakeShared, kPushBack, kStdFunction, kLog };
  Kind kind;
  std::string detail;  // container for kPushBack, macro name for kLog
  int line = 0;
};

/// Use of a declaration-bound variable: `var.` / `var->`.
struct BoundTouch {
  std::string var;
  std::string type;
  bool in_post = false;  // inside the argument list of a member post()
  int line = 0;
};

struct FunctionDef {
  std::string name;
  std::string klass;  // enclosing class or `X::` qualifier; "" if free
  std::string file;
  int line = 0;  // line of the name token
  std::set<std::string> annotations;
  std::vector<CallSite> calls;
  std::vector<SubscriptWrite> writes;
  std::vector<RiskSite> risks;
  std::vector<BoundTouch> touches;
};

struct ClassDef {
  std::string name;
  std::string file;
  int line = 0;
  std::set<std::string> annotations;
};

/// A lambda passed to a member `post(...)` call whose destination
/// argument is not the literal 0 — i.e. a callback that will run on a
/// non-zero shard. Calls/touches inside nested member post() spans are
/// NOT recorded (posting back through the mailbox is the sanctioned
/// way to reach shard-0 state).
struct MailboxLambda {
  std::string file;
  std::string enclosing;  // name of the function the post() sits in
  int line = 0;           // line of the post token
  std::vector<CallSite> calls;
  std::vector<BoundTouch> touches;
};

struct FileSummary {
  std::string path;
  std::vector<FunctionDef> functions;
  std::vector<ClassDef> classes;
  std::vector<MailboxLambda> mailbox;
  /// var -> declared type, from `Type [*|&|const] var` shapes.
  std::map<std::string, std::string> bindings;
  /// (enclosing class, container) pairs with a `.reserve(` site.
  std::set<std::pair<std::string, std::string>> reserved;
  /// The allow map, so pass-2 findings honor the same suppressions.
  std::map<int, std::set<std::string>> allows;
};

/// Summarize one file's contents as if it lived at `path`.
FileSummary summarize_file(std::string_view path, std::string_view contents);

/// The merged cross-file index. Files must be supplied in path-sorted
/// order (scan_tree guarantees this) so ids and rule output are
/// deterministic.
struct SymbolIndex {
  std::vector<FileSummary> files;
  std::vector<const FunctionDef*> functions;  // file order, then body order
  std::map<std::string, std::vector<int>> by_name;  // name -> function ids
  /// Class name -> union of its annotations across all definitions (a
  /// shard-owner marking anywhere marks the name).
  std::map<std::string, std::set<std::string>> class_annotations;
  std::set<std::pair<std::string, std::string>> reserved;
  std::map<std::string, int> file_id;  // path -> index into files

  static SymbolIndex build(std::vector<FileSummary> summaries);

  /// The unique definition a call site resolves to, or -1.
  int resolve(const CallSite& call, const std::string& from_file,
              const std::string& from_class) const;
};

/// Run the cross-file rule groups over the index, appending findings.
void run_index_rules(const Config& config, const SymbolIndex& index,
                     std::vector<Diagnostic>* out);

// ---------------------------------------------------------------------------
// Whole-tree scanning (shared by the CLI and the tests).
// ---------------------------------------------------------------------------

struct TreeScanOptions {
  /// Repo-relative files or directories to analyze (empty: caller
  /// resolved the defaults already).
  std::vector<std::string> paths;
  /// Worker threads for pass 1; <= 1 scans serially. Output is
  /// byte-identical either way.
  int jobs = 1;
};

struct TreeScanResult {
  std::vector<std::string> files;  // analyzed files, path-sorted
  std::size_t indexed = 0;         // files summarized for the index
  std::vector<Diagnostic> diags;
};

/// Collect repo-relative source paths under `rel` (file or directory),
/// skipping fixture corpora, build trees, and dot-directories.
bool collect_sources(const std::string& root, const std::string& rel,
                     std::vector<std::string>* out, std::string* error);

/// Analyze `options.paths` under `root` with every per-file pass, plus
/// the cross-file pass over an index of `config.index_dirs`. Returns
/// false (with `error` set) when a path cannot be read or walked.
bool scan_tree(const Config& config, const std::string& root,
               const TreeScanOptions& options, TreeScanResult* result,
               std::string* error);

}  // namespace pinsim::lint
