// pinsim_lint CLI: walk the repo, run every rule pass, print findings.
//
//   pinsim_lint [--root DIR] [path...]
//
// Paths are repo-relative files or directories (default: src tests
// bench examples tools). Directories are walked recursively for
// .cpp/.hpp/.h files; the lint's own fixture corpus (any directory
// named `fixtures`) and build trees are skipped. Exit status: 0 clean,
// 1 findings, 2 usage or IO error — same convention as the benches.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         name.rfind(".", 0) == 0;
}

/// Collect repo-relative source paths under `rel` (file or directory).
bool collect(const fs::path& root, const std::string& rel,
             std::vector<std::string>* out) {
  const fs::path full = root / rel;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(rel);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::cerr << "pinsim_lint: no such file or directory: " << full.string()
              << "\n";
    return false;
  }
  fs::recursive_directory_iterator it(full, ec), end;
  if (ec) {
    std::cerr << "pinsim_lint: cannot walk " << full.string() << ": "
              << ec.message() << "\n";
    return false;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) return false;
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && source_file(it->path())) {
      out->push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  return true;
}

int usage(int code) {
  std::cout << "usage: pinsim_lint [--root DIR] [path...]\n"
               "  Checks pinsim's determinism / ordering / index-safety /\n"
               "  engine-api / float-accumulation / hygiene invariants.\n"
               "  Paths are repo-relative (default: src tests bench\n"
               "  examples tools). Suppress a finding with\n"
               "  // pinsim-lint: allow(<rule>)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(2);
      root = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pinsim_lint: unknown option " << arg << "\n";
      return usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      std::error_code ec;
      if (fs::is_directory(fs::path(root) / dir, ec)) paths.push_back(dir);
    }
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (!collect(root, p, &files)) return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const pinsim::lint::Config config = pinsim::lint::default_config();
  std::vector<pinsim::lint::Diagnostic> diags;
  for (const std::string& file : files) {
    if (!pinsim::lint::analyze_path(config, root, file, &diags)) {
      std::cerr << "pinsim_lint: cannot read " << file << "\n";
      return 2;
    }
  }
  for (const auto& d : diags) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  }
  std::cout << "pinsim_lint: " << files.size() << " files, " << diags.size()
            << " finding" << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}
