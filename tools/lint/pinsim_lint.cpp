// pinsim_lint CLI: walk the repo, run every rule pass, print findings.
//
//   pinsim_lint [--root DIR] [--jobs N] [--json] [path...]
//
// Paths are repo-relative files or directories (default: src tests
// bench examples tools). Directories are walked recursively for
// .cpp/.hpp/.h files; the lint's own fixture corpus (any directory
// named `fixtures`) and build trees are skipped. On top of the
// per-file passes, the whole of src/ is summarized into the cross-file
// symbol index so shard-affinity / hot-path / quiet-funnel see whole
// call chains; --jobs parallelizes the per-file work (output is
// byte-identical to --jobs 1). --json emits findings, per-rule counts,
// and the scan wall time as a machine-readable report. Exit status:
// 0 clean, 1 findings, 2 usage or IO error — same convention as the
// benches.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

int usage(int code) {
  std::cout
      << "usage: pinsim_lint [--root DIR] [--jobs N] [--json] [path...]\n"
         "  Checks pinsim's determinism / ordering / index-safety /\n"
         "  engine-api / float-accumulation / hygiene invariants, plus\n"
         "  the cross-file shard-affinity / hot-path / quiet-funnel\n"
         "  reachability rules. Paths are repo-relative (default: src\n"
         "  tests bench examples tools). --jobs N parallelizes the scan\n"
         "  (same output as --jobs 1); --json emits a machine-readable\n"
         "  report. Suppress a finding with\n"
         "  // pinsim-lint: allow(<rule>)\n";
  return code;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const pinsim::lint::TreeScanResult& result, double wall_ms) {
  std::map<std::string, int> rule_counts;
  for (const auto& d : result.diags) ++rule_counts[d.rule];
  std::cout << "{\n";
  std::cout << "  \"files\": " << result.files.size() << ",\n";
  std::cout << "  \"indexed\": " << result.indexed << ",\n";
  std::cout << "  \"wall_ms\": " << wall_ms << ",\n";
  std::cout << "  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : rule_counts) {
    std::cout << (first ? "" : ", ") << "\"" << json_escape(rule)
              << "\": " << count;
    first = false;
  }
  std::cout << "},\n";
  std::cout << "  \"findings\": [";
  first = true;
  for (const auto& d : result.diags) {
    std::cout << (first ? "\n" : ",\n")
              << "    {\"file\": \"" << json_escape(d.file)
              << "\", \"line\": " << d.line << ", \"rule\": \""
              << json_escape(d.rule) << "\", \"message\": \""
              << json_escape(d.message) << "\"}";
    first = false;
  }
  std::cout << (first ? "]\n" : "\n  ]\n");
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  int jobs = pinsim::util::ThreadPool::default_jobs();
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(2);
      root = argv[++i];
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) return usage(2);
      try {
        jobs = std::stoi(argv[++i]);
      } catch (...) {
        return usage(2);
      }
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pinsim_lint: unknown option " << arg << "\n";
      return usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      std::error_code ec;
      if (fs::is_directory(fs::path(root) / dir, ec)) paths.push_back(dir);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const pinsim::lint::Config config = pinsim::lint::default_config();
  pinsim::lint::TreeScanOptions options;
  options.paths = paths;
  options.jobs = jobs;
  pinsim::lint::TreeScanResult result;
  std::string error;
  if (!pinsim::lint::scan_tree(config, root, options, &result, &error)) {
    std::cerr << "pinsim_lint: " << error << "\n";
    return 2;
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (json) {
    print_json(result, wall_ms);
  } else {
    for (const auto& d : result.diags) {
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
    std::cout << "pinsim_lint: " << result.files.size() << " files, "
              << result.diags.size() << " finding"
              << (result.diags.size() == 1 ? "" : "s") << "\n";
  }
  return result.diags.empty() ? 0 : 1;
}
