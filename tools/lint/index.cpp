#include "index.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "lexer.hpp"
#include "util/thread_pool.hpp"

namespace pinsim::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Pass 1: per-file summaries.
// ---------------------------------------------------------------------------

/// Identifiers that look like calls (`name(`) but are control flow or
/// operators; they never produce call edges.
const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",        "for",         "while",      "switch",
      "return",    "sizeof",      "alignof",    "alignas",
      "catch",     "throw",       "delete",     "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast",
      "decltype",  "noexcept",    "static_assert", "typeid",
      "co_await",  "co_return",   "co_yield",   "defined",
      "assert",    "__builtin_expect"};
  return kw;
}

/// Identifiers that cannot be the TYPE of a `Type var` declaration
/// binding (keywords, access specifiers, declaration heads).
const std::set<std::string>& non_type_words() {
  static const std::set<std::string> kw = {
      "return",   "new",      "delete",   "if",       "else",
      "case",     "goto",     "using",    "typedef",  "typename",
      "class",    "struct",   "enum",     "union",    "namespace",
      "template", "operator", "const",    "constexpr", "consteval",
      "constinit", "static",  "inline",   "virtual",  "explicit",
      "friend",   "public",   "private",  "protected", "throw",
      "sizeof",   "mutable",  "volatile", "register", "extern",
      "co_return", "co_yield", "co_await", "do",      "while",
      "for",      "switch",   "catch",    "break",    "continue"};
  return kw;
}

const std::set<std::string>& log_sink_macros() {
  static const std::set<std::string> macros = {
      "PINSIM_LOG",  "PINSIM_TRACE", "PINSIM_DEBUG",
      "PINSIM_INFO", "PINSIM_WARN",  "PINSIM_ERROR"};
  return macros;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool in_dirs(std::string_view path, const std::vector<std::string>& dirs) {
  for (const std::string& dir : dirs) {
    if (path_matches(path, dir)) return true;
  }
  return false;
}

/// Walks one file's token stream and produces its FileSummary. The
/// scope stack tracks namespace/class braces so definitions are only
/// recognized where C++ allows them; function bodies are consumed by a
/// dedicated scanner that records calls, subscript writes, hot-path
/// risk sites, and declaration-bound touches.
class Summarizer {
 public:
  Summarizer(std::string_view path, const LexResult& lexed)
      : path_(path), lexed_(lexed) {}

  FileSummary run();

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kBlock };
    Kind kind;
    std::string name;
  };

  const std::vector<Token>& toks() const { return lexed_.tokens; }
  const Token* at(std::size_t i) const {
    return i < toks().size() ? &toks()[i] : nullptr;
  }
  bool is_ident(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Token::kIdent && t->text == text;
  }
  bool is_punct(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Token::kPunct && t->text == text;
  }

  /// Index one past the matcher of the opener at `open` ('(' / '[' /
  /// '{' respectively). All three nest through each other.
  std::size_t skip_group(std::size_t open) const;
  /// Index one past a '<...>' group; bails at ';' (comparison, not a
  /// template argument list).
  std::size_t skip_angles(std::size_t open) const;

  std::set<std::string> annotations_at(int line) const {
    const auto it = lexed_.annotations.find(line);
    return it == lexed_.annotations.end() ? std::set<std::string>{}
                                          : it->second;
  }

  void collect_bindings();
  void scan_body(std::size_t begin, std::size_t end, FunctionDef* fn);
  /// Member `post(...)` at ident index `p`: record a MailboxLambda for
  /// each top-level lambda argument unless the destination (second)
  /// argument is the literal 0.
  void extract_mailbox(std::size_t p, const std::string& enclosing);
  void scan_mailbox_body(std::size_t begin, std::size_t end,
                         MailboxLambda* ml);
  /// Spans (as [first, last) token ranges) of member post(...) calls
  /// inside [begin, end), including the post ident itself.
  std::vector<std::pair<std::size_t, std::size_t>> post_spans(
      std::size_t begin, std::size_t end) const;

  std::string_view path_;
  const LexResult& lexed_;
  FileSummary out_;
};

std::size_t Summarizer::skip_group(std::size_t open) const {
  int depth = 0;
  std::size_t i = open;
  for (; i < toks().size(); ++i) {
    const Token& t = toks()[i];
    if (t.kind != Token::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

std::size_t Summarizer::skip_angles(std::size_t open) const {
  int depth = 0;
  std::size_t i = open;
  for (; i < toks().size(); ++i) {
    const Token& t = toks()[i];
    if (t.kind != Token::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ";") {
      break;  // a comparison, not template arguments
    }
  }
  return i;
}

void Summarizer::collect_bindings() {
  // `Type [*|&|const]* var` followed by a declarator terminator binds
  // var -> Type for the whole file. The shapes cover locals, members,
  // parameters, and range-for bindings; collisions keep the last
  // declaration, which is the right approximation for a per-file map.
  for (std::size_t i = 0; i + 1 < toks().size(); ++i) {
    const Token& type = toks()[i];
    if (type.kind != Token::kIdent) continue;
    if (non_type_words().count(type.text) != 0) continue;
    // A field access `obj.Type` is not a declaration head.
    if (i > 0 && (is_punct(i - 1, ".") || is_punct(i - 1, "->"))) continue;
    std::size_t j = i + 1;
    while (is_punct(j, "*") || is_punct(j, "&") || is_ident(j, "const")) ++j;
    const Token* var = at(j);
    if (var == nullptr || var->kind != Token::kIdent) continue;
    if (non_type_words().count(var->text) != 0) continue;
    const Token* term = at(j + 1);
    if (term == nullptr || term->kind != Token::kPunct) continue;
    const std::string& tt = term->text;
    if (tt == ";" || tt == "=" || tt == "(" || tt == "{" || tt == "," ||
        tt == ")" || tt == ":") {
      out_.bindings[var->text] = type.text;
    }
  }
}

std::vector<std::pair<std::size_t, std::size_t>> Summarizer::post_spans(
    std::size_t begin, std::size_t end) const {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t j = begin; j < end; ++j) {
    if (!is_ident(j, "post") || !is_punct(j + 1, "(")) continue;
    if (j < 1 || !(is_punct(j - 1, ".") || is_punct(j - 1, "->"))) continue;
    spans.emplace_back(j, std::min(skip_group(j + 1), end));
  }
  return spans;
}

void Summarizer::scan_body(std::size_t begin, std::size_t end,
                           FunctionDef* fn) {
  const auto posts = post_spans(begin, end);
  const auto in_post = [&](std::size_t j) {
    for (const auto& [a, b] : posts) {
      if (j >= a && j < b) return true;
    }
    return false;
  };

  for (std::size_t j = begin; j < end; ++j) {
    const Token& t = toks()[j];
    if (t.kind != Token::kIdent) continue;
    const std::string& s = t.text;
    const bool member =
        j >= 1 && (is_punct(j - 1, ".") || is_punct(j - 1, "->"));

    if (s == "new" && !(j >= 1 && is_ident(j - 1, "operator"))) {
      fn->risks.push_back(RiskSite{RiskSite::kNew, "", t.line});
      continue;
    }
    if (s == "make_unique" || s == "make_shared") {
      fn->risks.push_back(RiskSite{s == "make_unique" ? RiskSite::kMakeUnique
                                                      : RiskSite::kMakeShared,
                                   "", t.line});
      continue;
    }
    if (s == "function" && j >= 2 && is_punct(j - 1, "::") &&
        is_ident(j - 2, "std")) {
      fn->risks.push_back(RiskSite{RiskSite::kStdFunction, "", t.line});
      continue;
    }

    if (is_punct(j + 1, "(")) {
      const std::string receiver =
          member && j >= 2 && toks()[j - 2].kind == Token::kIdent
              ? toks()[j - 2].text
              : "";
      if (log_sink_macros().count(s) != 0) {
        fn->risks.push_back(RiskSite{RiskSite::kLog, s, t.line});
        continue;
      }
      if (member && (s == "push_back" || s == "emplace_back")) {
        fn->risks.push_back(RiskSite{RiskSite::kPushBack, receiver, t.line});
        continue;
      }
      if (member && s == "reserve") {
        out_.reserved.insert({fn->klass, receiver});
        continue;
      }
      if (control_keywords().count(s) != 0) continue;
      CallSite call;
      call.name = s;
      call.member = member;
      call.receiver = receiver;
      call.in_post = in_post(j);
      call.line = t.line;
      if (!member && j >= 2 && is_punct(j - 1, "::") &&
          toks()[j - 2].kind == Token::kIdent) {
        if (toks()[j - 2].text == "std") continue;  // never resolves
        call.qualifier = toks()[j - 2].text;
      }
      fn->calls.push_back(call);
      if (member && s == "post") extract_mailbox(j, fn->name);
      continue;
    }

    // `var.` / `var->` touch of a declaration-bound variable.
    if ((is_punct(j + 1, ".") || is_punct(j + 1, "->")) && !member &&
        !(j >= 1 && is_punct(j - 1, "::"))) {
      const auto bound = out_.bindings.find(s);
      if (bound != out_.bindings.end()) {
        fn->touches.push_back(
            BoundTouch{s, bound->second, in_post(j), t.line});
      }
    }

    // `name[...] =` / `name[...] op=` subscript writes.
    if (is_punct(j + 1, "[")) {
      std::size_t m = skip_group(j + 1);
      while (is_punct(m, "[")) m = skip_group(m);
      const bool plain = is_punct(m, "=") && !is_punct(m + 1, "=");
      const bool compound =
          (is_punct(m, "+") || is_punct(m, "-") || is_punct(m, "*") ||
           is_punct(m, "/") || is_punct(m, "|") || is_punct(m, "&") ||
           is_punct(m, "^")) &&
          is_punct(m + 1, "=");
      if (plain || compound) {
        fn->writes.push_back(SubscriptWrite{s, t.line});
      }
    }
  }
}

void Summarizer::extract_mailbox(std::size_t p, const std::string& enclosing) {
  const std::size_t open = p + 1;
  const std::size_t close = skip_group(open);  // one past ')'
  // Top-level commas and lambda starts inside the argument list.
  std::vector<std::size_t> commas;
  std::vector<std::size_t> lambdas;
  int depth = 0;
  for (std::size_t j = open; j < close; ++j) {
    const Token& t = toks()[j];
    if (t.kind != Token::kPunct) continue;
    if (t.text == "(" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "}") {
      --depth;
    } else if (t.text == "[") {
      if (depth == 1 && (is_punct(j - 1, "(") || is_punct(j - 1, ","))) {
        lambdas.push_back(j);
      }
      ++depth;
    } else if (t.text == "]") {
      --depth;
    } else if (t.text == "," && depth == 1) {
      commas.push_back(j);
    }
  }
  // The mailbox signature is post(src, dst, delay, callback): a
  // destination that is literally the token `0` is the sanctioned
  // post-back to the shard-0 front end, not a cross-shard callback.
  if (commas.size() >= 2) {
    const std::size_t a = commas[0] + 1;
    const std::size_t b = commas[1];
    if (b == a + 1 && toks()[a].kind == Token::kNumber &&
        toks()[a].text == "0") {
      return;
    }
  }
  for (const std::size_t ls : lambdas) {
    std::size_t j = skip_group(ls);                    // past capture list
    if (is_punct(j, "(")) j = skip_group(j);           // past parameters
    while (is_ident(j, "mutable") || is_ident(j, "noexcept")) ++j;
    if (!is_punct(j, "{")) continue;
    const std::size_t body_end = skip_group(j);
    MailboxLambda ml;
    ml.file = std::string(path_);
    ml.enclosing = enclosing;
    ml.line = toks()[p].line;
    scan_mailbox_body(j + 1, body_end - 1, &ml);
    out_.mailbox.push_back(std::move(ml));
  }
}

void Summarizer::scan_mailbox_body(std::size_t begin, std::size_t end,
                                   MailboxLambda* ml) {
  const auto posts = post_spans(begin, end);
  std::size_t j = begin;
  while (j < end) {
    // Skip nested mailbox posts entirely: posting back through the
    // mailbox is the sanctioned way to reach shard-0 state.
    bool skipped = false;
    for (const auto& [a, b] : posts) {
      if (j == a) {
        j = b;
        skipped = true;
        break;
      }
    }
    if (skipped) continue;
    const Token& t = toks()[j];
    if (t.kind != Token::kIdent) {
      ++j;
      continue;
    }
    const std::string& s = t.text;
    const bool member =
        j >= 1 && (is_punct(j - 1, ".") || is_punct(j - 1, "->"));
    if (is_punct(j + 1, "(") && control_keywords().count(s) == 0 &&
        log_sink_macros().count(s) == 0) {
      CallSite call;
      call.name = s;
      call.member = member;
      call.receiver = member && j >= 2 && toks()[j - 2].kind == Token::kIdent
                          ? toks()[j - 2].text
                          : "";
      call.line = t.line;
      if (!member && j >= 2 && is_punct(j - 1, "::") &&
          toks()[j - 2].kind == Token::kIdent) {
        if (toks()[j - 2].text == "std") {
          ++j;
          continue;
        }
        call.qualifier = toks()[j - 2].text;
      }
      ml->calls.push_back(call);
    } else if ((is_punct(j + 1, ".") || is_punct(j + 1, "->")) && !member &&
               !(j >= 1 && is_punct(j - 1, "::"))) {
      const auto bound = out_.bindings.find(s);
      if (bound != out_.bindings.end()) {
        ml->touches.push_back(BoundTouch{s, bound->second, false, t.line});
      }
    }
    ++j;
  }
}

FileSummary Summarizer::run() {
  out_.path = std::string(path_);
  out_.allows = lexed_.allows;
  collect_bindings();

  std::vector<Scope> scopes;
  std::size_t i = 0;
  while (i < toks().size()) {
    const Token& t = toks()[i];
    if (t.kind == Token::kDirective || t.kind == Token::kLiteral ||
        t.kind == Token::kNumber) {
      ++i;
      continue;
    }
    if (t.kind == Token::kPunct) {
      if (t.text == "{") {
        scopes.push_back(Scope{Scope::kBlock, ""});
      } else if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
      }
      ++i;
      continue;
    }

    const std::string& w = t.text;
    if (w == "template" && is_punct(i + 1, "<")) {
      i = skip_angles(i + 1);
      continue;
    }
    if (w == "enum") {
      // `enum [class] Name [: type] { ... };` — consume wholesale so
      // the `class` keyword and enumerator list stay out of the walk.
      std::size_t j = i + 1;
      while (j < toks().size() && !is_punct(j, "{") && !is_punct(j, ";")) ++j;
      i = is_punct(j, "{") ? skip_group(j) : j + 1;
      continue;
    }
    if (w == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (j < toks().size() &&
             (toks()[j].kind == Token::kIdent || is_punct(j, "::"))) {
        if (toks()[j].kind == Token::kIdent) name = toks()[j].text;
        ++j;
      }
      if (is_punct(j, "{")) {
        scopes.push_back(Scope{Scope::kNamespace, name});
        i = j + 1;
      } else {
        while (j < toks().size() && !is_punct(j, ";")) ++j;  // alias
        i = j + 1;
      }
      continue;
    }
    if (w == "class" || w == "struct" || w == "union") {
      std::size_t j = i + 1;
      std::string name;
      while (j < toks().size() && toks()[j].kind == Token::kIdent) {
        name = toks()[j].text;
        ++j;
        if (is_punct(j, "<")) j = skip_angles(j);  // specialization
      }
      if (is_punct(j, ":")) {  // base clause
        while (j < toks().size() && !is_punct(j, "{") && !is_punct(j, ";")) {
          if (is_punct(j, "<")) {
            j = skip_angles(j);
            continue;
          }
          ++j;
        }
      }
      if (is_punct(j, "{") && !name.empty()) {
        ClassDef cd;
        cd.name = name;
        cd.file = std::string(path_);
        cd.line = t.line;
        cd.annotations = annotations_at(t.line);
        out_.classes.push_back(std::move(cd));
        scopes.push_back(Scope{Scope::kClass, name});
        i = j + 1;
        continue;
      }
      ++i;  // forward declaration or elaborated-type variable
      continue;
    }

    // Function definitions are only recognized at namespace / class
    // scope; anything inside an unrecognized block (initializer
    // braces, enum bodies that slipped through) is skipped.
    const bool def_scope = scopes.empty() ||
                           scopes.back().kind == Scope::kNamespace ||
                           scopes.back().kind == Scope::kClass;
    if (!def_scope ||
        (w != "operator" && (control_keywords().count(w) != 0 ||
                             non_type_words().count(w) != 0))) {
      ++i;
      continue;
    }

    std::string name = w;
    std::size_t open = i + 1;
    if (w == "operator") {
      // `operator<`, `operator+=`, `operator bool`, ... — glue the
      // spelling onto the name and find the parameter list.
      std::size_t j = i + 1;
      while (j < toks().size() && !is_punct(j, "(") && !is_punct(j, ";") &&
             !is_punct(j, "{")) {
        name += toks()[j].text;
        ++j;
      }
      if (!is_punct(j, "(")) {
        i = j;
        continue;
      }
      open = j;
    } else if (!is_punct(i + 1, "(")) {
      ++i;
      continue;
    }

    // Reject expression contexts (`= f(...)` initializers, macro
    // arguments, casts); accept declaration heads.
    if (i > 0) {
      const Token& prev = toks()[i - 1];
      if (prev.kind == Token::kNumber || prev.kind == Token::kLiteral) {
        ++i;
        continue;
      }
      if (prev.kind == Token::kPunct) {
        const std::string& pt = prev.text;
        // `{` and `:` admit in-class constructors, whose name directly
        // follows the class brace or an access specifier.
        const bool ok = pt == ";" || pt == "}" || pt == "*" || pt == "&" ||
                        pt == ">" || pt == "::" || pt == "~" || pt == "{" ||
                        pt == ":";
        if (!ok) {
          ++i;
          continue;
        }
      }
    }

    std::string klass =
        (!scopes.empty() && scopes.back().kind == Scope::kClass)
            ? scopes.back().name
            : "";
    const bool dtor = i >= 1 && is_punct(i - 1, "~");
    const std::size_t qi = dtor ? i - 1 : i;
    if (qi >= 2 && is_punct(qi - 1, "::") &&
        toks()[qi - 2].kind == Token::kIdent) {
      klass = toks()[qi - 2].text;
    }
    if (dtor) name = "~" + name;

    std::size_t j = skip_group(open);  // past the parameter list
    bool reject = false;
    while (j < toks().size()) {
      if (toks()[j].kind == Token::kIdent) {
        const std::string& s = toks()[j].text;
        if (s == "const" || s == "noexcept" || s == "override" ||
            s == "final" || s == "mutable" || s == "volatile" || s == "try") {
          ++j;
          continue;
        }
        reject = true;  // `int x(3), y(4);` style — not a definition
        break;
      }
      if (is_punct(j, "&")) {  // ref-qualifiers (&& is two tokens)
        ++j;
        continue;
      }
      if (is_punct(j, "(")) {  // noexcept(...)
        j = skip_group(j);
        continue;
      }
      if (is_punct(j, "->")) {  // trailing return type
        ++j;
        while (j < toks().size() && !is_punct(j, "{") && !is_punct(j, ";") &&
               !is_punct(j, "=")) {
          if (is_punct(j, "<")) {
            j = skip_angles(j);
            continue;
          }
          ++j;
        }
        continue;
      }
      break;
    }
    if (reject) {
      ++i;
      continue;
    }
    if (is_punct(j, ":")) {
      // Constructor member-init list: `name(args), base(args) {`.
      ++j;
      while (j < toks().size()) {
        while (j < toks().size() &&
               (toks()[j].kind == Token::kIdent || is_punct(j, "::"))) {
          ++j;
        }
        if (is_punct(j, "<")) j = skip_angles(j);
        if (is_punct(j, "(") || is_punct(j, "{")) {
          j = skip_group(j);
        } else {
          break;
        }
        if (is_punct(j, ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (is_punct(j, "=") || is_punct(j, ";")) {
      // `= default` / `= delete` / pure virtual / plain declaration.
      while (j < toks().size() && !is_punct(j, ";")) ++j;
      i = j + 1;
      continue;
    }
    if (!is_punct(j, "{")) {
      ++i;
      continue;
    }

    const std::size_t body_end = skip_group(j);
    FunctionDef fn;
    fn.name = name;
    fn.klass = klass;
    fn.file = std::string(path_);
    fn.line = t.line;
    fn.annotations = annotations_at(t.line);
    scan_body(j + 1, body_end - 1, &fn);
    out_.functions.push_back(std::move(fn));
    i = body_end;
  }
  return out_;
}

}  // namespace

FileSummary summarize_file(std::string_view path, std::string_view contents) {
  const LexResult lexed = lex(contents);
  return Summarizer(path, lexed).run();
}

// ---------------------------------------------------------------------------
// Pass 2: the merged index and the reachability rules.
// ---------------------------------------------------------------------------

SymbolIndex SymbolIndex::build(std::vector<FileSummary> summaries) {
  SymbolIndex index;
  index.files = std::move(summaries);
  for (std::size_t fi = 0; fi < index.files.size(); ++fi) {
    const FileSummary& file = index.files[fi];
    index.file_id[file.path] = static_cast<int>(fi);
    for (const FunctionDef& fn : file.functions) {
      index.by_name[fn.name].push_back(
          static_cast<int>(index.functions.size()));
      index.functions.push_back(&fn);
    }
    for (const ClassDef& cd : file.classes) {
      index.class_annotations[cd.name].insert(cd.annotations.begin(),
                                              cd.annotations.end());
    }
    index.reserved.insert(file.reserved.begin(), file.reserved.end());
  }
  return index;
}

int SymbolIndex::resolve(const CallSite& call, const std::string& from_file,
                         const std::string& from_class) const {
  const auto named = by_name.find(call.name);
  if (named == by_name.end()) return -1;
  const std::vector<int>& ids = named->second;

  const auto unique_in_class = [&](const std::string& klass) -> int {
    int found = -1;
    for (const int id : ids) {
      if (functions[id]->klass != klass) continue;
      if (found >= 0) return -1;  // overload set inside the class
      found = id;
    }
    return found;
  };

  if (!call.qualifier.empty()) return unique_in_class(call.qualifier);
  if (call.member && !call.receiver.empty()) {
    const auto fid = file_id.find(from_file);
    if (fid != file_id.end()) {
      const auto& bindings = files[fid->second].bindings;
      const auto bound = bindings.find(call.receiver);
      if (bound != bindings.end()) {
        const int id = unique_in_class(bound->second);
        if (id >= 0) return id;
      }
    }
  }
  if (!call.member && !from_class.empty()) {
    const int id = unique_in_class(from_class);
    if (id >= 0) return id;  // unqualified call inside a method
  }
  return ids.size() == 1 ? ids[0] : -1;
}

namespace {

class IndexChecker {
 public:
  IndexChecker(const Config& config, const SymbolIndex& index,
               std::vector<Diagnostic>* out)
      : config_(config), index_(index), out_(out) {}

  void run() {
    check_hot_path();
    check_quiet_funnel();
    check_shard_affinity();
  }

 private:
  const FunctionDef& fn(int id) const { return *index_.functions[id]; }
  int resolve(const CallSite& call, int from) const {
    return index_.resolve(call, fn(from).file, fn(from).klass);
  }

  void report(const std::string& rule, const std::string& file, int line,
              std::string message) {
    const auto fid = index_.file_id.find(file);
    if (fid != index_.file_id.end()) {
      const auto& allows = index_.files[fid->second].allows;
      const auto it = allows.find(line);
      if (it != allows.end() &&
          (it->second.count(rule) != 0 || it->second.count("all") != 0)) {
        return;
      }
    }
    out_->push_back(Diagnostic{rule, file, line, std::move(message)});
  }

  void check_hot_path();
  void check_quiet_funnel();
  void check_shard_affinity();

  const Config& config_;
  const SymbolIndex& index_;
  std::vector<Diagnostic>* out_;
};

void IndexChecker::check_hot_path() {
  const int n = static_cast<int>(index_.functions.size());
  std::vector<int> root(n, -1);    // hot entry that first reached the fn
  std::vector<int> parent(n, -1);  // BFS predecessor, for the message
  std::vector<int> work;
  for (int id = 0; id < n; ++id) {
    if (fn(id).annotations.count("hot") != 0) {
      root[id] = id;
      work.push_back(id);
    }
  }
  for (std::size_t qi = 0; qi < work.size(); ++qi) {
    const int id = work[qi];
    for (const CallSite& call : fn(id).calls) {
      const int tgt = resolve(call, id);
      if (tgt < 0 || root[tgt] >= 0) continue;
      root[tgt] = root[id];
      parent[tgt] = id;
      work.push_back(tgt);
    }
  }
  for (int id = 0; id < n; ++id) {
    if (root[id] < 0) continue;
    const FunctionDef& f = fn(id);
    if (!in_dirs(f.file, config_.hot_path_dirs)) continue;
    std::string where = "reachable from hot entry '" + fn(root[id]).name + "'";
    if (parent[id] >= 0 && parent[id] != root[id]) {
      where += " via '" + fn(parent[id]).name + "'";
    }
    for (const RiskSite& risk : f.risks) {
      switch (risk.kind) {
        case RiskSite::kNew:
          report("hot-path", f.file, risk.line,
                 "`new` in '" + f.name + "' (" + where +
                     ") — allocate up front or draw from a pool; a heap "
                     "round-trip on the tick path dominates the quiet-core "
                     "fast-forward savings");
          break;
        case RiskSite::kMakeUnique:
        case RiskSite::kMakeShared:
          report("hot-path", f.file, risk.line,
                 std::string(risk.kind == RiskSite::kMakeUnique
                                 ? "make_unique"
                                 : "make_shared") +
                     " allocates in '" + f.name + "' (" + where +
                     ") — allocate up front or draw from a pool");
          break;
        case RiskSite::kPushBack:
          if (index_.reserved.count({f.klass, risk.detail}) != 0 ||
              index_.reserved.count({"", risk.detail}) != 0) {
            break;
          }
          report("hot-path", f.file, risk.line,
                 "push_back into '" + risk.detail +
                     "' which is never reserve()d (" + where +
                     ") — growth reallocates inside the hot loop; reserve "
                     "capacity where the container is sized");
          break;
        case RiskSite::kStdFunction:
          report("hot-path", f.file, risk.line,
                 "std::function in '" + f.name + "' (" + where +
                     ") — it type-erases through the heap; use "
                     "util::MoveFunction or a template parameter");
          break;
        case RiskSite::kLog:
          report("hot-path", f.file, risk.line,
                 risk.detail + " in '" + f.name + "' (" + where +
                     ") — the sink formats arguments even when filtered; "
                     "hoist it off the hot path or trace into a "
                     "preallocated buffer");
          break;
      }
    }
  }
}

void IndexChecker::check_quiet_funnel() {
  const Config::QuietFunnel& qf = config_.quiet_funnel;
  if (qf.funnel.empty()) return;
  const int n = static_cast<int>(index_.functions.size());

  const auto is_state = [&](const std::string& name) {
    for (const std::string& prefix : qf.state_prefixes) {
      if (starts_with(name, prefix)) return true;
    }
    return false;
  };
  const auto writes_state = [&](int id) {
    for (const SubscriptWrite& w : fn(id).writes) {
      if (is_state(w.name)) return true;
    }
    return false;
  };
  const auto blocked = [&](int id) {
    return fn(id).name == qf.funnel ||
           fn(id).annotations.count("quiet-mutator") != 0;
  };

  // Forward closure from entry points (functions nothing in the index
  // calls), never traversing THROUGH the funnel or an annotated
  // mutator: anything marked here can run without exit_quiet() having
  // run first.
  std::vector<int> callers(n, 0);
  for (int id = 0; id < n; ++id) {
    for (const CallSite& call : fn(id).calls) {
      const int tgt = resolve(call, id);
      if (tgt >= 0) ++callers[tgt];
    }
  }
  std::vector<char> not_funneled(n, 0);
  std::vector<int> work;
  for (int id = 0; id < n; ++id) {
    if (callers[id] == 0 && !blocked(id)) {
      not_funneled[id] = 1;
      work.push_back(id);
    }
  }
  for (std::size_t qi = 0; qi < work.size(); ++qi) {
    for (const CallSite& call : fn(work[qi]).calls) {
      const int tgt = resolve(call, work[qi]);
      if (tgt < 0 || not_funneled[tgt] != 0 || blocked(tgt)) continue;
      not_funneled[tgt] = 1;
      work.push_back(tgt);
    }
  }

  for (int id = 0; id < n; ++id) {
    const FunctionDef& f = fn(id);
    if (!in_dirs(f.file, qf.dirs)) continue;
    if (f.name == qf.funnel) continue;
    if (f.annotations.count("quiet-mutator") != 0) {
      // A stale annotation is itself a finding: the audit claim must
      // be about something.
      bool touches_quiet_state = writes_state(id);
      for (const CallSite& call : f.calls) {
        if (touches_quiet_state) break;
        if (call.name == qf.funnel) touches_quiet_state = true;
        const int tgt = resolve(call, id);
        if (tgt >= 0 && writes_state(tgt)) touches_quiet_state = true;
      }
      if (!touches_quiet_state) {
        report("quiet-funnel", f.file, f.line,
               "'" + f.name +
                   "' is annotated quiet-mutator but neither writes "
                   "quiet-window state nor calls " +
                   qf.funnel + "() — drop the stale annotation");
      }
      continue;
    }
    if (!writes_state(id) || not_funneled[id] == 0) continue;
    for (const SubscriptWrite& w : f.writes) {
      if (!is_state(w.name)) continue;
      report("quiet-funnel", f.file, w.line,
             "'" + f.name + "' writes quiet-window state '" + w.name +
                 "' but is reachable without passing through " + qf.funnel +
                 "() — fast-forward bookkeeping can be skipped; call " +
                 qf.funnel +
                 "() first, or annotate the function quiet-mutator after "
                 "auditing the path");
    }
  }
}

void IndexChecker::check_shard_affinity() {
  const auto owned_class = [&](const std::string& name) {
    const auto it = index_.class_annotations.find(name);
    if (it == index_.class_annotations.end()) return false;
    for (const std::string& a : it->second) {
      if (starts_with(a, "shard-owner")) return true;
    }
    return false;
  };
  const auto owned_fn = [&](int id) {
    for (const std::string& a : fn(id).annotations) {
      if (starts_with(a, "shard-owner")) return true;
    }
    return !fn(id).klass.empty() && owned_class(fn(id).klass);
  };

  std::set<std::pair<std::string, int>> reported;  // (file, line) dedupe
  const auto flag = [&](const std::string& file, int line,
                        const std::string& what, const std::string& root) {
    if (!reported.insert({file, line}).second) return;
    report("shard-affinity", file, line,
           what + " on a cross-shard path (mailbox callback posted at " +
               root +
               ") — shard-0-owned state may only be reached by posting "
               "back through the mailbox");
  };

  for (const FileSummary& file : index_.files) {
    if (!in_dirs(file.path, config_.shard_affinity_dirs)) continue;
    for (const MailboxLambda& ml : file.mailbox) {
      const std::string root =
          ml.file + ":" + std::to_string(ml.line) + " in '" + ml.enclosing +
          "'";
      // Direct touches / calls inside the callback body.
      for (const BoundTouch& touch : ml.touches) {
        if (owned_class(touch.type)) {
          flag(ml.file, touch.line,
               "'" + touch.var + "' ('" + touch.type +
                   "') is shard-0-owned state touched",
               root);
        }
      }
      std::vector<int> work;
      std::set<int> seen;
      for (const CallSite& call : ml.calls) {
        // Receiver-typed touches already flag bound receivers; only
        // resolve the call edge here.
        const int tgt = index_.resolve(call, ml.file, "");
        if (tgt < 0) continue;
        if (owned_fn(tgt)) {
          const FunctionDef& target = fn(tgt);
          const std::string label = target.klass.empty()
                                        ? target.name
                                        : target.klass + "::" + target.name;
          flag(ml.file, call.line, "call to shard-0-owned '" + label + "'",
               root);
        } else if (seen.insert(tgt).second) {
          work.push_back(tgt);
        }
      }
      for (std::size_t qi = 0; qi < work.size(); ++qi) {
        const int id = work[qi];
        const FunctionDef& f = fn(id);
        for (const BoundTouch& touch : f.touches) {
          if (touch.in_post) continue;  // posting back is sanctioned
          if (owned_class(touch.type)) {
            flag(f.file, touch.line,
                 "'" + touch.var + "' ('" + touch.type +
                     "') is shard-0-owned state touched in '" + f.name + "'",
                 root);
          }
        }
        for (const CallSite& call : f.calls) {
          if (call.in_post) continue;
          const int tgt = resolve(call, id);
          if (tgt >= 0) {
            if (owned_fn(tgt)) {
              const FunctionDef& target = fn(tgt);
              const std::string label =
                  target.klass.empty() ? target.name
                                       : target.klass + "::" + target.name;
              flag(f.file, call.line,
                   "call to shard-0-owned '" + label + "'", root);
            } else if (seen.insert(tgt).second) {
              work.push_back(tgt);
            }
          }
        }
      }
    }
  }
}

}  // namespace

void run_index_rules(const Config& config, const SymbolIndex& index,
                     std::vector<Diagnostic>* out) {
  IndexChecker(config, index, out).run();
}

// ---------------------------------------------------------------------------
// Whole-tree scanning.
// ---------------------------------------------------------------------------

namespace {

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         name.rfind('.', 0) == 0;
}

struct FileResult {
  bool ok = true;
  std::vector<Diagnostic> diags;
  FileSummary summary;
  bool has_summary = false;
};

FileResult scan_one(const Config& config, const std::string& root,
                    const std::string& rel, bool analyze, bool index) {
  FileResult result;
  const std::string full = root.empty() ? rel : root + "/" + rel;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    result.ok = false;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  if (analyze) analyze_file(config, rel, contents, &result.diags);
  if (index) {
    result.summary = summarize_file(rel, contents);
    result.has_summary = true;
  }
  return result;
}

}  // namespace

bool collect_sources(const std::string& root, const std::string& rel,
                     std::vector<std::string>* out, std::string* error) {
  const fs::path full = fs::path(root) / rel;
  std::error_code ec;
  if (fs::is_regular_file(full, ec)) {
    out->push_back(rel);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    if (error != nullptr) {
      *error = "no such file or directory: " + full.string();
    }
    return false;
  }
  fs::recursive_directory_iterator it(full, ec), end;
  if (ec) {
    if (error != nullptr) {
      *error = "cannot walk " + full.string() + ": " + ec.message();
    }
    return false;
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      if (error != nullptr) {
        *error = "cannot walk " + full.string() + ": " + ec.message();
      }
      return false;
    }
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && source_file(it->path())) {
      out->push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  return true;
}

bool scan_tree(const Config& config, const std::string& root,
               const TreeScanOptions& options, TreeScanResult* result,
               std::string* error) {
  std::vector<std::string> analyze;
  for (const std::string& p : options.paths) {
    if (!collect_sources(root, p, &analyze, error)) return false;
  }
  std::sort(analyze.begin(), analyze.end());
  analyze.erase(std::unique(analyze.begin(), analyze.end()), analyze.end());

  // The index always covers config.index_dirs in full, so reachability
  // sees whole call chains even when only a subset is analyzed.
  std::vector<std::string> indexed;
  for (const std::string& dir : config.index_dirs) {
    std::string rel = dir;
    while (!rel.empty() && rel.back() == '/') rel.pop_back();
    std::error_code ec;
    if (!fs::is_directory(fs::path(root) / rel, ec)) continue;
    if (!collect_sources(root, rel, &indexed, error)) return false;
  }
  std::sort(indexed.begin(), indexed.end());
  indexed.erase(std::unique(indexed.begin(), indexed.end()), indexed.end());

  // Path-sorted union; each file is read and lexed once per concern.
  struct Entry {
    std::string path;
    bool analyze = false;
    bool index = false;
  };
  std::vector<Entry> entries;
  std::size_t ai = 0, ii = 0;
  while (ai < analyze.size() || ii < indexed.size()) {
    if (ii >= indexed.size() ||
        (ai < analyze.size() && analyze[ai] < indexed[ii])) {
      entries.push_back(Entry{analyze[ai++], true, false});
    } else if (ai >= analyze.size() || indexed[ii] < analyze[ai]) {
      entries.push_back(Entry{indexed[ii++], false, true});
    } else {
      entries.push_back(Entry{analyze[ai], true, true});
      ++ai;
      ++ii;
    }
  }

  std::vector<FileResult> results(entries.size());
  if (options.jobs > 1) {
    util::ThreadPool pool(options.jobs);
    std::vector<std::future<FileResult>> futures;
    futures.reserve(entries.size());
    for (const Entry& e : entries) {
      futures.push_back(pool.submit([&config, &root, e] {
        return scan_one(config, root, e.path, e.analyze, e.index);
      }));
    }
    for (std::size_t k = 0; k < futures.size(); ++k) {
      results[k] = futures[k].get();
    }
  } else {
    for (std::size_t k = 0; k < entries.size(); ++k) {
      results[k] =
          scan_one(config, root, entries[k].path, entries[k].analyze,
                   entries[k].index);
    }
  }

  std::vector<FileSummary> summaries;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    if (!results[k].ok) {
      if (error != nullptr) *error = "cannot read " + entries[k].path;
      return false;
    }
    for (Diagnostic& d : results[k].diags) {
      result->diags.push_back(std::move(d));
    }
    if (results[k].has_summary) {
      summaries.push_back(std::move(results[k].summary));
      ++result->indexed;
    }
  }
  result->files = std::move(analyze);

  const SymbolIndex index = SymbolIndex::build(std::move(summaries));
  run_index_rules(config, index, &result->diags);
  std::stable_sort(result->diags.begin(), result->diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return true;
}

}  // namespace pinsim::lint
