// pinsim-lint: an in-tree determinism & index-safety analyzer.
//
// Every result in this reproduction rests on bit-identical replay: the
// figure benches are byte-compared at fixed seeds across PRs, so a
// single wall-clock read or an iteration over an unordered container
// inside the simulated world silently invalidates every golden hash.
// pinsim-lint turns those project invariants into machine-checkable
// rules: a small lexer strips comments and string literals, then rule
// passes walk the token stream and report (rule, file, line)
// diagnostics. No external dependencies — the analyzer builds with the
// same toolchain as the simulator and runs as a tier-1 ctest.
//
// Rule groups (each suppressible with `// pinsim-lint: allow(<rule>)`
// on the offending line, or on a whole-line comment directly above it):
//
//   determinism   wall clocks, time()/rand()/getenv()/random_device,
//                 and iteration over std::unordered_{map,set}, inside
//                 the directories that feed simulated behaviour.
//   ordering      pointer-keyed std::map/std::set and std::less<T*>
//                 in those same directories (pointer order is
//                 allocation order — nondeterministic across runs).
//   index-safety  raw subscript use of the known back-pointer fields
//                 (rq_index, park_index, the engine's slot_of_ array)
//                 outside the files that own the invariant.
//   engine-api    bare Engine::schedule() in a file that also calls
//                 reschedule() — persistent timers must be armed with
//                 schedule_tracked() or reschedule() will CHECK-fail.
//   predicate-purity
//                 run_until() predicates that read g_-prefixed mutable
//                 globals — a stop condition on shared mutable state is
//                 evaluated at window boundaries under the sharded
//                 engine and must depend only on simulation state.
//   float-accumulation
//                 float/double accumulation (`sum += x`, `sum = sum + x`)
//                 inside a range-for over an unordered container —
//                 float addition is not associative, so the reduction's
//                 value depends on bucket order and varies across runs.
//   hygiene       #pragma once in every header, no `using namespace`
//                 at namespace scope in headers, no std::cout/printf
//                 outside bench/, examples/, tools/ and the log sink.
//
// On top of the per-file passes, a second pass runs over a cross-file
// symbol index (function definitions, an approximate call graph, and
// per-symbol annotations read from `// pinsim-lint: hot` /
// `shard-owner(0)` / `quiet-mutator` comments — see index.hpp):
//
//   shard-affinity
//                 code reachable from a cross-shard mailbox post()
//                 callback must not touch shard-0-owned symbols except
//                 by posting back through the mailbox.
//   hot-path      no allocation (`new`, make_unique/make_shared,
//                 push_back into a never-reserved container),
//                 std::function construction, or log-sink call
//                 reachable from a function annotated hot.
//   quiet-funnel  a function writing the kernel's quiet-window SoA
//                 arrays must be the exit_quiet() funnel itself,
//                 reachable only through it, or annotated as an
//                 audited quiet-mutator.
//
// Which rules apply to a file is decided from its repo-relative path by
// a Config (see default_config()), so the policy lives in one place and
// tests can run fixture files "as if" they sat in src/os.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pinsim::lint {

/// One finding. `rule` is the group name used in allow() suppressions;
/// `line` is 1-based in the analyzed file.
struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Per-directory rule policy, keyed on repo-relative paths (forward
/// slashes, no leading "./"). Prefix entries ending in '/' match whole
/// directories; other entries match exact files.
struct Config {
  /// Directories whose code feeds simulated behaviour: determinism and
  /// ordering rules apply here.
  std::vector<std::string> simulated_dirs;

  /// Paths where std::cout/printf are legitimate (CLIs, the log sink).
  std::vector<std::string> output_allowed;

  /// A back-pointer index with the files that own its invariant. Use of
  /// the name in a subscript anywhere else is an index-safety finding.
  struct GuardedIndex {
    std::string name;
    std::vector<std::string> owners;
  };
  std::vector<GuardedIndex> guarded_indexes;

  /// A persistent timer handle whose arming discipline one file owns
  /// (e.g. the kernel's quantum-boundary timers: only arm_boundary may
  /// schedule or move them, or the batched sweep's cookie/pending
  /// invariants break). Passing the name to schedule*()/reschedule(),
  /// or assigning their result into it, anywhere else is an
  /// index-safety finding.
  struct GuardedTimer {
    std::string name;
    std::vector<std::string> owners;
  };
  std::vector<GuardedTimer> guarded_timers;

  /// Paths exempt from the engine-api rule (the engine itself, which
  /// defines schedule()/reschedule(), and tests that exercise both).
  std::vector<std::string> engine_api_exempt;

  /// Directory prefixes the engine-api rule applies to.
  std::vector<std::string> engine_api_dirs;

  /// Directory prefixes the predicate-purity rule applies to: inside a
  /// run_until(...) call, identifiers with the g_ mutable-global prefix
  /// are findings (the predicate must be a pure function of simulation
  /// state, or sharded runs stop nondeterministically).
  std::vector<std::string> predicate_purity_dirs;

  /// Directory prefixes the float-accumulation rule applies to: a
  /// float/double variable accumulated inside a range-for over an
  /// unordered container is a finding (non-associative adds in
  /// nondeterministic bucket order make the reduction vary across
  /// runs even when every element is identical).
  std::vector<std::string> float_accumulation_dirs;

  // --- cross-file (pass 2) policy -----------------------------------------

  /// Directories whose files feed the cross-file symbol index. Every
  /// file under these prefixes is summarized even when only a subset
  /// of the tree is being analyzed, so reachability sees whole call
  /// chains.
  std::vector<std::string> index_dirs;

  /// Directory prefixes where hot-path findings are reported (the
  /// whole index is still traversed for reachability).
  std::vector<std::string> hot_path_dirs;

  /// Quiet-funnel policy: writers of the SoA arrays named by
  /// `state_prefixes` in files under `dirs` must be `funnel` itself,
  /// reachable only through it, or annotated `quiet-mutator`.
  struct QuietFunnel {
    std::string funnel;
    std::vector<std::string> state_prefixes;
    std::vector<std::string> dirs;
  };
  QuietFunnel quiet_funnel;

  /// Directory prefixes whose member `post(...)` lambdas are treated
  /// as cross-shard mailbox callbacks (shard-affinity roots).
  std::vector<std::string> shard_affinity_dirs;
};

/// The policy shipped with the repo (matches the layout under src/).
Config default_config();

/// True when `path` matches `pattern` under Config's prefix rules.
bool path_matches(std::string_view path, std::string_view pattern);

/// Analyze one file's contents as if it lived at `path` (repo-relative;
/// decides rule applicability). Appends findings to `out`.
void analyze_file(const Config& config, std::string_view path,
                  std::string_view contents, std::vector<Diagnostic>* out);

/// Analyze a file on disk (path used both for IO and rule policy after
/// stripping `root/`). Returns false when the file cannot be read.
bool analyze_path(const Config& config, const std::string& root,
                  const std::string& rel_path, std::vector<Diagnostic>* out);

}  // namespace pinsim::lint
