// Tests for pinsim-lint: every fixture file is analyzed under a
// pretend repo-relative path (rule applicability is path-driven) and
// the exact (rule, line) diagnostics are asserted. Triggering fixtures
// carry `// expect: <rule>` markers on the lines findings must land
// on; non-triggering fixtures and cross-directory re-analyses assert
// explicit expectation lists.
#include "lint.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pinsim::lint {
namespace {

#ifndef PINSIM_LINT_FIXTURES
#error "PINSIM_LINT_FIXTURES must point at tools/lint/fixtures"
#endif

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PINSIM_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

using RuleLine = std::pair<std::string, int>;  // (rule, 1-based line)

/// Collect the `// expect: rule [rule...]` markers from fixture text.
std::multiset<RuleLine> markers(const std::string& contents) {
  std::multiset<RuleLine> expected;
  std::istringstream lines(contents);
  std::string text;
  int line = 0;
  while (std::getline(lines, text)) {
    ++line;
    const std::size_t at = text.find("// expect:");
    if (at == std::string::npos) continue;
    std::istringstream rules(text.substr(at + std::string("// expect:").size()));
    std::string rule;
    while (rules >> rule) expected.insert({rule, line});
  }
  return expected;
}

std::multiset<RuleLine> analyze(const std::string& fixture,
                                const std::string& pretend_path) {
  const std::string contents = read_fixture(fixture);
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), pretend_path, contents, &diags);
  std::multiset<RuleLine> got;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, pretend_path);
    got.insert({d.rule, d.line});
  }
  return got;
}

std::string print(const std::multiset<RuleLine>& set) {
  std::ostringstream out;
  for (const auto& [rule, line] : set) out << rule << "@" << line << " ";
  return out.str();
}

/// Assert the analyzer's findings are exactly the fixture's markers.
void expect_markers(const std::string& fixture,
                    const std::string& pretend_path) {
  const std::multiset<RuleLine> expected = markers(read_fixture(fixture));
  ASSERT_FALSE(expected.empty()) << fixture << " has no expect markers";
  const std::multiset<RuleLine> got = analyze(fixture, pretend_path);
  EXPECT_EQ(got, expected) << fixture << " as " << pretend_path
                           << "\n  expected: " << print(expected)
                           << "\n  got:      " << print(got);
}

void expect_exactly(const std::string& fixture,
                    const std::string& pretend_path,
                    const std::multiset<RuleLine>& expected) {
  const std::multiset<RuleLine> got = analyze(fixture, pretend_path);
  EXPECT_EQ(got, expected) << fixture << " as " << pretend_path
                           << "\n  expected: " << print(expected)
                           << "\n  got:      " << print(got);
}

// --- determinism ----------------------------------------------------------

TEST(LintDeterminism, FlagsEveryMarkedLineInSimulatedDirs) {
  expect_markers("determinism_bad.cpp", "src/os/fixture_determinism_bad.cpp");
}

TEST(LintDeterminism, SilentOnCleanCode) {
  expect_exactly("determinism_ok.cpp", "src/os/fixture_determinism_ok.cpp",
                 {});
}

TEST(LintDeterminism, DoesNotApplyOutsideSimulatedDirs) {
  // Same violating file, analyzed as analysis-layer code: the
  // per-directory config switches the determinism rule off.
  expect_exactly("determinism_bad.cpp",
                 "src/core/fixture_determinism_bad.cpp", {});
}

// --- ordering -------------------------------------------------------------

TEST(LintOrdering, FlagsPointerKeyedContainers) {
  expect_markers("ordering_bad.cpp", "src/virt/fixture_ordering_bad.cpp");
}

TEST(LintOrdering, SilentOnStableKeysAndAnnotated) {
  expect_exactly("ordering_ok.cpp", "src/virt/fixture_ordering_ok.cpp", {});
}

TEST(LintOrdering, DoesNotApplyOutsideSimulatedDirs) {
  expect_exactly("ordering_bad.cpp", "tests/virt/fixture_ordering_bad.cpp",
                 {});
}

// --- index-safety ---------------------------------------------------------

TEST(LintIndexSafety, FlagsRawSubscriptsOutsideOwners) {
  expect_markers("index_safety_bad.cpp",
                 "src/os/fixture_index_safety_bad.cpp");
}

TEST(LintIndexSafety, OwnerFileMayTouchItsOwnIndex) {
  // As the rq_index owner, the park_index, slot_of_, outbox_, and
  // shard_of_ findings remain (their owners are cgroup.cpp, the
  // engine, the sharded engine, and the fleet respectively).
  expect_exactly("index_safety_bad.cpp", "src/os/runqueue.cpp",
                 {{"index-safety", 23},
                  {"index-safety", 26},
                  {"index-safety", 37},
                  {"index-safety", 40}});
}

TEST(LintIndexSafety, ShardedOwnersMayTouchTheirOwnIndexes) {
  // The sharded engine owns outbox_; shard_of_ still flags there (its
  // owner is the fleet), and vice versa.
  expect_exactly("index_safety_bad.cpp", "src/sim/sharded_engine.cpp",
                 {{"index-safety", 20},
                  {"index-safety", 23},
                  {"index-safety", 26},
                  {"index-safety", 40}});
  expect_exactly("index_safety_bad.cpp", "src/core/sharded_fleet.cpp",
                 {{"index-safety", 20},
                  {"index-safety", 23},
                  {"index-safety", 26},
                  {"index-safety", 37}});
}

TEST(LintIndexSafety, SilentOnReadsLambdasAndAnnotated) {
  expect_exactly("index_safety_ok.cpp",
                 "src/os/fixture_index_safety_ok.cpp", {});
}

// --- guarded timers (index-safety group) ----------------------------------

TEST(LintGuardedTimer, FlagsArmingBoundaryTimersOutsideOwner) {
  expect_markers("boundary_timer_bad.cpp",
                 "src/virt/fixture_boundary_timer_bad.cpp");
}

TEST(LintGuardedTimer, OwnerFileMayArmItsOwnTimer) {
  expect_exactly("boundary_timer_bad.cpp", "src/os/kernel.cpp", {});
}

TEST(LintGuardedTimer, SilentOnReadsOtherTimersAndAnnotated) {
  expect_exactly("boundary_timer_ok.cpp",
                 "src/virt/fixture_boundary_timer_ok.cpp", {});
}

// --- engine-api -----------------------------------------------------------

TEST(LintEngineApi, FlagsBareScheduleNextToReschedule) {
  expect_markers("engine_api_bad.cpp", "src/os/fixture_engine_api_bad.cpp");
}

TEST(LintEngineApi, SilentOnTrackedAndAnnotated) {
  expect_exactly("engine_api_ok.cpp", "src/os/fixture_engine_api_ok.cpp",
                 {});
}

TEST(LintEngineApi, DoesNotApplyOutsideSrc) {
  // Engine tests legitimately exercise schedule() and reschedule()
  // side by side; the rule is scoped to src/.
  expect_exactly("engine_api_bad.cpp", "tests/sim/fixture_engine_api.cpp",
                 {});
}

TEST(LintEngineApi, EngineItselfIsExempt) {
  expect_exactly("engine_api_bad.cpp", "src/sim/engine.cpp", {});
}

// --- predicate-purity -----------------------------------------------------

TEST(LintPredicatePurity, FlagsMutableGlobalsInRunUntilPredicates) {
  expect_markers("predicate_purity_bad.cpp",
                 "src/core/fixture_predicate_purity_bad.cpp");
}

TEST(LintPredicatePurity, SilentOnCapturedStateAndAnnotated) {
  expect_exactly("predicate_purity_ok.cpp",
                 "src/core/fixture_predicate_purity_ok.cpp", {});
}

TEST(LintPredicatePurity, DoesNotApplyOutsideConfiguredDirs) {
  // Test code may drive run_until off counters however it likes.
  expect_exactly("predicate_purity_bad.cpp",
                 "tests/sim/fixture_predicate_purity_bad.cpp", {});
}

// --- float-accumulation ---------------------------------------------------

TEST(LintFloatAccumulation, FlagsUnorderedFloatReductions) {
  expect_markers("float_accumulation_bad.cpp",
                 "src/core/fixture_float_accumulation_bad.cpp");
}

TEST(LintFloatAccumulation, SilentOnOrderedIntegerAndAnnotated) {
  expect_exactly("float_accumulation_ok.cpp",
                 "src/core/fixture_float_accumulation_ok.cpp", {});
}

TEST(LintFloatAccumulation, DoesNotApplyOutsideConfiguredDirs) {
  // Test code may reduce floats however it likes.
  expect_exactly("float_accumulation_bad.cpp",
                 "tests/core/fixture_float_accumulation_bad.cpp", {});
}

TEST(LintFloatAccumulation, StacksWithDeterminismInSimulatedDirs) {
  // In a simulated dir the same loops also violate the determinism
  // rule (range-for over an unordered container); both rules land,
  // each on its own anchor line.
  expect_exactly("float_accumulation_bad.cpp",
                 "src/os/fixture_float_accumulation_bad.cpp",
                 {{"determinism", 12},
                  {"determinism", 20},
                  {"determinism", 26},
                  {"float-accumulation", 13},
                  {"float-accumulation", 20},
                  {"float-accumulation", 27}});
}

// --- hygiene --------------------------------------------------------------

TEST(LintHygiene, FlagsHeaderAndOutputViolations) {
  expect_markers("hygiene_bad.hpp", "src/core/fixture_hygiene_bad.hpp");
}

TEST(LintHygiene, SilentOnCleanHeader) {
  expect_exactly("hygiene_ok.hpp", "src/core/fixture_hygiene_ok.hpp", {});
}

TEST(LintHygiene, OutputAllowedInBenchExamplesTools) {
  // The missing-#pragma-once and using-namespace findings stay (lines
  // 1 and 9); the cout/printf findings disappear under bench/.
  expect_exactly("hygiene_bad.hpp", "bench/fixture_hygiene_bad.hpp",
                 {{"hygiene", 1}, {"hygiene", 9}});
}

TEST(LintHygiene, CoutBanDoesNotApplyToLogSink) {
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), "src/util/log.cpp",
               "void emit() { std::cout << 1; }\n", &diags);
  EXPECT_TRUE(diags.empty());
}

TEST(LintHygiene, CoutBanAppliesToOtherUtilFiles) {
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), "src/util/rng.cpp",
               "void emit() { std::cout << 1; }\n", &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hygiene");
  EXPECT_EQ(diags[0].line, 1);
}

// --- suppression ----------------------------------------------------------

TEST(LintSuppression, AllowAboveAllowAllAndWrongRule) {
  expect_markers("suppress.cpp", "src/os/fixture_suppress.cpp");
}

TEST(LintSuppression, SameLineAllowSilencesOnlyThatLine) {
  const std::string code =
      "long a() { return time(nullptr); }  // pinsim-lint: allow(determinism)\n"
      "long b() { return time(nullptr); }\n";
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), "src/hw/clock.cpp", code, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "determinism");
  EXPECT_EQ(diags[0].line, 2);
}

// --- infrastructure -------------------------------------------------------

TEST(LintInfra, PathMatching) {
  EXPECT_TRUE(path_matches("src/os/kernel.cpp", "src/os/"));
  EXPECT_FALSE(path_matches("src/osmisc/kernel.cpp", "src/os/"));
  EXPECT_TRUE(path_matches("src/util/log.cpp", "src/util/log.cpp"));
  EXPECT_FALSE(path_matches("src/util/log.cpp", "src/util/log.cp"));
  EXPECT_FALSE(path_matches("src/os/", "src/os/"));  // dirs match children
}

TEST(LintInfra, LexerEdgesFixtureIsClean) {
  // Raw strings, block comments, char literals, digit separators, and
  // macro bodies carrying banned tokens must all be invisible to the
  // rule passes.
  expect_exactly("lexer_edges.cpp", "src/os/fixture_lexer_edges.cpp", {});
}

TEST(LintInfra, CommentsAndStringsAreStripped) {
  const std::string code =
      "// rand() in a comment is fine\n"
      "/* so is time(nullptr) in a block */\n"
      "const char* s = \"rand() getenv(\";\n"
      "const char* r = R\"(std::random_device)\";\n";
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), "src/sim/strings.cpp", code, &diags);
  EXPECT_TRUE(diags.empty()) << diags.size();
}

TEST(LintInfra, DiagnosticsAreSortedByLine) {
  const std::string code =
      "int b() { return rand(); }\n"
      "int a() { return time(nullptr); }\n";
  std::vector<Diagnostic> diags;
  analyze_file(default_config(), "src/sim/order.cpp", code, &diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_EQ(diags[1].line, 2);
}

TEST(LintInfra, ContinuedLineCommentIsCommentaryAndAllowsAttachPastIt) {
  // Regression: a backslash-continued `//` comment used to leak its
  // continuation line into the token stream (false findings), and a
  // continued whole-line allow() attached to the continuation line
  // instead of the first code line after it.
  expect_markers("lexer_comment_continuation.cpp", "src/os/continued.cpp");
}

TEST(LintInfra, RawStringClosingLineCountsAsCode) {
  // Regression: after a multi-line raw string, a trailing comment on
  // the closing line was treated as whole-line, so its allow() leaked
  // onto the next line and masked a real finding there.
  expect_markers("lexer_rawstring_lines.cpp", "src/os/raw_lines.cpp");
}

}  // namespace
}  // namespace pinsim::lint
