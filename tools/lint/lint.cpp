#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace pinsim::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule-pass helpers. The lexer (and the allow/annotation side
// channels) lives in lexer.{hpp,cpp}, shared with the cross-file index
// in index.{hpp,cpp}.
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(const Config& config, std::string_view path, const LexResult& lexed,
          std::vector<Diagnostic>* out)
      : config_(config), path_(path), lexed_(lexed), out_(out) {}

  void run();

 private:
  const std::vector<Token>& toks() const { return lexed_.tokens; }

  const Token* at(std::size_t i) const {
    return i < toks().size() ? &toks()[i] : nullptr;
  }
  bool is_ident(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Token::kIdent && t->text == text;
  }
  bool is_punct(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == Token::kPunct && t->text == text;
  }

  /// True for `name(` call/use sites that are not member accesses on
  /// some unrelated object (`obj.time(...)`), not qualified by a
  /// namespace other than std (`mylib::rand(...)`), and not a
  /// declaration of an unrelated function that merely shares the name
  /// (`long time() const;` — preceded by a type, i.e. a non-keyword
  /// identifier or a declarator token).
  bool is_free_or_std_call(std::size_t i) const {
    if (!is_punct(i + 1, "(")) return false;
    if (i == 0) return true;
    const Token& prev = toks()[i - 1];
    if (prev.kind == Token::kIdent) {
      // `return time(...)` is a call; `long time()` is a declaration.
      static const std::set<std::string> expression_keywords = {
          "return", "co_return", "co_yield", "case", "else", "do", "throw"};
      return expression_keywords.count(prev.text) != 0;
    }
    if (prev.kind != Token::kPunct) return true;
    if (prev.text == "." || prev.text == "->") return false;
    if (prev.text == "::") return i >= 2 && is_ident(i - 2, "std");
    // `T* time(...)` / `T& rand(...)` declarator shapes.
    if (prev.text == "*" || prev.text == "&") {
      return !(i >= 2 && toks()[i - 2].kind == Token::kIdent);
    }
    return true;
  }

  void report(const std::string& rule, int line, std::string message) {
    const auto it = lexed_.allows.find(line);
    if (it != lexed_.allows.end() &&
        (it->second.count(rule) != 0 || it->second.count("all") != 0)) {
      return;
    }
    out_->push_back(
        Diagnostic{rule, std::string(path_), line, std::move(message)});
  }

  /// Starting at the index of a '<', return the index one past its
  /// matching '>' (token indexes). Also reports, via `has_pointer_key`,
  /// whether the FIRST top-level template argument contains a '*'.
  std::size_t skip_template_args(std::size_t open, bool* has_pointer_key);

  /// Names of variables/members declared in this file with an
  /// unordered_map/unordered_set type.
  std::set<std::string> collect_unordered_names();

  /// Names of variables/members declared in this file with a plain
  /// float/double type.
  std::set<std::string> collect_float_names();

  void check_determinism();
  void check_ordering();
  void check_index_safety();
  void check_guarded_timers();
  void check_engine_api();
  void check_predicate_purity();
  void check_float_accumulation();
  void check_hygiene();

  const Config& config_;
  std::string_view path_;
  const LexResult& lexed_;
  std::vector<Diagnostic>* out_;
};

std::size_t Checker::skip_template_args(std::size_t open,
                                        bool* has_pointer_key) {
  if (has_pointer_key != nullptr) *has_pointer_key = false;
  int depth = 0;
  bool in_first_arg = true;
  std::size_t i = open;
  for (; i < toks().size(); ++i) {
    const Token& t = toks()[i];
    if (t.kind != Token::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      --depth;
      if (depth == 0) return i + 1;
    } else if (t.text == "," && depth == 1) {
      in_first_arg = false;
    } else if (t.text == "*" && depth == 1 && in_first_arg &&
               has_pointer_key != nullptr) {
      *has_pointer_key = true;
    } else if (t.text == ";" && depth > 0) {
      break;  // malformed input; bail rather than scan the whole file
    }
  }
  return i;
}

std::set<std::string> Checker::collect_unordered_names() {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (!(is_ident(i, "unordered_map") || is_ident(i, "unordered_set"))) {
      continue;
    }
    if (!is_punct(i + 1, "<")) continue;
    std::size_t j = skip_template_args(i + 1, nullptr);
    // Skip declarator decorations between the type and the name.
    while (j < toks().size() &&
           (is_punct(j, "&") || is_punct(j, "*") || is_ident(j, "const"))) {
      ++j;
    }
    const Token* name = at(j);
    if (name != nullptr && name->kind == Token::kIdent) {
      names.insert(name->text);
    }
  }
  return names;
}

std::set<std::string> Checker::collect_float_names() {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (!(is_ident(i, "float") || is_ident(i, "double"))) continue;
    std::size_t j = i + 1;
    while (j < toks().size() &&
           (is_punct(j, "&") || is_punct(j, "*") || is_ident(j, "const"))) {
      ++j;
    }
    const Token* name = at(j);
    // Require a declaration shape (`double sum = ...;` / `double w;` /
    // a parameter `double w,` or `double w)`) so calls and casts that
    // merely mention the type don't poison the name set.
    if (name == nullptr || name->kind != Token::kIdent) continue;
    if (is_punct(j + 1, "(")) continue;  // `double f(...)` declares a function
    names.insert(name->text);
  }
  return names;
}

void Checker::check_float_accumulation() {
  const std::string rule = "float-accumulation";
  const std::set<std::string> unordered = collect_unordered_names();
  if (unordered.empty()) return;
  const std::set<std::string> floats = collect_float_names();
  if (floats.empty()) return;
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (!is_ident(i, "for") || !is_punct(i + 1, "(")) continue;
    // Range-for shape: colon at paren depth 1 (same scan as the
    // determinism pass). Classic three-clause fors iterate whatever
    // order their index imposes and are out of scope here.
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks().size(); ++j) {
      if (is_punct(j, "(")) {
        ++depth;
      } else if (is_punct(j, ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && colon == 0 && is_punct(j, ":")) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    bool over_unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks()[j].kind == Token::kIdent &&
          unordered.count(toks()[j].text) != 0) {
        over_unordered = true;
        break;
      }
    }
    if (!over_unordered) continue;
    // Loop body: a brace block after the close paren, or a single
    // statement up to the next ';'.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (is_punct(body_begin, "{")) {
      int braces = 0;
      for (std::size_t j = body_begin; j < toks().size(); ++j) {
        if (is_punct(j, "{")) {
          ++braces;
        } else if (is_punct(j, "}")) {
          if (--braces == 0) {
            body_end = j;
            break;
          }
        }
      }
      ++body_begin;
    } else {
      for (std::size_t j = body_begin; j < toks().size(); ++j) {
        if (is_punct(j, ";")) {
          body_end = j;
          break;
        }
      }
    }
    for (std::size_t j = body_begin; j < body_end; ++j) {
      const Token& t = toks()[j];
      if (t.kind != Token::kIdent || floats.count(t.text) == 0) continue;
      // Compound assignment ops lex as two single-char punct tokens
      // ('+' then '='), so `sum += x` is ident '+' '='. `sum ++` lexes
      // as '+' '+' and `sum == x` as '=' '=', so neither shape
      // matches.
      const bool compound =
          (is_punct(j + 1, "+") || is_punct(j + 1, "-") ||
           is_punct(j + 1, "*") || is_punct(j + 1, "/")) &&
          is_punct(j + 2, "=");
      const bool rebind = is_punct(j + 1, "=") && !is_punct(j + 2, "=") &&
                          is_ident(j + 2, t.text) &&
                          (is_punct(j + 3, "+") || is_punct(j + 3, "-") ||
                           is_punct(j + 3, "*") || is_punct(j + 3, "/"));
      if (!compound && !rebind) continue;
      report(rule, t.line,
             "floating-point accumulation into '" + t.text +
                 "' while iterating an unordered container — float "
                 "arithmetic is not associative, so the result depends "
                 "on bucket order; reduce in a sorted order or switch "
                 "to an integer accumulator");
    }
  }
}

void Checker::check_determinism() {
  const std::string rule = "determinism";
  const std::set<std::string> unordered = collect_unordered_names();
  for (std::size_t i = 0; i < toks().size(); ++i) {
    const Token& t = toks()[i];
    if (t.kind != Token::kIdent) continue;
    // <anything>_clock::now — wall/monotonic clock reads.
    if (t.text.size() > 6 &&
        t.text.compare(t.text.size() - 6, 6, "_clock") == 0 &&
        is_punct(i + 1, "::") && is_ident(i + 2, "now")) {
      report(rule, toks()[i + 2].line,
             "host clock read (" + t.text +
                 "::now) in simulated code; derive time from Engine::now()");
      continue;
    }
    if (t.text == "time" && is_free_or_std_call(i)) {
      report(rule, t.line,
             "time() reads the host clock; derive time from Engine::now()");
      continue;
    }
    if (t.text == "rand" && is_free_or_std_call(i)) {
      report(rule, t.line,
             "rand() draws from hidden global state; use the seeded "
             "util::Rng plumbed through the experiment");
      continue;
    }
    if (t.text == "getenv" && is_free_or_std_call(i)) {
      report(rule, t.line,
             "getenv() makes simulated behaviour depend on the host "
             "environment; thread configuration through parameters");
      continue;
    }
    if (t.text == "random_device") {
      report(rule, t.line,
             "std::random_device is nondeterministic; use the seeded "
             "util::Rng plumbed through the experiment");
      continue;
    }
    // Iterator loops: <unordered var>.begin()/cbegin().
    if ((t.text == "begin" || t.text == "cbegin") && i >= 2 &&
        (is_punct(i - 1, ".") || is_punct(i - 1, "->")) &&
        toks()[i - 2].kind == Token::kIdent &&
        unordered.count(toks()[i - 2].text) != 0) {
      report(rule, t.line,
             "iteration over unordered container '" + toks()[i - 2].text +
                 "' — bucket order is not deterministic across runs");
      continue;
    }
    // Range-for whose range expression names an unordered container.
    if (t.text == "for" && is_punct(i + 1, "(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks().size(); ++j) {
        if (is_punct(j, "(")) {
          ++depth;
        } else if (is_punct(j, ")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (depth == 1 && colon == 0 && is_punct(j, ":")) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks()[j].kind == Token::kIdent &&
            unordered.count(toks()[j].text) != 0) {
          report(rule, t.line,
                 "range-for over unordered container '" + toks()[j].text +
                     "' — bucket order is not deterministic across runs");
          break;
        }
      }
    }
  }
}

void Checker::check_ordering() {
  const std::string rule = "ordering";
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (!is_ident(i, "map") && !is_ident(i, "set") && !is_ident(i, "less")) {
      continue;
    }
    // Require std:: qualification so domain types named `map` survive.
    if (!(i >= 2 && is_punct(i - 1, "::") && is_ident(i - 2, "std"))) continue;
    if (!is_punct(i + 1, "<")) continue;
    bool pointer_key = false;
    skip_template_args(i + 1, &pointer_key);
    if (!pointer_key) continue;
    const std::string& what = toks()[i].text;
    report(rule, toks()[i].line,
           "pointer-keyed std::" + what +
               " — pointer order is allocation order and varies across "
               "runs; key by a stable id instead");
  }
}

void Checker::check_index_safety() {
  for (const Config::GuardedIndex& guarded : config_.guarded_indexes) {
    bool owner = false;
    for (const std::string& o : guarded.owners) {
      if (path_matches(path_, o)) owner = true;
    }
    if (owner) continue;
    // Bracket stack: true entries are subscripts (the '[' follows a
    // value), false entries are lambda captures / attributes.
    std::vector<bool> subscript;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == Token::kPunct && t.text == "[") {
        // `x[`, `f()[`, `a[0][` open subscripts; `[capture]` lambdas
        // and `[[attributes]]` do not. `return [..]` is a lambda even
        // though `return` lexes as an identifier.
        const bool after_value =
            i > 0 &&
            ((toks()[i - 1].kind == Token::kIdent &&
              toks()[i - 1].text != "return") ||
             is_punct(i - 1, ")") || is_punct(i - 1, "]"));
        subscript.push_back(after_value);
        continue;
      }
      if (t.kind == Token::kPunct && t.text == "]") {
        if (!subscript.empty()) subscript.pop_back();
        continue;
      }
      if (t.kind != Token::kIdent || t.text != guarded.name) continue;
      const bool subscripts_array = is_punct(i + 1, "[");
      const bool used_as_index =
          std::find(subscript.begin(), subscript.end(), true) !=
          subscript.end();
      if (subscripts_array || used_as_index) {
        report("index-safety", t.line,
               "raw [] use of back-pointer '" + guarded.name +
                   "' outside its owning class — go through the checked "
                   "accessor so the index invariant stays provable");
      }
    }
  }
}

void Checker::check_guarded_timers() {
  for (const Config::GuardedTimer& guarded : config_.guarded_timers) {
    bool owner = false;
    for (const std::string& o : guarded.owners) {
      if (path_matches(path_, o)) owner = true;
    }
    if (owner) continue;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != Token::kIdent) continue;
      const bool is_arm_call =
          (t.text == "reschedule" || t.text.rfind("schedule", 0) == 0) &&
          is_punct(i + 1, "(");
      if (!is_arm_call) continue;
      // Timer passed as an argument: scan the call's parens for it.
      bool hit = false;
      int depth = 0;
      for (std::size_t j = i + 1; j < toks().size(); ++j) {
        if (is_punct(j, "(")) {
          ++depth;
          continue;
        }
        if (is_punct(j, ")")) {
          if (--depth == 0) break;
          continue;
        }
        if (toks()[j].kind == Token::kIdent &&
            toks()[j].text == guarded.name) {
          hit = true;
          break;
        }
      }
      // Call result assigned into the timer: walk the member chain
      // back to `name =`. (A subscripted `name[i] =` target is already
      // an index-safety finding via guarded_indexes.)
      if (!hit) {
        std::size_t j = i;
        while (j >= 2 && (is_punct(j - 1, "->") || is_punct(j - 1, ".") ||
                          is_punct(j - 1, "::"))) {
          j -= 2;
        }
        hit = j >= 2 && is_punct(j - 1, "=") &&
              toks()[j - 2].kind == Token::kIdent &&
              toks()[j - 2].text == guarded.name;
      }
      if (hit) {
        report("index-safety", t.line,
               "direct " + t.text + "() of guarded timer '" + guarded.name +
                   "' outside its owner — arm it through the owning "
                   "file's helper so the pending/cookie invariants the "
                   "batched boundary sweep relies on stay provable");
      }
    }
  }
}

void Checker::check_engine_api() {
  bool reschedules = false;
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (is_ident(i, "reschedule") && is_punct(i + 1, "(")) {
      reschedules = true;
      break;
    }
  }
  if (!reschedules) return;
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (is_ident(i, "schedule") && is_punct(i + 1, "(")) {
      report("engine-api", toks()[i].line,
             "bare schedule() in a file that calls reschedule() — "
             "persistent timers must be armed with schedule_tracked() "
             "or reschedule() will CHECK-fail");
    }
  }
}

void Checker::check_predicate_purity() {
  const std::string rule = "predicate-purity";
  for (std::size_t i = 0; i < toks().size(); ++i) {
    if (!is_ident(i, "run_until") || !is_punct(i + 1, "(")) continue;
    // Scan the argument list (predicate lambda included) to the
    // matching close paren. Any g_-prefixed identifier in there is a
    // mutable file-scope global by project convention: the predicate
    // is re-evaluated at shard-window boundaries, so a stop condition
    // on shared mutable state makes where the run stops depend on
    // host-thread interleaving.
    int depth = 0;
    for (std::size_t j = i + 1; j < toks().size(); ++j) {
      if (is_punct(j, "(")) {
        ++depth;
        continue;
      }
      if (is_punct(j, ")")) {
        if (--depth == 0) break;
        continue;
      }
      const Token& t = toks()[j];
      if (t.kind == Token::kIdent && t.text.size() > 2 &&
          t.text.compare(0, 2, "g_") == 0) {
        report(rule, t.line,
               "run_until predicate references mutable global '" + t.text +
                   "' — stop conditions are evaluated at shard-window "
                   "boundaries and must be pure functions of simulation "
                   "state; capture what the predicate needs explicitly");
      }
    }
  }
}

void Checker::check_hygiene() {
  const std::string rule = "hygiene";
  const auto ends_with = [this](std::string_view suffix) {
    return path_.size() >= suffix.size() &&
           path_.compare(path_.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
  };
  const bool is_header = ends_with(".hpp") || ends_with(".h");
  if (is_header) {
    bool pragma_once = false;
    for (const Token& t : toks()) {
      if (t.kind != Token::kDirective) continue;
      std::istringstream words(t.text);
      std::string hash, pragma, once;
      words >> hash >> pragma >> once;
      // `#pragma once` or `# pragma once`.
      if (hash == "#" && pragma == "pragma" && once == "once") {
        pragma_once = true;
      }
      if (hash == "#pragma" && pragma == "once") pragma_once = true;
    }
    if (!pragma_once) {
      report(rule, 1, "header is missing #pragma once");
    }
  }
  // Namespace-scope `using namespace` in headers. The brace stack
  // tracks whether every enclosing '{' belongs to a namespace: a
  // directive inside a function body (all-false suffix) is local and
  // fine, one visible at namespace scope leaks into every includer.
  if (is_header) {
    std::vector<bool> brace_is_namespace;
    bool pending_namespace = false;
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind == Token::kIdent && t.text == "using" &&
          is_ident(i + 1, "namespace")) {
        const bool at_namespace_scope =
            std::find(brace_is_namespace.begin(), brace_is_namespace.end(),
                      false) == brace_is_namespace.end();
        if (at_namespace_scope) {
          report(rule, t.line,
                 "`using namespace` at namespace scope in a header leaks "
                 "into every includer");
        }
        continue;
      }
      if (t.kind == Token::kIdent && t.text == "namespace" &&
          !(i > 0 && is_ident(i - 1, "using"))) {
        pending_namespace = true;
        continue;
      }
      if (t.kind != Token::kPunct) continue;
      if (t.text == "{") {
        brace_is_namespace.push_back(pending_namespace);
        pending_namespace = false;
      } else if (t.text == "}") {
        if (!brace_is_namespace.empty()) brace_is_namespace.pop_back();
      } else if (t.text == ";") {
        pending_namespace = false;
      }
    }
  }
  // Direct stdout writes outside the CLI/tool surfaces.
  bool output_ok = false;
  for (const std::string& allowed : config_.output_allowed) {
    if (path_matches(path_, allowed)) output_ok = true;
  }
  if (!output_ok) {
    for (std::size_t i = 0; i < toks().size(); ++i) {
      const Token& t = toks()[i];
      if (t.kind != Token::kIdent) continue;
      if (t.text == "cout") {
        report(rule, t.line,
               "std::cout in library code — route output through "
               "util::log or return data to the caller");
      } else if (t.text == "printf" && is_free_or_std_call(i)) {
        report(rule, t.line,
               "printf in library code — route output through util::log "
               "or return data to the caller");
      }
    }
  }
}

void Checker::run() {
  bool simulated = false;
  for (const std::string& dir : config_.simulated_dirs) {
    if (path_matches(path_, dir)) simulated = true;
  }
  if (simulated) {
    check_determinism();
    check_ordering();
  }
  check_index_safety();
  check_guarded_timers();
  bool engine_api = false;
  for (const std::string& dir : config_.engine_api_dirs) {
    if (path_matches(path_, dir)) engine_api = true;
  }
  for (const std::string& exempt : config_.engine_api_exempt) {
    if (path_matches(path_, exempt)) engine_api = false;
  }
  if (engine_api) check_engine_api();
  bool predicate_purity = false;
  for (const std::string& dir : config_.predicate_purity_dirs) {
    if (path_matches(path_, dir)) predicate_purity = true;
  }
  if (predicate_purity) check_predicate_purity();
  bool float_accumulation = false;
  for (const std::string& dir : config_.float_accumulation_dirs) {
    if (path_matches(path_, dir)) float_accumulation = true;
  }
  if (float_accumulation) check_float_accumulation();
  check_hygiene();
}

}  // namespace

bool path_matches(std::string_view path, std::string_view pattern) {
  if (pattern.empty()) return false;
  if (pattern.back() == '/') {
    return path.size() > pattern.size() &&
           path.compare(0, pattern.size(), pattern) == 0;
  }
  return path == pattern;
}

Config default_config() {
  Config config;
  config.simulated_dirs = {"src/sim/",      "src/os/",       "src/hw/",
                           "src/virt/",     "src/workload/", "src/cluster/"};
  config.output_allowed = {"bench/", "examples/", "tools/",
                           "src/util/log.cpp"};
  config.guarded_indexes = {
      {"rq_index", {"src/os/runqueue.cpp", "src/os/task.hpp"}},
      {"park_index", {"src/os/cgroup.cpp", "src/os/task.hpp"}},
      {"slot_of_", {"src/sim/engine.hpp", "src/sim/engine.cpp"}},
      {"outbox_",
       {"src/sim/sharded_engine.hpp", "src/sim/sharded_engine.cpp"}},
      {"shard_of_",
       {"src/core/sharded_fleet.hpp", "src/core/sharded_fleet.cpp"}},
      {"boundary_", {"src/os/kernel.cpp", "src/os/kernel.hpp"}},
  };
  config.guarded_timers = {
      {"boundary_", {"src/os/kernel.cpp"}},
  };
  config.engine_api_dirs = {"src/"};
  config.engine_api_exempt = {"src/sim/engine.hpp", "src/sim/engine.cpp"};
  config.predicate_purity_dirs = {"src/", "bench/", "examples/"};
  config.float_accumulation_dirs = {"src/", "bench/", "examples/"};
  config.index_dirs = {"src/"};
  config.hot_path_dirs = {"src/"};
  config.quiet_funnel.funnel = "exit_quiet";
  config.quiet_funnel.state_prefixes = {"quiet_", "charged_until_",
                                        "slice_started_", "slice_length_"};
  config.quiet_funnel.dirs = {"src/os/"};
  config.shard_affinity_dirs = {"src/cluster/", "src/core/"};
  return config;
}

void analyze_file(const Config& config, std::string_view path,
                  std::string_view contents, std::vector<Diagnostic>* out) {
  const LexResult lexed = lex(contents);
  Checker(config, path, lexed, out).run();
  // Report in (line, rule) order regardless of pass order so output is
  // stable and tests can assert exact sequences.
  std::stable_sort(out->begin(), out->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

bool analyze_path(const Config& config, const std::string& root,
                  const std::string& rel_path, std::vector<Diagnostic>* out) {
  const std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  analyze_file(config, rel_path, contents, out);
  return true;
}

}  // namespace pinsim::lint
