// Cluster serving-layer determinism: a fixed (config, seed) must yield
// a byte-identical request trace and summary for any worker-thread
// count and any shard count — the front end is shard-0-only state and
// all cross-shard influence travels the canonical mailbox merge, so
// these comparisons are exact equality, not tolerance checks.
#include "cluster/fleet.hpp"

#include <gtest/gtest.h>

#include "core/chr_advisor.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace pinsim::cluster {
namespace {

FleetConfig small_fleet(int hosts, int shards, int threads) {
  FleetConfig config;
  config.hosts = hosts;
  config.shards = shards;
  config.threads = threads;
  config.arrivals.rate_per_second = 40.0;
  config.traffic_seconds = 2.0;
  config.drain_seconds = 60.0;
  return config;
}

void expect_identical(const ClusterResult& a, const ClusterResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].arrival, b.trace[i].arrival) << "request " << i;
    EXPECT_EQ(a.trace[i].host, b.trace[i].host) << "request " << i;
    EXPECT_EQ(a.trace[i].latency, b.trace[i].latency) << "request " << i;
  }
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.slo.total, b.slo.total);
  EXPECT_EQ(a.slo.violations, b.slo.violations);
  EXPECT_EQ(a.slo.p50_seconds, b.slo.p50_seconds);
  EXPECT_EQ(a.slo.p99_seconds, b.slo.p99_seconds);
  EXPECT_EQ(a.slo.p999_seconds, b.slo.p999_seconds);
  EXPECT_EQ(a.slo.mean_seconds, b.slo.mean_seconds);
  EXPECT_EQ(a.slo.max_seconds, b.slo.max_seconds);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t h = 0; h < a.hosts.size(); ++h) {
    EXPECT_EQ(a.hosts[h].dispatched, b.hosts[h].dispatched) << "host " << h;
    EXPECT_EQ(a.hosts[h].served, b.hosts[h].served) << "host " << h;
  }
  EXPECT_EQ(a.scale_ups, b.scale_ups);
  EXPECT_EQ(a.scale_downs, b.scale_downs);
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.final_active, b.final_active);
}

TEST(ClusterFleetTest, ShardMapRoundRobins) {
  const Fleet fleet(small_fleet(5, 2, 1));
  EXPECT_EQ(fleet.shard_of(0), 0);
  EXPECT_EQ(fleet.shard_of(1), 1);
  EXPECT_EQ(fleet.shard_of(4), 0);
  EXPECT_THROW(fleet.shard_of(5), InvariantViolation);
}

TEST(ClusterFleetTest, ServesOpenLoopTrafficToCompletion) {
  const ClusterResult result = run_cluster(small_fleet(4, 1, 1));
  EXPECT_GT(result.dispatched, 20);
  EXPECT_EQ(result.completed, result.dispatched);
  EXPECT_EQ(result.slo.total, result.dispatched);
  EXPECT_GT(result.slo.p50_seconds, 0.0);
  EXPECT_GE(result.slo.p99_seconds, result.slo.p50_seconds);
  std::int64_t dispatched = 0;
  std::int64_t served = 0;
  for (const FleetHostReport& host : result.hosts) {
    dispatched += host.dispatched;
    served += host.served;
  }
  EXPECT_EQ(dispatched, result.dispatched);
  EXPECT_EQ(served, result.completed);
}

TEST(ClusterFleetTest, TraceIsIdenticalAcrossRepeatedRuns) {
  expect_identical(run_cluster(small_fleet(4, 2, 1)),
                   run_cluster(small_fleet(4, 2, 1)));
}

TEST(ClusterFleetTest, ThreadCountDoesNotChangeTheTrace) {
  expect_identical(run_cluster(small_fleet(4, 4, 1)),
                   run_cluster(small_fleet(4, 4, 4)));
}

TEST(ClusterFleetTest, ShardCountDoesNotChangeTheTrace) {
  const ClusterResult serial = run_cluster(small_fleet(4, 1, 1));
  expect_identical(serial, run_cluster(small_fleet(4, 2, 1)));
  expect_identical(serial, run_cluster(small_fleet(4, 4, 2)));
}

TEST(ClusterFleetTest, CassandraFleetServesToCompletion) {
  FleetConfig config = small_fleet(3, 3, 2);
  config.app = workload::AppClass::IoNoSql;
  config.cassandra.server_threads = 4;
  const ClusterResult a = run_cluster(config);
  EXPECT_GT(a.dispatched, 20);
  EXPECT_EQ(a.completed, a.dispatched);
  expect_identical(a, run_cluster(config));
}

TEST(ClusterFleetTest, RoundRobinSpreadsLoadEvenly) {
  FleetConfig config = small_fleet(4, 1, 1);
  config.balancer = BalancerPolicy::RoundRobin;
  const ClusterResult result = run_cluster(config);
  std::int64_t lo = result.dispatched;
  std::int64_t hi = 0;
  for (const FleetHostReport& host : result.hosts) {
    lo = std::min(lo, host.dispatched);
    hi = std::max(hi, host.dispatched);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(ClusterFleetTest, ChrAdvisorPinsEveryHostIntoTheBand) {
  FleetConfig config = small_fleet(2, 1, 1);
  config.pinning = PinningPolicy::ChrAdvisor;
  const Fleet fleet(config);
  const core::ChrRange band = core::paper_chr_range(config.app);
  for (const virt::PlatformSpec& spec : fleet.resolved_specs()) {
    EXPECT_EQ(spec.mode, virt::CpuMode::Pinned);
    EXPECT_TRUE(band.contains(core::chr_of(spec.instance, config.full_host)));
  }
  const ClusterResult result = run_cluster(config);
  for (const FleetHostReport& host : result.hosts) {
    EXPECT_TRUE(host.chr_in_range);
  }
}

TEST(ClusterFleetTest, AutoscalerGrowsTheFleetUnderBurst) {
  FleetConfig config = small_fleet(4, 2, 2);
  config.arrivals.kind = ArrivalKind::Burst;
  config.arrivals.rate_per_second = 30.0;
  config.arrivals.burst_multiplier = 10.0;
  config.arrivals.burst_seconds = 2.0;
  config.arrivals.quiet_seconds = 10.0;
  config.traffic_seconds = 4.0;
  config.autoscale = true;
  config.autoscaler.min_instances = 1;
  config.autoscaler.provisioning_delay = msec(500);
  config.autoscaler.cooldown = msec(500);
  const ClusterResult result = run_cluster(config);
  EXPECT_GT(result.scale_ups, 0);
  EXPECT_GT(result.peak_active, 1);
  EXPECT_EQ(result.completed, result.dispatched);
  expect_identical(result, run_cluster(config));
}

TEST(ClusterFleetTest, RejectsNonServingAppClasses) {
  FleetConfig config = small_fleet(2, 1, 1);
  config.app = workload::AppClass::CpuBound;
  EXPECT_THROW(Fleet{config}, InvariantViolation);
}

}  // namespace
}  // namespace pinsim::cluster
