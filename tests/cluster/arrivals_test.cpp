#include "cluster/arrivals.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pinsim::cluster {
namespace {

std::vector<SimTime> take(Arrivals& arrivals, int count) {
  std::vector<SimTime> times;
  times.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) times.push_back(arrivals.next());
  return times;
}

/// Arrivals inside [from, to) seconds, scanning the stream until `to`.
int count_in_window(Arrivals& arrivals, double from, double to) {
  int count = 0;
  for (;;) {
    const SimTime t = arrivals.next();
    if (t >= sec_f(to)) return count;
    if (t >= sec_f(from)) ++count;
  }
}

TEST(ArrivalsTest, SameSeedSameStream) {
  ArrivalConfig config;
  config.kind = ArrivalKind::Diurnal;
  config.diurnal_period_seconds = 60.0;
  Arrivals a(config, Rng(7));
  Arrivals b(config, Rng(7));
  EXPECT_EQ(take(a, 500), take(b, 500));
}

TEST(ArrivalsTest, DifferentSeedDifferentStream) {
  Arrivals a(ArrivalConfig{}, Rng(7));
  Arrivals b(ArrivalConfig{}, Rng(8));
  EXPECT_NE(take(a, 50), take(b, 50));
}

TEST(ArrivalsTest, TimesAreNonDecreasingAndPositive) {
  ArrivalConfig config;
  config.kind = ArrivalKind::Burst;
  Arrivals arrivals(config, Rng(11));
  SimTime last = 0;
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = arrivals.next();
    EXPECT_GE(t, last);
    EXPECT_GT(t, 0);
    last = t;
  }
}

TEST(ArrivalsTest, PoissonHitsConfiguredRate) {
  ArrivalConfig config;
  config.rate_per_second = 200.0;
  Arrivals arrivals(config, Rng(3));
  const int count = count_in_window(arrivals, 0.0, 50.0);
  // 10,000 expected; a 5% band is ~7 standard deviations.
  EXPECT_NEAR(count, 10000, 500);
  EXPECT_EQ(arrivals.peak_rate(), 200.0);
}

TEST(ArrivalsTest, BurstPhaseComesFirstAndIsDenser) {
  ArrivalConfig config;
  config.kind = ArrivalKind::Burst;
  config.rate_per_second = 100.0;
  config.burst_multiplier = 8.0;
  config.burst_seconds = 2.0;
  config.quiet_seconds = 10.0;
  EXPECT_EQ(Arrivals(config, Rng(1)).rate_at(1.0), 800.0);
  EXPECT_EQ(Arrivals(config, Rng(1)).rate_at(5.0), 100.0);
  EXPECT_EQ(Arrivals(config, Rng(1)).rate_at(13.0), 800.0);  // next cycle
  Arrivals burst(config, Rng(5));
  const int in_burst = count_in_window(burst, 0.0, 2.0);
  Arrivals quiet(config, Rng(5));
  const int in_quiet = count_in_window(quiet, 2.0, 4.0);
  EXPECT_GT(in_burst, 4 * in_quiet);
}

TEST(ArrivalsTest, DiurnalTroughAtZeroPeakAtHalfPeriod) {
  ArrivalConfig config;
  config.kind = ArrivalKind::Diurnal;
  config.rate_per_second = 100.0;
  config.diurnal_amplitude = 0.8;
  config.diurnal_period_seconds = 120.0;
  const Arrivals arrivals(config, Rng(1));
  EXPECT_NEAR(arrivals.rate_at(0.0), 20.0, 1e-9);
  EXPECT_NEAR(arrivals.rate_at(60.0), 180.0, 1e-9);
  EXPECT_NEAR(arrivals.rate_at(120.0), 20.0, 1e-9);
  EXPECT_NEAR(arrivals.peak_rate(), 180.0, 1e-9);
}

TEST(ArrivalsTest, RejectsInvalidConfig) {
  ArrivalConfig zero_rate;
  zero_rate.rate_per_second = 0.0;
  EXPECT_THROW(Arrivals(zero_rate, Rng(1)), InvariantViolation);
  ArrivalConfig shrink;
  shrink.kind = ArrivalKind::Burst;
  shrink.burst_multiplier = 0.5;
  EXPECT_THROW(Arrivals(shrink, Rng(1)), InvariantViolation);
  ArrivalConfig full_swing;
  full_swing.kind = ArrivalKind::Diurnal;
  full_swing.diurnal_amplitude = 1.0;
  EXPECT_THROW(Arrivals(full_swing, Rng(1)), InvariantViolation);
}

}  // namespace
}  // namespace pinsim::cluster
