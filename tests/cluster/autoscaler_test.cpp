#include "cluster/autoscaler.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace pinsim::cluster {
namespace {

AutoscalerConfig watermarks() {
  AutoscalerConfig config;
  config.min_instances = 1;
  config.max_instances = 4;
  config.high_watermark = 8.0;
  config.low_watermark = 2.0;
  config.cooldown = sec(5);
  return config;
}

TEST(AutoscalerTest, HoldsInsideTheBand) {
  Autoscaler scaler(watermarks());
  EXPECT_EQ(scaler.evaluate(sec(1), 2, 0, 10), 0);  // 5 per instance
}

TEST(AutoscalerTest, ScalesUpAboveHighWatermark) {
  Autoscaler scaler(watermarks());
  EXPECT_EQ(scaler.evaluate(sec(1), 2, 0, 20), 1);  // 10 per instance
}

TEST(AutoscalerTest, ScalesDownBelowLowWatermark) {
  Autoscaler scaler(watermarks());
  EXPECT_EQ(scaler.evaluate(sec(1), 3, 0, 3), -1);  // 1 per instance
}

TEST(AutoscalerTest, CooldownSuppressesBackToBackDecisions) {
  Autoscaler scaler(watermarks());
  EXPECT_EQ(scaler.evaluate(sec(1), 1, 0, 100), 1);
  EXPECT_EQ(scaler.evaluate(sec(2), 1, 1, 100), 0);  // still cooling down
  EXPECT_EQ(scaler.evaluate(sec(7), 2, 0, 100), 1);  // cooldown elapsed
}

TEST(AutoscalerTest, ProvisioningCountsTowardCapacity) {
  Autoscaler scaler(watermarks());
  // 20 outstanding over (1 active + 2 provisioning) = 6.7 per instance.
  EXPECT_EQ(scaler.evaluate(sec(1), 1, 2, 20), 0);
}

TEST(AutoscalerTest, RespectsFloorAndCeiling) {
  Autoscaler scaler(watermarks());
  EXPECT_EQ(scaler.evaluate(sec(1), 4, 0, 1000), 0);   // at max
  Autoscaler other(watermarks());
  EXPECT_EQ(other.evaluate(sec(1), 1, 0, 0), 0);       // at min
}

TEST(AutoscalerTest, RepairsBelowFloorDespiteCooldown) {
  AutoscalerConfig config = watermarks();
  config.min_instances = 2;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.evaluate(sec(1), 2, 0, 100), 1);
  // Capacity dropped under the floor inside the cooldown window: the
  // floor repair fires anyway.
  EXPECT_EQ(scaler.evaluate(sec(2), 1, 0, 0), 1);
}

TEST(AutoscalerTest, StepBoundsEachDecision) {
  AutoscalerConfig config = watermarks();
  config.step = 3;
  Autoscaler scaler(config);
  EXPECT_EQ(scaler.evaluate(sec(1), 2, 0, 1000), 2);  // capped at max 4
  Autoscaler other(config);
  EXPECT_EQ(other.evaluate(sec(1), 4, 0, 0), -3);     // floored at min 1
}

TEST(AutoscalerTest, RejectsInvalidConfig) {
  AutoscalerConfig inverted = watermarks();
  inverted.low_watermark = 10.0;
  EXPECT_THROW(Autoscaler{inverted}, InvariantViolation);
  AutoscalerConfig hollow = watermarks();
  hollow.max_instances = 0;
  EXPECT_THROW(Autoscaler{hollow}, InvariantViolation);
}

}  // namespace
}  // namespace pinsim::cluster
