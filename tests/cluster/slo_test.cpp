#include "cluster/slo.hpp"

#include <gtest/gtest.h>

namespace pinsim::cluster {
namespace {

TEST(SloTrackerTest, EmptySummaryIsZeroFilled) {
  const SloTracker tracker{SloConfig{}};
  const SloSummary summary = tracker.summary();
  EXPECT_EQ(summary.total, 0);
  EXPECT_EQ(summary.violations, 0);
  EXPECT_EQ(summary.violation_fraction, 0.0);
  EXPECT_EQ(summary.p50_seconds, 0.0);
  EXPECT_EQ(summary.p999_seconds, 0.0);
  EXPECT_EQ(summary.max_seconds, 0.0);
}

TEST(SloTrackerTest, CountsViolationsSampleExactly) {
  SloConfig config;
  config.target_seconds = 0.5;
  SloTracker tracker(config);
  tracker.record(0.1);
  tracker.record(0.5);  // exactly on target: not a violation
  tracker.record(0.6);
  tracker.record(2.0);
  const SloSummary summary = tracker.summary();
  EXPECT_EQ(summary.total, 4);
  EXPECT_EQ(summary.violations, 2);
  EXPECT_EQ(summary.violation_fraction, 0.5);
  EXPECT_EQ(summary.max_seconds, 2.0);
  EXPECT_NEAR(summary.mean_seconds, 0.8, 1e-12);
}

TEST(SloTrackerTest, PercentilesTrackTheTail) {
  SloTracker tracker{SloConfig{}};
  for (int i = 0; i < 990; ++i) tracker.record(0.010);
  for (int i = 0; i < 10; ++i) tracker.record(1.000);
  const SloSummary summary = tracker.summary();
  EXPECT_NEAR(summary.p50_seconds, 0.010, 0.002);
  EXPECT_NEAR(summary.p99_seconds, 0.011, 0.002);
  EXPECT_NEAR(summary.p999_seconds, 1.000, 0.002);
}

}  // namespace
}  // namespace pinsim::cluster
