#include "cluster/load_balancer.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::cluster {
namespace {

TEST(LoadBalancerTest, RoundRobinCyclesActiveBackends) {
  LoadBalancer lb(BalancerPolicy::RoundRobin, 4);
  EXPECT_EQ(lb.pick(), 0);
  EXPECT_EQ(lb.pick(), 1);
  EXPECT_EQ(lb.pick(), 2);
  EXPECT_EQ(lb.pick(), 3);
  EXPECT_EQ(lb.pick(), 0);
  lb.set_active(1, false);
  EXPECT_EQ(lb.pick(), 2);  // skips the drained backend
  EXPECT_EQ(lb.pick(), 3);
  EXPECT_EQ(lb.pick(), 0);
  EXPECT_EQ(lb.decisions(), 8);
}

TEST(LoadBalancerTest, LeastOutstandingPicksMinTiesToLowestIndex) {
  LoadBalancer lb(BalancerPolicy::LeastOutstanding, 3);
  lb.add_outstanding(0, 2);
  lb.add_outstanding(1, 1);
  lb.add_outstanding(2, 1);
  EXPECT_EQ(lb.pick(), 1);
  lb.add_outstanding(1, -1);
  EXPECT_EQ(lb.pick(), 1);
  lb.set_active(1, false);
  EXPECT_EQ(lb.pick(), 2);
  EXPECT_EQ(lb.total_outstanding(), 3);
}

TEST(LoadBalancerTest, ChrAwarePrefersInBandBackends) {
  LoadBalancer lb(BalancerPolicy::ChrAware, 3);
  lb.set_chr_in_range(0, false);
  lb.set_chr_in_range(1, true);
  lb.set_chr_in_range(2, true);
  lb.add_outstanding(1, 5);  // in-band but busier than backend 0
  EXPECT_EQ(lb.pick(), 2);
  lb.add_outstanding(2, 6);
  EXPECT_EQ(lb.pick(), 1);
}

TEST(LoadBalancerTest, ChrAwareFallsBackWhenNoBandMember) {
  LoadBalancer lb(BalancerPolicy::ChrAware, 2);
  lb.set_chr_in_range(0, false);
  lb.set_chr_in_range(1, false);
  lb.add_outstanding(0, 3);
  EXPECT_EQ(lb.pick(), 1);
  lb.set_active(1, false);
  EXPECT_EQ(lb.pick(), 0);
}

TEST(LoadBalancerTest, NoActiveBackendReturnsMinusOne) {
  LoadBalancer lb(BalancerPolicy::RoundRobin, 2);
  lb.set_active(0, false);
  lb.set_active(1, false);
  EXPECT_EQ(lb.pick(), -1);
  EXPECT_EQ(lb.decisions(), 0);
  EXPECT_EQ(lb.active_count(), 0);
}

TEST(LoadBalancerTest, ChecksBoundsAndNegativeOutstanding) {
  LoadBalancer lb(BalancerPolicy::RoundRobin, 2);
  EXPECT_THROW(lb.set_active(2, true), InvariantViolation);
  EXPECT_THROW(lb.outstanding(-1), InvariantViolation);
  EXPECT_THROW(lb.add_outstanding(0, -1), InvariantViolation);
  EXPECT_THROW(LoadBalancer(BalancerPolicy::RoundRobin, 0),
               InvariantViolation);
}

}  // namespace
}  // namespace pinsim::cluster
