#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pinsim::stats {
namespace {

TEST(ConfidenceTest, TCriticalKnownValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(5), 2.571, 1e-3);
  EXPECT_NEAR(t_critical_95(19), 2.093, 1e-3);  // 20 repetitions
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
}

TEST(ConfidenceTest, TCriticalMonotoneDecreasing) {
  for (int dof = 1; dof < 30; ++dof) {
    EXPECT_GE(t_critical_95(dof), t_critical_95(dof + 1));
  }
}

TEST(ConfidenceTest, SingleSampleHasZeroWidth) {
  Accumulator acc;
  acc.add(10.0);
  const Interval iv = confidence_95(acc);
  EXPECT_DOUBLE_EQ(iv.mean, 10.0);
  EXPECT_DOUBLE_EQ(iv.half_width, 0.0);
}

TEST(ConfidenceTest, KnownInterval) {
  // Samples 1..5: mean 3, sd sqrt(2.5), sem sqrt(0.5), t(4) = 2.776.
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  const Interval iv = confidence_95(acc);
  EXPECT_DOUBLE_EQ(iv.mean, 3.0);
  EXPECT_NEAR(iv.half_width, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_FALSE(iv.contains(10.0));
}

TEST(ConfidenceTest, CoverageIsRoughly95Percent) {
  // Property: the 95% CI of n=10 normal samples should contain the true
  // mean about 95% of the time.
  Rng rng(1234);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Accumulator acc;
    for (int i = 0; i < 10; ++i) acc.add(rng.normal(50.0, 7.0));
    if (confidence_95(acc).contains(50.0)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.93);
  EXPECT_LT(rate, 0.97);
}

TEST(ConfidenceTest, SeparationDetectsDistinctMeans) {
  Interval a{10.0, 1.0};
  Interval b{20.0, 1.0};
  Interval c{10.5, 1.0};
  EXPECT_TRUE(a.separated_from(b));
  EXPECT_TRUE(b.separated_from(a));
  EXPECT_FALSE(a.separated_from(c));
}

}  // namespace
}  // namespace pinsim::stats
