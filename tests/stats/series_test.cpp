#include "stats/series.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::stats {
namespace {

TEST(SeriesTest, SetAndGet) {
  Series s("vanilla VM");
  s.set(2, Interval{4.5, 0.3});
  EXPECT_FALSE(s.at(0).has_value());
  EXPECT_FALSE(s.at(1).has_value());
  ASSERT_TRUE(s.at(2).has_value());
  EXPECT_DOUBLE_EQ(s.at(2)->mean, 4.5);
  EXPECT_FALSE(s.at(3).has_value());
}

TEST(FigureTest, SeriesManagement) {
  Figure fig("Fig X", {"Large", "xLarge"});
  Series& a = fig.add_series("BM");
  a.set(0, Interval{1.0, 0.0});
  fig.add_series("CN");
  EXPECT_EQ(fig.series().size(), 2u);
  EXPECT_NE(fig.find_series("BM"), nullptr);
  EXPECT_EQ(fig.find_series("nope"), nullptr);
  EXPECT_THROW(fig.add_series("BM"), InvariantViolation);
}

TEST(FigureTest, MissingCellsStayAbsent) {
  // The paper's Cassandra figure omits the Large instance (thrashing).
  Figure fig("Fig 6", {"Large", "xLarge"});
  Series& s = fig.add_series("vanilla CN");
  s.set(1, Interval{3.5, 0.2});
  EXPECT_FALSE(s.at(0).has_value());
  EXPECT_TRUE(s.at(1).has_value());
}

}  // namespace
}  // namespace pinsim::stats
