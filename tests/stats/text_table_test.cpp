#include "stats/text_table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::stats {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "x,y\n1,2\n");
}

TEST(FormatIntervalTest, WithAndWithoutWidth) {
  EXPECT_EQ(format_interval(Interval{1.5, 0.0}), "1.50");
  EXPECT_EQ(format_interval(Interval{1.5, 0.25}), "1.50 ±0.25");
  EXPECT_EQ(format_interval(Interval{1.234, 0.0}, 1), "1.2");
}

TEST(FigureTableTest, RendersAllSeries) {
  Figure fig("Fig", {"Large", "xLarge"});
  fig.add_series("BM").set(0, Interval{1.0, 0.1});
  fig.find_series("BM");
  auto& cn = fig.add_series("CN");
  cn.set(0, Interval{2.0, 0.2});
  cn.set(1, Interval{1.5, 0.0});
  const std::string out = figure_table(fig).render();
  EXPECT_NE(out.find("Large"), std::string::npos);
  EXPECT_NE(out.find("2.00 ±0.20"), std::string::npos);
  // BM has no xLarge point -> dash.
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(FigureBarsTest, ProducesBarsProportionalToValues) {
  Figure fig("Shape check", {"x0"});
  fig.add_series("small").set(0, Interval{1.0, 0.0});
  fig.add_series("big").set(0, Interval{2.0, 0.0});
  const std::string out = figure_bars(fig, 10);
  // The big series' bar should be about twice the small one's.
  EXPECT_NE(out.find("|#####|"), std::string::npos);
  EXPECT_NE(out.find("|##########|"), std::string::npos);
}

}  // namespace
}  // namespace pinsim::stats
