#include "stats/accumulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pinsim::stats {
namespace {

TEST(AccumulatorTest, EmptyThrowsOnMean) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_THROW(acc.mean(), InvariantViolation);
}

TEST(AccumulatorTest, SingleSample) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, NumericallyStableForLargeOffsets) {
  Accumulator acc;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) acc.add(offset + x);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator all;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

}  // namespace
}  // namespace pinsim::stats
