#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pinsim::stats {
namespace {

TEST(Log2HistogramTest, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket(0), 2);  // 0 and 1
  EXPECT_EQ(h.bucket(1), 2);  // 2 and 3
  EXPECT_EQ(h.bucket(2), 3 - 1);  // 4 and 7
  EXPECT_EQ(h.bucket(3), 1);  // 8
  EXPECT_EQ(h.count(), 7);
}

TEST(Log2HistogramTest, LargeValues) {
  Log2Histogram h;
  h.add(1ull << 40);
  EXPECT_EQ(h.bucket(40), 1);
  EXPECT_EQ(h.bucket(39), 0);
}

TEST(Log2HistogramTest, RenderContainsCounts) {
  Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.add(10);
  const std::string out = h.render("usecs");
  EXPECT_NE(out.find("usecs"), std::string::npos);
  EXPECT_NE(out.find("8 -> 15 : 5"), std::string::npos);
}

TEST(LinearHistogramTest, QuantilesOfUniformData) {
  LinearHistogram h(1.0, 1000);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(LinearHistogramTest, ClampsToLastBucket) {
  LinearHistogram h(1.0, 10);
  h.add(1e9);
  EXPECT_EQ(h.count(), 1);
  EXPECT_LE(h.quantile(0.5), 10.0);
}

TEST(LinearHistogramTest, CountGeAtBucketBoundaries) {
  LinearHistogram h(1.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(7.5);
  EXPECT_EQ(h.count_ge(0.0), 4);
  EXPECT_EQ(h.count_ge(1.0), 3);
  EXPECT_EQ(h.count_ge(2.0), 2);
  EXPECT_EQ(h.count_ge(8.0), 0);
  // Off-boundary thresholds round up to the next bucket edge.
  EXPECT_EQ(h.count_ge(1.2), 2);
  // Beyond the clamped range nothing matches until a clamp lands there.
  EXPECT_EQ(h.count_ge(1e9), 0);
  h.add(1e9);
  EXPECT_EQ(h.count_ge(9.0), 1);
}

TEST(LinearHistogramTest, MergePoolsSamples) {
  LinearHistogram a(0.5, 100);
  LinearHistogram b(0.5, 100);
  for (int i = 0; i < 50; ++i) a.add(1.0);
  for (int i = 0; i < 50; ++i) b.add(40.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 100);
  EXPECT_EQ(a.count_ge(40.0), 50);
  EXPECT_NEAR(a.quantile(0.25), 1.0, 0.5);
  EXPECT_NEAR(a.quantile(0.75), 40.0, 0.5);
}

TEST(LinearHistogramTest, MergeRejectsMismatchedLayouts) {
  LinearHistogram a(1.0, 10);
  LinearHistogram narrow(0.5, 10);
  LinearHistogram shallow(1.0, 5);
  EXPECT_THROW(a.merge(narrow), InvariantViolation);
  EXPECT_THROW(a.merge(shallow), InvariantViolation);
  EXPECT_EQ(a.width(), 1.0);
  EXPECT_EQ(a.num_buckets(), 10u);
}

TEST(LinearHistogramTest, RejectsInvalidArguments) {
  EXPECT_THROW(LinearHistogram(0.0, 10), InvariantViolation);
  LinearHistogram h(1.0, 10);
  EXPECT_THROW(h.quantile(0.5), InvariantViolation);  // empty
  EXPECT_THROW(h.add(-1.0), InvariantViolation);
}

}  // namespace
}  // namespace pinsim::stats
