#include "core/chr_advisor.hpp"

#include <gtest/gtest.h>

namespace pinsim::core {
namespace {

TEST(ChrAdvisorTest, ChrComputation) {
  const hw::Topology host = hw::Topology::dell_r830();
  EXPECT_NEAR(chr_of(virt::instance_by_name("4xLarge"), host), 16.0 / 112.0,
              1e-12);
  EXPECT_NEAR(chr_of(virt::instance_by_name("4xLarge"),
                     hw::Topology::small_host_16()),
              1.0, 1e-12);
}

TEST(ChrAdvisorTest, PaperRangesMatchSectionVI) {
  const ChrRange cpu = paper_chr_range(workload::AppClass::CpuBound);
  EXPECT_DOUBLE_EQ(cpu.low, 0.07);
  EXPECT_DOUBLE_EQ(cpu.high, 0.14);
  const ChrRange web = paper_chr_range(workload::AppClass::IoWeb);
  EXPECT_DOUBLE_EQ(web.low, 0.14);
  EXPECT_DOUBLE_EQ(web.high, 0.28);
  const ChrRange nosql = paper_chr_range(workload::AppClass::IoNoSql);
  EXPECT_DOUBLE_EQ(nosql.low, 0.28);
  EXPECT_DOUBLE_EQ(nosql.high, 0.57);
}

TEST(ChrAdvisorTest, RangesAreOrderedByIoIntensity) {
  // The paper: "IO intensive applications require a higher CHR value
  // than the CPU intensive ones."
  EXPECT_LE(paper_chr_range(workload::AppClass::CpuBound).high,
            paper_chr_range(workload::AppClass::IoWeb).high);
  EXPECT_LE(paper_chr_range(workload::AppClass::IoWeb).high,
            paper_chr_range(workload::AppClass::IoNoSql).high);
}

TEST(ChrAdvisorTest, DeriveRangeFindsTransition) {
  const std::vector<ChrPoint> points = {
      {0.02, 3.5}, {0.04, 2.4}, {0.07, 1.8}, {0.14, 1.1}, {0.29, 1.05}};
  const auto range = derive_chr_range(points, 1.2);
  ASSERT_TRUE(range.has_value());
  EXPECT_DOUBLE_EQ(range->low, 0.07);
  EXPECT_DOUBLE_EQ(range->high, 0.14);
}

TEST(ChrAdvisorTest, DeriveRangeImmediateAndNever) {
  const std::vector<ChrPoint> good = {{0.05, 1.05}, {0.1, 1.0}};
  const auto immediate = derive_chr_range(good, 1.2);
  ASSERT_TRUE(immediate.has_value());
  EXPECT_DOUBLE_EQ(immediate->low, 0.0);
  EXPECT_DOUBLE_EQ(immediate->high, 0.05);

  const std::vector<ChrPoint> bad = {{0.05, 3.0}, {0.5, 2.0}};
  EXPECT_FALSE(derive_chr_range(bad, 1.2).has_value());
}

TEST(ChrAdvisorTest, RecommendInstanceOnPaperHost) {
  const hw::Topology host = hw::Topology::dell_r830();
  // CPU-bound on 112 cores: smallest instance with 0.07 < c/112 <= 0.14
  // is 8 cores (CHR 0.071) -> 2xLarge.
  const auto cpu = recommend_instance(workload::AppClass::CpuBound, host);
  ASSERT_TRUE(cpu.has_value());
  EXPECT_EQ(cpu->name, "2xLarge");
  // Ultra IO: smallest with 0.28 < c/112 <= 0.57 is 32 cores (0.286)
  // -> 8xLarge.
  const auto nosql = recommend_instance(workload::AppClass::IoNoSql, host);
  ASSERT_TRUE(nosql.has_value());
  EXPECT_EQ(nosql->name, "8xLarge");
}

TEST(ChrAdvisorTest, RecommendationRespectsHostSize) {
  // On a 16-core host, ultra-IO wants 0.28 < c/16 <= 0.57 -> 8 cores.
  const auto rec = recommend_instance(workload::AppClass::IoNoSql,
                                      hw::Topology::small_host_16());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->cores, 8);
}

}  // namespace
}  // namespace pinsim::core
