#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pinsim::core {
namespace {

stats::Figure sample_figure() {
  stats::Figure figure("Fig X — sample", {"Large", "xLarge"});
  auto& bm = figure.add_series(kBaselineSeries);
  bm.set(0, {10.0, 0.5});
  bm.set(1, {8.0, 0.4});
  auto& cn = figure.add_series("Vanilla CN");
  cn.set(0, {25.0, 1.0});
  cn.set(1, {9.0, 0.3});
  return figure;
}

TEST(ReportTest, HeaderNamesArtifactAndPaper) {
  std::ostringstream os;
  print_header(os, "Figure 3", "FFmpeg execution time");
  EXPECT_NE(os.str().find("Figure 3"), std::string::npos);
  EXPECT_NE(os.str().find("CPU-Pinning"), std::string::npos);
}

TEST(ReportTest, FigureReportContainsAllBlocks) {
  std::ostringstream os;
  print_figure_report(os, sample_figure());
  const std::string out = os.str();
  EXPECT_NE(out.find("Mean execution time"), std::string::npos);
  EXPECT_NE(out.find("Vanilla CN"), std::string::npos);
  EXPECT_NE(out.find("overhead ratio"), std::string::npos);
  EXPECT_NE(out.find("CSV:"), std::string::npos);
  EXPECT_NE(out.find("2.50x"), std::string::npos);  // 25/10
}

TEST(ReportTest, RatioTableClassifiesSeries) {
  std::ostringstream os;
  print_ratio_table(os, sample_figure());
  // 2.5x -> 1.13x decline = PSO.
  EXPECT_NE(os.str().find("PSO"), std::string::npos);
}

TEST(ReportTest, OptionsSuppressBlocks) {
  std::ostringstream os;
  ReportOptions options;
  options.bars = false;
  options.csv = false;
  options.ratios = false;
  print_figure_report(os, sample_figure(), options);
  EXPECT_EQ(os.str().find("CSV:"), std::string::npos);
  EXPECT_EQ(os.str().find("overhead ratio"), std::string::npos);
}

}  // namespace
}  // namespace pinsim::core
