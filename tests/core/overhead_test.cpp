#include "core/overhead.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::core {
namespace {

/// Hand-built figure: BM flat at 10; a PTO series flat at 20 (ratio 2);
/// a PSO series declining 40 -> 12 (ratio 4 -> 1.2).
stats::Figure synthetic_figure() {
  stats::Figure figure("synthetic", {"small", "medium", "large"});
  auto& bm = figure.add_series(kBaselineSeries);
  bm.set(0, {10.0, 0.0});
  bm.set(1, {10.0, 0.0});
  bm.set(2, {10.0, 0.0});
  auto& pto = figure.add_series("Vanilla VM");
  pto.set(0, {20.0, 0.0});
  pto.set(1, {20.0, 0.0});
  pto.set(2, {20.0, 0.0});
  auto& pso = figure.add_series("Vanilla CN");
  pso.set(0, {40.0, 0.0});
  pso.set(1, {20.0, 0.0});
  pso.set(2, {12.0, 0.0});
  auto& sparse = figure.add_series("Pinned CN");
  sparse.set(1, {11.0, 0.0});  // missing at 0 and 2
  return figure;
}

TEST(OverheadTest, RatiosAgainstBaseline) {
  const stats::Figure figure = synthetic_figure();
  EXPECT_DOUBLE_EQ(*overhead_ratio(figure, "Vanilla VM", 0), 2.0);
  EXPECT_DOUBLE_EQ(*overhead_ratio(figure, "Vanilla CN", 0), 4.0);
  EXPECT_DOUBLE_EQ(*overhead_ratio(figure, "Vanilla CN", 2), 1.2);
  EXPECT_FALSE(overhead_ratio(figure, "Pinned CN", 0).has_value());
  EXPECT_FALSE(overhead_ratio(figure, "nonexistent", 0).has_value());
}

TEST(OverheadTest, ClassifiesPtoAndPso) {
  const OverheadAnalysis analysis = analyze_overhead(synthetic_figure());
  const SeriesOverhead* vm = analysis.find("Vanilla VM");
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->pto_dominated);
  EXPECT_FALSE(vm->has_pso);
  EXPECT_DOUBLE_EQ(vm->pto, 2.0);

  const SeriesOverhead* cn = analysis.find("Vanilla CN");
  ASSERT_NE(cn, nullptr);
  EXPECT_TRUE(cn->has_pso);
  EXPECT_FALSE(cn->pto_dominated);
  EXPECT_DOUBLE_EQ(cn->pto, 1.2);
  EXPECT_NEAR(*cn->pso[0], 4.0 - 1.2, 1e-12);
  EXPECT_NEAR(*cn->pso[2], 0.0, 1e-12);
}

TEST(OverheadTest, BaselineExcludedFromAnalysis) {
  const OverheadAnalysis analysis = analyze_overhead(synthetic_figure());
  EXPECT_EQ(analysis.find(kBaselineSeries), nullptr);
  EXPECT_EQ(analysis.series.size(), 3u);
}

TEST(OverheadTest, MissingBaselineRejected) {
  stats::Figure figure("broken", {"x"});
  figure.add_series("Vanilla VM").set(0, {1.0, 0.0});
  EXPECT_THROW(analyze_overhead(figure), InvariantViolation);
}

TEST(OverheadTest, SparseSeriesUsesAvailablePoints) {
  const OverheadAnalysis analysis = analyze_overhead(synthetic_figure());
  const SeriesOverhead* sparse = analysis.find("Pinned CN");
  ASSERT_NE(sparse, nullptr);
  EXPECT_FALSE(sparse->ratios[0].has_value());
  ASSERT_TRUE(sparse->ratios[1].has_value());
  EXPECT_DOUBLE_EQ(*sparse->ratios[1], 1.1);
  EXPECT_DOUBLE_EQ(sparse->pto, 1.1);
}

}  // namespace
}  // namespace pinsim::core
