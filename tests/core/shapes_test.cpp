// End-to-end shape tests: cheap, low-rep versions of the paper's
// headline findings, so a regression in any substrate that would bend a
// figure fails CI before the bench run.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/figure.hpp"
#include "core/overhead.hpp"
#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/mpi.hpp"

namespace pinsim::core {
namespace {

double ratio(const ExperimentRunner& runner, virt::PlatformKind kind,
             virt::CpuMode mode, const std::string& instance,
             const WorkloadFactory& factory) {
  const auto& inst = virt::instance_by_name(instance);
  const virt::PlatformSpec spec{kind, mode, inst};
  const virt::PlatformSpec bm{virt::PlatformKind::BareMetal,
                              virt::CpuMode::Vanilla, inst};
  return runner.measure(spec, factory).interval().mean /
         runner.measure(bm, factory).interval().mean;
}

ExperimentRunner quick_runner() {
  ExperimentConfig config;
  config.repetitions = 2;
  return ExperimentRunner(config);
}

WorkloadFactory ffmpeg_factory() {
  return [] { return std::make_unique<workload::Ffmpeg>(); };
}

TEST(ShapesTest, Fig3VmIsFlatTwoXAndPinningDoesNotHelp) {
  const ExperimentRunner runner = quick_runner();
  const double vm_small = ratio(runner, virt::PlatformKind::Vm,
                                virt::CpuMode::Vanilla, "Large",
                                ffmpeg_factory());
  const double vm_big = ratio(runner, virt::PlatformKind::Vm,
                              virt::CpuMode::Vanilla, "4xLarge",
                              ffmpeg_factory());
  const double vm_pinned = ratio(runner, virt::PlatformKind::Vm,
                                 virt::CpuMode::Pinned, "Large",
                                 ffmpeg_factory());
  EXPECT_GT(vm_small, 1.8);
  EXPECT_LT(vm_small, 2.3);
  EXPECT_NEAR(vm_small, vm_big, 0.25);     // PTO: flat across sizes
  EXPECT_NEAR(vm_pinned, vm_small, 0.15);  // practice 3
}

TEST(ShapesTest, Fig3PinnedContainerTracksBareMetal) {
  const ExperimentRunner runner = quick_runner();
  const double pinned_cn = ratio(runner, virt::PlatformKind::Container,
                                 virt::CpuMode::Pinned, "xLarge",
                                 ffmpeg_factory());
  EXPECT_LT(pinned_cn, 1.12);
}

TEST(ShapesTest, Fig3VmcnAtLeastVm) {
  const ExperimentRunner runner = quick_runner();
  const double vm = ratio(runner, virt::PlatformKind::Vm,
                          virt::CpuMode::Vanilla, "xLarge",
                          ffmpeg_factory());
  const double vmcn = ratio(runner, virt::PlatformKind::VmContainer,
                            virt::CpuMode::Vanilla, "xLarge",
                            ffmpeg_factory());
  EXPECT_GE(vmcn, 0.97 * vm);
}

TEST(ShapesTest, Fig4VmConvergesTowardBareMetalWithScale) {
  const ExperimentRunner runner = quick_runner();
  const WorkloadFactory mpi = [] {
    workload::MpiConfig config;
    config.iterations = 200;  // scaled-down fig4 proportions
    config.total_compute_seconds = 2.0;
    return std::make_unique<workload::MpiSearch>(config);
  };
  const double vm_small = ratio(runner, virt::PlatformKind::Vm,
                                virt::CpuMode::Vanilla, "xLarge", mpi);
  const double vm_big = ratio(runner, virt::PlatformKind::Vm,
                              virt::CpuMode::Vanilla, "16xLarge", mpi);
  EXPECT_GT(vm_small, 1.6);
  EXPECT_LT(vm_big, 1.35);
}

TEST(ShapesTest, Fig6VanillaContainerWorstForCassandra) {
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  const WorkloadFactory cassandra = [] {
    workload::CassandraConfig cfg;
    cfg.operations = 300;
    cfg.server_threads = 40;
    return std::make_unique<workload::Cassandra>(cfg);
  };
  const double vanilla_cn = ratio(runner, virt::PlatformKind::Container,
                                  virt::CpuMode::Vanilla, "xLarge",
                                  cassandra);
  const double pinned_cn = ratio(runner, virt::PlatformKind::Container,
                                 virt::CpuMode::Pinned, "xLarge",
                                 cassandra);
  EXPECT_GT(vanilla_cn, 1.3);
  EXPECT_LT(pinned_cn, 1.2);
  EXPECT_GT(vanilla_cn, pinned_cn);
}

TEST(ShapesTest, Fig7LowChrCostsMore) {
  // The CHR experiment in miniature: the same container is slower on the
  // big host.
  auto run_on_host = [](const hw::Topology& topo) {
    const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                  virt::CpuMode::Vanilla,
                                  virt::instance_by_name("4xLarge")};
    virt::Host host(topo, hw::CostModel{}, 21);
    auto platform = virt::make_platform(host, spec);
    workload::Ffmpeg ffmpeg;
    return ffmpeg.run(*platform, Rng(21)).metric_seconds;
  };
  const double chr_one = run_on_host(hw::Topology::small_host_16());
  const double chr_low = run_on_host(hw::Topology::dell_r830());
  EXPECT_GT(chr_low, 1.15 * chr_one);
}

}  // namespace
}  // namespace pinsim::core
