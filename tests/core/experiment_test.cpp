#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/figure.hpp"
#include "workload/ffmpeg.hpp"

namespace pinsim::core {
namespace {

WorkloadFactory tiny_ffmpeg() {
  return [] {
    workload::FfmpegConfig config;
    config.serial_seconds = 0.2;
    config.parallel_seconds = 1.6;
    return std::make_unique<workload::Ffmpeg>(config);
  };
}

TEST(ExperimentTest, MeasureProducesRequestedRepetitions) {
  ExperimentConfig config;
  config.repetitions = 5;
  ExperimentRunner runner(config);
  const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("xLarge")};
  const Measurement measurement = runner.measure(spec, tiny_ffmpeg());
  EXPECT_EQ(measurement.samples.count(), 5);
  EXPECT_GT(measurement.interval().mean, 0.0);
  EXPECT_GE(measurement.interval().half_width, 0.0);
}

TEST(ExperimentTest, DeterministicAcrossRunnerInstances) {
  ExperimentConfig config;
  config.repetitions = 3;
  const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("Large")};
  const double a =
      ExperimentRunner(config).measure(spec, tiny_ffmpeg()).interval().mean;
  const double b =
      ExperimentRunner(config).measure(spec, tiny_ffmpeg()).interval().mean;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ExperimentTest, SeedChangesResults) {
  ExperimentConfig a;
  a.repetitions = 3;
  ExperimentConfig b = a;
  b.base_seed = 777;
  const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("Large")};
  EXPECT_NE(ExperimentRunner(a).measure(spec, tiny_ffmpeg()).interval().mean,
            ExperimentRunner(b).measure(spec, tiny_ffmpeg()).interval().mean);
}

TEST(FigureBuildTest, BuildsAllSeriesAcrossInstances) {
  ExperimentConfig config;
  config.repetitions = 2;
  ExperimentRunner runner(config);
  FigureSpec spec;
  spec.title = "mini fig";
  spec.instances = {"Large", "xLarge"};
  int points = 0;
  spec.on_point = [&points](const virt::PlatformSpec&,
                            const stats::Interval&) { ++points; };
  const stats::Figure figure = build_figure(
      runner, spec, [](const virt::InstanceType&) { return tiny_ffmpeg(); });
  EXPECT_EQ(figure.series().size(), 7u);
  EXPECT_EQ(points, 14);
  for (const auto& series : figure.series()) {
    EXPECT_TRUE(series.at(0).has_value()) << series.name();
    EXPECT_TRUE(series.at(1).has_value()) << series.name();
  }
}

TEST(FigureBuildTest, SkipPredicateOmitsCells) {
  ExperimentConfig config;
  config.repetitions = 1;
  ExperimentRunner runner(config);
  FigureSpec spec;
  spec.title = "skippy";
  spec.instances = {"Large"};
  spec.skip = [](const virt::PlatformSpec& p) {
    return p.kind == virt::PlatformKind::Vm;
  };
  const stats::Figure figure = build_figure(
      runner, spec, [](const virt::InstanceType&) { return tiny_ffmpeg(); });
  EXPECT_FALSE(figure.find_series("Vanilla VM")->at(0).has_value());
  EXPECT_TRUE(figure.find_series("Vanilla BM")->at(0).has_value());
}

TEST(FigureBuildTest, PaperInstanceLists) {
  EXPECT_EQ(fig3_instances().size(), 4u);
  EXPECT_EQ(fig3_instances().back(), "4xLarge");
  EXPECT_EQ(fig456_instances().size(), 5u);
  EXPECT_EQ(fig456_instances().front(), "xLarge");
}

}  // namespace
}  // namespace pinsim::core
