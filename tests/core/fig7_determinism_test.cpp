// End-to-end determinism of the Figure 7 (CHR) bench: the rendered
// report must be byte-identical between --jobs 1 and --jobs 4 at a
// fixed seed, and must match a golden hash. The golden pins the whole
// scheduler pipeline — wakeup placement candidate sets, RNG draw order,
// runqueue tie-breaks, throttle/unthrottle order — so any refactor that
// perturbs the simulated behaviour (not just its speed) fails here.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "hw/topology.hpp"
#include "stats/series.hpp"
#include "virt/instance_type.hpp"
#include "virt/platform.hpp"
#include "workload/ffmpeg.hpp"

namespace pinsim::core {
namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// The fig7_chr cells (reps overridden to 2 to keep the test fast),
/// rendered exactly like the bench binary renders them.
std::string render_fig7(int jobs, int shards = 1) {
  ExperimentConfig config;
  config.repetitions = 2;
  config.shards = shards;
  const ExperimentRunner runner(config);
  const hw::Topology small = hw::Topology::small_host_16();
  const hw::Topology big = hw::Topology::dell_r830();
  const WorkloadFactory ffmpeg = [] {
    return std::make_unique<workload::Ffmpeg>();
  };
  const auto& instance = virt::instance_by_name("4xLarge");
  auto cell = [&](virt::PlatformKind kind, virt::CpuMode mode,
                  const hw::Topology& host) {
    return SweepCell{virt::PlatformSpec{kind, mode, instance}, ffmpeg, host};
  };
  const std::vector<SweepCell> cells = {
      cell(virt::PlatformKind::Container, virt::CpuMode::Vanilla, small),
      cell(virt::PlatformKind::Container, virt::CpuMode::Pinned, small),
      cell(virt::PlatformKind::BareMetal, virt::CpuMode::Vanilla, small),
      cell(virt::PlatformKind::Container, virt::CpuMode::Vanilla, big),
      cell(virt::PlatformKind::Container, virt::CpuMode::Pinned, big),
  };
  const std::vector<Measurement> results = runner.measure_all(cells, jobs);

  stats::Figure figure("Figure 7 — FFmpeg on a 4xLarge container, by host",
                       {"16 cores (CHR=1)", "112 cores (CHR=0.14)"});
  figure.add_series("Vanilla CN");
  figure.add_series("Pinned CN");
  figure.add_series("Vanilla BM");
  figure.mutable_series("Vanilla CN")->set(0, results[0].interval());
  figure.mutable_series("Pinned CN")->set(0, results[1].interval());
  figure.mutable_series("Vanilla BM")->set(0, results[2].interval());
  figure.mutable_series("Vanilla CN")->set(1, results[3].interval());
  figure.mutable_series("Pinned CN")->set(1, results[4].interval());

  ReportOptions report_options;
  report_options.ratios = false;
  std::ostringstream out;
  print_figure_report(out, figure, report_options);
  return out.str();
}

// Golden FNV-1a hash of the jobs=1 report. Captured from the verified
// baseline (outputs byte-identical to the pre-overhaul scheduler at the
// same seeds). An intentional behaviour change (new cost model, RNG
// change, ...) must re-capture: run with --gtest_also_run_disabled_tests
// or read the hash from the failure message.
constexpr std::uint64_t kGoldenHash = 0x87954fb3e4d1cf54ull;

TEST(Fig7DeterminismTest, ParallelSweepMatchesSerialByteForByte) {
  const std::string serial = render_fig7(1);
  const std::string parallel = render_fig7(4);
  EXPECT_EQ(serial, parallel);
}

TEST(Fig7DeterminismTest, ReportMatchesGoldenHash) {
  const std::string serial = render_fig7(1);
  EXPECT_EQ(fnv1a(serial), kGoldenHash)
      << "fig7 report drifted; actual hash 0x" << std::hex << fnv1a(serial)
      << "\nreport:\n"
      << serial;
}

TEST(Fig7DeterminismTest, ShardsOneIsByteIdenticalToGolden) {
  // --shards 1 must route through the historical solo-engine path:
  // same bytes, same golden, for any --jobs.
  const std::string sharded = render_fig7(1, /*shards=*/1);
  EXPECT_EQ(fnv1a(sharded), kGoldenHash);
  EXPECT_EQ(sharded, render_fig7(4, /*shards=*/1));
}

TEST(Fig7DeterminismTest, ShardedRunOnceIsDeterministic) {
  // --shards > 1 drives one fig7 cell through the conservative round
  // loop. The result is window-rounded (not compared to --shards 1)
  // but must be identical across repeated runs and across shard
  // counts: empty shards never decide the window, so the round
  // sequence of a one-domain machine is shard-count invariant.
  auto run_cell = [](int shards) {
    ExperimentConfig config;
    config.repetitions = 2;
    config.shards = shards;
    const ExperimentRunner runner(config);
    const WorkloadFactory ffmpeg = [] {
      return std::make_unique<workload::Ffmpeg>();
    };
    const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                  virt::CpuMode::Vanilla,
                                  virt::instance_by_name("4xLarge")};
    return runner
        .run_once(spec, ffmpeg, runner.seed_for(0),
                  hw::Topology::small_host_16())
        .metric_seconds;
  };
  const double first = run_cell(2);
  EXPECT_EQ(first, run_cell(2));
  EXPECT_EQ(first, run_cell(4));
  EXPECT_GT(first, 0.0);
}

}  // namespace
}  // namespace pinsim::core
