// The parallel sweep's contract: measure_all is bit-identical to the
// serial measure() path for the same seeds, at any job count.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::core {
namespace {

WorkloadFactory tiny_ffmpeg() {
  return [] {
    workload::FfmpegConfig config;
    config.serial_seconds = 0.2;
    config.parallel_seconds = 1.6;
    return std::make_unique<workload::Ffmpeg>(config);
  };
}

std::vector<virt::PlatformSpec> all_series_specs(const char* instance) {
  return virt::paper_series(virt::instance_by_name(instance));
}

void expect_identical_to_serial(const ExperimentRunner& runner,
                                const std::vector<virt::PlatformSpec>& specs,
                                const WorkloadFactory& factory, int jobs) {
  const std::vector<Measurement> parallel =
      runner.measure_all(specs, factory, jobs);
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Measurement serial = runner.measure(specs[i], factory);
    SCOPED_TRACE(specs[i].label() + " @ " + specs[i].instance.name +
                 " jobs=" + std::to_string(jobs));
    // Bit-identical, not approximately equal: the parallel path must
    // replay the exact serial seeds and accumulate in the same order.
    EXPECT_EQ(parallel[i].samples.count(), serial.samples.count());
    EXPECT_EQ(parallel[i].samples.mean(), serial.samples.mean());
    EXPECT_EQ(parallel[i].samples.variance(), serial.samples.variance());
    EXPECT_EQ(parallel[i].interval().mean, serial.interval().mean);
    EXPECT_EQ(parallel[i].interval().half_width,
              serial.interval().half_width);
  }
}

TEST(ExperimentParallelTest, SingleJobMatchesSerialOnEveryPaperSeries) {
  ExperimentConfig config;
  config.repetitions = 3;
  const ExperimentRunner runner(config);
  expect_identical_to_serial(runner, all_series_specs("Large"),
                             tiny_ffmpeg(), 1);
}

TEST(ExperimentParallelTest, FourJobsMatchSerialOnEveryPaperSeries) {
  ExperimentConfig config;
  config.repetitions = 3;
  const ExperimentRunner runner(config);
  expect_identical_to_serial(runner, all_series_specs("Large"),
                             tiny_ffmpeg(), 4);
}

TEST(ExperimentParallelTest, FourJobsMatchSerialOnLargerInstance) {
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  expect_identical_to_serial(runner, all_series_specs("xLarge"),
                             tiny_ffmpeg(), 4);
}

TEST(ExperimentParallelTest, MoreJobsThanCellsIsFine) {
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  const std::vector<virt::PlatformSpec> specs = {
      virt::PlatformSpec{virt::PlatformKind::BareMetal,
                         virt::CpuMode::Vanilla,
                         virt::instance_by_name("Large")}};
  expect_identical_to_serial(runner, specs, tiny_ffmpeg(), 16);
}

TEST(ExperimentParallelTest, HostOverrideCellsAreIndependent) {
  // Figure 7's pattern: the same spec on two different hosts must
  // produce different numbers, and each must match a direct run_once.
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("xLarge")};
  const std::vector<SweepCell> cells = {
      SweepCell{spec, tiny_ffmpeg(), hw::Topology::small_host_16()},
      SweepCell{spec, tiny_ffmpeg(), hw::Topology::dell_r830()},
  };
  const auto results = runner.measure_all(cells, 4);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].samples.mean(), results[1].samples.mean());
  // Rep 0 of the small-host cell must be exactly a direct run_once with
  // the same seed and topology.
  const double direct_small =
      runner
          .run_once(spec, tiny_ffmpeg(), runner.seed_for(0),
                    hw::Topology::small_host_16())
          .metric_seconds;
  EXPECT_TRUE(direct_small == results[0].samples.min() ||
              direct_small == results[0].samples.max());
}

TEST(ExperimentParallelTest, PerCellFactoriesStayDistinct) {
  // Figure 8's pattern: same spec, different workload config per cell.
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("xLarge")};
  auto ffmpeg_with = [](double serial_seconds) -> WorkloadFactory {
    return [serial_seconds] {
      workload::FfmpegConfig cfg;
      cfg.serial_seconds = serial_seconds;
      cfg.parallel_seconds = 1.0;
      return std::make_unique<workload::Ffmpeg>(cfg);
    };
  };
  const std::vector<SweepCell> cells = {
      SweepCell{spec, ffmpeg_with(0.1), std::nullopt},
      SweepCell{spec, ffmpeg_with(0.8), std::nullopt},
  };
  const auto results = runner.measure_all(cells, 4);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].samples.mean(), results[1].samples.mean());
}

TEST(ExperimentParallelTest, WorkerExceptionPropagates) {
  ExperimentConfig config;
  config.repetitions = 2;
  const ExperimentRunner runner(config);
  const std::vector<virt::PlatformSpec> specs = {
      virt::PlatformSpec{virt::PlatformKind::BareMetal,
                         virt::CpuMode::Vanilla,
                         virt::instance_by_name("Large")}};
  const WorkloadFactory broken = []() -> std::unique_ptr<workload::Workload> {
    return nullptr;  // trips the PINSIM_CHECK inside run_once
  };
  EXPECT_THROW(runner.measure_all(specs, broken, 4), InvariantViolation);
}

}  // namespace
}  // namespace pinsim::core
