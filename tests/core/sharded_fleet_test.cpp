// ShardedFleet determinism: K hosts co-simulated under the conservative
// round loop must produce per-host results that are bit-identical across
// repeated runs, across worker-thread counts, and across shard counts —
// per-host metrics are recorded at exact event instants, so only
// raw.wall_seconds (round-granular by design) is excluded from the
// cross-shard comparison.
#include <gtest/gtest.h>

#include <vector>

#include "core/sharded_fleet.hpp"
#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "virt/factory.hpp"
#include "virt/instance_type.hpp"
#include "virt/platform.hpp"
#include "workload/ffmpeg.hpp"

namespace pinsim::core {
namespace {

/// A transcode small enough to keep K-host co-sim cheap in the tier-1
/// suite but long enough to cross many heartbeat periods.
workload::FfmpegConfig cheap_transcode() {
  workload::FfmpegConfig config;
  config.serial_seconds = 0.3;
  config.parallel_seconds = 1.5;
  config.startup_seconds = 0.1;
  config.source_seconds = 5.0;
  return config;
}

ShardedFleetConfig fleet_config(int hosts, int shards, int threads) {
  ShardedFleetConfig config;
  config.hosts = hosts;
  config.shards = shards;
  config.threads = threads;
  config.spec = virt::PlatformSpec{virt::PlatformKind::Container,
                                   virt::CpuMode::Vanilla,
                                   virt::instance_by_name("xLarge")};
  config.full_host = hw::Topology::small_host_16();
  return config;
}

ShardedFleetResult run_fleet(int hosts, int shards, int threads) {
  workload::Ffmpeg ffmpeg(cheap_transcode());
  return run_sharded_fleet(fleet_config(hosts, shards, threads), ffmpeg);
}

/// Everything recorded at exact event instants — the cross-shard
/// determinism currency (raw.wall_seconds is round-granular).
void expect_hosts_equal(const ShardedFleetResult& a,
                        const ShardedFleetResult& b) {
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t h = 0; h < a.hosts.size(); ++h) {
    EXPECT_EQ(a.hosts[h].makespan_seconds, b.hosts[h].makespan_seconds)
        << "host " << h;
    EXPECT_EQ(a.hosts[h].mean_response_seconds,
              b.hosts[h].mean_response_seconds)
        << "host " << h;
    EXPECT_EQ(a.hosts[h].tasks_finished, b.hosts[h].tasks_finished)
        << "host " << h;
    EXPECT_EQ(a.hosts[h].raw.metric_seconds, b.hosts[h].raw.metric_seconds)
        << "host " << h;
  }
  EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent);
  EXPECT_EQ(a.heartbeats_delivered, b.heartbeats_delivered);
}

TEST(ShardedFleetTest, ShardMapRoundRobins) {
  const ShardedFleet fleet(fleet_config(5, 2, 1));
  EXPECT_EQ(fleet.shard_of(0), 0);
  EXPECT_EQ(fleet.shard_of(1), 1);
  EXPECT_EQ(fleet.shard_of(2), 0);
  EXPECT_EQ(fleet.shard_of(4), 0);
}

TEST(ShardedFleetTest, RunProducesWorkAndMailboxTraffic) {
  const ShardedFleetResult result = run_fleet(4, 2, 1);
  ASSERT_EQ(result.hosts.size(), 4u);
  for (const FleetHostResult& host : result.hosts) {
    EXPECT_GT(host.makespan_seconds, 0.0);
    EXPECT_GT(host.tasks_finished, 0);
  }
  // The heartbeat ring crossed shards, so the round loop really ran.
  EXPECT_GT(result.heartbeats_sent, 0);
  EXPECT_GT(result.heartbeats_delivered, 0);
  EXPECT_GT(result.shard_stats.rounds, 0);
  EXPECT_GT(result.shard_stats.cross_posts, 0);
  EXPECT_GT(result.events_fired, 0);
}

TEST(ShardedFleetTest, RepeatedRunsAreIdentical) {
  const ShardedFleetResult first = run_fleet(4, 2, 1);
  const ShardedFleetResult second = run_fleet(4, 2, 1);
  expect_hosts_equal(first, second);
  for (std::size_t h = 0; h < first.hosts.size(); ++h) {
    // Same shard count: even the round-granular wall clock matches.
    EXPECT_EQ(first.hosts[h].raw.wall_seconds,
              second.hosts[h].raw.wall_seconds);
  }
  EXPECT_EQ(first.shard_stats.rounds, second.shard_stats.rounds);
  EXPECT_EQ(first.shard_stats.cross_posts, second.shard_stats.cross_posts);
}

TEST(ShardedFleetTest, HostResultsIdenticalAcrossShardCounts) {
  const ShardedFleetResult serial = run_fleet(4, 1, 1);
  const ShardedFleetResult two = run_fleet(4, 2, 1);
  const ShardedFleetResult four = run_fleet(4, 4, 1);
  expect_hosts_equal(serial, two);
  expect_hosts_equal(serial, four);
}

TEST(ShardedFleetTest, HostResultsIdenticalAcrossThreadCounts) {
  const ShardedFleetResult threads1 = run_fleet(4, 4, 1);
  const ShardedFleetResult threads2 = run_fleet(4, 4, 2);
  const ShardedFleetResult threads4 = run_fleet(4, 4, 4);
  const ShardedFleetResult threads0 = run_fleet(4, 4, 0);  // one per shard
  expect_hosts_equal(threads1, threads2);
  expect_hosts_equal(threads1, threads4);
  expect_hosts_equal(threads1, threads0);
  for (std::size_t h = 0; h < threads1.hosts.size(); ++h) {
    // Same shard count: window sequence identical, so wall matches too.
    EXPECT_EQ(threads1.hosts[h].raw.wall_seconds,
              threads2.hosts[h].raw.wall_seconds);
    EXPECT_EQ(threads1.hosts[h].raw.wall_seconds,
              threads4.hosts[h].raw.wall_seconds);
  }
  EXPECT_EQ(threads1.shard_stats.rounds, threads4.shard_stats.rounds);
}

TEST(ShardedFleetTest, SingleHostSingleShardMatchesSoloRun) {
  // hosts=1 shards=1 is a plain engine run plus a self-heartbeat; the
  // workload's own metric must equal driving the solo stack directly.
  const ShardedFleetResult fleet = run_fleet(1, 1, 1);
  ASSERT_EQ(fleet.hosts.size(), 1u);

  virt::Host host(virt::host_topology_for(fleet_config(1, 1, 1).spec,
                                          hw::Topology::small_host_16()),
                  hw::CostModel{}, 42);
  auto platform = virt::make_platform(host, fleet_config(1, 1, 1).spec);
  workload::Ffmpeg ffmpeg(cheap_transcode());
  const workload::RunResult solo =
      ffmpeg.run(*platform, Rng(42 ^ 0x517cc1b727220a95ull));

  EXPECT_EQ(fleet.hosts[0].raw.metric_seconds, solo.metric_seconds);
  EXPECT_EQ(fleet.hosts[0].tasks_finished > 0, true);
}

}  // namespace
}  // namespace pinsim::core
