#include "core/best_practices.hpp"

#include <gtest/gtest.h>

namespace pinsim::core {
namespace {

TEST(BestPracticesTest, FiveTextsPublished) {
  ASSERT_EQ(practice_texts().size(), 5u);
  EXPECT_NE(practice_texts()[0].find("vanilla containers"),
            std::string::npos);
  EXPECT_NE(practice_texts()[4].find("CHR"), std::string::npos);
}

TEST(BestPracticesTest, CpuBoundWithPinningGetsPinnedContainer) {
  DeploymentQuery query;
  query.app = workload::AppClass::CpuBound;
  const auto recs = recommend(query);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs.front().kind, virt::PlatformKind::Container);
  EXPECT_EQ(recs.front().mode, virt::CpuMode::Pinned);
}

TEST(BestPracticesTest, IoBoundWithoutPinningGetsVmcn) {
  DeploymentQuery query;
  query.app = workload::AppClass::IoNoSql;
  query.pinning_allowed = false;
  const auto recs = recommend(query);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs.front().kind, virt::PlatformKind::VmContainer);
}

TEST(BestPracticesTest, VmIsolationForcesVmLayers) {
  DeploymentQuery query;
  query.app = workload::AppClass::CpuBound;
  query.require_vm_isolation = true;
  const auto recs = recommend(query);
  for (const auto& rec : recs) {
    EXPECT_TRUE(rec.kind == virt::PlatformKind::Vm ||
                rec.kind == virt::PlatformKind::VmContainer)
        << rec.label();
  }
  // Practice 3: no pinned plain VM recommended for CPU-bound work.
  EXPECT_EQ(recs.front().mode, virt::CpuMode::Vanilla);
}

TEST(BestPracticesTest, NeverRecommendsVanillaContainerFirst) {
  for (const auto app :
       {workload::AppClass::CpuBound, workload::AppClass::Hpc,
        workload::AppClass::IoWeb, workload::AppClass::IoNoSql}) {
    for (const bool pinning : {true, false}) {
      DeploymentQuery query;
      query.app = app;
      query.pinning_allowed = pinning;
      const auto recs = recommend(query);
      ASSERT_FALSE(recs.empty());
      const auto& top = recs.front();
      EXPECT_FALSE(top.kind == virt::PlatformKind::Container &&
                   top.mode == virt::CpuMode::Vanilla)
          << "vanilla container recommended for " << to_string(app);
    }
  }
}

TEST(BestPracticesTest, VerifyPracticesAgainstSyntheticData) {
  // CPU figure: VM flat 2x (pinning no help), pinned CN ~1x best.
  stats::Figure cpu("cpu", {"s", "l"});
  auto set_flat = [&cpu](const std::string& name, double a, double b) {
    auto& series = cpu.add_series(name);
    series.set(0, {a, 0.0});
    series.set(1, {b, 0.0});
  };
  set_flat("Vanilla VM", 20, 20);
  set_flat("Pinned VM", 20, 20);
  set_flat("Vanilla VMCN", 24, 21);
  set_flat("Pinned VMCN", 24, 21);
  set_flat("Vanilla CN", 13, 10.5);
  set_flat("Pinned CN", 10.2, 10.1);
  set_flat(kBaselineSeries, 10, 10);

  // IO figure: vanilla CN worst at small size, VMCN <= VM.
  stats::Figure io("io", {"s", "l"});
  auto set_io = [&io](const std::string& name, double a, double b) {
    auto& series = io.add_series(name);
    series.set(0, {a, 0.0});
    series.set(1, {b, 0.0});
  };
  set_io("Vanilla VM", 15, 12);
  set_io("Pinned VM", 13, 11);
  set_io("Vanilla VMCN", 14, 11.5);
  set_io("Pinned VMCN", 12.5, 11);
  set_io("Vanilla CN", 25, 11);
  set_io("Pinned CN", 9, 9.8);
  set_io(kBaselineSeries, 10, 10);

  const auto checks = verify_practices(cpu, io);
  ASSERT_EQ(checks.size(), 4u);
  for (const auto& check : checks) {
    EXPECT_TRUE(check.holds) << "practice " << check.practice << ": "
                             << check.evidence;
  }
}

}  // namespace
}  // namespace pinsim::core
