#include "workload/wordpress.hpp"

#include <gtest/gtest.h>

#include "virt/factory.hpp"

namespace pinsim::workload {
namespace {

WordPressConfig small_config() {
  // Enough requests to saturate a small instance (the paper's regime:
  // 1,000 simultaneous requests against 4 cores).
  WordPressConfig config;
  config.requests = 1000;
  return config;
}

RunResult run_on(Workload& workload, virt::PlatformKind kind,
                 virt::CpuMode mode, const std::string& instance,
                 std::uint64_t seed = 1) {
  const virt::PlatformSpec spec{kind, mode,
                                virt::instance_by_name(instance)};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, seed);
  auto platform = virt::make_platform(host, spec);
  return workload.run(*platform, Rng(seed));
}

TEST(WordPressTest, CompletesAllRequests) {
  WordPress wp(small_config());
  const RunResult result = run_on(wp, virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, "xLarge");
  EXPECT_EQ(result.extras.at("requests"), 1000);
  EXPECT_GT(result.metric_seconds, 0.0);
  // Mean response cannot exceed the makespan.
  EXPECT_LE(result.metric_seconds, result.wall_seconds);
}

TEST(WordPressTest, MoreCoresReduceResponseTime) {
  WordPress wp(small_config());
  const double small = run_on(wp, virt::PlatformKind::BareMetal,
                              virt::CpuMode::Vanilla, "xLarge", 3)
                           .metric_seconds;
  const double big = run_on(wp, virt::PlatformKind::BareMetal,
                            virt::CpuMode::Vanilla, "8xLarge", 3)
                         .metric_seconds;
  EXPECT_GT(small, big);
}

TEST(WordPressTest, VanillaContainerWorstPinnedContainerBest) {
  // Figure 5's key observation at small instance sizes.
  WordPress wp(small_config());
  const double vanilla_cn = run_on(wp, virt::PlatformKind::Container,
                                   virt::CpuMode::Vanilla, "xLarge", 5)
                                .metric_seconds;
  const double pinned_cn = run_on(wp, virt::PlatformKind::Container,
                                  virt::CpuMode::Pinned, "xLarge", 5)
                               .metric_seconds;
  EXPECT_GT(vanilla_cn, 1.3 * pinned_cn);
}

TEST(WordPressTest, RequestsDoIo) {
  WordPressConfig config;
  config.requests = 50;
  WordPress wp(config);
  const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("2xLarge")};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, 7);
  auto platform = virt::make_platform(host, spec);
  wp.run(*platform, Rng(7));
  // Every request reads and writes the socket (plus page-cache misses).
  EXPECT_GE(host.nic().completed(), 100);
  EXPECT_GT(host.disk().completed(), 0);
  EXPECT_GE(host.kernel().stats().irqs, 100);
}

}  // namespace
}  // namespace pinsim::workload
