#include "workload/ffmpeg.hpp"

#include <gtest/gtest.h>

#include "virt/factory.hpp"

namespace pinsim::workload {
namespace {

RunResult run_on(Workload& workload, virt::PlatformKind kind,
                 virt::CpuMode mode, const std::string& instance,
                 std::uint64_t seed = 1) {
  const virt::PlatformSpec spec{kind, mode,
                                virt::instance_by_name(instance)};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, seed);
  auto platform = virt::make_platform(host, spec);
  return workload.run(*platform, Rng(seed));
}

TEST(FfmpegTest, CompletesOnBareMetal) {
  Ffmpeg ffmpeg;
  const RunResult result = run_on(ffmpeg, virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, "xLarge");
  EXPECT_GT(result.metric_seconds, 1.0);
  EXPECT_LT(result.metric_seconds, 60.0);
  EXPECT_EQ(result.extras.at("threads"), 4);
}

TEST(FfmpegTest, ScalesWithCoresUpToSixteen) {
  Ffmpeg ffmpeg;
  const double large = run_on(ffmpeg, virt::PlatformKind::BareMetal,
                              virt::CpuMode::Vanilla, "Large")
                           .metric_seconds;
  const double xlarge = run_on(ffmpeg, virt::PlatformKind::BareMetal,
                               virt::CpuMode::Vanilla, "xLarge")
                            .metric_seconds;
  const double big = run_on(ffmpeg, virt::PlatformKind::BareMetal,
                            virt::CpuMode::Vanilla, "4xLarge")
                         .metric_seconds;
  EXPECT_GT(large, xlarge);
  EXPECT_GT(xlarge, big);
  // Amdahl: never better than serial + parallel/16.
  EXPECT_GT(big, 6.0);
}

TEST(FfmpegTest, ThreadPoolSizedFromVisibleCpus) {
  Ffmpeg ffmpeg;
  const auto& large = virt::instance_by_name("Large");

  // Pinned container sees its cpuset: 2 threads.
  {
    const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                  virt::CpuMode::Pinned, large};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 3);
    auto platform = virt::make_platform(host, spec);
    EXPECT_EQ(ffmpeg.threads_on(*platform), 2);
  }
  // Vanilla container sees the whole host: capped at the effective
  // parallelism limit.
  {
    const virt::PlatformSpec spec{virt::PlatformKind::Container,
                                  virt::CpuMode::Vanilla, large};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 3);
    auto platform = virt::make_platform(host, spec);
    EXPECT_EQ(ffmpeg.threads_on(*platform), FfmpegConfig{}.max_threads);
  }
  // VM guest sees its vCPUs.
  {
    const virt::PlatformSpec spec{virt::PlatformKind::Vm,
                                  virt::CpuMode::Vanilla, large};
    virt::Host host(hw::Topology::dell_r830(), hw::CostModel{}, 3);
    auto platform = virt::make_platform(host, spec);
    EXPECT_EQ(ffmpeg.threads_on(*platform), 2);
  }
}

TEST(FfmpegTest, VmRoughlyDoublesBareMetalTime) {
  // The paper's headline Figure 3 observation.
  Ffmpeg ffmpeg;
  const double bm = run_on(ffmpeg, virt::PlatformKind::BareMetal,
                           virt::CpuMode::Vanilla, "xLarge", 7)
                        .metric_seconds;
  const double vm = run_on(ffmpeg, virt::PlatformKind::Vm,
                           virt::CpuMode::Vanilla, "xLarge", 7)
                        .metric_seconds;
  EXPECT_GT(vm / bm, 1.7);
  EXPECT_LT(vm / bm, 2.4);
}

TEST(FfmpegTest, MultiProcessModeSplitsWork) {
  FfmpegConfig config;
  config.processes = 5;
  Ffmpeg split(config);
  Ffmpeg whole;
  const double split_time = run_on(split, virt::PlatformKind::BareMetal,
                                   virt::CpuMode::Vanilla, "4xLarge", 9)
                                .metric_seconds;
  const double whole_time = run_on(whole, virt::PlatformKind::BareMetal,
                                   virt::CpuMode::Vanilla, "4xLarge", 9)
                                .metric_seconds;
  // Same total encode work; splitting adds per-file startup/mux tails
  // but also parallelizes across files, so both land within a small
  // factor of each other.
  EXPECT_GT(split_time, 0.25 * whole_time);
  EXPECT_LT(split_time, 2.0 * whole_time);
}

TEST(FfmpegTest, DeterministicForSameSeed) {
  Ffmpeg ffmpeg;
  const double a = run_on(ffmpeg, virt::PlatformKind::Container,
                          virt::CpuMode::Vanilla, "Large", 21)
                       .metric_seconds;
  const double b = run_on(ffmpeg, virt::PlatformKind::Container,
                          virt::CpuMode::Vanilla, "Large", 21)
                       .metric_seconds;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace pinsim::workload
