#include "workload/request_source.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "virt/factory.hpp"
#include "virt/platform.hpp"

namespace pinsim::workload {
namespace {

struct Bench {
  virt::Host host;
  std::unique_ptr<virt::Platform> platform;

  explicit Bench(std::uint64_t seed = 1,
                 const std::string& instance = "xLarge")
      : host(virt::host_topology_for(spec_for(instance),
                                     hw::Topology::small_host_16()),
             hw::CostModel{}, seed),
        platform(virt::make_platform(host, spec_for(instance))) {}

  static virt::PlatformSpec spec_for(const std::string& instance) {
    return virt::PlatformSpec{virt::PlatformKind::Container,
                              virt::CpuMode::Pinned,
                              virt::instance_by_name(instance)};
  }

  /// Drive `count` requests through `source`, all injected at t = 0,
  /// and return each completion instant.
  std::vector<SimTime> serve(RequestSource& source, int count) {
    std::vector<SimTime> completions;
    sim::Engine& engine = platform->engine();
    engine.schedule_detached(0, [&] {
      for (int i = 0; i < count; ++i) {
        source.inject([&completions, &engine] {
          completions.push_back(engine.now());
        });
      }
    });
    const bool drained = engine.run_until(
        [&] { return static_cast<int>(completions.size()) == count; },
        sec(600));
    PINSIM_CHECK(drained);
    return completions;
  }
};

TEST(RequestSourceTest, WordPressServesEveryInjectedRequest) {
  Bench bench;
  auto source =
      make_wordpress_source(*bench.platform, WordPressConfig{}, Rng(3));
  EXPECT_STREQ(source->name(), "wordpress-serve");
  const std::vector<SimTime> completions = bench.serve(*source, 40);
  EXPECT_EQ(completions.size(), 40u);
  EXPECT_EQ(source->served(), 40);
  EXPECT_EQ(source->outstanding(), 0);
  for (const SimTime t : completions) EXPECT_GT(t, 0);
  // The fig-5 recipe does socket and (on page-cache misses) disk IO.
  EXPECT_GT(bench.host.nic().completed(), 0);
}

TEST(RequestSourceTest, CassandraWorkersServeInjectedOps) {
  Bench bench(5);
  CassandraConfig config;
  config.server_threads = 4;
  auto source = make_cassandra_source(*bench.platform, config, Rng(5));
  EXPECT_STREQ(source->name(), "cassandra-serve");
  const std::vector<SimTime> completions = bench.serve(*source, 32);
  EXPECT_EQ(completions.size(), 32u);
  EXPECT_EQ(source->served(), 32);
  EXPECT_EQ(source->outstanding(), 0);
  // Writes hit the commit log; cache misses hit SSTables.
  EXPECT_GT(bench.host.disk().completed(), 0);
}

TEST(RequestSourceTest, SameSeedReplaysIdenticalCompletionTimes) {
  CassandraConfig config;
  config.server_threads = 2;
  Bench a(9);
  Bench b(9);
  auto source_a = make_cassandra_source(*a.platform, config, Rng(9));
  auto source_b = make_cassandra_source(*b.platform, config, Rng(9));
  EXPECT_EQ(a.serve(*source_a, 24), b.serve(*source_b, 24));

  Bench c(9);
  Bench d(9);
  auto source_c =
      make_wordpress_source(*c.platform, WordPressConfig{}, Rng(9));
  auto source_d =
      make_wordpress_source(*d.platform, WordPressConfig{}, Rng(9));
  EXPECT_EQ(c.serve(*source_c, 24), d.serve(*source_d, 24));
}

TEST(RequestSourceTest, FactoryMapsServingClassesOnly) {
  Bench bench;
  EXPECT_STREQ(
      make_request_source(AppClass::IoWeb, *bench.platform, Rng(1))->name(),
      "wordpress-serve");
  EXPECT_STREQ(
      make_request_source(AppClass::IoNoSql, *bench.platform, Rng(1))->name(),
      "cassandra-serve");
  EXPECT_THROW(make_request_source(AppClass::CpuBound, *bench.platform, Rng(1)),
               InvariantViolation);
}

}  // namespace
}  // namespace pinsim::workload
