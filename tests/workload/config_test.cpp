// Workload configuration invariants: the calibrated defaults must match
// the paper's experiment protocol (§III).
#include <gtest/gtest.h>

#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/mpi.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::workload {
namespace {

TEST(WorkloadConfigTest, FfmpegMatchesPaperProtocol) {
  const FfmpegConfig config;
  // One HD source, ~50 MB footprint, bounded thread scaling.
  EXPECT_DOUBLE_EQ(config.working_set_mb, 50.0);
  EXPECT_LE(config.max_threads, 16);  // "up to 16 CPU cores"
  EXPECT_EQ(config.processes, 1);
  EXPECT_DOUBLE_EQ(config.source_seconds, 30.0);  // the 30 s segment
  EXPECT_GT(config.parallel_seconds, config.serial_seconds);
}

TEST(WorkloadConfigTest, WordPressMatchesPaperProtocol) {
  const WordPressConfig config;
  EXPECT_EQ(config.requests, 1000);  // "1,000 simultaneous web requests"
  // Each request performs >= 3 IO interrupts: socket read, (disk), socket
  // write — encoded in the driver; the knobs must keep IO present.
  EXPECT_LT(config.page_cache_hit, 1.0);
  EXPECT_GT(config.response_kb, 0.0);
}

TEST(WorkloadConfigTest, CassandraMatchesPaperProtocol) {
  const CassandraConfig config;
  EXPECT_EQ(config.operations, 1000);     // "1,000 synthesized operations"
  EXPECT_EQ(config.server_threads, 100);  // "a set of 100 threads"
  EXPECT_DOUBLE_EQ(config.write_fraction, 0.25);  // "a quarter ... writes"
  EXPECT_DOUBLE_EQ(config.submit_seconds, 1.0);   // "within one second"
  // The dataset must not fit the small instances' memory but fit the
  // largest (Table II: 16..256 GB) — that is Figure 6's large-end story.
  EXPECT_GT(config.dataset_gb, 16.0);
  EXPECT_LE(config.dataset_gb, 256.0);
}

TEST(WorkloadConfigTest, MpiIsCommunicationDominatedAtScale) {
  const MpiConfig config;
  // At 64 ranks, per-iteration compute must be well below the root's
  // serialized gather+broadcast handling (~2 x 63 messages x ~10 us).
  const double compute_per_iter =
      config.total_compute_seconds / (64.0 * config.iterations);
  EXPECT_LT(compute_per_iter, 2 * 63 * 10e-6);
}

TEST(WorkloadConfigTest, GuestInflationSensitivitiesAreFractions) {
  EXPECT_GT(WordPressConfig{}.guest_inflation_sensitivity, 0.0);
  EXPECT_LT(WordPressConfig{}.guest_inflation_sensitivity, 1.0);
  EXPECT_GT(CassandraConfig{}.guest_inflation_sensitivity, 0.0);
  EXPECT_LT(CassandraConfig{}.guest_inflation_sensitivity, 1.0);
}

}  // namespace
}  // namespace pinsim::workload
