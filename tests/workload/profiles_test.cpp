#include "workload/profiles.hpp"

#include <gtest/gtest.h>

#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::workload {
namespace {

TEST(ProfilesTest, TableOneMatchesPaper) {
  const auto& table = table1_applications();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].name, "FFmpeg");
  EXPECT_EQ(table[0].version, "3.4.6");
  EXPECT_EQ(table[1].name, "Open MPI");
  EXPECT_EQ(table[1].version, "2.1.1");
  EXPECT_EQ(table[2].name, "WordPress");
  EXPECT_EQ(table[2].version, "5.3.2");
  EXPECT_EQ(table[3].name, "Cassandra");
  EXPECT_EQ(table[3].version, "2.2");
}

TEST(ProfilesTest, MakeWorkloadBuildsEveryClass) {
  for (const auto& spec : table1_applications()) {
    auto workload = make_workload(spec.cls);
    ASSERT_NE(workload, nullptr);
    EXPECT_FALSE(workload->name().empty());
  }
}

TEST(ProfilesTest, FfmpegIsCpuBound) {
  Ffmpeg ffmpeg;
  const MeasuredProfile profile = measure_profile(ffmpeg, 4, 1);
  EXPECT_GT(profile.cpu_fraction, 0.7);
  EXPECT_LT(profile.block_fraction, 0.2);
  EXPECT_LT(profile.io_ops_per_second, 1.0);
}

TEST(ProfilesTest, WordPressIsIoBound) {
  WordPressConfig config;
  config.requests = 150;
  WordPress wp(config);
  const MeasuredProfile profile = measure_profile(wp, 16, 2);
  // Short tasks blocked on sockets/disk most of their life.
  EXPECT_GT(profile.block_fraction, 0.3);
  EXPECT_GT(profile.io_ops_per_second, 50.0);
}

TEST(ProfilesTest, CassandraDoesHeavyIo) {
  CassandraConfig config;
  config.operations = 150;
  config.server_threads = 20;
  Cassandra cassandra(config);
  const MeasuredProfile profile = measure_profile(cassandra, 16, 3);
  EXPECT_GT(profile.io_ops_per_second, 10.0);
  EXPECT_GT(profile.block_fraction, 0.2);
}

}  // namespace
}  // namespace pinsim::workload
