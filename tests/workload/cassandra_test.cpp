#include "workload/cassandra.hpp"

#include <gtest/gtest.h>

#include "virt/factory.hpp"

namespace pinsim::workload {
namespace {

CassandraConfig small_config() {
  CassandraConfig config;
  config.operations = 200;
  config.server_threads = 20;
  return config;
}

RunResult run_on(Workload& workload, virt::PlatformKind kind,
                 virt::CpuMode mode, const std::string& instance,
                 std::uint64_t seed = 1) {
  const virt::PlatformSpec spec{kind, mode,
                                virt::instance_by_name(instance)};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, seed);
  auto platform = virt::make_platform(host, spec);
  return workload.run(*platform, Rng(seed));
}

TEST(CassandraTest, ServesEveryOperation) {
  Cassandra cassandra(small_config());
  const RunResult result = run_on(cassandra, virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, "xLarge");
  EXPECT_EQ(result.extras.at("ops"), 200);
  EXPECT_GT(result.metric_seconds, 0.0);
}

TEST(CassandraTest, WritesHitTheCommitLog) {
  CassandraConfig config = small_config();
  config.write_fraction = 1.0;  // all writes
  Cassandra cassandra(config);
  const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("2xLarge")};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, 3);
  auto platform = virt::make_platform(host, spec);
  cassandra.run(*platform, Rng(3));
  EXPECT_EQ(host.disk().completed(), 200);
}

TEST(CassandraTest, BiggerMemoryMeansFewerDiskReads) {
  // Table II scales memory with cores: the same read-only workload does
  // far less disk IO on a big instance than on a small one.
  auto disk_reads = [](const std::string& instance) {
    CassandraConfig config;
    config.operations = 200;
    config.server_threads = 20;
    config.write_fraction = 0.0;
    Cassandra cassandra(config);
    const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla,
                                  virt::instance_by_name(instance)};
    virt::Host host(
        virt::host_topology_for(spec, hw::Topology::dell_r830()),
        hw::CostModel{}, 3);
    auto platform = virt::make_platform(host, spec);
    cassandra.run(*platform, Rng(3));
    return host.disk().completed();
  };
  const auto small = disk_reads("xLarge");    // 16 GB vs 64 GB dataset
  const auto big = disk_reads("16xLarge");    // 256 GB: fully cached
  EXPECT_GT(small, 100);
  EXPECT_LT(big, 30);
}

TEST(CassandraTest, MoreCoresReduceResponseTime) {
  Cassandra cassandra(small_config());
  const double small = run_on(cassandra, virt::PlatformKind::BareMetal,
                              virt::CpuMode::Vanilla, "xLarge", 5)
                           .metric_seconds;
  const double big = run_on(cassandra, virt::PlatformKind::BareMetal,
                            virt::CpuMode::Vanilla, "8xLarge", 5)
                        .metric_seconds;
  EXPECT_GT(small, big);
}

TEST(CassandraTest, VanillaContainerFarWorseThanPinned) {
  // Figure 6: vanilla CN is the worst platform for Cassandra at small
  // sizes; pinned CN the best.
  Cassandra cassandra(small_config());
  const double vanilla_cn = run_on(cassandra, virt::PlatformKind::Container,
                                   virt::CpuMode::Vanilla, "xLarge", 9)
                                .metric_seconds;
  const double pinned_cn = run_on(cassandra, virt::PlatformKind::Container,
                                  virt::CpuMode::Pinned, "xLarge", 9)
                               .metric_seconds;
  EXPECT_GT(vanilla_cn, 1.5 * pinned_cn);
}

}  // namespace
}  // namespace pinsim::workload
