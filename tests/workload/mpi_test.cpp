#include "workload/mpi.hpp"

#include <gtest/gtest.h>

#include "virt/factory.hpp"

namespace pinsim::workload {
namespace {

RunResult run_on(Workload& workload, virt::PlatformKind kind,
                 virt::CpuMode mode, const std::string& instance,
                 std::uint64_t seed = 1) {
  const virt::PlatformSpec spec{kind, mode,
                                virt::instance_by_name(instance)};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, seed);
  auto platform = virt::make_platform(host, spec);
  return workload.run(*platform, Rng(seed));
}

MpiConfig small_config() {
  MpiConfig config;
  config.iterations = 60;
  config.total_compute_seconds = 2.0;
  return config;
}

TEST(MpiTest, CompletesOnBareMetal) {
  MpiSearch mpi(small_config());
  const RunResult result = run_on(mpi, virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, "xLarge");
  EXPECT_GT(result.metric_seconds, 0.05);
  EXPECT_EQ(result.extras.at("ranks"), 4);
}

TEST(MpiTest, ComputeDominatedAtSmallScaleShrinksWithRanks) {
  MpiSearch mpi(small_config());
  const double r4 = run_on(mpi, virt::PlatformKind::BareMetal,
                           virt::CpuMode::Vanilla, "xLarge", 3)
                        .metric_seconds;
  const double r16 = run_on(mpi, virt::PlatformKind::BareMetal,
                            virt::CpuMode::Vanilla, "4xLarge", 3)
                         .metric_seconds;
  EXPECT_GT(r4, r16);
}

TEST(MpiTest, ContainerWorseThanVmWhenCommunicationDominates) {
  // The paper's Figure 4 headline: once communication dominates (large
  // rank counts), containers (bridge-path messaging + cgroup accounting)
  // are the worst platform while VMs approach bare-metal because the
  // hypervisor carries intra-VM messages.
  MpiConfig config;
  config.iterations = 150;
  config.total_compute_seconds = 1.5;  // fig4 per-iteration proportions
  MpiSearch mpi(config);
  const double cn = run_on(mpi, virt::PlatformKind::Container,
                           virt::CpuMode::Vanilla, "16xLarge", 5)
                        .metric_seconds;
  const double vm = run_on(mpi, virt::PlatformKind::Vm,
                           virt::CpuMode::Vanilla, "16xLarge", 5)
                        .metric_seconds;
  EXPECT_GT(cn, 1.3 * vm);
}

TEST(MpiTest, PrimeVariantCompletes) {
  MpiConfig config = MpiPrime::prime_defaults();
  config.iterations = 30;
  config.total_compute_seconds = 1.5;
  MpiPrime prime(config);
  const RunResult result = run_on(prime, virt::PlatformKind::BareMetal,
                                  virt::CpuMode::Vanilla, "2xLarge");
  EXPECT_GT(result.metric_seconds, 0.0);
}

TEST(MpiTest, AllRanksExchangeMessages) {
  MpiConfig config = small_config();
  config.iterations = 10;
  MpiSearch mpi(config);
  const virt::PlatformSpec spec{virt::PlatformKind::BareMetal,
                                virt::CpuMode::Vanilla,
                                virt::instance_by_name("xLarge")};
  virt::Host host(virt::host_topology_for(spec, hw::Topology::dell_r830()),
                  hw::CostModel{}, 11);
  auto platform = virt::make_platform(host, spec);
  mpi.run(*platform, Rng(11));
  // Root sends 3 broadcasts x 10 iterations; peers send 10 each.
  std::int64_t total_messages = 0;
  for (const auto& task : host.kernel().tasks()) {
    total_messages += task->stats.messages_sent;
  }
  EXPECT_EQ(total_messages, 10 * 3 * 2);
}

}  // namespace
}  // namespace pinsim::workload
