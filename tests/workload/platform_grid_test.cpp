// Integration smoke grid: every workload on every platform configuration.
//
// Uses shrunken workload configurations so the whole grid stays fast; the
// point is that all 4 workloads x 7 platform configurations complete and
// produce a sane metric, and that runs are reproducible.
#include <gtest/gtest.h>

#include <memory>

#include "virt/factory.hpp"
#include "workload/cassandra.hpp"
#include "workload/ffmpeg.hpp"
#include "workload/mpi.hpp"
#include "workload/wordpress.hpp"

namespace pinsim::workload {
namespace {

std::unique_ptr<Workload> small_workload(const std::string& which) {
  if (which == "ffmpeg") {
    FfmpegConfig config;
    config.serial_seconds = 0.5;
    config.parallel_seconds = 4.0;
    return std::make_unique<Ffmpeg>(config);
  }
  if (which == "mpi") {
    MpiConfig config;
    config.iterations = 40;
    config.total_compute_seconds = 1.0;
    return std::make_unique<MpiSearch>(config);
  }
  if (which == "wordpress") {
    WordPressConfig config;
    config.requests = 80;
    return std::make_unique<WordPress>(config);
  }
  CassandraConfig config;
  config.operations = 80;
  config.server_threads = 10;
  return std::make_unique<Cassandra>(config);
}

class PlatformGridTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PlatformGridTest, CompletesWithSaneMetric) {
  const auto& [workload_name, series_index] = GetParam();
  const auto& instance = virt::instance_by_name("xLarge");
  const virt::PlatformSpec spec =
      virt::paper_series(instance)[static_cast<std::size_t>(series_index)];

  auto run_once = [&](std::uint64_t seed) {
    virt::Host host(
        virt::host_topology_for(spec, hw::Topology::dell_r830()),
        hw::CostModel{}, seed);
    auto platform = virt::make_platform(host, spec);
    auto workload = small_workload(workload_name);
    return workload->run(*platform, Rng(seed)).metric_seconds;
  };

  const double metric = run_once(100);
  EXPECT_GT(metric, 0.0);
  EXPECT_LT(metric, 600.0);
  // Reproducibility across identical runs.
  EXPECT_DOUBLE_EQ(metric, run_once(100));
}

std::string grid_test_name(
    const ::testing::TestParamInfo<PlatformGridTest::ParamType>& info) {
  const std::string workload_name = std::get<0>(info.param);
  const int series_index = std::get<1>(info.param);
  const auto series = virt::paper_series(virt::instance_by_name("xLarge"));
  std::string label = series[static_cast<std::size_t>(series_index)].label();
  for (char& c : label) {
    if (c == ' ') c = '_';
  }
  return workload_name + "_" + label;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllPlatforms, PlatformGridTest,
    ::testing::Combine(::testing::Values("ffmpeg", "mpi", "wordpress",
                                         "cassandra"),
                       ::testing::Range(0, 7)),
    grid_test_name);

}  // namespace
}  // namespace pinsim::workload
