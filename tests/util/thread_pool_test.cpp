#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pinsim::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&calls] { ++calls; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPoolTest, FuturesDeliverResultsInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, ExceptionsSurfaceThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> calls{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&calls] { ++calls; });
    }
  }  // destructor joins after the queue empties
  EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPoolTest, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1);
}

}  // namespace
}  // namespace pinsim::util
