#include "util/move_function.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace pinsim::util {
namespace {

TEST(MoveFunctionTest, DefaultIsEmpty) {
  MoveFunction fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(MoveFunctionTest, InvokesSmallLambda) {
  int calls = 0;
  MoveFunction fn([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(MoveFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  MoveFunction a([&calls] { ++calls; });
  MoveFunction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(MoveFunctionTest, MoveAssignReplacesTarget) {
  int first = 0, second = 0;
  MoveFunction fn([&first] { ++first; });
  fn = MoveFunction([&second] { ++second; });
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(MoveFunctionTest, HoldsMoveOnlyCallable) {
  auto flag = std::make_unique<int>(7);
  int seen = 0;
  MoveFunction fn([flag = std::move(flag), &seen] { seen = *flag; });
  fn();
  EXPECT_EQ(seen, 7);
}

TEST(MoveFunctionTest, LargeCallableSpillsToHeapAndStillRuns) {
  struct Big {
    double payload[16];  // 128 B: larger than the inline buffer
  };
  Big big{};
  big.payload[15] = 3.5;
  double seen = 0;
  MoveFunction fn([big, &seen] { seen = big.payload[15]; });
  MoveFunction moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 3.5);
}

TEST(MoveFunctionTest, DestroysCapturedState) {
  auto counter = std::make_shared<int>(0);
  {
    MoveFunction fn([counter] { (void)counter; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(MoveFunctionTest, DestroysHeapCapturedState) {
  auto counter = std::make_shared<int>(0);
  struct Pad {
    double padding[16];
  };
  {
    MoveFunction fn([counter, pad = Pad{}] { (void)counter; (void)pad; });
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

}  // namespace
}  // namespace pinsim::util
