#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pinsim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) {
    // Each value should get roughly 1/6 of the draws.
    EXPECT_GT(count, 8000);
    EXPECT_LT(count, 12000);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(17, 17), 17);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LognormalMatchesMoments) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_from_moments(8.0, 3.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 8.0, 0.15);
}

TEST(RngTest, LognormalZeroStddevIsDegenerate) {
  Rng rng(23);
  EXPECT_DOUBLE_EQ(rng.lognormal_from_moments(4.0, 0.0), 4.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(101);
  Rng child = parent.fork();
  // The child should not replay the parent's stream.
  Rng parent2(101);
  (void)parent2.next_u64();  // same position as parent after fork
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace pinsim
