#include "util/units.hpp"

#include <gtest/gtest.h>

namespace pinsim {
namespace {

TEST(UnitsTest, Constructors) {
  EXPECT_EQ(nsec(1), 1);
  EXPECT_EQ(usec(1), 1'000);
  EXPECT_EQ(msec(1), 1'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_EQ(sec(3), 3 * msec(1000));
}

TEST(UnitsTest, FractionalConstructors) {
  EXPECT_EQ(msec_f(1.5), 1'500'000);
  EXPECT_EQ(usec_f(0.5), 500);
  EXPECT_EQ(sec_f(2.5), 2'500'000'000LL);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(sec(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_seconds(msec(500)), 0.5);
  EXPECT_DOUBLE_EQ(to_millis(msec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(usec(1500)), 1.5);
}

TEST(UnitsTest, RoundTrip) {
  const SimDuration d = msec(1234);
  EXPECT_EQ(sec_f(to_seconds(d)), d);
}

}  // namespace
}  // namespace pinsim
