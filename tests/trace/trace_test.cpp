#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hw/disk.hpp"
#include "sim/engine.hpp"

namespace pinsim::trace {
namespace {

std::unique_ptr<os::TaskDriver> io_loop(hw::IoDevice& device,
                                        SimDuration work, int iterations) {
  auto n = std::make_shared<int>(0);
  auto io_next = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>(
      [&device, n, io_next, work, iterations](os::Task&) {
        if (*n >= iterations) return os::Action::exit();
        if (!*io_next) {
          *io_next = true;
          return os::Action::compute(work);
        }
        *io_next = false;
        ++*n;
        return os::Action::io(device, hw::IoRequest{hw::IoKind::Read, 4.0});
      });
}

TEST(TraceTest, SessionObservesKernelActivity) {
  sim::Engine engine;
  const hw::Topology topo(1, 4, 2, 16.0);
  hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(5));
  hw::IoDevice disk = hw::IoDevice::raid1_hdd(engine, Rng(6));
  TraceSession trace(kernel);

  for (int i = 0; i < 6; ++i) {
    os::Task& task = kernel.create_task("t" + std::to_string(i),
                                        io_loop(disk, msec(1), 10));
    kernel.start_task(task);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());

  EXPECT_GT(trace.cpudist().histogram().count(), 0);
  EXPECT_GT(trace.cpudist().mean_slice_us(), 0.0);
  EXPECT_GT(trace.offcputime().histogram().count(), 0);
  EXPECT_GT(trace.offcputime().total_blocked_seconds(), 0.0);
  EXPECT_GT(trace.sched().context_switches(), 0);
  EXPECT_EQ(trace.sched().irqs(), 60);
}

TEST(TraceTest, CpuDistReflectsSliceLengths) {
  sim::Engine engine;
  const hw::Topology topo(1, 1, 1, 16.0);
  hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(7));
  TraceSession trace(kernel);

  auto state = std::make_shared<bool>(false);
  os::Task& task = kernel.create_task(
      "solo", std::make_unique<os::LambdaDriver>([state](os::Task&) {
        if (*state) return os::Action::exit();
        *state = true;
        return os::Action::compute(msec(5));
      }));
  kernel.start_task(task);
  kernel.run_until_quiescent();
  // One slice of ~5 ms => bucket around 4096..8191 us.
  EXPECT_EQ(trace.cpudist().histogram().count(), 1);
  EXPECT_NEAR(trace.cpudist().mean_slice_us(), 5000.0, 200.0);
}

TEST(TraceTest, SchedStatsClassifyMigrationsByDistance) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(9));
  TraceSession trace(kernel);

  // Heavy oversubscription forces migrations, including cross-socket.
  for (int i = 0; i < 160; ++i) {
    auto n = std::make_shared<int>(0);
    auto sleeping = std::make_shared<bool>(false);
    os::Task& task = kernel.create_task(
        "m" + std::to_string(i),
        std::make_unique<os::LambdaDriver>([n, sleeping](os::Task&) {
          if (*n >= 15) return os::Action::exit();
          if (!*sleeping) {
            *sleeping = true;
            return os::Action::compute(msec(2));
          }
          *sleeping = false;
          ++*n;
          return os::Action::sleep_for(msec(1));
        }));
    kernel.start_task(task);
  }
  kernel.run_until_quiescent();
  const auto total = trace.sched().migrations_smt() +
                     trace.sched().migrations_same_socket() +
                     trace.sched().migrations_cross_socket();
  EXPECT_EQ(total, kernel.stats().migrations);
  EXPECT_GT(total, 0);
  EXPECT_GT(trace.sched().migration_penalty_seconds(), 0.0);
}

TEST(TraceTest, ReportMentionsAllSections) {
  sim::Engine engine;
  const hw::Topology topo(1, 2, 1, 16.0);
  hw::CostModel costs;
  os::Kernel kernel(engine, topo, costs, Rng(11));
  TraceSession trace(kernel);
  auto state = std::make_shared<bool>(false);
  os::Task& task = kernel.create_task(
      "t", std::make_unique<os::LambdaDriver>([state](os::Task&) {
        if (*state) return os::Action::exit();
        *state = true;
        return os::Action::compute(msec(1));
      }));
  kernel.start_task(task);
  kernel.run_until_quiescent();
  const std::string report = trace.report();
  EXPECT_NE(report.find("cpudist"), std::string::npos);
  EXPECT_NE(report.find("offcputime"), std::string::npos);
  EXPECT_NE(report.find("sched counters"), std::string::npos);
}

}  // namespace
}  // namespace pinsim::trace
