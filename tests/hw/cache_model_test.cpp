#include "hw/cache_model.hpp"

#include <gtest/gtest.h>

namespace pinsim::hw {
namespace {

class CacheModelTest : public ::testing::Test {
 protected:
  Topology topology_ = Topology::dell_r830();
  CostModel costs_;
  CacheModel model_{topology_, costs_};
};

TEST_F(CacheModelTest, SameCpuIsFree) {
  EXPECT_EQ(model_.migration_penalty(3, 3, 50.0, true), 0);
}

TEST_F(CacheModelTest, PenaltyGrowsWithDistance) {
  const double ws = 50.0;
  const SimDuration smt = model_.migration_penalty(0, 1, ws, false);
  const SimDuration socket = model_.migration_penalty(0, 2, ws, false);
  const SimDuration cross = model_.migration_penalty(0, 28, ws, false);
  EXPECT_LT(smt, socket);
  EXPECT_LT(socket, cross);
  EXPECT_GT(smt, 0);
}

TEST_F(CacheModelTest, PenaltyScalesWithWorkingSet) {
  const SimDuration small = model_.migration_penalty(0, 28, 5.0, false);
  const SimDuration big = model_.migration_penalty(0, 28, 25.0, false);
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 5.0,
              0.01);
}

TEST_F(CacheModelTest, WorkingSetCappedAtLlc) {
  const SimDuration at_llc =
      model_.migration_penalty(0, 28, topology_.llc_mb_per_socket(), false);
  const SimDuration beyond = model_.migration_penalty(0, 28, 400.0, false);
  EXPECT_EQ(at_llc, beyond);
}

TEST_F(CacheModelTest, IoTasksPayChannelReestablishment) {
  const SimDuration quiet = model_.migration_penalty(0, 28, 5.0, false);
  const SimDuration io = model_.migration_penalty(0, 28, 5.0, true);
  EXPECT_EQ(io - quiet, costs_.io_channel_reestablish);
}

TEST_F(CacheModelTest, FirstDispatchChargesCompulsoryFill) {
  const SimDuration first = model_.migration_penalty(-1, 5, 10.0, false);
  EXPECT_GT(first, 0);
  // ... but no IO-channel cost, since nothing was established yet.
  EXPECT_EQ(model_.migration_penalty(-1, 5, 10.0, true), first);
}

TEST_F(CacheModelTest, RefillRatesExposed) {
  EXPECT_EQ(model_.refill_per_mb(CpuDistance::SameCpu), 0);
  EXPECT_EQ(model_.refill_per_mb(CpuDistance::CrossSocket),
            costs_.refill_per_mb_cross);
}

}  // namespace
}  // namespace pinsim::hw
