// Invariants the calibration constants must satisfy — these encode the
// physical reasoning in DESIGN.md, so a careless retune that breaks an
// ordering (e.g. cross-socket refill cheaper than same-socket) fails
// loudly.
#include "hw/cost_model.hpp"

#include <gtest/gtest.h>

namespace pinsim::hw {
namespace {

TEST(CostModelTest, CacheDistanceOrdering) {
  const CostModel costs;
  EXPECT_LT(costs.refill_per_mb_smt, costs.refill_per_mb_socket);
  EXPECT_LT(costs.refill_per_mb_socket, costs.refill_per_mb_cross);
}

TEST(CostModelTest, KernelPathOrdering) {
  const CostModel costs;
  // A mode switch is cheaper than a scheduling pass, which is cheaper
  // than a full context switch.
  EXPECT_LT(costs.kernel_entry, costs.sched_pick);
  EXPECT_LT(costs.sched_pick, costs.context_switch);
}

TEST(CostModelTest, HypervisorPathOrdering) {
  const CostModel costs;
  // Guest shared-memory IPC beats host-mediated IPC; the bridge path is
  // the most expensive message route.
  EXPECT_LT(costs.guest_ipc, costs.host_ipc);
  EXPECT_GT(costs.container_net_msg, 0);
  // Compute inflation is a multiplier >= 1.
  EXPECT_GE(costs.guest_compute_inflation, 1.0);
  // Halt-polling must cover at least a few poll chunks.
  EXPECT_GE(costs.halt_poll, 4 * costs.halt_poll_chunk);
}

TEST(CostModelTest, CgroupAggregationBoundedByInterval) {
  const CostModel costs;
  // Even at maximal spread (112 cpus) the nominal walk cost must be
  // cappable within its own interval (the Cgroup enforces the cap; the
  // default constants should not even come close).
  const SimDuration max_walk =
      costs.cgroup_aggregate_base + 112 * costs.cgroup_aggregate_per_core;
  EXPECT_LT(max_walk, costs.cgroup_aggregate_interval);
}

TEST(CostModelTest, BandwidthSliceDividesPeriod) {
  const CostModel costs;
  EXPECT_LT(costs.cfs_bandwidth_slice, costs.cfs_period);
  EXPECT_EQ(costs.cfs_period % costs.cfs_bandwidth_slice, 0);
}

TEST(CostModelTest, NumaTaxIsAFraction) {
  const CostModel costs;
  EXPECT_GT(costs.numa_remote_tax, 0.0);
  EXPECT_LT(costs.numa_remote_tax, 1.0);
}

}  // namespace
}  // namespace pinsim::hw
