#include "hw/topology.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::hw {
namespace {

TEST(TopologyTest, DellR830Shape) {
  const Topology host = Topology::dell_r830();
  EXPECT_EQ(host.num_cpus(), 112);
  EXPECT_EQ(host.sockets(), 4);
  EXPECT_EQ(host.cores_per_socket(), 14);
  EXPECT_EQ(host.threads_per_core(), 2);
  EXPECT_DOUBLE_EQ(host.llc_mb_per_socket(), 35.0);
}

TEST(TopologyTest, SmallHostShape) {
  const Topology host = Topology::small_host_16();
  EXPECT_EQ(host.num_cpus(), 16);
  EXPECT_EQ(host.sockets(), 1);
}

TEST(TopologyTest, SocketMapping) {
  const Topology host = Topology::dell_r830();
  EXPECT_EQ(host.socket_of(0), 0);
  EXPECT_EQ(host.socket_of(27), 0);
  EXPECT_EQ(host.socket_of(28), 1);
  EXPECT_EQ(host.socket_of(111), 3);
}

TEST(TopologyTest, CoreMappingSmtSiblings) {
  const Topology host = Topology::dell_r830();
  EXPECT_EQ(host.core_of(0), host.core_of(1));
  EXPECT_NE(host.core_of(1), host.core_of(2));
}

TEST(TopologyTest, Distances) {
  const Topology host = Topology::dell_r830();
  EXPECT_EQ(host.distance(5, 5), CpuDistance::SameCpu);
  EXPECT_EQ(host.distance(0, 1), CpuDistance::SmtSibling);
  EXPECT_EQ(host.distance(0, 2), CpuDistance::SameSocket);
  EXPECT_EQ(host.distance(0, 28), CpuDistance::CrossSocket);
  EXPECT_EQ(host.distance(30, 29), CpuDistance::SameSocket);
}

TEST(TopologyTest, DistanceIsSymmetric) {
  const Topology host = Topology::dell_r830();
  for (CpuId a : {0, 1, 13, 28, 57, 111}) {
    for (CpuId b : {0, 1, 13, 28, 57, 111}) {
      EXPECT_EQ(host.distance(a, b), host.distance(b, a));
    }
  }
}

TEST(TopologyTest, LimitedToModelsGrubMaxcpus) {
  const Topology bm4 = Topology::dell_r830().limited_to(4);
  EXPECT_EQ(bm4.num_cpus(), 4);
  // The limited host keeps the same physical geometry.
  EXPECT_EQ(bm4.distance(0, 1), CpuDistance::SmtSibling);
  EXPECT_EQ(bm4.distance(0, 2), CpuDistance::SameSocket);
  EXPECT_EQ(bm4.all_cpus().count(), 4);
  EXPECT_THROW(bm4.socket_of(4), InvariantViolation);
}

TEST(TopologyTest, SocketCpusRespectLimit) {
  const Topology host = Topology::dell_r830();
  EXPECT_EQ(host.socket_cpus(0).count(), 28);
  EXPECT_EQ(host.socket_cpus(3).count(), 28);
  const Topology limited = host.limited_to(30);
  EXPECT_EQ(limited.socket_cpus(0).count(), 28);
  EXPECT_EQ(limited.socket_cpus(1).count(), 2);
  EXPECT_TRUE(limited.socket_cpus(2).empty());
}

TEST(TopologyTest, CompactSetFillsCoresFirst) {
  const Topology host = Topology::dell_r830();
  const CpuSet pinned = host.compact_set(4);
  EXPECT_EQ(pinned.count(), 4);
  // 4 cpus = 2 physical cores worth of SMT threads, all on socket 0.
  for (CpuId cpu : pinned.to_vector()) {
    EXPECT_EQ(host.socket_of(cpu), 0);
  }
  EXPECT_THROW(host.compact_set(113), InvariantViolation);
}

TEST(TopologyTest, DescribeMentionsGeometry) {
  const std::string text = Topology::dell_r830().describe();
  EXPECT_NE(text.find("112"), std::string::npos);
  EXPECT_NE(text.find("4 socket"), std::string::npos);
}

}  // namespace
}  // namespace pinsim::hw
