#include "hw/disk.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace pinsim::hw {
namespace {

TEST(IoDeviceTest, CompletesRequestAfterServiceTime) {
  sim::Engine engine;
  IoDevice disk = IoDevice::raid1_hdd(engine, Rng(1));
  bool done = false;
  disk.submit(IoRequest{IoKind::Read, 4.0}, [&] { done = true; });
  EXPECT_FALSE(done);
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_GT(engine.now(), 0);
  EXPECT_EQ(disk.completed(), 1);
}

TEST(IoDeviceTest, QueueingWhenChannelsBusy) {
  sim::Engine engine;
  IoDevice::Config config;
  config.channels = 1;
  config.read_mean = msec(10);
  config.read_stddev = 0;
  config.per_kb = 0;
  IoDevice dev(engine, "serial-disk", config, Rng(2));

  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    dev.submit(IoRequest{IoKind::Read, 0.0}, [&] { ++completions; });
  }
  EXPECT_EQ(dev.busy_channels(), 1);
  EXPECT_EQ(dev.queue_depth(), 2);
  engine.run();
  EXPECT_EQ(completions, 3);
  // Serialized: total time ~ 3 services.
  EXPECT_GT(engine.now(), msec(25));
}

TEST(IoDeviceTest, ParallelChannelsOverlap) {
  sim::Engine engine;
  IoDevice::Config config;
  config.channels = 4;
  config.read_mean = msec(10);
  config.read_stddev = 0;
  config.per_kb = 0;
  IoDevice dev(engine, "array", config, Rng(3));
  int completions = 0;
  for (int i = 0; i < 4; ++i) {
    dev.submit(IoRequest{IoKind::Read, 0.0}, [&] { ++completions; });
  }
  engine.run();
  EXPECT_EQ(completions, 4);
  // All four should finish in about one service time.
  EXPECT_LT(engine.now(), msec(15));
}

TEST(IoDeviceTest, WritesSlowerThanReadsOnHdd) {
  sim::Engine engine;
  IoDevice disk = IoDevice::raid1_hdd(engine, Rng(4));
  // Average over many requests.
  for (int i = 0; i < 300; ++i) {
    disk.submit(IoRequest{IoKind::Read, 4.0}, nullptr);
  }
  engine.run();
  const double read_latency = disk.latency().mean();

  sim::Engine engine2;
  IoDevice disk2 = IoDevice::raid1_hdd(engine2, Rng(4));
  for (int i = 0; i < 300; ++i) {
    disk2.submit(IoRequest{IoKind::Write, 4.0}, nullptr);
  }
  engine2.run();
  EXPECT_GT(disk2.latency().mean(), read_latency);
}

TEST(IoDeviceTest, ExtraLatencyModelsVirtio) {
  sim::Engine engine;
  IoDevice::Config config;
  config.channels = 1;
  config.read_mean = msec(1);
  config.read_stddev = 0;
  config.per_kb = 0;
  IoDevice dev(engine, "dev", config, Rng(5));
  SimTime completed_at = 0;
  dev.submit(IoRequest{IoKind::Read, 0.0},
             [&] { completed_at = engine.now(); }, msec(2));
  engine.run();
  EXPECT_EQ(completed_at, msec(3));
}

TEST(IoDeviceTest, SizeAddsTransferTime) {
  sim::Engine engine;
  IoDevice::Config config;
  config.channels = 1;
  config.read_mean = msec(1);
  config.read_stddev = 0;
  config.per_kb = usec(10);
  IoDevice dev(engine, "dev", config, Rng(6));
  SimTime completed_at = 0;
  dev.submit(IoRequest{IoKind::Read, 100.0},
             [&] { completed_at = engine.now(); });
  engine.run();
  EXPECT_EQ(completed_at, msec(1) + usec(1000));
}

TEST(IoDeviceTest, NicIsFastAndWide) {
  sim::Engine engine;
  IoDevice nic = IoDevice::gigabit_nic(engine, Rng(7));
  int completions = 0;
  for (int i = 0; i < 64; ++i) {
    nic.submit(IoRequest{IoKind::NetRecv, 1.0}, [&] { ++completions; });
  }
  EXPECT_EQ(nic.queue_depth(), 0);  // all in service at once
  engine.run();
  EXPECT_EQ(completions, 64);
  EXPECT_LT(engine.now(), msec(5));
}

}  // namespace
}  // namespace pinsim::hw
