#include "hw/cpuset.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::hw {
namespace {

TEST(CpuSetTest, EmptyByDefault) {
  CpuSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0);
  EXPECT_FALSE(set.contains(0));
}

TEST(CpuSetTest, FirstN) {
  const CpuSet set = CpuSet::first_n(4);
  EXPECT_EQ(set.count(), 4);
  for (int cpu = 0; cpu < 4; ++cpu) EXPECT_TRUE(set.contains(cpu));
  EXPECT_FALSE(set.contains(4));
}

TEST(CpuSetTest, Range) {
  const CpuSet set = CpuSet::range(10, 14);
  EXPECT_EQ(set.count(), 4);
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.contains(13));
  EXPECT_FALSE(set.contains(14));
}

TEST(CpuSetTest, AddRemove) {
  CpuSet set;
  set.add(5);
  set.add(200);
  EXPECT_EQ(set.count(), 2);
  set.remove(5);
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.contains(200));
}

TEST(CpuSetTest, OutOfRangeRejected) {
  CpuSet set;
  EXPECT_THROW(set.add(-1), InvariantViolation);
  EXPECT_THROW(set.add(CpuSet::kMaxCpus), InvariantViolation);
  EXPECT_FALSE(set.contains(-1));
  EXPECT_FALSE(set.contains(1000));
}

TEST(CpuSetTest, SetOperations) {
  const CpuSet a = CpuSet::range(0, 6);
  const CpuSet b = CpuSet::range(4, 10);
  EXPECT_EQ((a & b).count(), 2);
  EXPECT_EQ((a | b).count(), 10);
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_TRUE((a & b).subset_of(b));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(CpuSetTest, FirstAndVector) {
  const CpuSet set = CpuSet::of({7, 3, 11});
  EXPECT_EQ(set.first(), 3);
  EXPECT_EQ(set.to_vector(), (std::vector<CpuId>{3, 7, 11}));
  EXPECT_THROW(CpuSet().first(), InvariantViolation);
}

TEST(CpuSetTest, ToString) {
  EXPECT_EQ(CpuSet().to_string(), "(empty)");
  EXPECT_EQ(CpuSet::of({0, 1, 2, 3}).to_string(), "0-3");
  EXPECT_EQ(CpuSet::of({0, 1, 5, 8, 9}).to_string(), "0-1,5,8-9");
}

TEST(CpuSetTest, Equality) {
  EXPECT_TRUE(CpuSet::first_n(3) == CpuSet::of({0, 1, 2}));
  EXPECT_FALSE(CpuSet::first_n(3) == CpuSet::first_n(4));
}

TEST(CpuSetTest, FirstSetAfterScansAcrossWords) {
  const CpuSet set = CpuSet::of({3, 7, 63, 64, 200});
  EXPECT_EQ(set.first_set_after(-1), 3);
  EXPECT_EQ(set.first_set_after(3), 7);
  EXPECT_EQ(set.first_set_after(7), 63);
  EXPECT_EQ(set.first_set_after(63), 64);
  EXPECT_EQ(set.first_set_after(64), 200);
  EXPECT_EQ(set.first_set_after(200), -1);
  EXPECT_EQ(CpuSet().first_set_after(-1), -1);
  // Starting below an absent id still finds the next set bit.
  EXPECT_EQ(set.first_set_after(100), 200);
}

TEST(CpuSetTest, NthSetMatchesAscendingOrder) {
  const CpuSet set = CpuSet::of({3, 7, 63, 64, 200});
  const std::vector<CpuId> ids = set.to_vector();
  for (int k = 0; k < set.count(); ++k) {
    EXPECT_EQ(set.nth_set(k), ids[static_cast<std::size_t>(k)]);
  }
  EXPECT_THROW(set.nth_set(set.count()), InvariantViolation);
  EXPECT_THROW(set.nth_set(-1), InvariantViolation);
}

TEST(CpuSetTest, ForEachVisitsAscendingAndMatchesToVector) {
  const CpuSet set = CpuSet::of({0, 1, 63, 64, 127, 128, 255});
  std::vector<CpuId> visited;
  set.for_each([&](CpuId cpu) { visited.push_back(cpu); });
  EXPECT_EQ(visited, set.to_vector());
}

TEST(CpuSetTest, ComplementSubtracts) {
  const CpuSet a = CpuSet::range(0, 10);
  const CpuSet b = CpuSet::of({2, 5, 9, 100});
  const CpuSet diff = a & ~b;
  EXPECT_EQ(diff.count(), 7);
  EXPECT_TRUE(diff.contains(0));
  EXPECT_FALSE(diff.contains(2));
  EXPECT_FALSE(diff.contains(5));
  EXPECT_TRUE((a & ~a).empty());
  EXPECT_EQ((~CpuSet()).count(), CpuSet::kMaxCpus);
}

TEST(CpuSetTest, WordExposesRawBits) {
  CpuSet set;
  set.add(0);
  set.add(65);
  EXPECT_EQ(set.word(0), 1ull);
  EXPECT_EQ(set.word(1), 2ull);
  EXPECT_EQ(set.word(2), 0ull);
}

}  // namespace
}  // namespace pinsim::hw
