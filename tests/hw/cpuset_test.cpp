#include "hw/cpuset.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::hw {
namespace {

TEST(CpuSetTest, EmptyByDefault) {
  CpuSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0);
  EXPECT_FALSE(set.contains(0));
}

TEST(CpuSetTest, FirstN) {
  const CpuSet set = CpuSet::first_n(4);
  EXPECT_EQ(set.count(), 4);
  for (int cpu = 0; cpu < 4; ++cpu) EXPECT_TRUE(set.contains(cpu));
  EXPECT_FALSE(set.contains(4));
}

TEST(CpuSetTest, Range) {
  const CpuSet set = CpuSet::range(10, 14);
  EXPECT_EQ(set.count(), 4);
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.contains(13));
  EXPECT_FALSE(set.contains(14));
}

TEST(CpuSetTest, AddRemove) {
  CpuSet set;
  set.add(5);
  set.add(200);
  EXPECT_EQ(set.count(), 2);
  set.remove(5);
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.contains(200));
}

TEST(CpuSetTest, OutOfRangeRejected) {
  CpuSet set;
  EXPECT_THROW(set.add(-1), InvariantViolation);
  EXPECT_THROW(set.add(CpuSet::kMaxCpus), InvariantViolation);
  EXPECT_FALSE(set.contains(-1));
  EXPECT_FALSE(set.contains(1000));
}

TEST(CpuSetTest, SetOperations) {
  const CpuSet a = CpuSet::range(0, 6);
  const CpuSet b = CpuSet::range(4, 10);
  EXPECT_EQ((a & b).count(), 2);
  EXPECT_EQ((a | b).count(), 10);
  EXPECT_TRUE((a & b).subset_of(a));
  EXPECT_TRUE((a & b).subset_of(b));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(CpuSetTest, FirstAndVector) {
  const CpuSet set = CpuSet::of({7, 3, 11});
  EXPECT_EQ(set.first(), 3);
  EXPECT_EQ(set.to_vector(), (std::vector<CpuId>{3, 7, 11}));
  EXPECT_THROW(CpuSet().first(), InvariantViolation);
}

TEST(CpuSetTest, ToString) {
  EXPECT_EQ(CpuSet().to_string(), "(empty)");
  EXPECT_EQ(CpuSet::of({0, 1, 2, 3}).to_string(), "0-3");
  EXPECT_EQ(CpuSet::of({0, 1, 5, 8, 9}).to_string(), "0-1,5,8-9");
}

TEST(CpuSetTest, Equality) {
  EXPECT_TRUE(CpuSet::first_n(3) == CpuSet::of({0, 1, 2}));
  EXPECT_FALSE(CpuSet::first_n(3) == CpuSet::first_n(4));
}

}  // namespace
}  // namespace pinsim::hw
