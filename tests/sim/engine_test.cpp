#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace pinsim::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(msec(3), [&] { order.push_back(3); });
  engine.schedule(msec(1), [&] { order.push_back(1); });
  engine.schedule(msec(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), msec(3));
}

TEST(EngineTest, TiesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(msec(5), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EngineTest, NestedScheduling) {
  Engine engine;
  std::vector<SimTime> fired;
  engine.schedule(msec(1), [&] {
    fired.push_back(engine.now());
    engine.schedule(msec(1), [&] { fired.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], msec(1));
  EXPECT_EQ(fired[1], msec(2));
}

TEST(EngineTest, HorizonStopsAndAdvancesClock) {
  Engine engine;
  int fired = 0;
  engine.schedule(msec(1), [&] { ++fired; });
  engine.schedule(msec(10), [&] { ++fired; });
  engine.run(msec(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), msec(1));  // stopped at the last fired event
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, EventAtExactHorizonFires) {
  Engine engine;
  bool fired = false;
  engine.schedule(msec(5), [&] { fired = true; });
  engine.run(msec(5));
  EXPECT_TRUE(fired);
}

TEST(EngineTest, EmptyRunToHorizonAdvancesClock) {
  Engine engine;
  engine.run(msec(7));
  EXPECT_EQ(engine.now(), msec(7));
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  EventHandle handle = engine.schedule(msec(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, CancelAfterFireIsNoop) {
  Engine engine;
  int fired = 0;
  EventHandle handle = engine.schedule(msec(1), [&] { ++fired; });
  engine.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();
  engine.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(EngineTest, RunUntilPredicate) {
  Engine engine;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.schedule(msec(i), [&] { ++counter; });
  }
  const bool satisfied = engine.run_until([&] { return counter == 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(engine.now(), msec(4));
}

TEST(EngineTest, RunUntilUnsatisfiedDrainsQueue) {
  Engine engine;
  engine.schedule(msec(1), [] {});
  const bool satisfied = engine.run_until([] { return false; });
  EXPECT_FALSE(satisfied);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, RejectsNegativeDelay) {
  Engine engine;
  EXPECT_THROW(engine.schedule(-1, [] {}), InvariantViolation);
  EXPECT_THROW(engine.schedule_detached(-1, [] {}), InvariantViolation);
}

TEST(EngineTest, DetachedEventsFireInOrderWithHandledOnes) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_detached(msec(2), [&] { order.push_back(2); });
  engine.schedule(msec(1), [&] { order.push_back(1); });
  engine.schedule_detached(msec(1), [&] { order.push_back(11); });
  engine.schedule(msec(3), [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 4);
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3}));
}

TEST(EngineTest, DetachedNestedScheduling) {
  Engine engine;
  int fired = 0;
  engine.schedule_detached(msec(1), [&] {
    ++fired;
    engine.schedule_detached(msec(1), [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), msec(2));
}

TEST(EngineTest, StaleHandleCannotCancelSlotReuser) {
  // After an event fires, its cancellation slot is recycled. A stale
  // handle to the fired event must not affect the slot's next tenant.
  Engine engine;
  bool first = false;
  bool second = false;
  EventHandle stale = engine.schedule(msec(1), [&] { first = true; });
  engine.run();
  EXPECT_TRUE(first);
  EventHandle fresh = engine.schedule(msec(1), [&] { second = true; });
  stale.cancel();  // must be a no-op against the recycled slot
  EXPECT_TRUE(fresh.pending());
  EXPECT_FALSE(stale.pending());
  engine.run();
  EXPECT_TRUE(second);
}

TEST(EngineTest, NotPendingInsideOwnCallback) {
  Engine engine;
  EventHandle handle;
  bool was_pending = true;
  handle = engine.schedule(msec(1), [&] { was_pending = handle.pending(); });
  engine.run();
  EXPECT_FALSE(was_pending);
}

TEST(EngineTest, CancelledSlotIsRecycledAfterDrain) {
  // Cancelled entries release their slots as the queue pops them; a
  // long-running sim with heavy cancel traffic must not grow the slab.
  Engine engine;
  for (int round = 0; round < 100; ++round) {
    EventHandle handle = engine.schedule(msec(1), [] {});
    handle.cancel();
    engine.run();
  }
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, ReturnsEventCount) {
  Engine engine;
  for (int i = 0; i < 5; ++i) engine.schedule(msec(i + 1), [] {});
  EXPECT_EQ(engine.run(), 5);
}

TEST(EngineTest, RescheduleLaterDefersFiring) {
  Engine engine;
  std::vector<int> order;
  EventHandle moved =
      engine.schedule_tracked(msec(1), [&] { order.push_back(1); });
  engine.schedule(msec(2), [&] { order.push_back(2); });
  EXPECT_TRUE(engine.reschedule(moved, msec(3)));
  EXPECT_TRUE(moved.pending());
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(engine.now(), msec(3));
}

TEST(EngineTest, RescheduleEarlierDecreasesKey) {
  Engine engine;
  std::vector<int> order;
  EventHandle moved =
      engine.schedule_tracked(msec(5), [&] { order.push_back(5); });
  engine.schedule(msec(2), [&] { order.push_back(2); });
  EXPECT_TRUE(engine.reschedule(moved, msec(1)));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{5, 2}));
}

TEST(EngineTest, RescheduleSameInstantDropsBehindTies) {
  // A reschedule consumes a fresh sequence number even when the deadline
  // is unchanged — exactly like the cancel+push it replaces, so a
  // re-armed event fires after same-instant events scheduled before the
  // reschedule happened.
  Engine engine;
  std::vector<int> order;
  EventHandle moved =
      engine.schedule_tracked(msec(1), [&] { order.push_back(1); });
  engine.schedule(msec(1), [&] { order.push_back(2); });
  EXPECT_TRUE(engine.reschedule(moved, msec(1)));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EngineTest, RescheduleDeadHandleFails) {
  Engine engine;
  EventHandle fired_handle = engine.schedule_tracked(msec(1), [] {});
  EventHandle cancelled_handle = engine.schedule_tracked(msec(2), [] {});
  cancelled_handle.cancel();
  engine.run();
  EXPECT_FALSE(engine.reschedule(fired_handle, engine.now() + msec(1)));
  EXPECT_FALSE(engine.reschedule(cancelled_handle, engine.now() + msec(1)));
  EventHandle inert;
  EXPECT_FALSE(engine.reschedule(inert, engine.now() + msec(1)));
}

TEST(EngineTest, CancelWinsOverDeferredReschedule) {
  Engine engine;
  bool fired = false;
  EventHandle handle = engine.schedule_tracked(msec(1), [&] { fired = true; });
  EXPECT_TRUE(engine.reschedule(handle, msec(5)));  // lazy deferral
  handle.cancel();
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, RepeatedDeferralKeepsLatestDeadline) {
  Engine engine;
  SimTime fired_at = -1;
  EventHandle handle =
      engine.schedule_tracked(msec(1), [&] { fired_at = engine.now(); });
  EXPECT_TRUE(engine.reschedule(handle, msec(4)));
  EXPECT_TRUE(engine.reschedule(handle, msec(7)));
  EXPECT_TRUE(engine.reschedule(handle, msec(6)));  // earlier than deferred
  engine.run();
  EXPECT_EQ(fired_at, msec(6));
}

TEST(EngineTest, StatsCountFiresTombstonesAndDeferrals) {
  // stats() derives scheduled/peak_heap at read time, so each snapshot
  // must be taken after the activity it checks.
  Engine engine;
  EventHandle cancelled_handle = engine.schedule(msec(1), [] {});
  EventHandle deferred = engine.schedule_tracked(msec(2), [] {});
  engine.schedule(msec(3), [] {});
  EXPECT_EQ(engine.stats().scheduled, 3);
  EXPECT_EQ(engine.stats().peak_heap, 3);
  cancelled_handle.cancel();
  EXPECT_TRUE(engine.reschedule(deferred, msec(5)));
  engine.run();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.scheduled, 3);       // reschedule is not a new event
  EXPECT_EQ(stats.fired, 2);           // cancelled one never fires
  EXPECT_EQ(stats.tombstone_pops, 1);  // only the explicit cancel
  EXPECT_EQ(stats.deferred_rearms, 1);
  EXPECT_EQ(stats.reschedules, 1);
}

TEST(EngineTest, RescheduleUntrackedPendingHandleIsInvariantViolation) {
  // reschedule() requires a handle from schedule_tracked(); a pending
  // handle from plain schedule() has no back-pointer to move in place,
  // so the engine must refuse loudly rather than corrupt the heap.
  Engine engine;
  EventHandle handle = engine.schedule(msec(1), [] {});
  EXPECT_THROW(engine.reschedule(handle, msec(2)), InvariantViolation);
  handle.cancel();
  engine.run();
}

TEST(EngineTest, RescheduleEarlierLeavesNoTombstone) {
  Engine engine;
  EventHandle handle = engine.schedule_tracked(msec(5), [] {});
  EXPECT_TRUE(engine.reschedule(handle, msec(1)));
  engine.run();
  EXPECT_EQ(engine.stats().tombstone_pops, 0);
  EXPECT_EQ(engine.stats().deferred_rearms, 0);
  EXPECT_EQ(engine.stats().fired, 1);
}

}  // namespace
}  // namespace pinsim::sim
