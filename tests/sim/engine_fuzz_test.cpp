// Randomized stress of the event engine: ordering, cancellation,
// in-place rescheduling, and nested-scheduling invariants under
// thousands of random operations, including a reference-model fuzz
// against a std::multimap oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace pinsim::sim {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, MonotonicTimeAndExactFireCounts) {
  Rng rng(GetParam());
  Engine engine;
  std::int64_t expected_fires = 0;
  std::vector<EventHandle> handles;
  SimTime last_fire = 0;
  bool out_of_order = false;

  // Seed events; some callbacks schedule more, some cancel others.
  std::int64_t scheduled = 0;
  std::function<void(int)> fire = [&](int depth) {
    if (engine.now() < last_fire) out_of_order = true;
    last_fire = engine.now();
    ++expected_fires;
    if (depth < 3 && rng.chance(0.4)) {
      const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 5000));
      engine.schedule(delay, [&fire, depth] { fire(depth + 1); });
      ++scheduled;
    }
  };
  for (int i = 0; i < 2000; ++i) {
    const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 100000));
    handles.push_back(engine.schedule(delay, [&fire] { fire(0); }));
    ++scheduled;
  }
  // Cancel a random ~quarter before running.
  std::int64_t cancelled = 0;
  for (auto& handle : handles) {
    if (rng.chance(0.25)) {
      handle.cancel();
      ++cancelled;
    }
  }
  const std::int64_t fired = engine.run();
  EXPECT_FALSE(out_of_order);
  EXPECT_EQ(fired, expected_fires);
  // Every scheduled-and-not-cancelled top-level event fired (nested ones
  // are all uncancelled, so: fired = scheduled - cancelled).
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_TRUE(engine.empty());
}

TEST_P(EngineFuzzTest, HorizonSplitEqualsFullRun) {
  // Running to a horizon and then to completion must fire the same
  // events in the same order as one uninterrupted run.
  auto run_collect = [&](bool split) {
    Rng rng(GetParam() * 3 + 1);
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 50000));
      engine.schedule(delay, [&order, i] { order.push_back(i); });
    }
    if (split) {
      engine.run(25000);
      engine.run();
    } else {
      engine.run();
    }
    return order;
  };
  EXPECT_EQ(run_collect(false), run_collect(true));
}

TEST_P(EngineFuzzTest, RescheduleMatchesMultimapOracle) {
  // Reference model: a std::multimap keyed by (deadline, seq) where seq
  // mirrors the engine's internal sequence counter — one tick per
  // schedule and per successful reschedule. The engine must fire
  // exactly the oracle's key order through any interleaving of
  // schedule / cancel / reschedule-earlier / reschedule-later / run.
  Rng rng(GetParam() * 1007 + 11);
  Engine engine;
  using Key = std::pair<SimTime, std::uint64_t>;
  std::multimap<Key, int> oracle;
  std::map<int, std::multimap<Key, int>::iterator> live;
  std::map<int, EventHandle> handles;
  std::vector<int> fired;
  std::vector<int> expected;
  std::vector<int> dead;
  std::uint64_t seq = 0;
  std::int64_t cancelled_count = 0;
  int next_id = 0;

  auto random_live = [&]() -> int {
    if (live.empty()) return -1;
    auto it = live.begin();
    std::advance(it, rng.uniform_int(0, static_cast<int>(live.size()) - 1));
    return it->first;
  };

  for (int round = 0; round < 80; ++round) {
    const int ops = static_cast<int>(rng.uniform_int(1, 40));
    for (int op = 0; op < ops; ++op) {
      const std::int64_t dice = rng.uniform_int(0, 99);
      if (dice < 50 || live.empty()) {
        const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 5000));
        const int id = next_id++;
        handles[id] = engine.schedule_tracked(
            delay, [&fired, id] { fired.push_back(id); });
        live[id] = oracle.emplace(Key{engine.now() + delay, seq++}, id);
      } else if (dice < 65) {
        const int id = random_live();
        handles[id].cancel();
        EXPECT_FALSE(handles[id].pending());
        oracle.erase(live[id]);
        live.erase(id);
        dead.push_back(id);
        ++cancelled_count;
        // A cancelled handle must refuse in-place rescheduling (and must
        // not consume a sequence number — the oracle would drift).
        EXPECT_FALSE(engine.reschedule(handles[id], engine.now() + 1));
      } else if (dice < 90) {
        const int id = random_live();
        const auto when = static_cast<SimTime>(
            engine.now() + rng.uniform_int(0, 5000));
        ASSERT_TRUE(engine.reschedule(handles[id], when));
        oracle.erase(live[id]);
        live[id] = oracle.emplace(Key{when, seq++}, id);
      } else if (!dead.empty()) {
        // Fired or cancelled events are gone for good.
        const int id = dead[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(dead.size()) - 1))];
        EXPECT_FALSE(engine.reschedule(handles[id], engine.now() + 1));
      }
    }

    const auto horizon = static_cast<SimTime>(
        engine.now() + rng.uniform_int(0, 8000));
    engine.run(horizon);
    while (!oracle.empty() && oracle.begin()->first.first <= horizon) {
      const int id = oracle.begin()->second;
      expected.push_back(id);
      live.erase(id);
      dead.push_back(id);
      oracle.erase(oracle.begin());
    }
    ASSERT_EQ(fired, expected);
  }

  engine.run();
  for (const auto& [key, id] : oracle) expected.push_back(id);
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(engine.empty());
  // Only explicit cancels leave tombstones now; every reschedule was
  // served in place (deferred re-arm or re-key), never by a dead entry.
  EXPECT_EQ(engine.stats().tombstone_pops, cancelled_count);
  EXPECT_EQ(engine.stats().fired, static_cast<std::int64_t>(fired.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(1u, 42u, 1234u, 987654u));

}  // namespace
}  // namespace pinsim::sim
