// Randomized stress of the event engine: ordering, cancellation, and
// nested-scheduling invariants under thousands of random operations.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace pinsim::sim {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, MonotonicTimeAndExactFireCounts) {
  Rng rng(GetParam());
  Engine engine;
  std::int64_t expected_fires = 0;
  std::vector<EventHandle> handles;
  SimTime last_fire = 0;
  bool out_of_order = false;

  // Seed events; some callbacks schedule more, some cancel others.
  std::int64_t scheduled = 0;
  std::function<void(int)> fire = [&](int depth) {
    if (engine.now() < last_fire) out_of_order = true;
    last_fire = engine.now();
    ++expected_fires;
    if (depth < 3 && rng.chance(0.4)) {
      const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 5000));
      engine.schedule(delay, [&fire, depth] { fire(depth + 1); });
      ++scheduled;
    }
  };
  for (int i = 0; i < 2000; ++i) {
    const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 100000));
    handles.push_back(engine.schedule(delay, [&fire] { fire(0); }));
    ++scheduled;
  }
  // Cancel a random ~quarter before running.
  std::int64_t cancelled = 0;
  for (auto& handle : handles) {
    if (rng.chance(0.25)) {
      handle.cancel();
      ++cancelled;
    }
  }
  const std::int64_t fired = engine.run();
  EXPECT_FALSE(out_of_order);
  EXPECT_EQ(fired, expected_fires);
  // Every scheduled-and-not-cancelled top-level event fired (nested ones
  // are all uncancelled, so: fired = scheduled - cancelled).
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_TRUE(engine.empty());
}

TEST_P(EngineFuzzTest, HorizonSplitEqualsFullRun) {
  // Running to a horizon and then to completion must fire the same
  // events in the same order as one uninterrupted run.
  auto run_collect = [&](bool split) {
    Rng rng(GetParam() * 3 + 1);
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 500; ++i) {
      const auto delay = static_cast<SimDuration>(rng.uniform_int(0, 50000));
      engine.schedule(delay, [&order, i] { order.push_back(i); });
    }
    if (split) {
      engine.run(25000);
      engine.run();
    } else {
      engine.run();
    }
    return order;
  };
  EXPECT_EQ(run_collect(false), run_collect(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(1u, 42u, 1234u, 987654u));

}  // namespace
}  // namespace pinsim::sim
