// ShardedEngine unit + determinism tests.
//
// The contract under test (DESIGN.md §7): shards == 1 is a strict
// pass-through; cross-shard posts are delivered in canonical
// (when, src_shard, seq) order; results are bit-identical across
// repeated runs and across every worker-thread count; lookahead
// violations trip a CHECK; stats fold to the serial totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace pinsim::sim {
namespace {

constexpr SimDuration kLookahead = usec(2);

ShardedEngineConfig config_for(int shards, int threads = 1) {
  ShardedEngineConfig config;
  config.shards = shards;
  config.lookahead = kLookahead;
  config.threads = threads;
  return config;
}

/// One (time, tag) observation; traces are the determinism currency.
struct Obs {
  SimTime when;
  std::string tag;
  bool operator==(const Obs& other) const {
    return when == other.when && tag == other.tag;
  }
};

TEST(ShardedEngineTest, SingleShardMatchesPlainEngineExactly) {
  auto drive = [](Engine& engine, std::vector<Obs>* trace) {
    for (int i = 0; i < 5; ++i) {
      engine.schedule_detached(usec(10 * i), [&engine, trace, i] {
        trace->push_back(Obs{engine.now(), "ev" + std::to_string(i)});
        engine.schedule_detached(usec(3), [&engine, trace, i] {
          trace->push_back(Obs{engine.now(), "fu" + std::to_string(i)});
        });
      });
    }
  };

  std::vector<Obs> plain_trace;
  Engine plain;
  drive(plain, &plain_trace);
  const std::int64_t plain_fired = plain.run();

  std::vector<Obs> sharded_trace;
  ShardedEngine sharded(config_for(1));
  drive(sharded.shard(0), &sharded_trace);
  const std::int64_t sharded_fired = sharded.run();

  EXPECT_EQ(plain_fired, sharded_fired);
  EXPECT_EQ(plain_trace, sharded_trace);
  EXPECT_EQ(plain.now(), sharded.now());
}

TEST(ShardedEngineTest, CrossShardPostsDeliverInCanonicalOrder) {
  ShardedEngine sharded(config_for(3));
  std::vector<Obs> trace;
  // Shards 1 and 2 both post to shard 0 at the SAME instant. The
  // canonical (when, src_shard, seq) order must fire src 1 before
  // src 2, and each source's posts in posting order — regardless of
  // which source's events executed first in the round.
  sharded.shard(2).schedule_detached(usec(1), [&] {
    sharded.post(2, 0, usec(9), [&] {
      trace.push_back(Obs{sharded.shard(0).now(), "s2-a"});
    });
    sharded.post(2, 0, usec(9), [&] {
      trace.push_back(Obs{sharded.shard(0).now(), "s2-b"});
    });
  });
  sharded.shard(1).schedule_detached(usec(1), [&] {
    sharded.post(1, 0, usec(9), [&] {
      trace.push_back(Obs{sharded.shard(0).now(), "s1-a"});
    });
  });
  sharded.run();

  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].tag, "s1-a");
  EXPECT_EQ(trace[1].tag, "s2-a");
  EXPECT_EQ(trace[2].tag, "s2-b");
  EXPECT_EQ(trace[0].when, usec(10));
  const ShardedEngineStats stats = sharded.stats();
  EXPECT_EQ(stats.cross_posts, 3);
  EXPECT_GE(stats.rounds, 1);
  EXPECT_GE(stats.peak_round_batch, 1);
}

TEST(ShardedEngineTest, CrossShardPostBelowLookaheadIsInvariantViolation) {
  ShardedEngine sharded(config_for(2));
  bool threw = false;
  sharded.shard(0).schedule_detached(usec(1), [&] {
    try {
      sharded.post(0, 1, kLookahead - 1, [] {});
    } catch (const InvariantViolation&) {
      threw = true;
    }
  });
  sharded.run();
  EXPECT_TRUE(threw);
}

TEST(ShardedEngineTest, RunParksEveryShardClockAtHorizon) {
  ShardedEngine sharded(config_for(2));
  sharded.shard(0).schedule_detached(usec(5), [] {});
  sharded.run(msec(1));
  EXPECT_EQ(sharded.shard(0).now(), msec(1));
  EXPECT_EQ(sharded.shard(1).now(), msec(1));
  EXPECT_EQ(sharded.now(), msec(1));
}

TEST(ShardedEngineTest, RunUntilStopsOnPredicateAtWindowBoundary) {
  ShardedEngine sharded(config_for(2));
  int count = 0;
  // A self-perpetuating ping-pong that would never drain on its own.
  std::function<void(int)> ping = [&](int src) {
    ++count;
    sharded.post(src, 1 - src, usec(10), [&ping, src] { ping(1 - src); });
  };
  sharded.shard(0).schedule_detached(usec(1), [&ping] { ping(0); });
  const bool held = sharded.run_until([&count] { return count >= 7; }, sec(1));
  EXPECT_TRUE(held);
  EXPECT_GE(count, 7);
}

/// A mesh of mutually posting shard-local timers: every shard runs a
/// local event chain and periodically posts to the next shard. Returns
/// the full observation trace plus per-shard final clocks.
std::vector<Obs> run_mesh(int shards, int threads, int* fired_out = nullptr) {
  ShardedEngine sharded(config_for(shards, threads));
  std::vector<std::vector<Obs>> traces(static_cast<std::size_t>(shards));
  std::vector<std::function<void(int)>> chain(
      static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    chain[static_cast<std::size_t>(s)] = [&, s](int step) {
      auto& trace = traces[static_cast<std::size_t>(s)];
      trace.push_back(
          Obs{sharded.shard(s).now(), "c" + std::to_string(step)});
      if (step >= 40) return;
      // Jittered local cadence seeded per shard: exercises unequal
      // event densities so windows are decided by different shards
      // over time.
      const SimDuration delay = usec(3 + ((step * 7 + s * 13) % 11));
      sharded.shard(s).schedule_detached(
          delay, [&chain, s, step] { chain[static_cast<std::size_t>(s)](step + 1); });
      if (step % 3 == 0) {
        const int dst = (s + 1) % shards;
        sharded.post(s, dst, kLookahead + usec(step % 5), [&traces, dst, s, step] {
          traces[static_cast<std::size_t>(dst)].push_back(
              Obs{0, "from" + std::to_string(s) + "@" + std::to_string(step)});
        });
      }
    };
    sharded.shard(s).schedule_detached(usec(1 + s), [&chain, s] {
      chain[static_cast<std::size_t>(s)](0);
    });
  }
  const std::int64_t fired = sharded.run(sec(1));
  if (fired_out != nullptr) {
    *fired_out = static_cast<int>(fired);
  }
  // Flatten per-shard traces in shard order (each inner trace is the
  // deterministic serial history of that shard).
  std::vector<Obs> flat;
  for (const auto& trace : traces) {
    flat.insert(flat.end(), trace.begin(), trace.end());
  }
  return flat;
}

TEST(ShardedEngineDeterminismTest, RepeatedRunsAreIdentical) {
  const std::vector<Obs> first = run_mesh(4, 1);
  const std::vector<Obs> second = run_mesh(4, 1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ShardedEngineDeterminismTest, ThreadCountDoesNotChangeResults) {
  int fired1 = 0;
  int fired2 = 0;
  int fired4 = 0;
  int fired0 = 0;
  const std::vector<Obs> threads1 = run_mesh(4, 1, &fired1);
  const std::vector<Obs> threads2 = run_mesh(4, 2, &fired2);
  const std::vector<Obs> threads4 = run_mesh(4, 4, &fired4);
  const std::vector<Obs> threads0 = run_mesh(4, 0, &fired0);  // one per shard
  ASSERT_FALSE(threads1.empty());
  EXPECT_EQ(threads1, threads2);
  EXPECT_EQ(threads1, threads4);
  EXPECT_EQ(threads1, threads0);
  EXPECT_EQ(fired1, fired2);
  EXPECT_EQ(fired1, fired4);
  EXPECT_EQ(fired1, fired0);
}

TEST(ShardedEngineDeterminismTest, ShardRngStreamsAreStablePerShard) {
  ShardedEngine a(config_for(4));
  ShardedEngine b(config_for(4));
  a.seed_rngs(Rng(123));
  b.seed_rngs(Rng(123));
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(a.rng(s).next_u64(), b.rng(s).next_u64()) << "shard " << s;
  }
}

TEST(ShardedEngineStatsTest, EngineStatsFoldEqualsPerShardSum) {
  ShardedEngine sharded(config_for(3));
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 10 + s; ++i) {
      sharded.shard(s).schedule_detached(usec(i), [] {});
    }
  }
  sharded.shard(0).schedule_detached(usec(1), [&sharded] {
    sharded.post(0, 2, kLookahead, [] {});
  });
  sharded.run();

  EngineStats manual;
  for (int s = 0; s < 3; ++s) {
    const EngineStats per = sharded.shard(s).stats();
    manual.scheduled += per.scheduled;
    manual.fired += per.fired;
    manual.tombstone_pops += per.tombstone_pops;
    manual.deferred_rearms += per.deferred_rearms;
    manual.reschedules += per.reschedules;
    manual.peak_heap += per.peak_heap;
  }
  const EngineStats folded = sharded.engine_stats();
  EXPECT_EQ(folded.scheduled, manual.scheduled);
  EXPECT_EQ(folded.fired, manual.fired);
  EXPECT_EQ(folded.peak_heap, manual.peak_heap);
  // 34 locally scheduled events + 1 delivered cross-post (the post
  // itself rides the mailbox, not the source heap).
  EXPECT_EQ(folded.fired, 35);
}

TEST(ShardedEngineStatsTest, AggregateFoldMatchesSerialTotals) {
  // The same event pattern run serially on plain Engines and sharded:
  // the process-wide aggregate (folded atomically per engine at
  // destruction) must grow by identical amounts.
  auto workload_on = [](Engine& engine, int offset) {
    for (int i = 0; i < 25; ++i) {
      engine.schedule_detached(usec(offset + i), [] {});
    }
  };

  const EngineStats before_serial = aggregate_engine_stats();
  {
    Engine a;
    Engine b;
    workload_on(a, 0);
    workload_on(b, 5);
    a.run();
    b.run();
  }
  const EngineStats after_serial = aggregate_engine_stats();

  {
    ShardedEngine sharded(config_for(2));
    workload_on(sharded.shard(0), 0);
    workload_on(sharded.shard(1), 5);
    sharded.run();
  }
  const EngineStats after_sharded = aggregate_engine_stats();

  EXPECT_EQ(after_serial.fired - before_serial.fired,
            after_sharded.fired - after_serial.fired);
  EXPECT_EQ(after_serial.scheduled - before_serial.scheduled,
            after_sharded.scheduled - after_serial.scheduled);
  EXPECT_EQ(after_serial.fired - before_serial.fired, 50);
}

TEST(ShardedEngineTest, LocalPostsBypassTheMailbox) {
  ShardedEngine sharded(config_for(2));
  int hits = 0;
  sharded.shard(0).schedule_detached(usec(1), [&] {
    sharded.post(0, 0, 0, [&hits] { ++hits; });  // below lookahead: legal
  });
  sharded.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sharded.stats().local_posts, 1);
  EXPECT_EQ(sharded.stats().cross_posts, 0);
}

}  // namespace
}  // namespace pinsim::sim
