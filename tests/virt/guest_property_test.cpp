// Properties of the two-level (host + guest) scheduling stack.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "virt/factory.hpp"
#include "virt/vm.hpp"
#include "virt/vm_container.hpp"
#include "workload/ffmpeg.hpp"

namespace pinsim::virt {
namespace {

std::unique_ptr<os::TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([state, work](os::Task&) {
    if (*state) return os::Action::exit();
    *state = true;
    return os::Action::compute(work);
  });
}

class GuestPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(GuestPropertyTest, GuestWorkAllCompletesAndGrantsAreBounded) {
  const auto& [instance, tasks, seed] = GetParam();
  const PlatformSpec spec{PlatformKind::Vm, CpuMode::Vanilla,
                          instance_by_name(instance)};
  Host host(hw::Topology::dell_r830(), hw::CostModel{},
            static_cast<std::uint64_t>(seed));
  VmPlatform platform(host, spec);
  int done = 0;
  SimDuration requested_work = 0;
  for (int i = 0; i < tasks; ++i) {
    const SimDuration work = msec(5 + 3 * (i % 4));
    requested_work += work;
    WorkTaskConfig config;
    config.name = "g" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = platform.spawn(std::move(config), compute_once(work));
    platform.start(task);
  }
  ASSERT_TRUE(host.engine().run_until([&] { return done == tasks; },
                                      sec(300)));
  // Every guest task accomplished exactly its requested work.
  SimDuration done_work = 0;
  for (const auto& task : platform.guest().tasks()) {
    done_work += task->stats.work_done;
  }
  EXPECT_EQ(done_work, requested_work);
  // Grants cannot exceed vcpus x wall time.
  const double wall = to_seconds(host.engine().now());
  EXPECT_LE(to_seconds(platform.guest().stats().granted),
            wall * spec.instance.cores * 1.0001);
  // Inflation holds in aggregate: granted cpu >= inflation x work.
  EXPECT_GE(static_cast<double>(platform.guest().stats().granted),
            static_cast<double>(requested_work) *
                host.costs().guest_compute_inflation * 0.98);
}

std::string guest_property_name(
    const ::testing::TestParamInfo<GuestPropertyTest::ParamType>& info) {
  return std::get<0>(info.param) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    InstanceTaskSeedSweep, GuestPropertyTest,
    ::testing::Combine(::testing::Values("Large", "xLarge", "2xLarge"),
                       ::testing::Values(1, 6, 20),
                       ::testing::Values(3, 77)),
    guest_property_name);

TEST(GuestPropertyTest, HaltPollingAvoidsKicksForShortGaps) {
  // Ping-pong inside a 2-vCPU guest with sub-poll-window gaps: after the
  // warm-up, messages should be picked up by polling vCPUs, not kicks.
  const PlatformSpec spec{PlatformKind::Vm, CpuMode::Vanilla,
                          instance_by_name("Large")};
  Host host(hw::Topology::dell_r830(), hw::CostModel{}, 5);
  VmPlatform platform(host, spec);

  constexpr int kRounds = 200;
  os::Task* a_ptr = nullptr;
  os::Task* b_ptr = nullptr;
  int done = 0;
  auto make_pinger = [&](os::Task*& peer, bool starts) {
    // starts=true:  post, recv, post, recv, ...
    // starts=false: recv, post, recv, post, ...
    auto step = std::make_shared<int>(0);
    return std::make_unique<os::LambdaDriver>(
        [&peer, step, starts](os::Task&) {
          if (*step >= 2 * kRounds) return os::Action::exit();
          const bool post_turn = (*step)++ % 2 == (starts ? 0 : 1);
          if (post_turn) return os::Action::post(*peer);
          return os::Action::recv_spin();
        });
  };
  WorkTaskConfig ca;
  ca.name = "a";
  ca.on_exit = [&done](os::Task&) { ++done; };
  os::Task& a = platform.spawn(std::move(ca), make_pinger(b_ptr, true));
  WorkTaskConfig cb;
  cb.name = "b";
  cb.on_exit = [&done](os::Task&) { ++done; };
  os::Task& b = platform.spawn(std::move(cb), make_pinger(a_ptr, false));
  a_ptr = &a;
  b_ptr = &b;
  platform.start(a);
  platform.start(b);
  ASSERT_TRUE(host.engine().run_until([&] { return done == 2; }, sec(60)));
  // Far fewer kicks than messages: spinning + halt-polling absorb them.
  EXPECT_LT(platform.guest().stats().kicks, kRounds / 2);
}

TEST(GuestPropertyTest, VmcnQuotaBoundsGuestUsage) {
  const PlatformSpec spec{PlatformKind::VmContainer, CpuMode::Vanilla,
                          instance_by_name("Large")};
  Host host(hw::Topology::dell_r830(), hw::CostModel{}, 9);
  VmContainerPlatform platform(host, spec);
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    WorkTaskConfig config;
    config.name = "w" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = platform.spawn(std::move(config),
                                    compute_once(msec(40)));
    platform.start(task);
  }
  ASSERT_TRUE(host.engine().run_until([&] { return done == 6; },
                                      sec(300)));
  const double wall = to_seconds(host.engine().now());
  EXPECT_LE(to_seconds(platform.guest_cgroup().stats().usage),
            2.0 * wall + 0.03);
}

TEST(GuestPropertyTest, PinnedVcpusNeverLeaveTheirCpus) {
  const PlatformSpec spec{PlatformKind::Vm, CpuMode::Pinned,
                          instance_by_name("xLarge")};
  Host host(hw::Topology::dell_r830(), hw::CostModel{}, 13);
  VmPlatform platform(host, spec);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    WorkTaskConfig config;
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = platform.spawn(std::move(config),
                                    compute_once(msec(20)));
    platform.start(task);
  }
  ASSERT_TRUE(host.engine().run_until([&] { return done == 8; },
                                      sec(300)));
  for (const os::Task* vcpu : platform.vcpu_tasks()) {
    EXPECT_EQ(vcpu->stats.migrations, 0) << vcpu->name();
    EXPECT_TRUE(vcpu->affinity.contains(vcpu->last_cpu));
  }
}

}  // namespace
}  // namespace pinsim::virt
