#include "virt/vm_container.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "virt/factory.hpp"

namespace pinsim::virt {
namespace {

std::unique_ptr<os::TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([state, work](os::Task&) {
    if (*state) return os::Action::exit();
    *state = true;
    return os::Action::compute(work);
  });
}

struct VmcnHarness {
  VmcnHarness(CpuMode mode, const std::string& instance,
              std::uint64_t seed = 3)
      : spec{PlatformKind::VmContainer, mode, instance_by_name(instance)},
        host(hw::Topology::dell_r830(), hw::CostModel{}, seed),
        platform(host, spec) {}
  PlatformSpec spec;
  Host host;
  VmContainerPlatform platform;
};

TEST(VmContainerTest, TasksJoinGuestCgroup) {
  VmcnHarness h(CpuMode::Vanilla, "Large");
  WorkTaskConfig config;
  os::Task& task = h.platform.spawn(std::move(config), compute_once(msec(1)));
  EXPECT_EQ(task.cgroup, &h.platform.guest_cgroup());
  EXPECT_FALSE(task.sticky_wakeup);
}

TEST(VmContainerTest, PinnedModePinsBothLevels) {
  VmcnHarness h(CpuMode::Pinned, "Large");
  // Level 1: vCPUs bound to host cpus.
  for (const os::Task* vcpu : h.platform.vcpu_tasks()) {
    EXPECT_EQ(vcpu->affinity.count(), 1);
  }
  // Level 2: container pinned over the guest's vCPUs, sticky wakeups.
  EXPECT_EQ(h.platform.guest_cgroup().cpuset().count(), 2);
  WorkTaskConfig config;
  os::Task& task = h.platform.spawn(std::move(config), compute_once(msec(1)));
  EXPECT_TRUE(task.sticky_wakeup);
}

TEST(VmContainerTest, WorkloadCompletes) {
  VmcnHarness h(CpuMode::Vanilla, "xLarge");
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    WorkTaskConfig config;
    config.name = "w" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = h.platform.spawn(std::move(config),
                                      compute_once(msec(20)));
    h.platform.start(task);
  }
  h.host.engine().run_until([&] { return done == 6; }, sec(30));
  EXPECT_EQ(done, 6);
  EXPECT_GT(h.platform.guest_cgroup().stats().usage, 0);
}

TEST(VmContainerTest, AtLeastAsSlowAsPlainVm) {
  auto run = [](PlatformKind kind) {
    const PlatformSpec spec{kind, CpuMode::Vanilla,
                            instance_by_name("Large")};
    Host host(hw::Topology::dell_r830(), hw::CostModel{}, 17);
    auto platform = make_platform(host, spec);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      WorkTaskConfig config;
      config.on_exit = [&done](os::Task&) { ++done; };
      os::Task& t = platform->spawn(std::move(config),
                                    compute_once(msec(30)));
      platform->start(t);
    }
    host.engine().run_until([&] { return done == 4; }, sec(30));
    EXPECT_EQ(done, 4);
    return host.engine().now();
  };
  const SimTime vm = run(PlatformKind::Vm);
  const SimTime vmcn = run(PlatformKind::VmContainer);
  EXPECT_GE(vmcn, vm);
}

}  // namespace
}  // namespace pinsim::virt
