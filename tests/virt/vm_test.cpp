#include "virt/vm.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "virt/factory.hpp"

namespace pinsim::virt {
namespace {

std::unique_ptr<os::TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([state, work](os::Task&) {
    if (*state) return os::Action::exit();
    *state = true;
    return os::Action::compute(work);
  });
}

std::unique_ptr<os::TaskDriver> io_loop(hw::IoDevice& device,
                                        SimDuration work, int iterations) {
  auto n = std::make_shared<int>(0);
  auto io_next = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>(
      [&device, n, io_next, work, iterations](os::Task&) {
        if (*n >= iterations) return os::Action::exit();
        if (!*io_next) {
          *io_next = true;
          return os::Action::compute(work);
        }
        *io_next = false;
        ++*n;
        return os::Action::io(device,
                              hw::IoRequest{hw::IoKind::Read, 4.0});
      });
}

struct VmHarness {
  VmHarness(CpuMode mode, const std::string& instance, std::uint64_t seed = 3)
      : spec{PlatformKind::Vm, mode, instance_by_name(instance)},
        host(hw::Topology::dell_r830(), hw::CostModel{}, seed),
        platform(host, spec) {}
  PlatformSpec spec;
  Host host;
  VmPlatform platform;
};

TEST(VmTest, CreatesOneVcpuTaskPerCore) {
  VmHarness h(CpuMode::Vanilla, "2xLarge");
  EXPECT_EQ(h.platform.vcpu_tasks().size(), 8u);
  EXPECT_EQ(h.platform.guest().vcpus(), 8);
  // vCPUs idle (halted) until guest work arrives.
  h.host.engine().run(msec(10));
  for (const os::Task* vcpu : h.platform.vcpu_tasks()) {
    EXPECT_EQ(vcpu->state, os::TaskState::Blocked);
  }
}

TEST(VmTest, GuestComputeCompletesWithInflation) {
  VmHarness h(CpuMode::Vanilla, "Large");
  int done = 0;
  WorkTaskConfig config;
  config.name = "app";
  config.on_exit = [&done](os::Task&) { ++done; };
  os::Task& task = h.platform.spawn(std::move(config), compute_once(msec(50)));
  h.platform.start(task);
  h.host.engine().run_until([&] { return done == 1; }, sec(10));
  ASSERT_EQ(done, 1);
  EXPECT_EQ(task.stats.work_done, msec(50));
  // PTO: ~1.95x bare-metal compute time.
  const double inflation = h.host.costs().guest_compute_inflation;
  EXPECT_GE(h.host.engine().now(),
            static_cast<SimTime>(static_cast<double>(msec(50)) * inflation));
  EXPECT_LT(h.host.engine().now(),
            static_cast<SimTime>(static_cast<double>(msec(50)) *
                                 (inflation + 0.15)));
}

TEST(VmTest, GuestTasksMultiplexOntoVcpus) {
  // 8 guest tasks on a 2-vCPU VM: only 2 can run at a time; the VM's
  // makespan is ~4x a task's inflated runtime.
  VmHarness h(CpuMode::Vanilla, "Large");
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    WorkTaskConfig config;
    config.name = "app" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = h.platform.spawn(std::move(config),
                                      compute_once(msec(25)));
    h.platform.start(task);
  }
  h.host.engine().run_until([&] { return done == 8; }, sec(30));
  ASSERT_EQ(done, 8);
  const double inflation = h.host.costs().guest_compute_inflation;
  const auto floor = static_cast<SimTime>(
      static_cast<double>(msec(100)) * inflation);
  EXPECT_GE(h.host.engine().now(), floor);
  EXPECT_LT(h.host.engine().now(), floor + msec(30));
}

TEST(VmTest, PinnedVcpusBoundToHostCpus) {
  VmHarness h(CpuMode::Pinned, "xLarge");
  for (std::size_t i = 0; i < h.platform.vcpu_tasks().size(); ++i) {
    const os::Task* vcpu = h.platform.vcpu_tasks()[i];
    EXPECT_EQ(vcpu->affinity.count(), 1);
  }
  // Distinct cpus, 1:1.
  hw::CpuSet all;
  for (const os::Task* vcpu : h.platform.vcpu_tasks()) {
    all = all | vcpu->affinity;
  }
  EXPECT_EQ(all.count(), 4);
}

TEST(VmTest, GuestIoGoesThroughVirtio) {
  VmHarness h(CpuMode::Vanilla, "Large");
  int done = 0;
  WorkTaskConfig config;
  config.name = "reader";
  config.on_exit = [&done](os::Task&) { ++done; };
  os::Task& task = h.platform.spawn(
      std::move(config), io_loop(h.platform.disk(), usec(100), 10));
  h.platform.start(task);
  h.host.engine().run_until([&] { return done == 1; }, sec(10));
  ASSERT_EQ(done, 1);
  EXPECT_EQ(task.stats.io_ops, 10);
  EXPECT_EQ(h.platform.guest().stats().io_exits, 10);
  EXPECT_EQ(h.host.disk().completed(), 10);
}

TEST(VmTest, IntraGuestMessagingWorks) {
  VmHarness h(CpuMode::Vanilla, "xLarge");
  int done = 0;
  os::Task* receiver = nullptr;
  auto recv_stage = std::make_shared<int>(0);
  WorkTaskConfig rconfig;
  rconfig.name = "recv";
  rconfig.on_exit = [&done](os::Task&) { ++done; };
  os::Task& r = h.platform.spawn(
      std::move(rconfig),
      std::make_unique<os::LambdaDriver>([recv_stage](os::Task&) {
        return (*recv_stage)++ < 5 ? os::Action::recv() : os::Action::exit();
      }));
  receiver = &r;
  auto send_stage = std::make_shared<int>(0);
  WorkTaskConfig sconfig;
  sconfig.name = "send";
  sconfig.on_exit = [&done](os::Task&) { ++done; };
  os::Task& s = h.platform.spawn(
      std::move(sconfig),
      std::make_unique<os::LambdaDriver>([&receiver, send_stage](os::Task&) {
        if (*send_stage >= 5) return os::Action::exit();
        ++*send_stage;
        return os::Action::post(*receiver);
      }));
  h.platform.start(r);
  h.platform.start(s);
  h.host.engine().run_until([&] { return done == 2; }, sec(10));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(s.stats.messages_sent, 5);
}

TEST(VmTest, ExternalPostReachesGuestTask) {
  VmHarness h(CpuMode::Vanilla, "Large");
  int done = 0;
  auto stage = std::make_shared<int>(0);
  WorkTaskConfig config;
  config.name = "server";
  config.on_exit = [&done](os::Task&) { ++done; };
  os::Task& task = h.platform.spawn(
      std::move(config), std::make_unique<os::LambdaDriver>([stage](os::Task&) {
        return (*stage)++ == 0 ? os::Action::recv() : os::Action::exit();
      }));
  h.platform.start(task);
  h.host.engine().schedule(msec(5), [&] { h.platform.post(task, 1); });
  h.host.engine().run_until([&] { return done == 1; }, sec(5));
  EXPECT_EQ(done, 1);
}

TEST(VmTest, VmSlowerThanBareMetalForCpuBoundWork) {
  // The paper's headline FFmpeg observation in miniature.
  auto vm_time = [] {
    VmHarness h(CpuMode::Vanilla, "xLarge", 11);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      WorkTaskConfig config;
      config.on_exit = [&done](os::Task&) { ++done; };
      os::Task& t = h.platform.spawn(std::move(config),
                                     compute_once(msec(40)));
      h.platform.start(t);
    }
    h.host.engine().run_until([&] { return done == 4; }, sec(10));
    return h.host.engine().now();
  }();
  auto bm_time = [] {
    const PlatformSpec spec{PlatformKind::BareMetal, CpuMode::Vanilla,
                            instance_by_name("xLarge")};
    Host host(host_topology_for(spec, hw::Topology::dell_r830()),
              hw::CostModel{}, 11);
    auto platform = make_platform(host, spec);
    int done = 0;
    for (int i = 0; i < 4; ++i) {
      WorkTaskConfig config;
      config.on_exit = [&done](os::Task&) { ++done; };
      os::Task& t = platform->spawn(std::move(config),
                                    compute_once(msec(40)));
      platform->start(t);
    }
    host.engine().run_until([&] { return done == 4; }, sec(10));
    return host.engine().now();
  }();
  const double ratio =
      static_cast<double>(vm_time) / static_cast<double>(bm_time);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.3);
}

}  // namespace
}  // namespace pinsim::virt
