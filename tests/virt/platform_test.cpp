#include "virt/platform.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"
#include "virt/bare_metal.hpp"
#include "virt/factory.hpp"

namespace pinsim::virt {
namespace {

std::unique_ptr<os::TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([state, work](os::Task&) {
    if (*state) return os::Action::exit();
    *state = true;
    return os::Action::compute(work);
  });
}

TEST(PlatformSpecTest, LabelsMatchPaperLegend) {
  const InstanceType& large = instance_by_name("Large");
  EXPECT_EQ((PlatformSpec{PlatformKind::Vm, CpuMode::Vanilla, large}).label(),
            "Vanilla VM");
  EXPECT_EQ(
      (PlatformSpec{PlatformKind::VmContainer, CpuMode::Pinned, large})
          .label(),
      "Pinned VMCN");
  EXPECT_EQ(
      (PlatformSpec{PlatformKind::Container, CpuMode::Pinned, large}).label(),
      "Pinned CN");
  EXPECT_EQ(
      (PlatformSpec{PlatformKind::BareMetal, CpuMode::Vanilla, large}).label(),
      "Vanilla BM");
}

TEST(FactoryTest, PaperSeriesHasSevenConfigurations) {
  const auto series = paper_series(instance_by_name("xLarge"));
  ASSERT_EQ(series.size(), 7u);
  EXPECT_EQ(series.front().label(), "Vanilla VM");
  EXPECT_EQ(series.back().label(), "Vanilla BM");
}

TEST(FactoryTest, HostTopologySizedPerPlatform) {
  const hw::Topology full = hw::Topology::dell_r830();
  const InstanceType& xlarge = instance_by_name("xLarge");
  const PlatformSpec bm{PlatformKind::BareMetal, CpuMode::Vanilla, xlarge};
  const PlatformSpec cn{PlatformKind::Container, CpuMode::Vanilla, xlarge};
  EXPECT_EQ(host_topology_for(bm, full).num_cpus(), 4);
  EXPECT_EQ(host_topology_for(cn, full).num_cpus(), 112);
}

TEST(FactoryTest, MakesEveryKind) {
  const hw::Topology full = hw::Topology::dell_r830();
  const InstanceType& large = instance_by_name("Large");
  for (const PlatformSpec& spec : paper_series(large)) {
    Host host(host_topology_for(spec, full), hw::CostModel{}, 42);
    auto platform = make_platform(host, spec);
    ASSERT_NE(platform, nullptr);
    if (spec.kind == PlatformKind::Container &&
        spec.mode == CpuMode::Vanilla) {
      // nproc inside a vanilla container reports the whole host.
      EXPECT_EQ(platform->visible_cpus(), 112);
    } else {
      EXPECT_EQ(platform->visible_cpus(), 2);
    }
    EXPECT_EQ(platform->spec().label(), spec.label());
  }
}

TEST(BareMetalTest, RequiresLimitedHost) {
  const InstanceType& large = instance_by_name("Large");
  const PlatformSpec spec{PlatformKind::BareMetal, CpuMode::Vanilla, large};
  Host full_host(hw::Topology::dell_r830(), hw::CostModel{}, 1);
  EXPECT_THROW(BareMetalPlatform(full_host, spec), InvariantViolation);
}

TEST(BareMetalTest, RunsWorkloadToCompletion) {
  const InstanceType& xlarge = instance_by_name("xLarge");
  const PlatformSpec spec{PlatformKind::BareMetal, CpuMode::Vanilla, xlarge};
  Host host(host_topology_for(spec, hw::Topology::dell_r830()),
            hw::CostModel{}, 2);
  auto platform = make_platform(host, spec);

  int done = 0;
  for (int i = 0; i < 4; ++i) {
    WorkTaskConfig config;
    config.name = "t" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = platform->spawn(std::move(config), compute_once(msec(20)));
    platform->start(task);
  }
  host.engine().run_until([&] { return done == 4; }, sec(5));
  EXPECT_EQ(done, 4);
  // 4 tasks, 4 cpus: parallel, ~20 ms.
  EXPECT_LT(host.engine().now(), msec(25));
}

}  // namespace
}  // namespace pinsim::virt
