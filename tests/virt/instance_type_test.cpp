#include "virt/instance_type.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace pinsim::virt {
namespace {

TEST(InstanceTypeTest, CatalogMatchesTableII) {
  const auto& catalog = instance_catalog();
  ASSERT_EQ(catalog.size(), 6u);
  EXPECT_EQ(catalog[0].name, "Large");
  EXPECT_EQ(catalog[0].cores, 2);
  EXPECT_EQ(catalog[0].memory_gb, 8);
  EXPECT_EQ(catalog[5].name, "16xLarge");
  EXPECT_EQ(catalog[5].cores, 64);
  EXPECT_EQ(catalog[5].memory_gb, 256);
}

TEST(InstanceTypeTest, CoresDoubleAtEachStep) {
  const auto& catalog = instance_catalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].cores, 2 * catalog[i - 1].cores);
    EXPECT_EQ(catalog[i].memory_gb, 2 * catalog[i - 1].memory_gb);
  }
}

TEST(InstanceTypeTest, LookupByName) {
  EXPECT_EQ(instance_by_name("4xLarge").cores, 16);
  EXPECT_THROW(instance_by_name("mega"), InvariantViolation);
}

TEST(InstanceTypeTest, LookupByCores) {
  EXPECT_EQ(instance_by_cores(8).name, "2xLarge");
  EXPECT_THROW(instance_by_cores(7), InvariantViolation);
}

TEST(InstanceTypeTest, LargestInstanceWithin) {
  EXPECT_EQ(largest_instance_within(2).name, "Large");
  EXPECT_EQ(largest_instance_within(3).name, "Large");
  EXPECT_EQ(largest_instance_within(16).name, "4xLarge");
  EXPECT_EQ(largest_instance_within(1000).name, "16xLarge");
  EXPECT_THROW(largest_instance_within(1), InvariantViolation);
}

TEST(InstanceTypeTest, MemoryScalesWithCores) {
  for (const auto& type : instance_catalog()) {
    EXPECT_EQ(type.memory_gb, type.cores * 4);
  }
}

}  // namespace
}  // namespace pinsim::virt
