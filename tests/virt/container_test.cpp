#include "virt/container.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "virt/factory.hpp"

namespace pinsim::virt {
namespace {

std::unique_ptr<os::TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<os::LambdaDriver>([state, work](os::Task&) {
    if (*state) return os::Action::exit();
    *state = true;
    return os::Action::compute(work);
  });
}

class SliceRecorder : public os::SchedObserver {
 public:
  void on_slice(const os::Task& task, int cpu, SimDuration) override {
    if (task.name().rfind("vcpu", 0) != 0) cpus.insert(cpu);
  }
  std::set<int> cpus;
};

struct ContainerHarness {
  ContainerHarness(CpuMode mode, const std::string& instance,
                   std::uint64_t seed = 5)
      : spec{PlatformKind::Container, mode, instance_by_name(instance)},
        host(hw::Topology::dell_r830(), hw::CostModel{}, seed),
        platform(host, spec) {}
  PlatformSpec spec;
  Host host;
  ContainerPlatform platform;
};

TEST(ContainerTest, QuotaEnforcedOnBigHost) {
  // A Large (2-core) container on the 112-core host: 4 cpu-bound tasks of
  // 50 ms each can use at most 2 cpus' worth of time.
  ContainerHarness h(CpuMode::Vanilla, "Large");
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    WorkTaskConfig config;
    config.name = "w" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = h.platform.spawn(std::move(config),
                                      compute_once(msec(50)));
    h.platform.start(task);
  }
  h.host.engine().run_until([&] { return done == 4; }, sec(10));
  EXPECT_EQ(done, 4);
  // 200 ms of work at 2 cpus of quota: at least ~100 ms.
  EXPECT_GE(h.host.engine().now(), msec(95));
  EXPECT_GT(h.platform.cgroup().stats().usage, msec(195));
}

TEST(ContainerTest, PinnedContainerStaysInCpuset) {
  ContainerHarness h(CpuMode::Pinned, "xLarge");
  SliceRecorder recorder;
  h.host.kernel().add_observer(recorder);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    WorkTaskConfig config;
    config.name = "w" + std::to_string(i);
    config.on_exit = [&done](os::Task&) { ++done; };
    os::Task& task = h.platform.spawn(std::move(config),
                                      compute_once(msec(10)));
    h.platform.start(task);
  }
  h.host.engine().run_until([&] { return done == 8; }, sec(10));
  EXPECT_EQ(done, 8);
  EXPECT_FALSE(recorder.cpus.empty());
  for (int cpu : recorder.cpus) EXPECT_LT(cpu, 4);
}

TEST(ContainerTest, PinnedTasksAreSticky) {
  ContainerHarness h(CpuMode::Pinned, "Large");
  WorkTaskConfig config;
  os::Task& task = h.platform.spawn(std::move(config), compute_once(msec(1)));
  EXPECT_TRUE(task.sticky_wakeup);

  ContainerHarness v(CpuMode::Vanilla, "Large");
  WorkTaskConfig vconfig;
  os::Task& vtask = v.platform.spawn(std::move(vconfig),
                                     compute_once(msec(1)));
  EXPECT_FALSE(vtask.sticky_wakeup);
}

TEST(ContainerTest, VanillaContainerSpreadsButPinnedDoesNot) {
  auto spread_of = [](CpuMode mode) {
    ContainerHarness h(mode, "xLarge", 7);
    int done = 0;
    for (int i = 0; i < 16; ++i) {
      WorkTaskConfig config;
      config.name = "w" + std::to_string(i);
      config.on_exit = [&done](os::Task&) { ++done; };
      os::Task& task = h.platform.spawn(std::move(config),
                                        compute_once(msec(30)));
      h.platform.start(task);
    }
    h.host.engine().run_until([&] { return done == 16; }, sec(30));
    EXPECT_EQ(done, 16);
    return h.platform.cgroup().stats().max_spread;
  };
  EXPECT_GT(spread_of(CpuMode::Vanilla), 8);
  EXPECT_LE(spread_of(CpuMode::Pinned), 4);
}

}  // namespace
}  // namespace pinsim::virt
