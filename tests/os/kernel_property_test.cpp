// Parameterized property suites over the kernel: invariants that must
// hold for any topology, load level, and seed.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <tuple>

#include "hw/disk.hpp"
#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

struct Shape {
  int sockets;
  int cores;
  int smt;
};

class KernelPropertyTest
    : public ::testing::TestWithParam<std::tuple<Shape, int, int>> {};

/// Mixed workload: compute/sleep/io loops with varying intensity.
void spawn_mixed(Kernel& kernel, hw::IoDevice& disk, int tasks, Rng& rng) {
  for (int i = 0; i < tasks; ++i) {
    const int iterations = 5 + static_cast<int>(rng.uniform_int(0, 10));
    const SimDuration work = usec(200 + 100 * (i % 7));
    const int flavour = i % 3;
    auto n = std::make_shared<int>(0);
    auto phase = std::make_shared<int>(0);
    kernel.start_task(kernel.create_task(
        "t" + std::to_string(i),
        std::make_unique<LambdaDriver>(
            [&disk, n, phase, work, iterations, flavour](Task&) {
              if (*n >= iterations) return Action::exit();
              switch ((*phase)++ % 2) {
                case 0:
                  return Action::compute(work);
                default:
                  ++*n;
                  if (flavour == 0) return Action::sleep_for(usec(300));
                  if (flavour == 1) {
                    return Action::io(disk,
                                      hw::IoRequest{hw::IoKind::Read, 4.0});
                  }
                  return Action::compute(work / 2);
              }
            })));
  }
}

TEST_P(KernelPropertyTest, WorkConservationAndAccountingIdentities) {
  const auto& [shape, tasks, seed] = GetParam();
  sim::Engine engine;
  const hw::Topology topo(shape.sockets, shape.cores, shape.smt, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(static_cast<std::uint64_t>(seed)));
  hw::IoDevice disk = hw::IoDevice::raid1_hdd(engine, Rng(seed + 1));
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  spawn_mixed(kernel, disk, tasks, rng);

  ASSERT_TRUE(kernel.run_until_quiescent(sec(120)));

  SimDuration total_cpu = 0;
  for (const auto& task : kernel.tasks()) {
    const auto& s = task->stats;
    // Every started task finished.
    EXPECT_EQ(task->state, TaskState::Finished) << task->name();
    // Lifetime decomposition: a task is either on-cpu, waiting, or
    // blocked; the pieces cannot exceed its lifetime.
    const SimDuration lifetime = s.finished_at - s.started_at;
    EXPECT_GE(lifetime, 0);
    EXPECT_LE(s.cpu_time + s.wait_time + s.block_time,
              lifetime + msec(1))
        << task->name();
    // cpu_time = useful work + paid overhead (within rounding).
    EXPECT_NEAR(static_cast<double>(s.cpu_time),
                static_cast<double>(s.work_done + s.overhead_paid),
                1000.0)
        << task->name();
    total_cpu += s.cpu_time;
  }
  // Total cpu time cannot exceed cpus x makespan (no cpu oversubscription).
  const double capacity =
      to_seconds(engine.now()) * topo.num_cpus();
  EXPECT_LE(to_seconds(total_cpu), capacity * 1.0001);
}

TEST_P(KernelPropertyTest, AffinityNeverViolatedUnderChurn) {
  const auto& [shape, tasks, seed] = GetParam();
  sim::Engine engine;
  const hw::Topology topo(shape.sockets, shape.cores, shape.smt, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(static_cast<std::uint64_t>(seed)));
  hw::IoDevice disk = hw::IoDevice::raid1_hdd(engine, Rng(seed + 1));

  // Every task gets a random small affinity mask; record slice cpus.
  struct Recorder : SchedObserver {
    void on_slice(const Task& task, int cpu, SimDuration) override {
      EXPECT_TRUE(task.affinity.empty() || task.affinity.contains(cpu))
          << task.name() << " ran on " << cpu << " outside "
          << task.affinity.to_string();
    }
  } recorder;
  kernel.add_observer(recorder);

  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 3);
  for (int i = 0; i < tasks; ++i) {
    TaskConfig config;
    hw::CpuSet mask;
    const int width = 1 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < width; ++k) {
      mask.add(static_cast<int>(
          rng.uniform_int(0, topo.num_cpus() - 1)));
    }
    config.affinity = mask;
    auto n = std::make_shared<int>(0);
    auto phase = std::make_shared<bool>(false);
    Task& task = kernel.create_task(
        "a" + std::to_string(i),
        std::make_unique<LambdaDriver>([&disk, n, phase](Task&) {
          if (*n >= 8) return Action::exit();
          if (!*phase) {
            *phase = true;
            return Action::compute(usec(400));
          }
          *phase = false;
          ++*n;
          return Action::io(disk, hw::IoRequest{hw::IoKind::Read, 4.0});
        }),
        config);
    kernel.start_task(task);
  }
  ASSERT_TRUE(kernel.run_until_quiescent(sec(120)));
}

std::string kernel_property_name(
    const ::testing::TestParamInfo<KernelPropertyTest::ParamType>& info) {
  const Shape shape = std::get<0>(info.param);
  return "s" + std::to_string(shape.sockets) + "c" +
         std::to_string(shape.cores) + "t" + std::to_string(shape.smt) +
         "_n" + std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    TopologyLoadSeedSweep, KernelPropertyTest,
    ::testing::Combine(::testing::Values(Shape{1, 2, 1}, Shape{1, 4, 2},
                                         Shape{2, 4, 2}, Shape{4, 14, 2}),
                       ::testing::Values(3, 17, 60),
                       ::testing::Values(1, 99)),
    kernel_property_name);

class QuotaPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(QuotaPropertyTest, UsageRateNeverExceedsQuota) {
  const auto& [limit, tasks] = GetParam();
  sim::Engine engine;
  const hw::Topology topo(2, 8, 1, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(11));
  Cgroup& group = kernel.create_cgroup({"q", limit, {}});
  for (int i = 0; i < tasks; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    auto done = std::make_shared<bool>(false);
    Task& task = kernel.create_task(
        "w" + std::to_string(i),
        std::make_unique<LambdaDriver>([done](Task&) {
          if (*done) return Action::exit();
          *done = true;
          return Action::compute(msec(80));
        }),
        config);
    kernel.start_task(task);
  }
  ASSERT_TRUE(kernel.run_until_quiescent(sec(600)));
  const double seconds = to_seconds(engine.now());
  const double used = to_seconds(group.stats().usage);
  // Enforcement slack (as in real CFS bandwidth control): each cpu may
  // overrun by one accounting granule per period before it notices the
  // pool is dry.
  const double periods = seconds / to_seconds(costs.cfs_period) + 1.0;
  const double slack = topo.num_cpus() *
                           to_seconds(costs.cgroup_aggregate_interval) *
                           periods +
                       0.01;
  EXPECT_LE(used, limit * seconds + slack)
      << "limit " << limit << " cores, " << tasks << " tasks";
}

std::string quota_property_name(
    const ::testing::TestParamInfo<QuotaPropertyTest::ParamType>& info) {
  return "limit" +
         std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
         "_tasks" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    QuotaSweep, QuotaPropertyTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 6.0),
                       ::testing::Values(2, 8, 24)),
    quota_property_name);

}  // namespace
}  // namespace pinsim::os
