#include "os/runqueue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace pinsim::os {
namespace {

std::unique_ptr<Task> make_task(Task::Id id, SimDuration vruntime) {
  auto task = std::make_unique<Task>(
      id, "t" + std::to_string(id),
      std::make_unique<LambdaDriver>([](Task&) { return Action::exit(); }));
  task->vruntime = vruntime;
  return task;
}

TEST(RunqueueTest, OrdersByVruntime) {
  Runqueue rq;
  auto a = make_task(1, msec(5));
  auto b = make_task(2, msec(2));
  auto c = make_task(3, msec(8));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  EXPECT_EQ(rq.size(), 3);
  EXPECT_EQ(rq.peek_min(), b.get());
  EXPECT_EQ(rq.peek_max(), c.get());
  EXPECT_EQ(&rq.pop_min(), b.get());
  EXPECT_EQ(&rq.pop_min(), a.get());
  EXPECT_EQ(&rq.pop_min(), c.get());
  EXPECT_TRUE(rq.empty());
}

TEST(RunqueueTest, TieBrokenById) {
  Runqueue rq;
  auto a = make_task(7, msec(1));
  auto b = make_task(3, msec(1));
  rq.enqueue(*a);
  rq.enqueue(*b);
  EXPECT_EQ(rq.peek_min(), b.get());
}

TEST(RunqueueTest, RemoveMiddle) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  auto b = make_task(2, msec(2));
  auto c = make_task(3, msec(3));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  rq.remove(*b);
  EXPECT_EQ(rq.size(), 2);
  EXPECT_FALSE(rq.contains(*b));
  EXPECT_TRUE(rq.contains(*a));
}

TEST(RunqueueTest, DoubleEnqueueRejected) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  rq.enqueue(*a);
  EXPECT_THROW(rq.enqueue(*a), InvariantViolation);
}

TEST(RunqueueTest, RemoveAbsentRejected) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  EXPECT_THROW(rq.remove(*a), InvariantViolation);
}

TEST(RunqueueTest, MinVruntimeAdvancesMonotonically) {
  Runqueue rq;
  auto a = make_task(1, msec(10));
  rq.enqueue(*a);
  rq.pop_min();
  EXPECT_EQ(rq.min_vruntime(), msec(10));
  auto b = make_task(2, msec(4));
  rq.enqueue(*b);
  rq.pop_min();
  // min_vruntime must never go backwards.
  EXPECT_EQ(rq.min_vruntime(), msec(10));
}

TEST(RunqueueTest, PopEmptyRejected) {
  Runqueue rq;
  EXPECT_THROW(rq.pop_min(), InvariantViolation);
  EXPECT_EQ(rq.peek_min(), nullptr);
  EXPECT_EQ(rq.peek_max(), nullptr);
}

TEST(RunqueueTest, ForEachVisitsEveryQueuedTaskOnce) {
  // for_each is heap-order (unordered); it must still visit each task
  // exactly once.
  Runqueue rq;
  auto a = make_task(1, msec(3));
  auto b = make_task(2, msec(1));
  auto c = make_task(3, msec(2));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  std::vector<Task*> visited;
  rq.for_each([&](Task& t) { visited.push_back(&t); });
  std::sort(visited.begin(), visited.end());
  std::vector<Task*> expected{a.get(), b.get(), c.get()};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(visited, expected);
}

TEST(RunqueueTest, MaxWherePicksLargestEligibleKey) {
  Runqueue rq;
  auto a = make_task(1, msec(3));
  auto b = make_task(2, msec(9));
  auto c = make_task(3, msec(5));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  EXPECT_EQ(rq.max_where([](const Task&) { return true; }), b.get());
  EXPECT_EQ(rq.max_where([&](const Task& t) { return &t != b.get(); }),
            c.get());
  EXPECT_EQ(rq.max_where([](const Task&) { return false; }), nullptr);
}

TEST(RunqueueTest, MaxWhereBreaksVruntimeTiesById) {
  Runqueue rq;
  auto a = make_task(9, msec(4));
  auto b = make_task(2, msec(4));
  rq.enqueue(*a);
  rq.enqueue(*b);
  // Equal vruntime: the larger id is the larger (vruntime, id) key.
  EXPECT_EQ(rq.max_where([](const Task&) { return true; }), a.get());
}

// Randomized differential test: the indexed flat heap must agree with a
// std::set<(vruntime, id)> reference model (the historical
// implementation) under arbitrary interleavings of enqueue, middle
// removal, and pop_min — including equal-vruntime ties.
TEST(RunqueuePropertyTest, MatchesSetModelUnderRandomOps) {
  for (const std::uint64_t seed : {1ull, 42ull, 987654ull}) {
    Rng rng(seed);
    Runqueue rq;
    using Key = std::pair<SimDuration, Task::Id>;
    std::set<Key> model;
    std::vector<std::unique_ptr<Task>> tasks;
    for (Task::Id id = 0; id < 48; ++id) {
      // Few distinct vruntime values so ties are common.
      tasks.push_back(make_task(id, msec(rng.uniform_int(0, 7))));
    }
    std::vector<Task*> queued;
    std::vector<Task*> idle;
    for (auto& t : tasks) idle.push_back(t.get());

    auto pick = [&](std::vector<Task*>& from) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(from.size()) - 1));
      Task* task = from[i];
      from[i] = from.back();
      from.pop_back();
      return task;
    };
    for (int step = 0; step < 4000; ++step) {
      const std::int64_t op = rng.uniform_int(0, 2);
      if (op == 0 && !idle.empty()) {
        Task* task = pick(idle);
        task->vruntime = msec(rng.uniform_int(0, 7));
        rq.enqueue(*task);
        model.insert({task->vruntime, task->id()});
        queued.push_back(task);
      } else if (op == 1 && !queued.empty()) {
        Task* task = pick(queued);
        rq.remove(*task);
        model.erase({task->vruntime, task->id()});
        idle.push_back(task);
      } else if (op == 2 && !queued.empty()) {
        Task& popped = rq.pop_min();
        const Key expected = *model.begin();
        ASSERT_EQ(popped.vruntime, expected.first);
        ASSERT_EQ(popped.id(), expected.second);
        model.erase(model.begin());
        queued.erase(std::find(queued.begin(), queued.end(), &popped));
        idle.push_back(&popped);
      }
      ASSERT_EQ(rq.size(), static_cast<int>(model.size()));
      if (!model.empty()) {
        ASSERT_EQ(rq.peek_min()->id(), model.begin()->second);
        ASSERT_EQ(rq.peek_max()->id(), model.rbegin()->second);
      }
      for (Task* task : queued) ASSERT_TRUE(rq.contains(*task));
      for (Task* task : idle) ASSERT_FALSE(rq.contains(*task));
    }
    // Drain: the full pop order must match the model's sorted order.
    while (!model.empty()) {
      Task& popped = rq.pop_min();
      ASSERT_EQ((Key{popped.vruntime, popped.id()}), *model.begin());
      model.erase(model.begin());
    }
    EXPECT_TRUE(rq.empty());
  }
}

}  // namespace
}  // namespace pinsim::os
