#include "os/runqueue.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"

namespace pinsim::os {
namespace {

std::unique_ptr<Task> make_task(Task::Id id, SimDuration vruntime) {
  auto task = std::make_unique<Task>(
      id, "t" + std::to_string(id),
      std::make_unique<LambdaDriver>([](Task&) { return Action::exit(); }));
  task->vruntime = vruntime;
  return task;
}

TEST(RunqueueTest, OrdersByVruntime) {
  Runqueue rq;
  auto a = make_task(1, msec(5));
  auto b = make_task(2, msec(2));
  auto c = make_task(3, msec(8));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  EXPECT_EQ(rq.size(), 3);
  EXPECT_EQ(rq.peek_min(), b.get());
  EXPECT_EQ(rq.peek_max(), c.get());
  EXPECT_EQ(&rq.pop_min(), b.get());
  EXPECT_EQ(&rq.pop_min(), a.get());
  EXPECT_EQ(&rq.pop_min(), c.get());
  EXPECT_TRUE(rq.empty());
}

TEST(RunqueueTest, TieBrokenById) {
  Runqueue rq;
  auto a = make_task(7, msec(1));
  auto b = make_task(3, msec(1));
  rq.enqueue(*a);
  rq.enqueue(*b);
  EXPECT_EQ(rq.peek_min(), b.get());
}

TEST(RunqueueTest, RemoveMiddle) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  auto b = make_task(2, msec(2));
  auto c = make_task(3, msec(3));
  rq.enqueue(*a);
  rq.enqueue(*b);
  rq.enqueue(*c);
  rq.remove(*b);
  EXPECT_EQ(rq.size(), 2);
  EXPECT_FALSE(rq.contains(*b));
  EXPECT_TRUE(rq.contains(*a));
}

TEST(RunqueueTest, DoubleEnqueueRejected) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  rq.enqueue(*a);
  EXPECT_THROW(rq.enqueue(*a), InvariantViolation);
}

TEST(RunqueueTest, RemoveAbsentRejected) {
  Runqueue rq;
  auto a = make_task(1, msec(1));
  EXPECT_THROW(rq.remove(*a), InvariantViolation);
}

TEST(RunqueueTest, MinVruntimeAdvancesMonotonically) {
  Runqueue rq;
  auto a = make_task(1, msec(10));
  rq.enqueue(*a);
  rq.pop_min();
  EXPECT_EQ(rq.min_vruntime(), msec(10));
  auto b = make_task(2, msec(4));
  rq.enqueue(*b);
  rq.pop_min();
  // min_vruntime must never go backwards.
  EXPECT_EQ(rq.min_vruntime(), msec(10));
}

TEST(RunqueueTest, PopEmptyRejected) {
  Runqueue rq;
  EXPECT_THROW(rq.pop_min(), InvariantViolation);
  EXPECT_EQ(rq.peek_min(), nullptr);
  EXPECT_EQ(rq.peek_max(), nullptr);
}

TEST(RunqueueTest, ForEachVisitsAscending) {
  Runqueue rq;
  auto a = make_task(1, msec(3));
  auto b = make_task(2, msec(1));
  rq.enqueue(*a);
  rq.enqueue(*b);
  std::vector<Task*> order;
  rq.for_each([&](Task& t) { order.push_back(&t); });
  EXPECT_EQ(order, (std::vector<Task*>{b.get(), a.get()}));
}

}  // namespace
}  // namespace pinsim::os
