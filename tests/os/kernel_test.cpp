// Core scheduler behaviour: fairness, work conservation, action protocol.
#include "os/kernel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

/// Driver: compute `work` once, then exit.
std::unique_ptr<TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>([state, work](Task&) {
    if (*state) return Action::exit();
    *state = true;
    return Action::compute(work);
  });
}

struct Harness {
  explicit Harness(const hw::Topology& topo, std::uint64_t seed = 1)
      : topology(topo), kernel(engine, topology, costs, Rng(seed)) {}

  sim::Engine engine;
  hw::Topology topology;
  hw::CostModel costs;
  Kernel kernel;
};

TEST(KernelTest, SingleComputeTaskRunsToCompletion) {
  Harness h(hw::Topology(1, 4, 1, 16.0));
  Task& task = h.kernel.create_task("worker", compute_once(msec(10)));
  h.kernel.start_task(task);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(task.state, TaskState::Finished);
  EXPECT_EQ(task.stats.work_done, msec(10));
  // Total time = work + small scheduling overheads.
  EXPECT_GE(h.engine.now(), msec(10));
  EXPECT_LT(h.engine.now(), msec(11));
  EXPECT_GE(task.stats.cpu_time, msec(10));
}

TEST(KernelTest, TwoTasksShareOneCpuFairly) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Task& a = h.kernel.create_task("a", compute_once(msec(100)));
  Task& b = h.kernel.create_task("b", compute_once(msec(100)));
  h.kernel.start_task(a);
  h.kernel.start_task(b);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // Serialized on one cpu: ~200 ms total.
  EXPECT_GE(h.engine.now(), msec(200));
  EXPECT_LT(h.engine.now(), msec(205));
  // Both finish near the end (interleaved), not one after the other.
  EXPECT_GT(a.stats.finished_at, msec(150));
  EXPECT_GT(b.stats.finished_at, msec(150));
  // Fairness: similar vruntime at completion.
  EXPECT_NEAR(static_cast<double>(a.vruntime),
              static_cast<double>(b.vruntime),
              static_cast<double>(msec(25)));
}

TEST(KernelTest, WorkConservationAcrossCpus) {
  Harness h(hw::Topology(1, 2, 1, 16.0));
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    Task& t = h.kernel.create_task("t" + std::to_string(i),
                                   compute_once(msec(50)));
    tasks.push_back(&t);
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // 200 ms of work over 2 cpus: ~100 ms makespan if work-conserving.
  EXPECT_GE(h.engine.now(), msec(100));
  EXPECT_LT(h.engine.now(), msec(110));
}

TEST(KernelTest, ParallelTasksUseAllCpus) {
  Harness h(hw::Topology(1, 4, 1, 16.0));
  for (int i = 0; i < 4; ++i) {
    Task& t = h.kernel.create_task("t" + std::to_string(i),
                                   compute_once(msec(50)));
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_LT(h.engine.now(), msec(55));
}

TEST(KernelTest, ComputeInflationStretchesCpuTimeNotWork) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  TaskConfig config;
  config.compute_inflation = 2.0;
  Task& t = h.kernel.create_task("guest-ish", compute_once(msec(10)), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(t.stats.work_done, msec(10));
  EXPECT_GE(t.stats.cpu_time, msec(20));
  EXPECT_LT(t.stats.cpu_time, msec(21));
}

TEST(KernelTest, SleepBlocksForRequestedDuration) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  auto stage = std::make_shared<int>(0);
  Task& t = h.kernel.create_task(
      "sleeper", std::make_unique<LambdaDriver>([stage](Task&) {
        switch ((*stage)++) {
          case 0:
            return Action::compute(msec(1));
          case 1:
            return Action::sleep_for(msec(20));
          default:
            return Action::exit();
        }
      }));
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_GE(t.stats.block_time, msec(20));
  EXPECT_LT(t.stats.block_time, msec(21));
  EXPECT_GE(h.engine.now(), msec(21));
}

TEST(KernelTest, PostAndRecvPingPong) {
  Harness h(hw::Topology(1, 2, 1, 16.0));
  // a posts to b, b replies, N rounds.
  constexpr int kRounds = 10;
  Task* a_ptr = nullptr;
  Task* b_ptr = nullptr;
  auto a_round = std::make_shared<int>(0);
  auto b_round = std::make_shared<int>(0);
  auto a_sent = std::make_shared<bool>(false);
  auto b_sent = std::make_shared<bool>(false);

  Task& a = h.kernel.create_task(
      "a", std::make_unique<LambdaDriver>([&b_ptr, a_round, a_sent](Task&) {
        if (*a_round >= kRounds) return Action::exit();
        if (!*a_sent) {
          *a_sent = true;
          return Action::post(*b_ptr);
        }
        *a_sent = false;
        ++*a_round;
        return Action::recv();
      }));
  Task& b = h.kernel.create_task(
      "b", std::make_unique<LambdaDriver>([&a_ptr, b_round, b_sent](Task&) {
        if (*b_round >= kRounds) return Action::exit();
        if (!*b_sent) {
          *b_sent = true;
          return Action::recv();
        }
        *b_sent = false;
        ++*b_round;
        return Action::post(*a_ptr);
      }));
  a_ptr = &a;
  b_ptr = &b;
  h.kernel.start_task(a);
  h.kernel.start_task(b);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(a.stats.messages_sent, kRounds);
  EXPECT_EQ(b.stats.messages_sent, kRounds);
  EXPECT_EQ(a.state, TaskState::Finished);
  EXPECT_EQ(b.state, TaskState::Finished);
}

TEST(KernelTest, ExternalPostWakesReceiver) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  auto stage = std::make_shared<int>(0);
  Task& t = h.kernel.create_task(
      "server", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv() : Action::exit();
      }));
  h.kernel.start_task(t);
  h.engine.schedule(msec(5), [&] { h.kernel.post_external(t); });
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(t.state, TaskState::Finished);
  EXPECT_GE(t.stats.block_time, msec(4));
}

TEST(KernelTest, OnExitCallbackInvoked) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  SimTime finished = -1;
  TaskConfig config;
  config.on_exit = [&](Task&) { finished = h.engine.now(); };
  Task& t = h.kernel.create_task("cb", compute_once(msec(3)), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_GE(finished, msec(3));
}

TEST(KernelTest, HorizonReturnsFalseWhenUnfinished) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Task& t = h.kernel.create_task("long", compute_once(sec(10)));
  h.kernel.start_task(t);
  EXPECT_FALSE(h.kernel.run_until_quiescent(msec(100)));
  EXPECT_EQ(t.state, TaskState::Running);
}

TEST(KernelTest, DeterministicUnderSameSeed) {
  // Wake-heavy contended workload so that placement randomness matters.
  auto run_once = [](std::uint64_t seed) {
    Harness h(hw::Topology(2, 2, 1, 16.0), seed);
    std::vector<SimTime> finishes;
    for (int i = 0; i < 12; ++i) {
      auto n = std::make_shared<int>(0);
      auto sleeping = std::make_shared<bool>(false);
      auto driver = std::make_unique<LambdaDriver>([n, sleeping](Task&) {
        if (*n >= 15) return Action::exit();
        if (!*sleeping) {
          *sleeping = true;
          return Action::compute(msec(2));
        }
        *sleeping = false;
        ++*n;
        return Action::sleep_for(msec(1));
      });
      TaskConfig config;
      config.on_exit = [&finishes, &h](Task&) {
        finishes.push_back(h.engine.now());
      };
      Task& t = h.kernel.create_task("t" + std::to_string(i),
                                     std::move(driver), config);
      h.kernel.start_task(t);
    }
    h.kernel.run_until_quiescent();
    return finishes;
  };
  EXPECT_EQ(run_once(99), run_once(99));
}

TEST(KernelTest, DifferentSeedsDivergeWithStochasticService) {
  // Device service times are drawn from the kernel's seeded stream, so
  // distinct seeds must produce distinct schedules.
  auto run_once = [](std::uint64_t seed) {
    Harness h(hw::Topology(1, 2, 1, 16.0), seed);
    hw::IoDevice disk = hw::IoDevice::raid1_hdd(h.engine, Rng(seed * 7 + 1));
    auto n = std::make_shared<int>(0);
    auto io_next = std::make_shared<bool>(false);
    Task& t = h.kernel.create_task(
        "io", std::make_unique<LambdaDriver>([&disk, n, io_next](Task&) {
          if (*n >= 10) return Action::exit();
          if (!*io_next) {
            *io_next = true;
            return Action::compute(msec(1));
          }
          *io_next = false;
          ++*n;
          return Action::io(disk, hw::IoRequest{hw::IoKind::Read, 4.0});
        }));
    h.kernel.start_task(t);
    h.kernel.run_until_quiescent();
    return h.engine.now();
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(KernelTest, StatsCountContextSwitches) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  for (int i = 0; i < 3; ++i) {
    Task& t = h.kernel.create_task("t" + std::to_string(i),
                                   compute_once(msec(30)));
    h.kernel.start_task(t);
  }
  h.kernel.run_until_quiescent();
  // 90 ms of compute at 1+ switch per slice: several switches.
  EXPECT_GT(h.kernel.stats().context_switches, 5);
  EXPECT_EQ(h.kernel.live_tasks(), 0);
}

TEST(KernelTest, ZeroWorkTaskExitsCleanly) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Task& t = h.kernel.create_task(
      "noop",
      std::make_unique<LambdaDriver>([](Task&) { return Action::exit(); }));
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(t.state, TaskState::Finished);
}

TEST(KernelTest, RunawayDriverDetected) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Task& t = h.kernel.create_task(
      "spinner", std::make_unique<LambdaDriver>(
                     [](Task&) { return Action::compute(0); }));
  h.kernel.start_task(t);
  EXPECT_THROW(h.kernel.run_until_quiescent(), InvariantViolation);
}

}  // namespace
}  // namespace pinsim::os
