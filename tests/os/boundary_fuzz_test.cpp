// Quiet-core fast-forward oracle.
//
// The fast-forward path (SchedParams::quiet_fast_forward) elides
// quantum-boundary timers on cores whose single runnable task cannot be
// preempted before its next real event, replaying the skipped
// bookkeeping on revocation. The claim is that this is invisible: the
// simulation behaves bit-identically with the optimization on or off.
// This suite fuzzes that claim — randomized mixes of long computes
// (which open quiet windows), sleeps and IO (whose wakeups revoke them
// mid-window), weights, affinity, NUMA homes and quota cgroups (which
// must be rejected by the quiet predicate) — and requires the two paths
// to produce identical observer event histories and task accounting.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"
#include "virt/factory.hpp"
#include "virt/vm.hpp"

namespace pinsim::os {
namespace {

/// Records every scheduler callback as one formatted line; two runs are
/// equivalent iff their traces match line for line.
struct TraceRecorder : SchedObserver {
  std::vector<std::string> lines;
  sim::Engine* engine = nullptr;

  void emit(const std::ostringstream& out) { lines.push_back(out.str()); }
  void on_slice(const Task& task, int cpu, SimDuration duration) override {
    std::ostringstream out;
    out << engine->now() << " slice " << task.name() << " cpu=" << cpu
        << " dur=" << duration;
    emit(out);
  }
  void off_cpu(const Task& task, SimDuration duration) override {
    std::ostringstream out;
    out << engine->now() << " wake " << task.name() << " blocked=" << duration;
    emit(out);
  }
  void on_migration(const Task& task, int from, int to,
                    SimDuration penalty) override {
    std::ostringstream out;
    out << engine->now() << " migrate " << task.name() << " " << from << "->"
        << to << " penalty=" << penalty;
    emit(out);
  }
  void on_context_switch(int cpu) override {
    std::ostringstream out;
    out << engine->now() << " switch cpu=" << cpu;
    emit(out);
  }
  void on_irq(int cpu) override {
    std::ostringstream out;
    out << engine->now() << " irq cpu=" << cpu;
    emit(out);
  }
  void on_throttle(const Cgroup& group) override {
    std::ostringstream out;
    out << engine->now() << " throttle " << group.name();
    emit(out);
  }
  void on_aggregation(const Cgroup& group, int spread,
                      SimDuration cost) override {
    std::ostringstream out;
    out << engine->now() << " aggregate " << group.name()
        << " spread=" << spread << " cost=" << cost;
    emit(out);
  }
};

/// Compute/sleep/io loop with per-task randomized phase lengths. Long
/// computes on a lightly loaded core are exactly what opens quiet
/// windows; the sleep and IO returns land mid-window and revoke them.
std::unique_ptr<TaskDriver> fuzz_loop(hw::IoDevice& disk, Rng& rng) {
  const int iterations = 3 + static_cast<int>(rng.uniform_int(0, 5));
  const SimDuration work =
      usec(500) + usec(1000) * rng.uniform_int(0, 60);  // up to ~60ms
  const SimDuration nap = usec(100) * (1 + rng.uniform_int(0, 40));
  const int flavour = static_cast<int>(rng.uniform_int(0, 2));
  auto n = std::make_shared<int>(0);
  auto phase = std::make_shared<int>(0);
  return std::make_unique<LambdaDriver>(
      [&disk, n, phase, work, nap, iterations, flavour](Task&) {
        if (*n >= iterations) return Action::exit();
        if ((*phase)++ % 2 == 0) return Action::compute(work);
        ++*n;
        switch (flavour) {
          case 0:
            return Action::sleep_for(nap);
          case 1:
            return Action::io(disk, hw::IoRequest{hw::IoKind::Read, 4.0});
          default:
            return Action::compute(work / 3);
        }
      });
}

struct RunResult {
  std::vector<std::string> trace;
  std::vector<std::string> accounting;
  SimTime makespan = 0;
  std::int64_t quiet_windows = 0;
  std::int64_t boundaries_skipped = 0;
};

/// One full randomized run; everything random is derived from `seed`
/// only, so two calls with the same seed differ solely in the
/// quiet_fast_forward flag.
RunResult run_once(std::uint64_t seed, bool quiet_fast_forward) {
  sim::Engine engine;
  const hw::Topology topo(2, 4, 1, 16.0);
  hw::CostModel costs;
  SchedParams params;
  params.quiet_fast_forward = quiet_fast_forward;
  Kernel kernel(engine, topo, costs, Rng(seed), params);
  hw::IoDevice disk = hw::IoDevice::raid1_hdd(engine, Rng(seed + 1));
  TraceRecorder recorder;
  recorder.engine = &engine;
  kernel.add_observer(recorder);

  Rng rng(seed * 2654435761u + 17);
  Cgroup& group = kernel.create_cgroup({"fz", 1.5, {}});
  const int tasks = 6 + static_cast<int>(rng.uniform_int(0, 8));
  for (int i = 0; i < tasks; ++i) {
    TaskConfig config;
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 2) {
      config.cgroup = &group;  // must never be admitted to a window
    } else if (kind < 4) {
      config.weight = 2.0;  // rejected by the weight==1 guard
    } else if (kind < 6) {
      config.affinity = hw::CpuSet::of(
          {static_cast<int>(rng.uniform_int(0, topo.num_cpus() - 1))});
    } else if (kind < 8) {
      config.numa_home = std::make_shared<int>(
          static_cast<int>(rng.uniform_int(0, topo.sockets() - 1)));
    }
    // Built with += rather than operator+ to dodge a GCC 12 -Wrestrict
    // false positive (PR 105329) at -O2.
    std::string name = "f";
    name += std::to_string(i);
    kernel.start_task(
        kernel.create_task(std::move(name), fuzz_loop(disk, rng), config));
  }
  EXPECT_TRUE(kernel.run_until_quiescent(sec(600)));

  RunResult result;
  result.trace = std::move(recorder.lines);
  result.makespan = engine.now();
  result.quiet_windows = engine.stats().quiet_windows;
  result.boundaries_skipped = engine.stats().boundaries_skipped;
  for (const auto& task : kernel.tasks()) {
    const auto& s = task->stats;
    std::ostringstream out;
    out << task->name() << " cpu=" << s.cpu_time << " wait=" << s.wait_time
        << " block=" << s.block_time << " wakeups=" << s.wakeups
        << " done=" << s.finished_at;
    result.accounting.push_back(out.str());
  }
  const KernelStats& ks = kernel.stats();
  std::ostringstream out;
  out << "switches=" << ks.context_switches << " migrations=" << ks.migrations
      << " wakeups=" << ks.wakeups << " preempt=" << ks.preemptions
      << " steals=" << ks.steals << " balance=" << ks.balance_moves
      << " throttle=" << ks.throttle_events;
  result.accounting.push_back(out.str());
  return result;
}

void expect_same(const RunResult& on, const RunResult& off,
                 std::uint64_t seed) {
  EXPECT_EQ(on.makespan, off.makespan) << "seed " << seed;
  ASSERT_EQ(on.trace.size(), off.trace.size()) << "seed " << seed;
  for (std::size_t i = 0; i < on.trace.size(); ++i) {
    ASSERT_EQ(on.trace[i], off.trace[i]) << "seed " << seed << " event " << i;
  }
  ASSERT_EQ(on.accounting, off.accounting) << "seed " << seed;
}

class BoundaryFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundaryFuzzTest, FastForwardMatchesSkipFreePath) {
  const std::uint64_t seed = GetParam();
  const RunResult on = run_once(seed, true);
  const RunResult off = run_once(seed, false);
  expect_same(on, off, seed);
  // The oracle must actually exercise the optimization: every seed's
  // mix includes multi-slice computes, so windows open and the wakeups
  // revoke at least some of them.
  EXPECT_GT(on.quiet_windows, 0) << "seed " << seed;
  EXPECT_GT(on.boundaries_skipped, 0) << "seed " << seed;
  EXPECT_EQ(off.quiet_windows, 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, BoundaryFuzzTest,
                         ::testing::Values(1u, 7u, 23u, 99u, 424u, 1013u,
                                           5150u, 90210u));

// --- guest layer -------------------------------------------------------------
//
// The guest kernel fast-forwards its single housekeeping timer with the
// same flag; the oracle here compares guest+host task accounting across
// a randomized VM workload (the guest has no observer interface, but
// any divergence in tick replay shifts charge timing and shows up in
// the per-task numbers and the makespan).

struct GuestRun {
  std::vector<std::string> accounting;
  SimTime makespan = 0;
};

GuestRun guest_run_once(std::uint64_t seed, bool quiet_fast_forward) {
  virt::PlatformSpec spec{virt::PlatformKind::Vm, virt::CpuMode::Pinned,
                          virt::instance_by_name("Large")};
  virt::Host host(hw::Topology(2, 4, 1, 16.0), hw::CostModel{}, seed);
  virt::VmConfig vm_config;
  vm_config.guest_params.quiet_fast_forward = quiet_fast_forward;
  virt::VmPlatform platform(host, spec, vm_config);

  Rng rng(seed * 40503u + 5);
  int done = 0;
  const int tasks = 3 + static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < tasks; ++i) {
    virt::WorkTaskConfig config;
    config.name = "g";  // += dodges the GCC 12 -Wrestrict false positive
    config.name += std::to_string(i);
    config.on_exit = [&done](Task&) { ++done; };
    Task& task =
        platform.spawn(std::move(config), fuzz_loop(host.disk(), rng));
    platform.start(task);
  }
  host.engine().run_until([&] { return done == tasks; }, sec(600));
  EXPECT_EQ(done, tasks);

  GuestRun result;
  result.makespan = host.engine().now();
  auto record = [&result](const Task& task) {
    const auto& s = task.stats;
    std::ostringstream out;
    out << task.name() << " cpu=" << s.cpu_time << " wait=" << s.wait_time
        << " block=" << s.block_time << " wakeups=" << s.wakeups
        << " done=" << s.finished_at;
    result.accounting.push_back(out.str());
  };
  for (const auto& task : platform.guest().tasks()) record(*task);
  for (const auto& task : host.kernel().tasks()) record(*task);
  return result;
}

class GuestBoundaryFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuestBoundaryFuzzTest, GuestFastForwardMatchesSkipFreePath) {
  const std::uint64_t seed = GetParam();
  const GuestRun on = guest_run_once(seed, true);
  const GuestRun off = guest_run_once(seed, false);
  EXPECT_EQ(on.makespan, off.makespan) << "seed " << seed;
  ASSERT_EQ(on.accounting, off.accounting) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, GuestBoundaryFuzzTest,
                         ::testing::Values(2u, 11u, 77u, 303u));

}  // namespace
}  // namespace pinsim::os
