#include "os/cgroup.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/check.hpp"

namespace pinsim::os {
namespace {

hw::CostModel default_costs() { return hw::CostModel{}; }

TEST(CgroupTest, UnlimitedGroupNeverThrottles) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"free", 0.0, {}}, costs);
  EXPECT_FALSE(group.has_quota());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(group.charge(0, sec(1)), 0);
  }
  EXPECT_FALSE(group.throttled());
  EXPECT_EQ(group.stats().usage, sec(100));
}

TEST(CgroupTest, QuotaExhaustionThrottles) {
  const auto costs = default_costs();
  // 2 cpus x 100 ms period = 200 ms of runtime.
  Cgroup group(Cgroup::Config{"cn", 2.0, {}}, costs);
  EXPECT_TRUE(group.has_quota());
  group.charge(0, msec(150));
  EXPECT_FALSE(group.throttled());
  group.charge(1, msec(60));
  EXPECT_TRUE(group.throttled());
  EXPECT_EQ(group.stats().throttles, 1);
}

TEST(CgroupTest, RefillReleasesThrottle) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 1.0, {}}, costs);
  group.charge(0, msec(150));
  EXPECT_TRUE(group.throttled());
  EXPECT_TRUE(group.refill_period());
  EXPECT_FALSE(group.throttled());
  // Second refill without throttle returns false.
  EXPECT_FALSE(group.refill_period());
  EXPECT_GT(group.runtime_left(), 0);
}

TEST(CgroupTest, SliceRefillsCostAccounting) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 2.0, {}}, costs);
  // Charging 10 ms on one cpu needs ceil(10/5) = 2 slice transfers.
  const SimDuration overhead = group.charge(0, msec(10));
  EXPECT_EQ(group.stats().slice_refills, 2);
  EXPECT_EQ(overhead, 2 * costs.cgroup_account);
}

TEST(CgroupTest, LocalSliceAvoidsRepeatRefills) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 2.0, {}}, costs);
  group.charge(0, msec(1));
  const auto refills_before = group.stats().slice_refills;
  // Plenty of local runtime cached on cpu 0 now.
  EXPECT_EQ(group.charge(0, msec(1)), 0);
  EXPECT_EQ(group.stats().slice_refills, refills_before);
  // A different cpu needs its own slice.
  EXPECT_GT(group.charge(5, msec(1)), 0);
}

TEST(CgroupTest, SpreadTracksDistinctCpus) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 0.0, {}}, costs);
  group.charge(0, usec(10));
  group.charge(0, usec(10));
  group.charge(5, usec(10));
  group.charge(111, usec(10));
  EXPECT_EQ(group.current_spread(), 3);
}

TEST(CgroupTest, AggregationCostGrowsWithSpread) {
  const auto costs = default_costs();
  Cgroup narrow(Cgroup::Config{"pinned", 0.0, {}}, costs);
  Cgroup wide(Cgroup::Config{"vanilla", 0.0, {}}, costs);
  for (int cpu = 0; cpu < 2; ++cpu) narrow.charge(cpu, usec(10));
  for (int cpu = 0; cpu < 112; ++cpu) wide.charge(cpu, usec(10));
  const SimDuration narrow_cost = narrow.aggregate();
  const SimDuration wide_cost = wide.aggregate();
  EXPECT_GT(wide_cost, narrow_cost);
  EXPECT_EQ(wide_cost - narrow_cost,
            110 * costs.cgroup_aggregate_per_core);
}

TEST(CgroupTest, AggregationResetsSpreadWindow) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 0.0, {}}, costs);
  group.charge(3, usec(10));
  EXPECT_GT(group.aggregate(), 0);
  EXPECT_EQ(group.current_spread(), 0);
  // Idle group: aggregation is free.
  EXPECT_EQ(group.aggregate(), 0);
}

TEST(CgroupTest, MembershipMaintained) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 0.0, {}}, costs);
  Task task(0, "t",
            std::make_unique<LambdaDriver>([](Task&) { return Action::exit(); }));
  group.add_member(task);
  EXPECT_EQ(task.cgroup, &group);
  EXPECT_EQ(group.members().size(), 1u);
  group.remove_member(task);
  EXPECT_EQ(task.cgroup, nullptr);
  EXPECT_TRUE(group.members().empty());
}

TEST(CgroupTest, ThrottleOverrunBoundedByOneCharge) {
  const auto costs = default_costs();
  Cgroup group(Cgroup::Config{"cn", 1.0, {}}, costs);
  // One giant charge: pool is 100 ms, charge 500 ms. The group must be
  // throttled afterwards and usage recorded.
  group.charge(0, msec(500));
  EXPECT_TRUE(group.throttled());
  EXPECT_EQ(group.stats().usage, msec(500));
  EXPECT_EQ(group.runtime_left(), 0);
}

}  // namespace
}  // namespace pinsim::os
