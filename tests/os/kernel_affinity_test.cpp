// Placement, affinity, pinning, migration, and balancing behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

/// Observer recording which cpus every slice ran on, per task id.
class SliceRecorder : public SchedObserver {
 public:
  void on_slice(const Task& task, int cpu, SimDuration) override {
    cpus_used.insert(cpu);
    per_task[task.id()].insert(cpu);
  }
  std::set<int> cpus_used;
  std::map<Task::Id, std::set<int>> per_task;
};

std::unique_ptr<TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>([state, work](Task&) {
    if (*state) return Action::exit();
    *state = true;
    return Action::compute(work);
  });
}

/// Driver alternating compute and sleep `iterations` times — forces many
/// wakeup placements.
std::unique_ptr<TaskDriver> compute_sleep_loop(SimDuration work,
                                               SimDuration sleep,
                                               int iterations) {
  auto n = std::make_shared<int>(0);
  auto sleeping = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>(
      [n, sleeping, work, sleep, iterations](Task&) {
        if (*n >= iterations) return Action::exit();
        if (!*sleeping) {
          *sleeping = true;
          return Action::compute(work);
        }
        *sleeping = false;
        ++*n;
        return Action::sleep_for(sleep);
      });
}

TEST(KernelAffinityTest, AffinityNeverViolated) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(7));
  SliceRecorder recorder;
  kernel.add_observer(recorder);

  TaskConfig config;
  config.affinity = hw::CpuSet::of({3, 7, 11});
  for (int i = 0; i < 6; ++i) {
    Task& t = kernel.create_task(
        "pinned" + std::to_string(i),
        compute_sleep_loop(msec(2), msec(1), 20), config);
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  for (int cpu : recorder.cpus_used) {
    EXPECT_TRUE(config.affinity.contains(cpu))
        << "ran on cpu " << cpu << " outside affinity";
  }
}

TEST(KernelAffinityTest, CgroupCpusetNeverViolated) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(8));
  SliceRecorder recorder;
  kernel.add_observer(recorder);

  Cgroup& group =
      kernel.create_cgroup({"pinned-cn", 4.0, hw::CpuSet::first_n(4)});
  for (int i = 0; i < 8; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    Task& t = kernel.create_task("w" + std::to_string(i),
                                 compute_once(msec(20)), config);
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  for (int cpu : recorder.cpus_used) {
    EXPECT_LT(cpu, 4) << "cgroup cpuset violated";
  }
}

TEST(KernelAffinityTest, VanillaWakeupsScatterAcrossHost) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(9));
  SliceRecorder recorder;
  kernel.add_observer(recorder);

  // Paper §IV-B: "OS scheduler allocates all available CPU cores of the
  // host machine to the CN process" — under contention, unpinned
  // sleep/wake tasks spread over the host.
  for (int i = 0; i < 64; ++i) {
    Task& t = kernel.create_task("v" + std::to_string(i),
                                 compute_sleep_loop(msec(2), msec(1), 30));
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  EXPECT_GT(recorder.cpus_used.size(), 40u);
}

TEST(KernelAffinityTest, StickyTasksReturnToPreviousCpu) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(10));
  SliceRecorder recorder;
  kernel.add_observer(recorder);

  TaskConfig config;
  config.affinity = hw::CpuSet::first_n(4);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    Task& t = kernel.create_task("s" + std::to_string(i),
                                 compute_sleep_loop(msec(1), msec(3), 25),
                                 config);
    t.sticky_wakeup = true;
    tasks.push_back(&t);
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  // Each sticky task should have effectively stayed on one cpu.
  for (Task* t : tasks) {
    EXPECT_LE(recorder.per_task[t->id()].size(), 2u);
    EXPECT_LE(t->stats.migrations, 2);
  }
}

TEST(KernelAffinityTest, MigrationsChargePenalty) {
  // IO tasks on a two-socket host: long blocks follow the device IRQ
  // hint to socket 0, migrating tasks that started on socket 1.
  sim::Engine engine;
  const hw::Topology topo(2, 4, 1, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(11));
  hw::IoDevice disk = hw::IoDevice::raid1_hdd(engine, Rng(12));
  for (int i = 0; i < 16; ++i) {
    auto n = std::make_shared<int>(0);
    auto io_next = std::make_shared<bool>(false);
    Task& t = kernel.create_task(
        "m" + std::to_string(i),
        std::make_unique<LambdaDriver>([&disk, n, io_next](Task&) {
          if (*n >= 15) return Action::exit();
          if (!*io_next) {
            *io_next = true;
            return Action::compute(msec(1));
          }
          *io_next = false;
          ++*n;
          return Action::io(disk, hw::IoRequest{hw::IoKind::Read, 4.0});
        }));
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  EXPECT_GT(kernel.stats().migrations, 0);
  EXPECT_GT(kernel.stats().migration_penalty_total, 0);
}

TEST(KernelAffinityTest, IdleStealingSpreadsQueuedWork) {
  sim::Engine engine;
  const hw::Topology topo(1, 4, 1, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(12));
  SliceRecorder recorder;
  kernel.add_observer(recorder);
  // Start 8 cpu-bound tasks at once; placement plus stealing/balancing
  // must end up using all 4 cpus, finishing in ~2x the single-task time.
  for (int i = 0; i < 8; ++i) {
    Task& t = kernel.create_task("q" + std::to_string(i),
                                 compute_once(msec(40)));
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  EXPECT_EQ(recorder.cpus_used.size(), 4u);
  EXPECT_LT(engine.now(), msec(95));
}

TEST(KernelAffinityTest, CrossSocketMigrationsCountedSeparately) {
  sim::Engine engine;
  const hw::Topology topo = hw::Topology::dell_r830();
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(13));
  for (int i = 0; i < 64; ++i) {
    Task& t = kernel.create_task("x" + std::to_string(i),
                                 compute_sleep_loop(msec(1), msec(1), 30));
    kernel.start_task(t);
  }
  EXPECT_TRUE(kernel.run_until_quiescent());
  EXPECT_LE(kernel.stats().cross_socket_migrations,
            kernel.stats().migrations);
}

TEST(KernelAffinityTest, DisjointAffinityRejected) {
  sim::Engine engine;
  const hw::Topology topo(1, 2, 1, 16.0);
  hw::CostModel costs;
  Kernel kernel(engine, topo, costs, Rng(14));
  TaskConfig config;
  config.affinity = hw::CpuSet::of({10, 11});  // host has cpus 0..1
  EXPECT_THROW(kernel.create_task("bad", compute_once(msec(1)), config),
               InvariantViolation);
}

}  // namespace
}  // namespace pinsim::os
