// cgroup bandwidth control and accounting overhead at kernel level —
// the mechanisms behind the paper's Platform-Size Overhead (§IV-B).
#include <gtest/gtest.h>

#include <memory>

#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

std::unique_ptr<TaskDriver> compute_once(SimDuration work) {
  auto state = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>([state, work](Task&) {
    if (*state) return Action::exit();
    *state = true;
    return Action::compute(work);
  });
}

std::unique_ptr<TaskDriver> compute_sleep_loop(SimDuration work,
                                               SimDuration sleep,
                                               int iterations) {
  auto n = std::make_shared<int>(0);
  auto sleeping = std::make_shared<bool>(false);
  return std::make_unique<LambdaDriver>(
      [n, sleeping, work, sleep, iterations](Task&) {
        if (*n >= iterations) return Action::exit();
        if (!*sleeping) {
          *sleeping = true;
          return Action::compute(work);
        }
        *sleeping = false;
        ++*n;
        return Action::sleep_for(sleep);
      });
}

struct Harness {
  explicit Harness(const hw::Topology& topo, std::uint64_t seed = 1)
      : topology(topo), kernel(engine, topology, costs, Rng(seed)) {}
  sim::Engine engine;
  hw::Topology topology;
  hw::CostModel costs;
  Kernel kernel;
};

TEST(KernelCgroupTest, QuotaCapsThroughput) {
  // 4 cpu-bound tasks, 4-cpu host, but the group may only use 1 cpu's
  // worth of time: the makespan must be ~4x the unconstrained case.
  Harness h(hw::Topology(1, 4, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"small-cn", 1.0, {}});
  for (int i = 0; i < 4; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    Task& t = h.kernel.create_task("w" + std::to_string(i),
                                   compute_once(msec(100)), config);
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_GE(h.engine.now(), msec(380));
  EXPECT_GT(h.kernel.stats().throttle_events, 0);
  EXPECT_GT(h.kernel.stats().unthrottle_events, 0);
  EXPECT_GT(group.stats().throttles, 0);
}

TEST(KernelCgroupTest, GenerousQuotaNeverThrottles) {
  Harness h(hw::Topology(1, 4, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"big-cn", 4.0, {}});
  TaskConfig config;
  config.cgroup = &group;
  Task& t = h.kernel.create_task("solo", compute_once(msec(200)), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_EQ(group.stats().throttles, 0);
  EXPECT_LT(h.engine.now(), msec(210));
}

TEST(KernelCgroupTest, ThrottledTasksResumeAfterRefill) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"cn", 0.5, {}});
  TaskConfig config;
  config.cgroup = &group;
  Task& t = h.kernel.create_task("w", compute_once(msec(100)), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // 100 ms of work at half a cpu: ~200 ms wall time.
  EXPECT_GE(h.engine.now(), msec(195));
  EXPECT_LT(h.engine.now(), msec(310));
  EXPECT_EQ(t.stats.work_done, msec(100));
}

TEST(KernelCgroupTest, UsageNeverExceedsQuotaPerPeriodByMuch) {
  Harness h(hw::Topology(1, 4, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"cn", 2.0, {}});
  for (int i = 0; i < 4; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    Task& t = h.kernel.create_task("w" + std::to_string(i),
                                   compute_once(msec(200)), config);
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  const double seconds = to_seconds(h.engine.now());
  const double used = to_seconds(group.stats().usage);
  // Average usage rate must stay at/below the 2-cpu quota (small slack
  // for the final partial period and per-cpu enforcement granularity).
  EXPECT_LE(used, 2.0 * seconds + 0.02);
}

TEST(KernelCgroupTest, WideGroupPaysMoreAggregationThanPinned) {
  // The PSO mechanism in isolation: identical server-like work whose
  // demand far exceeds the 4-cpu quota. The vanilla group smears over the
  // 112-cpu host (wide aggregation spread, throttle churn); the pinned
  // one stays on 4 cpus. Vanilla must pay more accounting overhead and,
  // since quota is the binding resource, finish later.
  auto run = [](bool pinned) {
    Harness h(hw::Topology::dell_r830(), 21);
    Cgroup::Config cfg{"cn", 4.0, {}};
    if (pinned) cfg.cpuset = hw::CpuSet::first_n(4);
    Cgroup& group = h.kernel.create_cgroup(cfg);
    for (int i = 0; i < 40; ++i) {
      TaskConfig config;
      config.cgroup = &group;
      config.working_set_mb = 20.0;
      Task& t = h.kernel.create_task(
          "w" + std::to_string(i),
          compute_sleep_loop(msec(1), msec(1), 40), config);
      h.kernel.start_task(t);
    }
    EXPECT_TRUE(h.kernel.run_until_quiescent());
    const auto& s = group.stats();
    return std::pair<int, SimDuration>(s.max_spread,
                                       s.accounting_overhead);
  };
  const auto [vanilla_spread, vanilla_overhead] = run(false);
  const auto [pinned_spread, pinned_overhead] = run(true);
  // The vanilla group smears across far more cpus, so the atomic
  // aggregation passes walk more per-cpu records and cost more in total.
  EXPECT_GE(vanilla_spread, 20);
  EXPECT_LE(pinned_spread, 4);
  EXPECT_GT(vanilla_overhead, pinned_overhead);
}

TEST(KernelCgroupTest, AggregationEventsRecorded) {
  Harness h(hw::Topology(1, 4, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"cn", 2.0, {}});
  TaskConfig config;
  config.cgroup = &group;
  Task& t = h.kernel.create_task("w", compute_once(msec(50)), config);
  h.kernel.start_task(t);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  EXPECT_GT(h.kernel.stats().aggregation_events, 10);
  EXPECT_GT(group.stats().aggregations, 10);
}

TEST(KernelCgroupTest, BoundaryTimerChurnLeavesNoTombstones) {
  // The boundary-reprogram storm of a quota-governed sweep used to leave
  // one tombstone per re-arm in the event heap. With persistent timers
  // driven through Engine::reschedule, popped-dead entries should be a
  // vanishing fraction of fired events (only genuine cancels remain:
  // cores going idle, wakeup retractions).
  Harness h(hw::Topology(2, 8, 1, 16.0), 7);
  Cgroup& group = h.kernel.create_cgroup({"cn", 3.0, {}});
  for (int i = 0; i < 12; ++i) {
    TaskConfig config;
    config.cgroup = &group;
    Task& t = h.kernel.create_task("w" + std::to_string(i),
                                   compute_sleep_loop(msec(2), msec(1), 60),
                                   config);
    h.kernel.start_task(t);
  }
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  const sim::EngineStats& stats = h.engine.stats();
  ASSERT_GT(stats.fired, 1000);
  EXPECT_GT(stats.reschedules, 0);
  // Tombstone pops must be a rounding error relative to fired events.
  EXPECT_LT(static_cast<double>(stats.tombstone_pops),
            0.02 * static_cast<double>(stats.fired))
      << "tombstone_pops=" << stats.tombstone_pops
      << " fired=" << stats.fired;
}

TEST(KernelCgroupTest, TaskWokenDuringThrottleParksUntilRefill) {
  Harness h(hw::Topology(1, 1, 1, 16.0));
  Cgroup& group = h.kernel.create_cgroup({"cn", 0.2, {}});
  // A cpu hog exhausts the quota early in each period...
  TaskConfig config;
  config.cgroup = &group;
  Task& hog = h.kernel.create_task("hog", compute_once(msec(60)), config);
  h.kernel.start_task(hog);
  // ...and a sleeper in the same group wakes mid-throttle.
  auto stage = std::make_shared<int>(0);
  Task& sleeper = h.kernel.create_task(
      "sleeper", std::make_unique<LambdaDriver>([stage](Task&) {
        switch ((*stage)++) {
          case 0:
            return Action::sleep_for(msec(50));
          case 1:
            return Action::compute(msec(1));
          default:
            return Action::exit();
        }
      }),
      config);
  h.kernel.start_task(sleeper);
  EXPECT_TRUE(h.kernel.run_until_quiescent());
  // Quota 0.2 cpu: 61 ms of work takes ~305 ms of wall time; both done.
  EXPECT_EQ(hog.state, TaskState::Finished);
  EXPECT_EQ(sleeper.state, TaskState::Finished);
  EXPECT_GE(h.engine.now(), msec(290));
}

}  // namespace
}  // namespace pinsim::os
