// Busy-polling receive semantics (MPI-style spin-wait).
#include <gtest/gtest.h>

#include <memory>

#include "hw/topology.hpp"
#include "os/kernel.hpp"
#include "sim/engine.hpp"

namespace pinsim::os {
namespace {

struct Harness {
  explicit Harness(int cpus, std::uint64_t seed = 1)
      : topology(1, cpus, 1, 16.0),
        kernel(engine, topology, costs, Rng(seed)) {}
  sim::Engine engine;
  hw::Topology topology;
  hw::CostModel costs;
  Kernel kernel;
};

TEST(SpinRecvTest, SpinningTaskStaysOnCpuUntilMessageArrives) {
  Harness h(2);
  auto stage = std::make_shared<int>(0);
  Task& waiter = h.kernel.create_task(
      "spinner", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv_spin() : Action::exit();
      }));
  h.kernel.start_task(waiter);
  h.engine.schedule(msec(5), [&] { h.kernel.post_external(waiter); });
  ASSERT_TRUE(h.kernel.run_until_quiescent(sec(5)));
  // Spinning burns cpu: ~5 ms of poll time, no block time.
  EXPECT_GE(waiter.stats.cpu_time, msec(4));
  EXPECT_EQ(waiter.stats.block_time, 0);
  // The poll is overhead, not work.
  EXPECT_GE(waiter.stats.overhead_paid, msec(4));
  EXPECT_EQ(waiter.stats.work_done, 0);
}

TEST(SpinRecvTest, MessageBeforeSpinConsumedImmediately) {
  Harness h(1);
  auto stage = std::make_shared<int>(0);
  Task& waiter = h.kernel.create_task(
      "ready", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv_spin() : Action::exit();
      }));
  waiter.pending_msgs = 1;  // delivered before the task ever runs
  h.kernel.start_task(waiter);
  ASSERT_TRUE(h.kernel.run_until_quiescent(sec(1)));
  EXPECT_LT(waiter.stats.cpu_time, msec(1));
}

TEST(SpinRecvTest, SpinConsumesCgroupQuota) {
  // A spinning rank inside a container burns its quota — the mechanism
  // behind containerized MPI throttling (fig. 4).
  Harness h(4);
  Cgroup& group = h.kernel.create_cgroup({"mpi", 1.0, {}});
  TaskConfig config;
  config.cgroup = &group;
  auto stage = std::make_shared<int>(0);
  Task& waiter = h.kernel.create_task(
      "rank", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv_spin() : Action::exit();
      }),
      config);
  h.kernel.start_task(waiter);
  h.engine.schedule(msec(50), [&] { h.kernel.post_external(waiter); });
  ASSERT_TRUE(h.kernel.run_until_quiescent(sec(5)));
  EXPECT_GE(group.stats().usage, msec(45));
}

TEST(SpinRecvTest, SpinningTaskIsPreemptible) {
  // One cpu, a spinner and a compute task: fair sharing must still let
  // the compute task finish while the spinner polls.
  Harness h(1);
  auto stage = std::make_shared<int>(0);
  Task& spinner = h.kernel.create_task(
      "spinner", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv_spin() : Action::exit();
      }));
  auto done = std::make_shared<bool>(false);
  Task& worker = h.kernel.create_task(
      "worker", std::make_unique<LambdaDriver>([done](Task&) {
        if (*done) return Action::exit();
        *done = true;
        return Action::compute(msec(30));
      }));
  h.kernel.start_task(spinner);
  h.kernel.start_task(worker);
  h.engine.schedule(msec(100), [&] { h.kernel.post_external(spinner); });
  ASSERT_TRUE(h.kernel.run_until_quiescent(sec(5)));
  // The worker ran despite the spinner: finished well before the post.
  EXPECT_LT(worker.stats.finished_at, msec(95));
  // And the spinner was preempted at least once.
  EXPECT_GT(spinner.stats.context_switches, 1);
}

TEST(SpinRecvTest, BlockingRecvStillBlocks) {
  Harness h(1);
  auto stage = std::make_shared<int>(0);
  Task& waiter = h.kernel.create_task(
      "blocker", std::make_unique<LambdaDriver>([stage](Task&) {
        return (*stage)++ == 0 ? Action::recv() : Action::exit();
      }));
  h.kernel.start_task(waiter);
  h.engine.schedule(msec(5), [&] { h.kernel.post_external(waiter); });
  ASSERT_TRUE(h.kernel.run_until_quiescent(sec(1)));
  EXPECT_GE(waiter.stats.block_time, msec(4));
  EXPECT_LT(waiter.stats.cpu_time, msec(1));
}

}  // namespace
}  // namespace pinsim::os
